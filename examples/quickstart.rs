//! Quickstart: five minutes with COMET.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! We generate a small dataset, pollute every feature with missing values,
//! and let COMET recommend — step by step — which feature to clean next so
//! a KNN classifier's F1 recovers fastest within a budget of 10 units.

use comet::core::{CleaningEnvironment, CleaningSession, CometConfig, StepAction};
use comet::datasets::Dataset;
use comet::frame::{train_test_split, SplitOptions};
use comet::jenga::{ErrorType, GroundTruth, PrePollutionPlan, Provenance, Scenario};
use comet::ml::{Algorithm, Metric, RandomSearch};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. A clean dataset (a synthetic analog of the UCI EEG eye-state data)
    //    and a stratified train/test split.
    let df = Dataset::Eeg.generate(Some(500), &mut rng);
    let tt = train_test_split(&df, SplitOptions::default(), &mut rng).expect("split");
    println!(
        "dataset: {} rows train / {} rows test, {} features",
        tt.train.nrows(),
        tt.test.nrows(),
        tt.train.feature_indices().len()
    );

    // 2. Keep the clean ground truth, then pollute: 40 % missing values in
    //    every feature of both splits (the paper's pre-pollution).
    let gt_train = GroundTruth::new(tt.train.clone());
    let gt_test = GroundTruth::new(tt.test.clone());
    let mut train = tt.train;
    let mut test = tt.test;
    let mut prov_train = Provenance::for_frame(&train);
    let mut prov_test = Provenance::for_frame(&test);
    let levels: Vec<(usize, f64)> = train.feature_indices().into_iter().map(|c| (c, 0.4)).collect();
    let plan = PrePollutionPlan::explicit(Scenario::SingleError(ErrorType::MissingValues), levels);
    plan.apply(&mut train, 0.01, &mut prov_train, &mut rng).expect("pollute train");
    plan.apply(&mut test, 0.01, &mut prov_test, &mut rng).expect("pollute test");

    // 3. The cleaning environment: dirty data + (hidden) ground truth + the
    //    ML model under optimization. Hyperparameters are tuned once on the
    //    dirty data, exactly like a practitioner would.
    let mut env = CleaningEnvironment::new(
        train,
        test,
        gt_train,
        gt_test,
        prov_train,
        prov_test,
        Algorithm::Knn,
        Metric::F1,
        0.03, // cleaning step = 3 % of each split (quick demo)
        RandomSearch::default(),
        42,
        &mut rng,
    )
    .expect("environment");
    println!("dirty F1: {:.4}", env.evaluate().expect("evaluate"));

    // 4. Run COMET with a budget of 10 units.
    let config = CometConfig { budget: 10.0, ..CometConfig::default() };
    let session = CleaningSession::new(config, vec![ErrorType::MissingValues]);
    let outcome = session.run(&mut env, &mut rng).expect("session");
    let trace = outcome.trace;

    // 5. Inspect the step-by-step recommendations.
    println!("\nstep-by-step recommendations:");
    for record in &trace.records {
        let feature = env
            .train()
            .column(record.col)
            .map(|c| c.name().to_string())
            .unwrap_or_else(|_| format!("#{}", record.col));
        println!(
            "  [{}] clean {feature} ({}): predicted F1 {} -> actual {:.4}  {:?}",
            record.iteration,
            record.err.abbrev(),
            record.predicted_f1.map(|p| format!("{p:.4}")).unwrap_or_else(|| "-".into()),
            record.actual_f1,
            record.action,
        );
    }
    println!(
        "\nF1: {:.4} (dirty) -> {:.4} (after {:.0} budget units); fully clean would be {:.4}",
        trace.initial_f1,
        trace.final_f1,
        trace.total_spent(),
        trace.fully_clean_f1.unwrap_or(f64::NAN),
    );
    println!(
        "accepted {} / reverted {} / fallback {} steps; prediction MAE {:.4}",
        trace.count_action(StepAction::Accepted),
        trace.count_action(StepAction::Reverted),
        trace.count_action(StepAction::Fallback),
        trace.prediction_mae().unwrap_or(f64::NAN),
    );
}
