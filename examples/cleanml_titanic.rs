//! CleanML-style evaluation on a paired dirty/clean dataset.
//!
//! ```text
//! cargo run --release --example cleanml_titanic
//! ```
//!
//! The CleanML benchmark ships datasets in *both* dirty and clean versions,
//! which lets cleaning strategies be scored against a real ground truth
//! (paper §4.3). Here we take the Titanic analog (missing values), give
//! COMET and the Shapley-based FIR baseline the same dirty copy and budget,
//! and compare their F1-per-budget trajectories.

use comet::baselines::{FeatureImportanceCleaner, StrategyConfig};
use comet::core::{CleaningEnvironment, CleaningSession, CometConfig, CostPolicy};
use comet::datasets::Dataset;
use comet::frame::{train_test_split, SplitOptions};
use comet::jenga::{ErrorType, GroundTruth, Provenance};
use comet::ml::{Algorithm, Metric, RandomSearch};
use rand::rngs::StdRng;
use rand::SeedableRng;

const BUDGET: f64 = 12.0;

fn main() {
    let mut rng = StdRng::seed_from_u64(1912);

    // A paired dirty/clean Titanic: the dirty copy carries missing values
    // with full per-cell provenance.
    let pair = Dataset::Titanic.generate_cleanml_pair(None, &mut rng);
    println!(
        "Titanic: {} rows, {} dirty cells",
        pair.clean.nrows(),
        GroundTruth::new(pair.clean.clone()).total_dirty(&pair.dirty).expect("dirt count"),
    );

    // One split applied to both versions (labels are never polluted, so the
    // stratification is identical).
    let tt = train_test_split(&pair.clean, SplitOptions::default(), &mut rng).expect("split");
    let clean_train = pair.clean.take(&tt.train_rows).expect("take");
    let clean_test = pair.clean.take(&tt.test_rows).expect("take");
    let dirty_train = pair.dirty.take(&tt.train_rows).expect("take");
    let dirty_test = pair.dirty.take(&tt.test_rows).expect("take");

    // Project provenance onto the split rows.
    let project = |rows: &[usize], nrows: usize| {
        let mut prov = Provenance::new(pair.dirty.ncols(), nrows);
        for col in 0..pair.dirty.ncols() {
            for (i, &row) in rows.iter().enumerate() {
                if let Some(err) = pair.provenance.get(col, row) {
                    prov.record(col, i, err);
                }
            }
        }
        prov
    };
    let prov_train = project(&tt.train_rows, dirty_train.nrows());
    let prov_test = project(&tt.test_rows, dirty_test.nrows());

    let env = CleaningEnvironment::new(
        dirty_train,
        dirty_test,
        GroundTruth::new(clean_train),
        GroundTruth::new(clean_test),
        prov_train,
        prov_test,
        Algorithm::Gb,
        Metric::F1,
        0.01,
        RandomSearch::default(),
        3,
        &mut rng,
    )
    .expect("environment");
    println!("dirty F1: {:.4}\n", env.evaluate().expect("evaluate"));

    // COMET.
    let session = CleaningSession::new(
        CometConfig { budget: BUDGET, ..CometConfig::default() },
        vec![ErrorType::MissingValues],
    );
    let mut comet_env = env.clone();
    let comet = session.run(&mut comet_env, &mut rng).expect("session").trace;

    // FIR.
    let fir = FeatureImportanceCleaner::default();
    let mut fir_env = env.clone();
    let fir_trace = fir
        .run(
            &mut fir_env,
            &[ErrorType::MissingValues],
            &StrategyConfig { budget: BUDGET, costs: CostPolicy::constant() },
            &mut rng,
        )
        .expect("FIR run");

    println!("{:>8}{:>10}{:>10}{:>12}", "budget", "COMET", "FIR", "advantage");
    for b in 0..=(BUDGET as usize) {
        let c = comet.f1_at_budget(b as f64);
        let f = fir_trace.f1_at_budget(b as f64);
        println!("{b:>8}{c:>10.4}{f:>10.4}{:>11.2}pt", 100.0 * (c - f));
    }
    println!("\nfully clean F1 would be {:.4}", comet.fully_clean_f1.unwrap_or(f64::NAN));
}
