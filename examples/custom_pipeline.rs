//! Bring your own data: COMET on a CSV with a custom cost policy.
//!
//! ```text
//! cargo run --release --example custom_pipeline
//! ```
//!
//! Demonstrates the lower-level API surface a downstream user composes:
//!
//! * loading a frame from CSV (schema inference, missing cells),
//! * inspecting per-column statistics,
//! * a hand-written [`CostPolicy`] reflecting *your* team's cleaning costs,
//! * driving the Polluter/Estimator directly to get one-off "what should I
//!   clean next?" advice without running a full budgeted session.

use comet::core::{CleaningEnvironment, CometConfig, CostModel, CostPolicy, Estimator, Polluter};
use comet::frame::{read_csv_str, train_test_split, ColumnSummary, SplitOptions};
use comet::jenga::{ErrorType, GroundTruth, Provenance};
use comet::ml::{Algorithm, Metric, RandomSearch};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A toy loan-book extract. Empty fields are missing values; the `income`
/// column mixes EUR and *cents* (a scaling error the team knows about).
const CSV: &str = "\
age,income,region,default
34,52000,north,no
45,61000,south,no
29,3900000,north,yes
51,48000,west,no
38,,east,yes
42,55000,south,no
27,31000,north,yes
63,72000,west,no
31,2800000,east,yes
55,67000,south,no
24,29000,north,yes
48,59000,west,no
36,47000,east,no
58,69500,south,no
26,33000,north,yes
44,5600000,west,no
33,45000,east,yes
61,71000,south,no
39,51000,north,no
28,30000,east,yes
47,62000,west,no
35,46000,south,yes
52,64000,north,no
30,3500000,east,yes
";

fn main() {
    let mut rng = StdRng::seed_from_u64(9);

    // 1. Load and inspect.
    // Repeat the data rows (not the header) so the demo has enough rows for
    // a meaningful split.
    let (header, body) = CSV.split_once('\n').expect("csv has a header");
    let csv = format!("{header}\n{}", body.repeat(8));
    let df = read_csv_str(&csv, Some("default")).expect("parse CSV");
    println!("loaded {} rows × {} columns", df.nrows(), df.ncols());
    for (name, summary) in df.describe().expect("describe") {
        match summary {
            ColumnSummary::Numeric(s) => println!(
                "  {name:<8} numeric  mean {:>10.1}  std {:>10.1}  missing {}",
                s.mean,
                s.std,
                df.column_by_name(&name).unwrap().missing_count()
            ),
            ColumnSummary::Categorical { counts, .. } => {
                println!("  {name:<8} categorical  {} categories {counts:?}", counts.len())
            }
        }
    }

    // 2. In a real deployment the clean reference is unknown; here we treat
    //    the data *as-is* as ground truth except for the income column,
    //    whose mis-scaled entries we know how to repair (divide by 100).
    let mut clean = df.clone();
    let income = clean.schema().index_of("income").expect("income column");
    for row in 0..clean.nrows() {
        if let Ok(comet::frame::Cell::Num(v)) = clean.get(row, income) {
            if v > 1_000_000.0 {
                clean.set(row, income, comet::frame::Cell::Num(v / 100.0)).unwrap();
            }
        }
    }

    let mut rng_split = StdRng::seed_from_u64(1);
    let tt_clean =
        train_test_split(&clean, SplitOptions::default(), &mut rng_split).expect("split");
    let dirty_train = df.take(&tt_clean.train_rows).expect("take");
    let dirty_test = df.take(&tt_clean.test_rows).expect("take");

    // Provenance: every cell that differs from the repaired version is a
    // scaling error; missing incomes are missing-value errors.
    let mark = |dirty: &comet::frame::DataFrame, gt: &GroundTruth| {
        let mut prov = Provenance::for_frame(dirty);
        for row in gt.dirty_rows(dirty, income).expect("dirty rows") {
            let err = if dirty.get(row, income).expect("cell").is_missing() {
                ErrorType::MissingValues
            } else {
                ErrorType::Scaling
            };
            prov.record(income, row, err);
        }
        prov
    };
    let gt_train = GroundTruth::new(tt_clean.train.clone());
    let gt_test = GroundTruth::new(tt_clean.test.clone());
    let prov_train = mark(&dirty_train, &gt_train);
    let prov_test = mark(&dirty_test, &gt_test);

    let env = CleaningEnvironment::new(
        dirty_train,
        dirty_test,
        gt_train,
        gt_test,
        prov_train,
        prov_test,
        Algorithm::LogReg,
        Metric::F1,
        0.05,
        RandomSearch::default(),
        5,
        &mut rng,
    )
    .expect("environment");
    let current_f1 = env.evaluate().expect("evaluate");
    println!("\ncurrent F1 on the dirty loan book: {current_f1:.4}");

    // 3. Your own cost policy: missing incomes are cheap to impute once the
    //    pipeline exists; scaling errors require a manual currency audit.
    let costs = CostPolicy::new(
        CostModel::OneShot { first: 1.0, rest: 0.0 }, // missing values
        CostModel::Constant(1.0),                     // gaussian noise (unused here)
        CostModel::Constant(1.0),                     // categorical shift (unused here)
        CostModel::Linear { initial: 2.0, increment: 0.5 }, // scaling audits
    );

    // 4. One-off advice: drive the Polluter + Estimator directly.
    let config = CometConfig { costs, ..CometConfig::default() };
    let polluter = Polluter::from_config(&config);
    let estimator = Estimator::new(config.blr_degree, config.interval, true);
    println!("\nwhat-if analysis for the income column:");
    for err in [ErrorType::MissingValues, ErrorType::Scaling] {
        let variants = polluter.variants(&env, income, err, &mut rng).expect("variants");
        let estimate =
            estimator.estimate(&env, income, err, current_f1, &variants).expect("estimate");
        let cost = costs.next_cost(err, 0);
        println!(
            "  cleaning one step of {:<15} predicted F1 {:.4} (±{:.4}), cost {:.1} -> score {:+.4}",
            format!("{err}:"),
            estimate.predicted_f1,
            estimate.uncertainty / 2.0,
            cost,
            (estimate.gain() - estimate.uncertainty) / cost,
        );
    }
    println!("\n(positive score = worth cleaning next; Eq. 4 of the paper)");
}
