//! Churn triage under a real-world-style cleaning budget.
//!
//! ```text
//! cargo run --release --example churn_triage
//! ```
//!
//! Scenario from the paper's introduction: a telco's churn dataset has
//! accumulated *mixed* errors — missing values, category mix-ups, noisy and
//! mis-scaled numbers — and the data team can afford only a limited amount
//! of expert cleaning time. Different error types cost differently to fix
//! (§4.2): imputing a whole column of missing values is a one-shot setup
//! cost, hunting ever-subtler Gaussian noise gets linearly more expensive.
//!
//! We run COMET and a naive random strategy on identical copies of the mess
//! and compare what each achieves with the same 15-unit budget.

use comet::baselines::{RandomCleaner, StrategyConfig};
use comet::core::{CleaningEnvironment, CleaningSession, CometConfig, CostPolicy};
use comet::datasets::Dataset;
use comet::frame::{train_test_split, SplitOptions};
use comet::jenga::{ErrorType, GroundTruth, PrePollutionPlan, Provenance, Scenario};
use comet::ml::{Algorithm, Metric, RandomSearch};
use rand::rngs::StdRng;
use rand::SeedableRng;

const BUDGET: f64 = 15.0;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);

    // The Telco-churn analog: 16 categorical + 3 numeric features.
    let df = Dataset::Churn.generate(Some(700), &mut rng);
    let tt = train_test_split(&df, SplitOptions::default(), &mut rng).expect("split");
    let gt_train = GroundTruth::new(tt.train.clone());
    let gt_test = GroundTruth::new(tt.test.clone());

    // Multi-error pre-pollution: every pollution step picks a random error
    // type applicable to the feature (paper §4.1, second scenario).
    let mut train = tt.train;
    let mut test = tt.test;
    let mut prov_train = Provenance::for_frame(&train);
    let mut prov_test = Provenance::for_frame(&test);
    let plan =
        PrePollutionPlan::sample(&train, Scenario::MultiError, 0.3, 0.5, &mut rng).expect("plan");
    plan.apply(&mut train, 0.01, &mut prov_train, &mut rng).expect("pollute train");
    plan.apply(&mut test, 0.01, &mut prov_test, &mut rng).expect("pollute test");
    println!(
        "pre-pollution: {} features polluted, mean level {:.1} %",
        plan.levels.len(),
        100.0 * plan.mean_level()
    );

    let env = CleaningEnvironment::new(
        train,
        test,
        gt_train,
        gt_test,
        prov_train,
        prov_test,
        Algorithm::Svm,
        Metric::F1,
        0.01,
        RandomSearch::default(),
        7,
        &mut rng,
    )
    .expect("environment");
    println!("dirty F1: {:.4}\n", env.evaluate().expect("evaluate"));

    // The paper's multi-error cost model: MV one-shot (2 then free), GN
    // linear (1, +1 per step), CS/S constant 1.
    let costs = CostPolicy::paper_multi();

    // --- COMET ---
    let config = CometConfig { budget: BUDGET, costs, ..CometConfig::default() };
    let session = CleaningSession::new(config, ErrorType::ALL.to_vec());
    let mut comet_env = env.clone();
    let outcome = session.run(&mut comet_env, &mut rng).expect("COMET session");
    let comet = outcome.trace;

    println!("COMET's cleaning order (feature, error type, cost):");
    for r in comet.records.iter().take(12) {
        let name = env
            .train()
            .column(r.col)
            .map(|c| c.name().to_string())
            .unwrap_or_else(|_| format!("#{}", r.col));
        println!(
            "  {name:>8} {:>2}  cost {:>3.1}  F1 {:.4} ({:?})",
            r.err.abbrev(),
            r.cost,
            r.actual_f1,
            r.action
        );
    }

    // --- Random triage for comparison, averaged over 3 runs ---
    let strategy_config = StrategyConfig { budget: BUDGET, costs };
    let traces = RandomCleaner
        .run_repeated(&env, &ErrorType::ALL, &strategy_config, 3, &mut rng)
        .expect("RR runs");
    let rr_final = traces.iter().map(|t| t.final_f1).sum::<f64>() / traces.len() as f64;

    println!("\nwith a budget of {BUDGET} units:");
    println!("  COMET : F1 {:.4} -> {:.4}", comet.initial_f1, comet.final_f1);
    println!("  random: F1 {:.4} -> {:.4} (mean of 3 runs)", comet.initial_f1, rr_final);
    println!("  advantage: {:+.2} percentage points", 100.0 * (comet.final_f1 - rr_final));
    // Also compare the whole F1-per-budget trajectory, which is less noisy
    // than the endpoint alone.
    let max_b = BUDGET as usize;
    let comet_curve = comet.f1_series(max_b);
    let rr_curve: Vec<f64> = (0..=max_b)
        .map(|b| traces.iter().map(|t| t.f1_at_budget(b as f64)).sum::<f64>() / traces.len() as f64)
        .collect();
    let mean_adv: f64 = comet_curve.iter().zip(&rr_curve).map(|(c, r)| c - r).sum::<f64>()
        / comet_curve.len() as f64;
    println!("  mean advantage over the whole budget: {:+.2} pt", 100.0 * mean_adv);
    println!();
    println!("(Churn is the paper's flattest dataset — §5.2 reports a dirty-vs-clean");
    println!(" gap of only ~1.5 pt there, so small advantages are the expected shape.)");
}
