//! Integration tests: a real daemon on a real socket, driven by the
//! protocol client — session lifecycle, admission pressure, deadlines,
//! crash recovery, and injected service faults.

use comet_obs::json::{JsonObject, JsonValue};
use comet_serve::protocol::kind;
use comet_serve::{
    AdmissionConfig, Client, Daemon, Manifest, ServeConfig, ServeFault, ServeFaultPlan,
    SessionStore,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("comet_serve_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small separable dataset and a copy with 25 % of `f1` missing.
fn csv_pair(rows: usize) -> (String, String) {
    let mut clean = String::from("f1,f2,y\n");
    let mut dirty = String::from("f1,f2,y\n");
    for i in 0..rows {
        let c = i % 2;
        let jitter = ((i * 37) % 101) as f64 / 101.0 - 0.5;
        let f1 = if c == 0 { -2.0 } else { 2.0 } + jitter;
        let f2 = ((i * 13) % 17) as f64 / 17.0;
        let y = if c == 0 { "no" } else { "yes" };
        clean.push_str(&format!("{f1:.4},{f2:.4},{y}\n"));
        if i % 4 == 0 {
            dirty.push_str(&format!(",{f2:.4},{y}\n"));
        } else {
            dirty.push_str(&format!("{f1:.4},{f2:.4},{y}\n"));
        }
    }
    (dirty, clean)
}

fn start_daemon(
    root: &Path,
    workers: usize,
    max_queued: usize,
    faults: Arc<ServeFaultPlan>,
) -> Daemon {
    Daemon::start(ServeConfig {
        root: root.to_path_buf(),
        workers,
        admission: AdmissionConfig { max_queued, per_tenant_cap: 8, base_backoff_ms: 10 },
        port: 0,
        faults,
        report_every: Duration::from_secs(3600),
        ..ServeConfig::default()
    })
    .unwrap()
}

fn upload_req(csv: &str) -> String {
    let mut o = JsonObject::new();
    o.field_str("cmd", "upload").field_str("csv", csv);
    o.finish()
}

fn start_req(dirty: &str, clean: &str, budget: f64, seed: u64, deadline_ms: Option<u64>) -> String {
    let mut o = JsonObject::new();
    o.field_str("cmd", "start")
        .field_str("dirty", dirty)
        .field_str("clean", clean)
        .field_str("label", "y")
        .field_str("algo", "knn")
        .field_str("tenant", "t1")
        .field_f64("budget", budget)
        .field_u64("seed", seed);
    if let Some(ms) = deadline_ms {
        o.field_u64("deadline_ms", ms);
    }
    o.finish()
}

fn session_req(cmd: &str, id: &str) -> String {
    let mut o = JsonObject::new();
    o.field_str("cmd", cmd).field_str("session", id);
    o.finish()
}

fn str_field(v: &JsonValue, name: &str) -> String {
    v.get(name).and_then(JsonValue::as_str).unwrap_or_default().to_string()
}

/// Poll `status` until the predicate holds; panic after ~30 s.
fn wait_status(client: &mut Client, id: &str, pred: impl Fn(&JsonValue) -> bool) -> JsonValue {
    let mut last = String::new();
    for _ in 0..6000 {
        let v = client.request_ok(&session_req("status", id)).expect("status request");
        if pred(&v) {
            return v;
        }
        last = str_field(&v, "status");
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("session {id} did not reach the expected status (last seen {last:?})");
}

fn upload_pair(client: &mut Client, rows: usize) -> (String, String) {
    let (dirty_csv, clean_csv) = csv_pair(rows);
    let dirty = str_field(&client.request_ok(&upload_req(&dirty_csv)).unwrap(), "dataset");
    let clean = str_field(&client.request_ok(&upload_req(&clean_csv)).unwrap(), "dataset");
    (dirty, clean)
}

#[test]
fn full_session_lifecycle_over_the_wire() {
    let root = temp_root("lifecycle");
    let daemon = start_daemon(&root, 2, 8, ServeFaultPlan::new(Vec::new()));
    let mut client = Client::connect(daemon.port()).unwrap();

    // ping
    let pong = client.request_ok("{\"cmd\":\"ping\"}").unwrap();
    assert!(matches!(pong.get("pong"), Some(JsonValue::Bool(true))));

    // upload both dataset versions; re-upload is idempotent.
    let (dirty, clean) = upload_pair(&mut client, 120);
    let again = str_field(&client.request_ok(&upload_req(&csv_pair(120).0)).unwrap(), "dataset");
    assert_eq!(again, dirty, "content-addressed uploads are idempotent");

    // starting with an unknown dataset is a typed not-found.
    match client.request_ok(&start_req("feedfacefeedface", &clean, 3.0, 11, None)) {
        Err(comet_serve::client::ClientError::Server(e)) => assert_eq!(e.kind, kind::NOT_FOUND),
        other => panic!("expected not-found, got {other:?}"),
    }
    // an unknown command is a typed invalid.
    match client.request_ok("{\"cmd\":\"meteor\"}") {
        Err(comet_serve::client::ClientError::Server(e)) => assert_eq!(e.kind, kind::INVALID),
        other => panic!("expected invalid, got {other:?}"),
    }

    // start a real session and watch it finish.
    let started = client.request_ok(&start_req(&dirty, &clean, 3.0, 11, None)).unwrap();
    let id = str_field(&started, "session");
    assert_eq!(id, "s00000001", "ids are monotonic from 1");
    let done = wait_status(&mut client, &id, |v| str_field(v, "status") == "done");
    assert!(done.get("iterations").and_then(JsonValue::as_f64).unwrap_or(0.0) >= 1.0);

    // results stream: full fetch, then an incremental fetch past the end.
    let results = client.request_ok(&session_req("results", &id)).unwrap();
    let total = results.get("total").and_then(JsonValue::as_f64).unwrap() as usize;
    assert!(total >= 1, "a finished session has recommendation steps");
    let steps = match results.get("steps") {
        Some(JsonValue::Arr(items)) => items.len(),
        other => panic!("steps must be an array, got {other:?}"),
    };
    assert_eq!(steps, total);
    let mut more = JsonObject::new();
    more.field_str("cmd", "results").field_str("session", &id).field_u64("from", total as u64);
    let tail = client.request_ok(&more.finish()).unwrap();
    match tail.get("steps") {
        Some(JsonValue::Arr(items)) => assert!(items.is_empty(), "nothing new past the end"),
        other => panic!("steps must be an array, got {other:?}"),
    }

    // the store holds the full artifact set.
    let dir = root.join("sessions").join(&id);
    for artifact in ["manifest.json", "checkpoint.jsonl", "trace.csv", "outcome.json"] {
        assert!(dir.join(artifact).exists(), "missing {artifact}");
    }

    // stats exposes queue/running and the metrics snapshot.
    let stats = client.request_ok("{\"cmd\":\"stats\"}").unwrap();
    assert!(stats.get("queue_depth").is_some());
    assert!(stats.get("metrics").is_some());

    // drain: the daemon confirms, then shuts down.
    let drained = client.request_ok("{\"cmd\":\"drain\"}").unwrap();
    assert!(matches!(drained.get("drained"), Some(JsonValue::Bool(true))));
    daemon.join();
}

#[test]
fn admission_rejects_under_pressure_and_recovers_after_cancel() {
    let root = temp_root("admission");
    // One worker, one queue slot, and a long-running-session simulator
    // pinned to the first execution: the third start must bounce.
    let stall = ServeFaultPlan::new(vec![ServeFault::SessionStall { nth: 1, stall_ms: 60_000 }]);
    let daemon = start_daemon(&root, 1, 1, stall);
    let mut client = Client::connect(daemon.port()).unwrap();
    let (dirty, clean) = upload_pair(&mut client, 120);

    // s1 occupies the worker (the stall holds it until cancelled).
    let s1 =
        str_field(&client.request_ok(&start_req(&dirty, &clean, 3.0, 1, None)).unwrap(), "session");
    wait_status(&mut client, &s1, |v| str_field(v, "status") == "running");
    // s2 fills the queue.
    let s2 =
        str_field(&client.request_ok(&start_req(&dirty, &clean, 3.0, 2, None)).unwrap(), "session");

    // s3 is rejected: typed, retryable, with a backoff hint.
    let rejection = match client.request_ok(&start_req(&dirty, &clean, 3.0, 3, None)) {
        Err(comet_serve::client::ClientError::Server(e)) => e,
        other => panic!("expected queue-full, got {other:?}"),
    };
    assert_eq!(rejection.kind, kind::QUEUE_FULL);
    assert!(rejection.retryable);
    assert!(rejection.backoff_ms.is_some());

    // Free capacity, then the retry loop gets s3 in. Order matters: s2 is
    // cancelled first, while the worker is still pinned on s1 — cancelling
    // s1 first would free the worker to grab s2 before its cancel lands.
    client.request_ok(&session_req("cancel", &s2)).unwrap();
    client.request_ok(&session_req("cancel", &s1)).unwrap();
    let accepted =
        client.request_with_retry(&start_req(&dirty, &clean, 3.0, 3, None), 1000).unwrap();
    let s3 = str_field(&accepted, "session");
    assert_eq!(s3, "s00000003");

    // everything settles: s1/s2 stopped by cancel, s3 runs to done.
    wait_status(&mut client, &s1, |v| str_field(v, "status") == "stopped");
    let stopped = wait_status(&mut client, &s2, |v| str_field(v, "status") == "stopped");
    assert_eq!(str_field(&stopped, "stop_reason"), "cancelled");
    wait_status(&mut client, &s3, |v| str_field(v, "status") == "done");

    // while draining, new starts are rejected non-retryably.
    let drained = client.request_ok("{\"cmd\":\"drain\"}").unwrap();
    assert!(matches!(drained.get("drained"), Some(JsonValue::Bool(true))));
    daemon.join();
}

#[test]
fn deadlines_stop_sessions_with_a_partial_result() {
    let root = temp_root("deadline");
    // The stall keeps the session alive past the supervisor's first tick,
    // so the 1 ms deadline reliably expires a *running* session; the stall
    // itself aborts on the expiry, like an iteration boundary would.
    let stall = ServeFaultPlan::new(vec![ServeFault::SessionStall { nth: 1, stall_ms: 60_000 }]);
    let daemon = start_daemon(&root, 1, 8, stall);
    let mut client = Client::connect(daemon.port()).unwrap();
    let (dirty, clean) = upload_pair(&mut client, 120);

    // A 1 ms deadline on an unbounded budget: the supervisor must expire
    // it and the session must stop gracefully at an iteration boundary.
    let id = str_field(
        &client.request_ok(&start_req(&dirty, &clean, 500.0, 4, Some(1))).unwrap(),
        "session",
    );
    let stopped = wait_status(&mut client, &id, |v| str_field(v, "status") == "stopped");
    assert_eq!(str_field(&stopped, "stop_reason"), "deadline-exceeded");

    // The partial result is persisted like a finished one.
    let dir = root.join("sessions").join(&id);
    assert!(dir.join("trace.csv").exists());
    let outcome = std::fs::read_to_string(dir.join("outcome.json")).unwrap();
    assert!(outcome.contains("deadline-exceeded"), "{outcome}");
    let manifest =
        Manifest::parse(&std::fs::read_to_string(dir.join("manifest.json")).unwrap()).unwrap();
    assert_eq!(manifest.status, "stopped");
    assert_eq!(manifest.stop_reason.as_deref(), Some("deadline-exceeded"));

    client.request_ok("{\"cmd\":\"drain\"}").unwrap();
    daemon.join();
}

#[test]
fn restart_resumes_interrupted_sessions_bit_identically() {
    // Reference run: one session, uninterrupted, over the wire.
    let root_a = temp_root("recovery_ref");
    let daemon = start_daemon(&root_a, 1, 8, ServeFaultPlan::new(Vec::new()));
    let mut client = Client::connect(daemon.port()).unwrap();
    let (dirty_csv, clean_csv) = csv_pair(120);
    let dirty = str_field(&client.request_ok(&upload_req(&dirty_csv)).unwrap(), "dataset");
    let clean = str_field(&client.request_ok(&upload_req(&clean_csv)).unwrap(), "dataset");
    let id =
        str_field(&client.request_ok(&start_req(&dirty, &clean, 4.0, 9, None)).unwrap(), "session");
    wait_status(&mut client, &id, |v| str_field(v, "status") == "done");
    client.request_ok("{\"cmd\":\"drain\"}").unwrap();
    daemon.join();
    let reference_trace =
        std::fs::read_to_string(root_a.join("sessions").join(&id).join("trace.csv")).unwrap();
    let full_checkpoint =
        std::fs::read_to_string(root_a.join("sessions").join(&id).join("checkpoint.jsonl"))
            .unwrap();
    let manifest = Manifest::parse(
        &std::fs::read_to_string(root_a.join("sessions").join(&id).join("manifest.json")).unwrap(),
    )
    .unwrap();

    // Simulate a daemon killed mid-session: a store whose manifest still
    // says "running" and whose checkpoint holds only a prefix of the work.
    let root_b = temp_root("recovery_cut");
    let store = SessionStore::open(&root_b).unwrap();
    assert_eq!(store.put_dataset(&dirty_csv).unwrap(), dirty);
    assert_eq!(store.put_dataset(&clean_csv).unwrap(), clean);
    let mut interrupted = manifest.clone();
    interrupted.status = "running".into();
    store.write_manifest(&interrupted).unwrap();
    let lines: Vec<&str> = full_checkpoint.lines().collect();
    assert!(lines.len() >= 3, "reference checkpoint too short to cut: {} lines", lines.len());
    let cut = lines[..lines.len() / 2 + 1].join("\n") + "\n";
    std::fs::write(store.session_dir(&id).join("checkpoint.jsonl"), cut).unwrap();

    // Restart on the interrupted store: the session is re-enqueued,
    // resumed from the checkpoint, and finishes with the identical trace.
    let daemon = start_daemon(&root_b, 1, 8, ServeFaultPlan::new(Vec::new()));
    let mut client = Client::connect(daemon.port()).unwrap();
    wait_status(&mut client, &id, |v| str_field(v, "status") == "done");
    let resumed_trace =
        std::fs::read_to_string(root_b.join("sessions").join(&id).join("trace.csv")).unwrap();
    assert_eq!(resumed_trace, reference_trace, "recovery must lose no work and invent none");

    client.request_ok("{\"cmd\":\"drain\"}").unwrap();
    daemon.join();
}

#[test]
fn injected_service_faults_disconnect_and_stall() {
    let root = temp_root("faults");
    let plan = ServeFaultPlan::new(vec![
        // 2nd request (the first upload below) drops mid-upload; 3rd
        // request (the retried upload) stalls 50 ms then succeeds.
        ServeFault::UploadDisconnect { nth: 1 },
        ServeFault::SlowClient { nth: 3, delay_ms: 50 },
    ]);
    let daemon = start_daemon(&root, 1, 8, plan);
    let mut client = Client::connect(daemon.port()).unwrap();
    client.request_ok("{\"cmd\":\"ping\"}").unwrap();

    // The first upload is dropped without a response: the client sees a
    // clean close, not a hang and not garbage.
    let (dirty_csv, _) = csv_pair(40);
    match client.request(&upload_req(&dirty_csv)) {
        Err(comet_serve::client::ClientError::Io(_)) => {}
        other => panic!("expected a dropped connection, got {other:?}"),
    }

    // Reconnect and retry: the slow-client stall delays but does not harm.
    let mut client = Client::connect(daemon.port()).unwrap();
    let begun = std::time::Instant::now();
    let fp = str_field(&client.request_ok(&upload_req(&dirty_csv)).unwrap(), "dataset");
    assert!(!fp.is_empty());
    assert!(begun.elapsed() >= Duration::from_millis(50), "staged stall must apply");

    client.request_ok("{\"cmd\":\"drain\"}").unwrap();
    daemon.join();
}
