//! The wire protocol: length-prefixed JSON frames.
//!
//! Every message — request or response — is one frame: a 4-byte
//! big-endian `u32` payload length followed by that many bytes of UTF-8
//! JSON. Length prefixing (instead of newline delimiting) lets payloads
//! carry embedded newlines (CSV uploads, trace dumps) without escaping
//! gymnastics, and makes torn frames detectable: a reader that hits EOF
//! mid-frame knows the peer died, it never mistakes half a message for a
//! whole one.
//!
//! Requests are objects with a `"cmd"` field. Responses are either
//! `{"ok":true, ...}` or `{"ok":false, "error":{"kind":..,
//! "message":.., "retryable":.., "backoff_ms":..}}`. The error kinds are
//! a closed set (see [`kind`]) so clients can switch on them.

use comet_obs::json::{self, JsonObject, JsonValue};
use std::io::{self, Read, Write};

/// Hard cap on a single frame. Large enough for any dataset the paper's
/// benchmarks use; small enough that a corrupt or malicious length prefix
/// cannot make the daemon allocate unbounded memory.
pub const MAX_FRAME: usize = 64 << 20;

/// Typed error kinds a response can carry — a closed vocabulary clients
/// dispatch on.
pub mod kind {
    /// The pending queue is at its high-water mark; retry after backoff.
    pub const QUEUE_FULL: &str = "queue-full";
    /// This tenant is at its in-flight cap; retry after backoff.
    pub const TENANT_CAP: &str = "tenant-cap";
    /// The daemon is draining and admits no new sessions.
    pub const DRAINING: &str = "draining";
    /// Unknown session or dataset id.
    pub const NOT_FOUND: &str = "not-found";
    /// Malformed request (missing field, bad value, unknown command).
    pub const INVALID: &str = "invalid";
    /// Server-side I/O failure (store write, dataset read).
    pub const IO: &str = "io";
    /// Anything else — a bug surfaced as an error instead of a crash.
    pub const INTERNAL: &str = "internal";
}

/// Write one frame: 4-byte big-endian length, then the payload, flushed.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME ({MAX_FRAME})", bytes.len()),
        ));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Read one frame. `Ok(None)` is a clean EOF *between* frames (the peer
/// closed the connection); EOF inside a frame is an error — a torn frame
/// means the peer died mid-message and the bytes read so far are garbage.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf[..1])? {
        0 => return Ok(None), // clean EOF at a frame boundary
        _ => r.read_exact(&mut len_buf[1..])?,
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME ({MAX_FRAME})"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("non-UTF-8 frame: {e}")))
}

/// Encode the error half of a failure response.
pub fn error_response(
    kind: &str,
    message: &str,
    retryable: bool,
    backoff_ms: Option<u64>,
) -> String {
    let mut err = JsonObject::new();
    err.field_str("kind", kind)
        .field_str("message", message)
        .field_raw("retryable", if retryable { "true" } else { "false" });
    if let Some(ms) = backoff_ms {
        err.field_u64("backoff_ms", ms);
    }
    let mut obj = JsonObject::new();
    obj.field_raw("ok", "false").field_raw("error", &err.finish());
    obj.finish()
}

/// Start an `{"ok":true, ...}` response; the caller adds payload fields
/// and calls `finish()`.
pub fn ok_response() -> JsonObject {
    let mut obj = JsonObject::new();
    obj.field_raw("ok", "true");
    obj
}

/// A parsed response, split into the ok / error halves.
#[derive(Debug, Clone)]
pub enum Response {
    /// `{"ok":true, ...}` with the whole document for field access.
    Ok(JsonValue),
    /// `{"ok":false, "error":{...}}`, decomposed.
    Err(WireError),
}

/// The error payload of a failure response.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// One of the [`kind`] constants.
    pub kind: String,
    /// Human-readable detail.
    pub message: String,
    /// Whether retrying (after `backoff_ms`) can succeed.
    pub retryable: bool,
    /// Server-suggested wait before the retry.
    pub backoff_ms: Option<u64>,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)?;
        if let Some(ms) = self.backoff_ms {
            write!(f, " (retry in {ms} ms)")?;
        }
        Ok(())
    }
}

/// Parse a response frame into its ok / error halves.
pub fn parse_response(text: &str) -> Result<Response, String> {
    let value = json::parse(text)?;
    match value.get("ok") {
        Some(JsonValue::Bool(true)) => Ok(Response::Ok(value)),
        Some(JsonValue::Bool(false)) => {
            let err = value.get("error").ok_or("ok:false without error object")?;
            Ok(Response::Err(WireError {
                kind: err.get("kind").and_then(JsonValue::as_str).unwrap_or("internal").to_string(),
                message: err.get("message").and_then(JsonValue::as_str).unwrap_or("").to_string(),
                retryable: matches!(err.get("retryable"), Some(JsonValue::Bool(true))),
                backoff_ms: err.get("backoff_ms").and_then(JsonValue::as_f64).map(|v| v as u64),
            }))
        }
        _ => Err("response missing boolean ok field".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_including_newlines() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"cmd\":\"upload\",\"csv\":\"a,b\\ny\"}").unwrap();
        write_frame(&mut buf, "literal\nnewlines\nare fine").unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r).unwrap().unwrap(),
            "{\"cmd\":\"upload\",\"csv\":\"a,b\\ny\"}"
        );
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "literal\nnewlines\nare fine");
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF between frames");
    }

    #[test]
    fn torn_frames_are_errors_not_messages() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "complete message").unwrap();
        // EOF inside the payload.
        let mut torn = &buf[..buf.len() - 4];
        assert!(read_frame(&mut torn).is_err(), "mid-payload EOF must error");
        // EOF inside the length prefix.
        let mut torn = &buf[..2];
        assert!(read_frame(&mut torn).is_err(), "mid-prefix EOF must error");
    }

    #[test]
    fn oversized_and_invalid_frames_are_rejected() {
        let huge = ((MAX_FRAME + 1) as u32).to_be_bytes();
        let mut r = &huge[..];
        assert!(read_frame(&mut r).is_err(), "length above MAX_FRAME must be rejected unread");

        let mut bad = Vec::from(4u32.to_be_bytes());
        bad.extend_from_slice(&[0xff, 0xfe, 0xfd, 0xfc]);
        let mut r = &bad[..];
        assert!(read_frame(&mut r).is_err(), "non-UTF-8 payload must be rejected");
    }

    #[test]
    fn responses_parse_into_typed_halves() {
        let mut ok = ok_response();
        ok.field_str("session", "s00000001");
        match parse_response(&ok.finish()).unwrap() {
            Response::Ok(v) => {
                assert_eq!(v.get("session").unwrap().as_str(), Some("s00000001"));
            }
            Response::Err(e) => panic!("unexpected error {e}"),
        }

        let text = error_response(kind::QUEUE_FULL, "8 sessions pending", true, Some(250));
        match parse_response(&text).unwrap() {
            Response::Err(e) => {
                assert_eq!(e.kind, kind::QUEUE_FULL);
                assert!(e.retryable);
                assert_eq!(e.backoff_ms, Some(250));
                assert!(e.to_string().contains("retry in 250 ms"));
            }
            Response::Ok(_) => panic!("expected an error response"),
        }

        assert!(parse_response("{\"no_ok\":1}").is_err());
    }
}
