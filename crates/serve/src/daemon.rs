//! The daemon: accept loop, worker pool, supervisor, and the command
//! dispatch tying [`crate::protocol`], [`crate::admission`], and
//! [`crate::store`] together.
//!
//! Life of a session: `start` passes admission, gets a monotonic id, its
//! manifest is persisted (*before* the accept response — invariant 1 of
//! the store), and the id joins the bounded pending queue. A worker pops
//! it, occupies one `comet-par` slot (daemon fan-out and session fan-out
//! share the one global budget), builds the environment from the
//! content-addressed datasets with the manifest's seed, and runs the
//! session with a checkpoint in the session directory and a
//! `SessionControl` attached. Cancels and expired deadlines reach the
//! session through that control; the partial outcome is persisted like a
//! completed one. On restart the daemon rescans the store and re-enqueues
//! every `queued`/`running` manifest in id order; sessions with a
//! checkpoint resume bit-identically (the comet-core replay guarantee).

use crate::admission::AdmissionConfig;
use crate::faults::ServeFaultPlan;
use crate::protocol::{self, kind};
use crate::store::{Manifest, SessionStore};
use comet_core::{
    build_paired_env, CheckpointSpec, CleaningSession, CometConfig, SessionControl, StopReason,
};
use comet_frame::read_csv;
use comet_jenga::ErrorType;
use comet_ml::kernels::KernelTier;
use comet_ml::{Algorithm, RandomSearch};
use comet_obs::json::{self, JsonObject, JsonValue};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon configuration, fixed at start.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Store root directory.
    pub root: PathBuf,
    /// Worker pool size (concurrent sessions).
    pub workers: usize,
    /// Admission limits.
    pub admission: AdmissionConfig,
    /// TCP port on 127.0.0.1; `0` picks an ephemeral port (read it back
    /// from [`Daemon::port`]).
    pub port: u16,
    /// Kernel tier for *every* hosted session — the tier is process-global
    /// (`comet_ml::kernels::set_tier`), so one daemon pins one tier.
    pub kernels: KernelTier,
    /// Staged service-layer faults.
    pub faults: Arc<ServeFaultPlan>,
    /// Period of the supervisor's serve report to the journal sink (if one
    /// is installed).
    pub report_every: Duration,
    /// Rows per column segment for every hosted session (`0` = whole
    /// column). Part of each session's checkpoint identity, so one daemon
    /// pins one segmentation — exactly like the kernel tier.
    pub segment_rows: usize,
    /// Resident-segment byte cap. `Some(n)` arms the process-global spill
    /// pool under `<root>/spill`; cold segments move to content-addressed
    /// files and reload on demand. `None` = everything stays in memory.
    pub memory_budget: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            root: PathBuf::from("comet-serve-store"),
            workers: 2,
            admission: AdmissionConfig::default(),
            port: 0,
            kernels: KernelTier::Scalar,
            faults: ServeFaultPlan::new(Vec::new()),
            report_every: Duration::from_secs(10),
            segment_rows: comet_frame::DEFAULT_SEGMENT_ROWS,
            memory_budget: None,
        }
    }
}

/// Per-session live state: the manifest mirror plus the control handle
/// the status/results/cancel endpoints and the deadline supervisor use.
#[derive(Debug)]
struct SessionEntry {
    manifest: Manifest,
    control: SessionControl,
    /// Set when the run starts; the supervisor expires it.
    deadline: Option<Instant>,
}

#[derive(Debug)]
struct Inner {
    config: ServeConfig,
    store: SessionStore,
    queue: Mutex<VecDeque<String>>,
    queue_cv: Condvar,
    sessions: Mutex<BTreeMap<String, SessionEntry>>,
    draining: AtomicBool,
    shutdown: AtomicBool,
    running: AtomicUsize,
}

/// A running daemon; join it to block until drained.
#[derive(Debug)]
pub struct Daemon {
    port: u16,
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Daemon {
    /// Open the store, recover interrupted work, bind the socket, and
    /// spawn the worker pool + accept loop + supervisor.
    pub fn start(config: ServeConfig) -> io::Result<Daemon> {
        comet_ml::kernels::set_tier(config.kernels);
        let store = SessionStore::open(&config.root)?;
        if let Some(budget) = config.memory_budget {
            // The spill pool is process-global, like the kernel tier:
            // every hosted session shares the one budget. Content
            // addressing makes the directory safe to reuse across
            // restarts — a recovered session finds its segments by
            // fingerprint or rewrites them idempotently.
            comet_frame::spill_configure(config.root.join("spill"), budget)
                .map_err(|e| io::Error::other(format!("spill dir: {e}")))?;
        }

        // Crash recovery: every manifest still queued/running is accepted
        // work this daemon owes a result for. Re-enqueue in id order (the
        // original acceptance order); a checkpoint file means the comet-core
        // layer will resume the interrupted run bit-identically.
        let mut queue = VecDeque::new();
        let mut sessions = BTreeMap::new();
        for mut manifest in store.load_manifests()? {
            if manifest.status != "queued" && manifest.status != "running" {
                continue;
            }
            if store.session_dir(&manifest.id).join("checkpoint.jsonl").exists() {
                comet_obs::counter_add("serve.sessions_resumed", 1);
            }
            manifest.status = "queued".into();
            store.write_manifest(&manifest)?;
            queue.push_back(manifest.id.clone());
            sessions.insert(
                manifest.id.clone(),
                SessionEntry { manifest, control: SessionControl::new(), deadline: None },
            );
        }
        comet_obs::gauge_set("serve.queue_depth", queue.len() as f64);

        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        let port = listener.local_addr()?.port();
        let workers = config.workers.max(1);
        let inner = Arc::new(Inner {
            config,
            store,
            queue: Mutex::new(queue),
            queue_cv: Condvar::new(),
            sessions: Mutex::new(sessions),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            running: AtomicUsize::new(0),
        });

        let mut threads = Vec::new();
        for i in 0..workers {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))?,
            );
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-supervisor".into())
                    .spawn(move || supervisor_loop(&inner))?,
            );
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-accept".into())
                    .spawn(move || accept_loop(&inner, listener))?,
            );
        }
        Ok(Daemon { port, inner, threads })
    }

    /// The bound port on 127.0.0.1.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Block until the daemon shuts down (a client sent `drain`).
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Ask the daemon to drain and shut down without a client (tests and
    /// signal handlers): equivalent to receiving a `drain` command.
    pub fn request_drain(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
        wait_drained(&self.inner);
        initiate_shutdown(&self.inner, self.port);
    }
}

/// Block until no work is pending or running.
fn wait_drained(inner: &Inner) {
    let mut q = lock(&inner.queue);
    while !(q.is_empty() && inner.running.load(Ordering::SeqCst) == 0) {
        let (guard, _) = inner
            .queue_cv
            .wait_timeout(q, Duration::from_millis(100))
            .unwrap_or_else(PoisonError::into_inner);
        q = guard;
    }
}

/// Flip the shutdown flag and unblock every waiting thread.
fn initiate_shutdown(inner: &Inner, port: u16) {
    inner.shutdown.store(true, Ordering::SeqCst);
    inner.queue_cv.notify_all();
    // The accept loop blocks in `accept`; poke it awake.
    let _ = TcpStream::connect(("127.0.0.1", port));
}

fn accept_loop(inner: &Arc<Inner>, listener: TcpListener) {
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let inner = Arc::clone(inner);
        // Handler threads are detached: they die with the process, and a
        // drained daemon writes its last response before shutdown flips.
        let _ = std::thread::Builder::new()
            .name("serve-conn".into())
            .spawn(move || handle_connection(&inner, stream));
    }
}

/// Outcome of dispatching one request frame.
enum Action {
    /// Write this response frame and keep the connection.
    Respond(String),
    /// Drop the connection without responding (injected fault).
    Disconnect,
    /// Drain: block until idle, respond, then shut the daemon down.
    Drain,
}

fn handle_connection(inner: &Arc<Inner>, mut stream: TcpStream) {
    // A stalled peer may not hold a handler thread forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    loop {
        let frame = match protocol::read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => return, // clean close, torn frame, or timeout
        };
        comet_obs::counter_add("serve.requests", 1);
        if let Some(delay_ms) = inner.config.faults.next_request_delay() {
            std::thread::sleep(Duration::from_millis(delay_ms));
        }
        let started = Instant::now();
        let (metric, action) = dispatch(inner, &frame);
        comet_obs::observe_duration(metric, started.elapsed());
        match action {
            Action::Respond(response) => {
                if protocol::write_frame(&mut stream, &response).is_err() {
                    return;
                }
            }
            Action::Disconnect => return,
            Action::Drain => {
                inner.draining.store(true, Ordering::SeqCst);
                wait_drained(inner);
                emit_serve_report(inner, "drain");
                let mut ok = protocol::ok_response();
                ok.field_raw("drained", "true");
                let _ = protocol::write_frame(&mut stream, &ok.finish());
                initiate_shutdown(inner, inner.config.port);
                // The poke above used the configured port, which is 0 for
                // ephemeral binds; poke the real one through the stream's
                // own local view instead.
                if let Ok(addr) = stream.local_addr() {
                    let _ = TcpStream::connect(addr);
                }
                return;
            }
        }
    }
}

/// Route one request frame; returns the endpoint's latency-metric name
/// and the action. Never panics: malformed input becomes a typed
/// `invalid` response.
fn dispatch(inner: &Arc<Inner>, frame: &str) -> (&'static str, Action) {
    let request = match json::parse(frame) {
        Ok(v) => v,
        Err(e) => {
            return (
                "serve.endpoint.invalid",
                Action::Respond(protocol::error_response(
                    kind::INVALID,
                    &format!("unparseable request: {e}"),
                    false,
                    None,
                )),
            );
        }
    };
    let cmd = request.get("cmd").and_then(JsonValue::as_str).unwrap_or("");
    match cmd {
        "ping" => {
            let mut ok = protocol::ok_response();
            ok.field_raw("pong", "true");
            ("serve.endpoint.ping", Action::Respond(ok.finish()))
        }
        "upload" => ("serve.endpoint.upload", cmd_upload(inner, &request)),
        "start" => ("serve.endpoint.start", Action::Respond(cmd_start(inner, &request))),
        "status" => ("serve.endpoint.status", Action::Respond(cmd_status(inner, &request))),
        "results" => ("serve.endpoint.results", Action::Respond(cmd_results(inner, &request))),
        "cancel" => ("serve.endpoint.cancel", Action::Respond(cmd_cancel(inner, &request))),
        "stats" => ("serve.endpoint.stats", Action::Respond(cmd_stats(inner))),
        "drain" => ("serve.endpoint.drain", Action::Drain),
        other => (
            "serve.endpoint.invalid",
            Action::Respond(protocol::error_response(
                kind::INVALID,
                &format!("unknown command {other:?}"),
                false,
                None,
            )),
        ),
    }
}

fn cmd_upload(inner: &Inner, request: &JsonValue) -> Action {
    if inner.config.faults.next_upload_disconnects() {
        return Action::Disconnect;
    }
    let Some(csv) = request.get("csv").and_then(JsonValue::as_str) else {
        return Action::Respond(protocol::error_response(
            kind::INVALID,
            "upload needs a csv field",
            false,
            None,
        ));
    };
    match inner.store.put_dataset(csv) {
        Ok(fp) => {
            comet_obs::counter_add("serve.uploads", 1);
            let mut ok = protocol::ok_response();
            ok.field_str("dataset", &fp);
            Action::Respond(ok.finish())
        }
        Err(e) => Action::Respond(protocol::error_response(
            kind::IO,
            &format!("storing dataset: {e}"),
            true,
            Some(inner.config.admission.base_backoff_ms),
        )),
    }
}

fn cmd_start(inner: &Inner, request: &JsonValue) -> String {
    let str_of = |key: &str| request.get(key).and_then(JsonValue::as_str);
    let Some(dirty) = str_of("dirty") else {
        return protocol::error_response(
            kind::INVALID,
            "start needs a dirty dataset fp",
            false,
            None,
        );
    };
    let Some(label) = str_of("label") else {
        return protocol::error_response(kind::INVALID, "start needs a label column", false, None);
    };
    let clean = str_of("clean").map(str::to_string);
    let tenant = str_of("tenant").unwrap_or("default").to_string();
    let algo = str_of("algo").unwrap_or("knn").to_string();
    if Algorithm::parse(&algo).is_none() {
        return protocol::error_response(
            kind::INVALID,
            &format!("unknown algorithm {algo:?}"),
            false,
            None,
        );
    }
    let budget = request.get("budget").and_then(JsonValue::as_f64).unwrap_or(20.0);
    let seed = request.get("seed").and_then(JsonValue::as_f64).unwrap_or(42.0) as u64;
    let detect = matches!(request.get("detect"), Some(JsonValue::Bool(true)));
    let deadline_ms = request.get("deadline_ms").and_then(JsonValue::as_f64).map(|v| v as u64);
    if !budget.is_finite() || budget <= 0.0 {
        return protocol::error_response(kind::INVALID, "budget must be positive", false, None);
    }
    for fp in std::iter::once(dirty).chain(clean.as_deref()) {
        if !inner.store.dataset_path(fp).exists() {
            return protocol::error_response(
                kind::NOT_FOUND,
                &format!("dataset {fp:?} is not uploaded"),
                false,
                None,
            );
        }
    }

    // Admission under one queue lock, so the depth a decision saw is the
    // depth the enqueue acts on.
    let mut queue = lock(&inner.queue);
    let tenant_inflight = lock(&inner.sessions)
        .values()
        .filter(|e| {
            e.manifest.tenant == tenant
                && matches!(e.manifest.status.as_str(), "queued" | "running")
        })
        .count();
    if let Err(rejection) = inner.config.admission.admit(
        queue.len(),
        tenant_inflight,
        inner.draining.load(Ordering::SeqCst),
    ) {
        comet_obs::counter_add("serve.admission_rejections", 1);
        return protocol::error_response(
            rejection.kind,
            &rejection.message,
            rejection.retryable,
            rejection.backoff_ms,
        );
    }

    let id = match inner.store.allocate_id() {
        Ok(id) => id,
        Err(e) => {
            return protocol::error_response(kind::IO, &format!("allocating id: {e}"), true, None)
        }
    };
    let manifest = Manifest {
        id: id.clone(),
        tenant,
        dirty: dirty.to_string(),
        clean,
        label: label.to_string(),
        algo,
        budget,
        seed,
        detect,
        deadline_ms,
        status: "queued".into(),
        stop_reason: None,
        error: None,
    };
    // Invariant 1: persist before responding — an accepted session
    // survives any crash from here on.
    if let Err(e) = inner.store.write_manifest(&manifest) {
        return protocol::error_response(
            kind::IO,
            &format!("persisting manifest: {e}"),
            true,
            None,
        );
    }
    lock(&inner.sessions).insert(
        id.clone(),
        SessionEntry { manifest, control: SessionControl::new(), deadline: None },
    );
    queue.push_back(id.clone());
    comet_obs::counter_add("serve.sessions_accepted", 1);
    comet_obs::gauge_set("serve.queue_depth", queue.len() as f64);
    drop(queue);
    inner.queue_cv.notify_all();

    let mut ok = protocol::ok_response();
    ok.field_str("session", &id);
    ok.finish()
}

fn cmd_status(inner: &Inner, request: &JsonValue) -> String {
    let Some(id) = request.get("session").and_then(JsonValue::as_str) else {
        return protocol::error_response(kind::INVALID, "status needs a session id", false, None);
    };
    let sessions = lock(&inner.sessions);
    let (manifest, progress) = match sessions.get(id) {
        Some(entry) => (entry.manifest.clone(), Some(entry.control.progress())),
        // Sessions finished before a restart live only on disk.
        None => match inner.store.load_manifest(id) {
            Ok(m) => (m, None),
            Err(_) => {
                return protocol::error_response(
                    kind::NOT_FOUND,
                    &format!("no session {id:?}"),
                    false,
                    None,
                );
            }
        },
    };
    drop(sessions);
    let mut ok = protocol::ok_response();
    ok.field_str("session", id).field_str("status", &manifest.status);
    if let Some(reason) = &manifest.stop_reason {
        ok.field_str("stop_reason", reason);
    }
    if let Some(error) = &manifest.error {
        ok.field_str("error", error);
    }
    if let Some(p) = progress {
        ok.field_u64("iterations", p.iterations as u64)
            .field_f64("initial_f1", p.initial_f1)
            .field_f64("best_f1", p.best_f1)
            .field_f64("budget_spent", p.budget_spent);
    }
    ok.finish()
}

fn cmd_results(inner: &Inner, request: &JsonValue) -> String {
    let Some(id) = request.get("session").and_then(JsonValue::as_str) else {
        return protocol::error_response(kind::INVALID, "results needs a session id", false, None);
    };
    let from = request.get("from").and_then(JsonValue::as_f64).unwrap_or(0.0) as usize;
    let sessions = lock(&inner.sessions);
    let Some(entry) = sessions.get(id) else {
        drop(sessions);
        // After a restart, a finished session's trace is only on disk.
        return match inner.store.load_manifest(id) {
            Ok(manifest) => {
                let trace_csv =
                    std::fs::read_to_string(inner.store.session_dir(id).join("trace.csv"))
                        .unwrap_or_default();
                let mut ok = protocol::ok_response();
                ok.field_str("session", id)
                    .field_str("status", &manifest.status)
                    .field_str("trace_csv", &trace_csv);
                ok.finish()
            }
            Err(_) => protocol::error_response(
                kind::NOT_FOUND,
                &format!("no session {id:?}"),
                false,
                None,
            ),
        };
    };
    let manifest = entry.manifest.clone();
    let progress = entry.control.progress();
    drop(sessions);

    // The incremental result stream: steps[from..] as JSON records. A
    // client polls with `from = records seen so far` and receives only
    // what landed since — each recommendation streams out the iteration
    // it is made.
    let steps: Vec<String> = progress
        .steps
        .iter()
        .skip(from)
        .map(|s| {
            let mut obj = JsonObject::new();
            obj.field_u64("iteration", s.iteration as u64)
                .field_u64("col", s.col as u64)
                .field_str("err", s.err.abbrev())
                .field_str("action", s.action.label())
                .field_f64("cost", s.cost)
                .field_f64("budget_spent", s.budget_spent)
                .field_f64("actual_f1", s.actual_f1);
            if let Some(p) = s.predicted_f1 {
                obj.field_f64("predicted_f1", p);
            }
            obj.finish()
        })
        .collect();
    let mut ok = protocol::ok_response();
    ok.field_str("session", id)
        .field_str("status", &manifest.status)
        .field_u64("total", progress.steps.len() as u64)
        .field_f64("initial_f1", progress.initial_f1)
        .field_f64("best_f1", progress.best_f1)
        .field_f64("budget_spent", progress.budget_spent)
        .field_raw("steps", &format!("[{}]", steps.join(",")));
    if let Some(reason) = &manifest.stop_reason {
        ok.field_str("stop_reason", reason);
    }
    ok.finish()
}

fn cmd_cancel(inner: &Inner, request: &JsonValue) -> String {
    let Some(id) = request.get("session").and_then(JsonValue::as_str) else {
        return protocol::error_response(kind::INVALID, "cancel needs a session id", false, None);
    };
    let sessions = lock(&inner.sessions);
    let Some(entry) = sessions.get(id) else {
        return protocol::error_response(
            kind::NOT_FOUND,
            &format!("no session {id:?}"),
            false,
            None,
        );
    };
    entry.control.cancel();
    let status = entry.manifest.status.clone();
    drop(sessions);
    comet_obs::counter_add("serve.cancel_requests", 1);
    let mut ok = protocol::ok_response();
    ok.field_str("session", id).field_raw("cancelled", "true").field_str("was", &status);
    ok.finish()
}

fn cmd_stats(inner: &Inner) -> String {
    let queue_depth = lock(&inner.queue).len();
    let mut ok = protocol::ok_response();
    ok.field_u64("queue_depth", queue_depth as u64)
        .field_u64("running", inner.running.load(Ordering::SeqCst) as u64)
        .field_raw("draining", if inner.draining.load(Ordering::SeqCst) { "true" } else { "false" })
        .field_raw("metrics", &comet_obs::snapshot().to_json());
    ok.finish()
}

/// Mutate one session's manifest in memory and on disk.
fn update_manifest(inner: &Inner, id: &str, apply: impl FnOnce(&mut Manifest)) {
    let mut sessions = lock(&inner.sessions);
    if let Some(entry) = sessions.get_mut(id) {
        apply(&mut entry.manifest);
        let manifest = entry.manifest.clone();
        drop(sessions);
        if let Err(e) = inner.store.write_manifest(&manifest) {
            comet_obs::counter_add("serve.manifest_write_errors", 1);
            comet_obs::journal::emit(&format!(
                "{{\"kind\":\"serve_error\",\"what\":\"manifest write {id}: {e}\"}}"
            ));
        }
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let id = {
            let mut queue = lock(&inner.queue);
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = queue.pop_front() {
                    // `running` rises under the queue lock so the drain
                    // waiter never observes empty-queue + zero-running
                    // while work is in hand-off.
                    inner.running.fetch_add(1, Ordering::SeqCst);
                    comet_obs::gauge_set("serve.queue_depth", queue.len() as f64);
                    break id;
                }
                queue = inner.queue_cv.wait(queue).unwrap_or_else(PoisonError::into_inner);
            }
        };
        run_one(inner, &id);
        inner.running.fetch_sub(1, Ordering::SeqCst);
        inner.queue_cv.notify_all();
    }
}

fn run_one(inner: &Arc<Inner>, id: &str) {
    let (manifest, control) = {
        let sessions = lock(&inner.sessions);
        match sessions.get(id) {
            Some(e) => (e.manifest.clone(), e.control.clone()),
            None => return,
        }
    };
    // A session cancelled while still queued never runs: record the stop
    // without paying for an environment build.
    if control.stop_requested() == Some(StopReason::Cancelled) {
        comet_obs::counter_add("serve.sessions_stopped", 1);
        update_manifest(inner, id, |m| {
            m.status = "stopped".into();
            m.stop_reason = Some(StopReason::Cancelled.name().into());
        });
        return;
    }

    update_manifest(inner, id, |m| m.status = "running".into());
    if let Some(ms) = manifest.deadline_ms {
        let mut sessions = lock(&inner.sessions);
        if let Some(entry) = sessions.get_mut(id) {
            entry.deadline = Some(Instant::now() + Duration::from_millis(ms));
        }
    }
    comet_obs::gauge_set("serve.running", inner.running.load(Ordering::SeqCst) as f64);

    // The busy worker occupies one slot of the global comet-par budget, so
    // daemon concurrency and per-session fan-out share a single cap.
    let _slot = comet_par::occupy_slots(1);
    // Injected long-running-session simulator: hold the worker, but let a
    // cancel (or expired deadline) release it early, like a real session
    // reaching an iteration boundary would.
    if let Some(stall_ms) = inner.config.faults.next_session_stall() {
        let until = Instant::now() + Duration::from_millis(stall_ms);
        while Instant::now() < until && control.stop_requested().is_none() {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    let started = Instant::now();
    let result = execute_session(inner, &manifest, control);
    comet_obs::observe_duration("serve.session_runtime", started.elapsed());

    match result {
        Ok(stop) => match stop {
            None => {
                comet_obs::counter_add("serve.sessions_completed", 1);
                update_manifest(inner, id, |m| m.status = "done".into());
            }
            Some(reason) => {
                comet_obs::counter_add("serve.sessions_stopped", 1);
                update_manifest(inner, id, |m| {
                    m.status = "stopped".into();
                    m.stop_reason = Some(reason.name().into());
                });
            }
        },
        Err(error) => {
            comet_obs::counter_add("serve.sessions_failed", 1);
            update_manifest(inner, id, |m| {
                m.status = "failed".into();
                m.error = Some(error);
            });
        }
    }
}

/// Build the environment from the manifest and run the session to its
/// end (natural, stopped, or failed). Returns the stop reason on graceful
/// early stops.
fn execute_session(
    inner: &Inner,
    manifest: &Manifest,
    control: SessionControl,
) -> Result<Option<StopReason>, String> {
    let label = Some(manifest.label.as_str());
    let dirty = read_csv(inner.store.dataset_path(&manifest.dirty), label)
        .map_err(|e| format!("dirty dataset {}: {e}", manifest.dirty))?;
    let clean = match &manifest.clean {
        Some(fp) => Some(
            read_csv(inner.store.dataset_path(fp), label)
                .map_err(|e| format!("clean dataset {fp}: {e}"))?,
        ),
        None => None,
    };
    let algorithm = Algorithm::parse(&manifest.algo)
        .ok_or_else(|| format!("unknown algorithm {:?}", manifest.algo))?;
    let detect = manifest.detect.then(comet_detect::DetectorConfig::default);
    let errors =
        if detect.is_some() { ErrorType::EXTENDED.to_vec() } else { ErrorType::ALL.to_vec() };

    // All session randomness flows from the manifest seed: with the
    // content-addressed datasets this makes the trace a pure function of
    // the manifest — the property the crash-recovery smoke compares.
    let mut rng = StdRng::seed_from_u64(manifest.seed);
    let mut env = build_paired_env(
        dirty,
        clean,
        algorithm,
        0.01,
        RandomSearch::default(),
        7,
        inner.config.segment_rows,
        &mut rng,
    )
    .map_err(|e| e.to_string())?;
    if let Some(budget) = inner.config.memory_budget {
        env.set_feature_cache_budget((budget / 4).max(1) as usize);
    }

    let config = CometConfig {
        budget: manifest.budget,
        detect,
        kernels: inner.config.kernels,
        segment_rows: inner.config.segment_rows,
        ..CometConfig::default()
    };
    let dir = inner.store.session_dir(&manifest.id);
    let checkpoint = dir.join("checkpoint.jsonl");
    let resume = checkpoint.exists();
    let mut session = CleaningSession::new(config, errors)
        .with_checkpoint(CheckpointSpec { path: checkpoint, resume })
        .with_control(control);
    if let Some(faults) = inner.config.faults.session_faults() {
        session = session.with_faults(faults);
    }
    let outcome = session.run(&mut env, &mut rng).map_err(|e| e.to_string())?;

    // Persist the result next to the checkpoint: the trace as CSV (the
    // artifact the CI smoke compares byte-for-byte) and a summary.
    let trace_csv = outcome.trace.to_csv(Some(env.train()));
    std::fs::write(dir.join("trace.csv"), trace_csv).map_err(|e| format!("trace.csv: {e}"))?;
    let mut summary = JsonObject::new();
    summary
        .field_str("session", &manifest.id)
        .field_f64("initial_f1", outcome.trace.initial_f1)
        .field_f64("final_f1", outcome.trace.final_f1)
        .field_u64("steps", outcome.trace.records.len() as u64)
        .field_u64("failures", outcome.trace.failures.len() as u64);
    if let Some(reason) = outcome.stop {
        summary.field_str("stop", reason.name());
    }
    std::fs::write(dir.join("outcome.json"), summary.finish())
        .map_err(|e| format!("outcome.json: {e}"))?;
    Ok(outcome.stop)
}

/// Deadline expiry + periodic serve report, on one slow tick.
fn supervisor_loop(inner: &Arc<Inner>) {
    let mut last_report = Instant::now();
    while !inner.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(25));
        let now = Instant::now();
        {
            let sessions = lock(&inner.sessions);
            for entry in sessions.values() {
                if entry.manifest.status == "running" {
                    if let Some(deadline) = entry.deadline {
                        if now >= deadline {
                            // The session sees this at its next iteration
                            // boundary and stops gracefully.
                            entry.control.expire_deadline();
                            comet_obs::counter_add("serve.deadlines_expired", 1);
                        }
                    }
                }
            }
        }
        if comet_obs::journal::has_sink()
            && now.duration_since(last_report) >= inner.config.report_every
        {
            last_report = now;
            emit_serve_report(inner, "periodic");
        }
    }
}

/// One journal line summarizing the daemon: queue depth, running count,
/// and the full metrics snapshot.
fn emit_serve_report(inner: &Inner, trigger: &str) {
    let mut obj = JsonObject::new();
    obj.field_str("kind", "serve_report")
        .field_str("trigger", trigger)
        .field_u64("queue_depth", lock(&inner.queue).len() as u64)
        .field_u64("running", inner.running.load(Ordering::SeqCst) as u64)
        .field_raw("metrics", &comet_obs::snapshot().to_json());
    comet_obs::journal::emit(&obj.finish());
}
