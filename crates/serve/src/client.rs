//! A small blocking client for the serve protocol.
//!
//! One [`Client`] wraps one TCP connection; requests go out as frames and
//! the matching response frame comes back parsed into the typed
//! [`Response`] halves. [`Client::request_with_retry`] honours the
//! server's backoff contract: retryable rejections are retried after the
//! server-suggested `backoff_ms` (or a default when the server gave
//! none), non-retryable errors surface immediately.

use crate::protocol::{self, parse_response, Response, WireError};
use comet_obs::json::JsonValue;
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// A connected client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

/// Anything a request can fail with: transport trouble or a typed
/// server-side rejection.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (daemon down, torn frame, timeout).
    Io(io::Error),
    /// The response frame was not a valid protocol response.
    Protocol(String),
    /// The server answered with a typed error.
    Server(WireError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Server(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl Client {
    /// Connect to a daemon on 127.0.0.1.
    pub fn connect(port: u16) -> io::Result<Client> {
        let stream = TcpStream::connect(("127.0.0.1", port))?;
        stream.set_read_timeout(Some(Duration::from_secs(600)))?;
        Ok(Client { stream })
    }

    /// Send one request frame and read the matching response frame.
    pub fn request(&mut self, request: &str) -> Result<Response, ClientError> {
        protocol::write_frame(&mut self.stream, request)?;
        let frame = protocol::read_frame(&mut self.stream)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before the response",
            ))
        })?;
        parse_response(&frame).map_err(ClientError::Protocol)
    }

    /// Like [`Client::request`], but unwrap the ok half: a typed server
    /// error becomes `Err(ClientError::Server)`.
    pub fn request_ok(&mut self, request: &str) -> Result<JsonValue, ClientError> {
        match self.request(request)? {
            Response::Ok(value) => Ok(value),
            Response::Err(e) => Err(ClientError::Server(e)),
        }
    }

    /// Send a request, retrying retryable rejections up to `max_retries`
    /// times, sleeping the server-suggested backoff (default 100 ms when
    /// the server gave no hint) between attempts. Non-retryable errors
    /// and transport failures surface immediately.
    pub fn request_with_retry(
        &mut self,
        request: &str,
        max_retries: usize,
    ) -> Result<JsonValue, ClientError> {
        let mut attempt = 0;
        loop {
            match self.request(request)? {
                Response::Ok(value) => return Ok(value),
                Response::Err(e) if e.retryable && attempt < max_retries => {
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(e.backoff_ms.unwrap_or(100)));
                }
                Response::Err(e) => return Err(ClientError::Server(e)),
            }
        }
    }
}
