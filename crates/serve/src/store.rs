//! The on-disk session store — the daemon's single source of truth.
//!
//! ```text
//! <root>/
//!   next_id                     monotonic session-id counter
//!   datasets/<fp>.csv           content-addressed uploads (fp = FNV-1a 64)
//!   sessions/<id>/
//!     manifest.json             accepted request + live status (atomic writes)
//!     checkpoint.jsonl          comet-core per-iteration checkpoint
//!     trace.csv                 final step-by-step trace
//!     outcome.json              final summary (F1s, budget, stop reason)
//! ```
//!
//! Two invariants carry the crash-recovery story:
//!
//! 1. **Manifest before response.** A session's manifest is persisted
//!    (write-temp + rename, so it is atomically whole or absent) *before*
//!    the accept response leaves the daemon. A client that saw "accepted"
//!    will find its session after any crash.
//! 2. **Status lives in the manifest.** Restart recovery is a pure scan:
//!    every manifest whose status is still `queued` or `running` is work
//!    to re-enqueue, in session-id order; `running` sessions with a
//!    checkpoint file resume from it bit-identically.

use comet_obs::json::{self, JsonObject, JsonValue};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Content fingerprint for uploads: FNV-1a 64 over the raw bytes,
/// rendered as 16 hex digits. Not cryptographic — it keys a local cache
/// directory, it does not authenticate anything.
pub fn fingerprint(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    format!("{h:016x}")
}

/// A session's accepted request plus its live status — the unit of
/// crash recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Monotonic session id (`s00000001`, ...). Ids order submissions, so
    /// a restart re-enqueues in the original acceptance order.
    pub id: String,
    /// Submitting tenant (admission bookkeeping).
    pub tenant: String,
    /// Fingerprint of the dirty dataset.
    pub dirty: String,
    /// Fingerprint of the clean reference; `None` for detection-seeded
    /// sessions cleaning against their own ground truth.
    pub clean: Option<String>,
    /// Label column name.
    pub label: String,
    /// Target algorithm (`Algorithm::parse` name).
    pub algo: String,
    /// Cleaning budget.
    pub budget: f64,
    /// Session seed — with the dataset bytes, fully determines the trace.
    pub seed: u64,
    /// Detection-seeded (`--detect`) instead of oracle provenance.
    pub detect: bool,
    /// Wall-clock deadline in milliseconds, measured from run start.
    pub deadline_ms: Option<u64>,
    /// `queued` | `running` | `done` | `stopped` | `failed`.
    pub status: String,
    /// Stop reason name for `stopped` sessions.
    pub stop_reason: Option<String>,
    /// Error message for `failed` sessions.
    pub error: Option<String>,
}

impl Manifest {
    /// Encode as one JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_str("id", &self.id)
            .field_str("tenant", &self.tenant)
            .field_str("dirty", &self.dirty);
        if let Some(clean) = &self.clean {
            obj.field_str("clean", clean);
        }
        obj.field_str("label", &self.label)
            .field_str("algo", &self.algo)
            .field_f64("budget", self.budget)
            .field_str("seed", &format!("{:016x}", self.seed))
            .field_raw("detect", if self.detect { "true" } else { "false" });
        if let Some(ms) = self.deadline_ms {
            obj.field_u64("deadline_ms", ms);
        }
        obj.field_str("status", &self.status);
        if let Some(reason) = &self.stop_reason {
            obj.field_str("stop_reason", reason);
        }
        if let Some(error) = &self.error {
            obj.field_str("error", error);
        }
        obj.finish()
    }

    /// Parse a manifest document.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let v = json::parse(text)?;
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("manifest missing string field {key:?}"))
        };
        let seed_hex = str_field("seed")?;
        let seed = u64::from_str_radix(&seed_hex, 16)
            .map_err(|e| format!("manifest seed {seed_hex:?}: {e}"))?;
        Ok(Manifest {
            id: str_field("id")?,
            tenant: str_field("tenant")?,
            dirty: str_field("dirty")?,
            clean: v.get("clean").and_then(JsonValue::as_str).map(str::to_string),
            label: str_field("label")?,
            algo: str_field("algo")?,
            budget: v
                .get("budget")
                .and_then(JsonValue::as_f64)
                .ok_or("manifest missing numeric field \"budget\"")?,
            seed,
            detect: matches!(v.get("detect"), Some(JsonValue::Bool(true))),
            deadline_ms: v.get("deadline_ms").and_then(JsonValue::as_f64).map(|x| x as u64),
            status: str_field("status")?,
            stop_reason: v.get("stop_reason").and_then(JsonValue::as_str).map(str::to_string),
            error: v.get("error").and_then(JsonValue::as_str).map(str::to_string),
        })
    }
}

/// Handle on one store root. Id allocation is serialized through an
/// internal lock; everything else is plain file I/O.
#[derive(Debug)]
pub struct SessionStore {
    root: PathBuf,
    id_lock: Mutex<()>,
}

impl SessionStore {
    /// Open (creating directories as needed) a store at `root`.
    pub fn open(root: &Path) -> io::Result<SessionStore> {
        fs::create_dir_all(root.join("datasets"))?;
        fs::create_dir_all(root.join("sessions"))?;
        Ok(SessionStore { root: root.to_path_buf(), id_lock: Mutex::new(()) })
    }

    /// The store root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Store an uploaded dataset under its content fingerprint; returns
    /// the fingerprint. Re-uploading identical bytes is idempotent.
    pub fn put_dataset(&self, csv: &str) -> io::Result<String> {
        let fp = fingerprint(csv.as_bytes());
        let path = self.dataset_path(&fp);
        if !path.exists() {
            write_atomic(&path, csv.as_bytes())?;
        }
        Ok(fp)
    }

    /// Path of a stored dataset (which may not exist).
    pub fn dataset_path(&self, fp: &str) -> PathBuf {
        self.root.join("datasets").join(format!("{fp}.csv"))
    }

    /// A session's directory (which may not exist).
    pub fn session_dir(&self, id: &str) -> PathBuf {
        self.root.join("sessions").join(id)
    }

    /// Allocate the next monotonic session id and persist the counter
    /// *before* returning, so a crash between allocation and manifest
    /// write burns the id instead of reusing it.
    pub fn allocate_id(&self) -> io::Result<String> {
        let _guard = self.id_lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let counter_path = self.root.join("next_id");
        let next: u64 = match fs::read_to_string(&counter_path) {
            Ok(text) => text
                .trim()
                .parse()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("next_id: {e}")))?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => 1,
            Err(e) => return Err(e),
        };
        write_atomic(&counter_path, (next + 1).to_string().as_bytes())?;
        Ok(format!("s{next:08}"))
    }

    /// Persist a manifest atomically (temp + rename): readers see the old
    /// complete document or the new one, never a torn write.
    pub fn write_manifest(&self, manifest: &Manifest) -> io::Result<()> {
        let dir = self.session_dir(&manifest.id);
        fs::create_dir_all(&dir)?;
        write_atomic(&dir.join("manifest.json"), manifest.to_json().as_bytes())
    }

    /// Load one session's manifest.
    pub fn load_manifest(&self, id: &str) -> io::Result<Manifest> {
        let text = fs::read_to_string(self.session_dir(id).join("manifest.json"))?;
        Manifest::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Load every session manifest, sorted by id — the restart scan.
    /// Directories without a parseable manifest are skipped (a crash
    /// between `allocate_id` and `write_manifest` leaves none).
    pub fn load_manifests(&self) -> io::Result<Vec<Manifest>> {
        let sessions = self.root.join("sessions");
        let mut out = Vec::new();
        for entry in fs::read_dir(&sessions)? {
            let entry = entry?;
            let Some(id) = entry.file_name().to_str().map(str::to_string) else {
                continue;
            };
            if let Ok(manifest) = self.load_manifest(&id) {
                out.push(manifest);
            }
        }
        out.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(out)
    }
}

/// Write a file atomically: temp file in the same directory, then rename.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, format!("{} has no parent", path.display()))
    })?;
    let tmp = dir.join(format!(
        ".tmp.{}.{}",
        std::process::id(),
        path.file_name().and_then(|n| n.to_str()).unwrap_or("file")
    ));
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(name: &str) -> SessionStore {
        let dir = std::env::temp_dir().join("comet_serve_store_tests").join(name);
        let _ = fs::remove_dir_all(&dir);
        SessionStore::open(&dir).unwrap()
    }

    fn manifest(id: &str, status: &str) -> Manifest {
        Manifest {
            id: id.into(),
            tenant: "t1".into(),
            dirty: "00000000000000ab".into(),
            clean: Some("00000000000000cd".into()),
            label: "y".into(),
            algo: "knn".into(),
            budget: 6.0,
            seed: 0xdead_beef,
            detect: false,
            deadline_ms: Some(30_000),
            status: status.into(),
            stop_reason: None,
            error: None,
        }
    }

    #[test]
    fn manifests_round_trip_through_json() {
        let m = manifest("s00000001", "queued");
        assert_eq!(Manifest::parse(&m.to_json()).unwrap(), m);

        let mut stopped = manifest("s00000002", "stopped");
        stopped.clean = None;
        stopped.detect = true;
        stopped.deadline_ms = None;
        stopped.stop_reason = Some("deadline-exceeded".into());
        assert_eq!(Manifest::parse(&stopped.to_json()).unwrap(), stopped);

        assert!(Manifest::parse("{}").is_err());
        assert!(Manifest::parse("{\"id\":\"x\"").is_err());
    }

    #[test]
    fn datasets_are_content_addressed_and_idempotent() {
        let store = tmp_store("datasets");
        let fp1 = store.put_dataset("a,y\n1,0\n").unwrap();
        let fp2 = store.put_dataset("a,y\n1,0\n").unwrap();
        let fp3 = store.put_dataset("a,y\n2,1\n").unwrap();
        assert_eq!(fp1, fp2, "identical bytes, identical fingerprint");
        assert_ne!(fp1, fp3);
        assert_eq!(fs::read_to_string(store.dataset_path(&fp1)).unwrap(), "a,y\n1,0\n");
    }

    #[test]
    fn ids_are_monotonic_and_survive_reopen() {
        let store = tmp_store("ids");
        assert_eq!(store.allocate_id().unwrap(), "s00000001");
        assert_eq!(store.allocate_id().unwrap(), "s00000002");
        let reopened = SessionStore::open(store.root()).unwrap();
        assert_eq!(reopened.allocate_id().unwrap(), "s00000003", "counter persists");
    }

    #[test]
    fn restart_scan_returns_manifests_in_id_order() {
        let store = tmp_store("scan");
        // Written out of order on purpose.
        store.write_manifest(&manifest("s00000003", "queued")).unwrap();
        store.write_manifest(&manifest("s00000001", "done")).unwrap();
        store.write_manifest(&manifest("s00000002", "running")).unwrap();
        // A torn session dir (no manifest) is skipped, not fatal.
        fs::create_dir_all(store.session_dir("s00000004")).unwrap();
        let all = store.load_manifests().unwrap();
        let ids: Vec<&str> = all.iter().map(|m| m.id.as_str()).collect();
        assert_eq!(ids, ["s00000001", "s00000002", "s00000003"]);
    }

    #[test]
    fn manifest_updates_are_atomic_replacements() {
        let store = tmp_store("atomic");
        let mut m = manifest("s00000001", "queued");
        store.write_manifest(&m).unwrap();
        m.status = "done".into();
        store.write_manifest(&m).unwrap();
        assert_eq!(store.load_manifest("s00000001").unwrap().status, "done");
        // No temp droppings left behind.
        let leftovers: Vec<_> = fs::read_dir(store.session_dir("s00000001"))
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
    }
}
