//! # comet-serve — the fault-tolerant multi-tenant session daemon
//!
//! A long-running service hosting COMET cleaning sessions (DESIGN.md
//! §14). Clients talk a length-prefixed JSON protocol ([`protocol`]) over
//! a local TCP socket: upload datasets, start sessions (oracle or
//! detection-seeded), poll status and best-so-far results while a session
//! runs, stream step records, cancel, and drain the daemon.
//!
//! Robustness model, in one paragraph: the daemon never trusts a request
//! to finish. Admission ([`admission`]) is a pure function over queue and
//! tenant counts — past the high-water mark clients get *typed, retryable*
//! rejections with deterministic backoff hints instead of unbounded
//! queues. Accepted sessions are persisted (manifest first, response
//! second — [`store`]) so a `kill -9` loses no accepted work: on restart
//! the daemon scans its store, validates checkpoint fingerprints, and
//! resumes interrupted sessions to bit-identical traces via the
//! comet-core checkpoint layer. Deadlines and cancels reach the running
//! session as cooperative flags (`SessionControl`) checked at iteration
//! boundaries; a stopped session checkpoints, releases its worker slot,
//! and reports its partial best-so-far as a normal result — graceful
//! degradation, not an error. I/O faults are injectable at the service
//! layer ([`faults`]) so the recovery paths are exercised by tests, not
//! just by outages.
//!
//! Threading: a fixed worker pool multiplexed over the `comet-par` global
//! budget (each busy worker occupies one slot, so daemon fan-out and
//! session fan-out share one cap), one accept thread, one supervisor
//! thread (deadline expiry + periodic serve report). The kernel tier is
//! process-global (`comet_ml::kernels::set_tier`), so one daemon pins one
//! tier for every session it hosts.
//!
//! This crate is in comet-lint's `TIMING_EXEMPT` set: deadlines, backoff,
//! and endpoint latency are wall-clock concepts *of the service layer*.
//! The hosted sessions never read clocks — determinism holds per session.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod admission;
pub mod client;
pub mod daemon;
pub mod faults;
pub mod protocol;
pub mod store;

pub use admission::{AdmissionConfig, Rejection};
pub use client::Client;
pub use daemon::{Daemon, ServeConfig};
pub use faults::{ServeFault, ServeFaultPlan};
pub use store::{Manifest, SessionStore};
