//! Service-layer fault injection: misbehaving clients and failing I/O,
//! on demand.
//!
//! The session-level [`comet_core::FaultPlan`] injects candidate and
//! checkpoint-write faults *inside* a run. This module covers the faults
//! a daemon meets at its edges: a client that trickles bytes, a client
//! that disconnects mid-upload, a checkpoint device that fails. Specs
//! parse from `--inject-fault` CLI strings so smoke tests can stage an
//! outage without bespoke binaries:
//!
//! ```text
//! slow-client:2:500        # 2nd request handled after a 500 ms stall
//! upload-disconnect:1      # 1st upload: drop the connection, no response
//! checkpoint-write:3:2     # iteration 3's checkpoint write fails twice
//! session-stall:1:5000     # 1st session executed holds its worker 5 s
//! ```
//!
//! Counting is per-daemon and deterministic for a serial client (the CI
//! smokes drive exactly one); concurrent clients race for the nth slot,
//! which is fine for chaos drills.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One service-layer fault to stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeFault {
    /// Stall handling of the `nth` request (1-based, any command) by
    /// `delay_ms` — the slow-client / slow-network simulator.
    SlowClient {
        /// Which request (1-based) stalls.
        nth: u64,
        /// Stall length in milliseconds.
        delay_ms: u64,
    },
    /// Drop the connection on the `nth` upload (1-based) after reading the
    /// request but before any response — the mid-upload disconnect.
    UploadDisconnect {
        /// Which upload (1-based) is dropped.
        nth: u64,
    },
    /// Fail the checkpoint write at `iteration` for `attempts` attempts in
    /// every hosted session (forwarded into the session-level
    /// [`comet_core::FaultPlan`]).
    CheckpointWrite {
        /// Iteration whose checkpoint write fails.
        iteration: usize,
        /// How many write attempts fail before recovery.
        attempts: u32,
    },
    /// Hold the worker for `stall_ms` before the `nth` session execution
    /// (1-based) — the long-running-session simulator admission tests use
    /// to keep a worker deterministically busy. The stall is cancel-aware:
    /// cancelling the stalled session releases the worker early.
    SessionStall {
        /// Which session execution (1-based) stalls.
        nth: u64,
        /// Stall length in milliseconds.
        stall_ms: u64,
    },
}

impl ServeFault {
    /// Parse one `--inject-fault` spec string (see module docs).
    pub fn parse(spec: &str) -> Result<ServeFault, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        let num = |idx: usize, what: &str| -> Result<u64, String> {
            parts
                .get(idx)
                .ok_or_else(|| format!("{spec:?}: missing {what}"))?
                .parse::<u64>()
                .map_err(|e| format!("{spec:?}: bad {what}: {e}"))
        };
        match parts.first().copied() {
            Some("slow-client") => Ok(ServeFault::SlowClient {
                nth: num(1, "request index")?,
                delay_ms: num(2, "delay")?,
            }),
            Some("upload-disconnect") => {
                Ok(ServeFault::UploadDisconnect { nth: num(1, "upload index")? })
            }
            Some("checkpoint-write") => Ok(ServeFault::CheckpointWrite {
                iteration: num(1, "iteration")? as usize,
                attempts: num(2, "attempts")? as u32,
            }),
            Some("session-stall") => Ok(ServeFault::SessionStall {
                nth: num(1, "session index")?,
                stall_ms: num(2, "stall")?,
            }),
            _ => Err(format!(
                "{spec:?}: unknown fault (use slow-client:N:MS, upload-disconnect:N, \
                 checkpoint-write:ITER:ATTEMPTS, session-stall:N:MS)"
            )),
        }
    }
}

/// The staged faults plus the request/upload counters that trigger them.
#[derive(Debug, Default)]
pub struct ServeFaultPlan {
    specs: Vec<ServeFault>,
    requests_seen: AtomicU64,
    uploads_seen: AtomicU64,
    executions_seen: AtomicU64,
}

impl ServeFaultPlan {
    /// Build a plan from parsed specs.
    pub fn new(specs: Vec<ServeFault>) -> Arc<Self> {
        Arc::new(ServeFaultPlan { specs, ..ServeFaultPlan::default() })
    }

    /// The staged faults.
    pub fn specs(&self) -> &[ServeFault] {
        &self.specs
    }

    /// Count one incoming request; returns the stall to apply, if this is
    /// a staged slow-client request.
    pub fn next_request_delay(&self) -> Option<u64> {
        let n = self.requests_seen.fetch_add(1, Ordering::SeqCst) + 1;
        self.specs.iter().find_map(|s| match s {
            ServeFault::SlowClient { nth, delay_ms } if *nth == n => {
                comet_obs::counter_add("serve.faults_injected", 1);
                Some(*delay_ms)
            }
            _ => None,
        })
    }

    /// Count one session execution; returns the stall to apply, if this
    /// one is staged to hold its worker.
    pub fn next_session_stall(&self) -> Option<u64> {
        let n = self.executions_seen.fetch_add(1, Ordering::SeqCst) + 1;
        self.specs.iter().find_map(|s| match s {
            ServeFault::SessionStall { nth, stall_ms } if *nth == n => {
                comet_obs::counter_add("serve.faults_injected", 1);
                Some(*stall_ms)
            }
            _ => None,
        })
    }

    /// Count one upload; true if this one is staged to disconnect.
    pub fn next_upload_disconnects(&self) -> bool {
        let n = self.uploads_seen.fetch_add(1, Ordering::SeqCst) + 1;
        let hit = self
            .specs
            .iter()
            .any(|s| matches!(s, ServeFault::UploadDisconnect { nth } if *nth == n));
        if hit {
            comet_obs::counter_add("serve.faults_injected", 1);
        }
        hit
    }

    /// The session-level fault plan every hosted session runs under (the
    /// forwarded `checkpoint-write` specs), if any are staged.
    pub fn session_faults(&self) -> Option<comet_core::FaultPlan> {
        let specs: Vec<comet_core::FaultSpec> = self
            .specs
            .iter()
            .filter_map(|s| match s {
                ServeFault::CheckpointWrite { iteration, attempts } => {
                    Some(comet_core::FaultSpec {
                        iteration: *iteration,
                        col: 0, // ignored by checkpoint faults
                        err: comet_jenga::ErrorType::MissingValues,
                        kind: comet_core::FaultKind::CheckpointWriteError,
                        attempts: *attempts,
                    })
                }
                _ => None,
            })
            .collect();
        if specs.is_empty() {
            None
        } else {
            Some(comet_core::FaultPlan::new(specs))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_and_reject_garbage() {
        assert_eq!(
            ServeFault::parse("slow-client:2:500").unwrap(),
            ServeFault::SlowClient { nth: 2, delay_ms: 500 }
        );
        assert_eq!(
            ServeFault::parse("upload-disconnect:1").unwrap(),
            ServeFault::UploadDisconnect { nth: 1 }
        );
        assert_eq!(
            ServeFault::parse("checkpoint-write:3:2").unwrap(),
            ServeFault::CheckpointWrite { iteration: 3, attempts: 2 }
        );
        assert_eq!(
            ServeFault::parse("session-stall:1:5000").unwrap(),
            ServeFault::SessionStall { nth: 1, stall_ms: 5000 }
        );
        for bad in ["", "slow-client", "slow-client:x:1", "upload-disconnect", "meteor:1"] {
            assert!(ServeFault::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn counters_trigger_the_nth_occurrence_only() {
        let plan = ServeFaultPlan::new(vec![
            ServeFault::SlowClient { nth: 2, delay_ms: 250 },
            ServeFault::UploadDisconnect { nth: 2 },
        ]);
        assert_eq!(plan.next_request_delay(), None);
        assert_eq!(plan.next_request_delay(), Some(250));
        assert_eq!(plan.next_request_delay(), None);
        assert!(!plan.next_upload_disconnects());
        assert!(plan.next_upload_disconnects());
        assert!(!plan.next_upload_disconnects());
    }

    #[test]
    fn checkpoint_specs_forward_into_a_session_plan() {
        let plan = ServeFaultPlan::new(vec![
            ServeFault::SlowClient { nth: 1, delay_ms: 1 },
            ServeFault::CheckpointWrite { iteration: 0, attempts: 1 },
        ]);
        let session = plan.session_faults().expect("checkpoint spec forwards");
        assert_eq!(session.specs().len(), 1);
        assert!(session.arm_checkpoint(0), "forwarded spec must arm");

        let none = ServeFaultPlan::new(vec![ServeFault::UploadDisconnect { nth: 1 }]);
        assert!(none.session_faults().is_none());
    }
}
