//! Admission control: a pure decision function over queue and tenant
//! counts.
//!
//! Keeping the decision a function of plain numbers — no clocks, no
//! randomness, no internal state — makes overload behaviour exactly
//! reproducible: the same submission sequence against the same limits
//! yields the same accept/reject pattern every run, which is what the CI
//! admission smoke pins down. Backoff hints are deterministic too,
//! growing linearly with how far past the high-water mark the queue is,
//! so a herd of rejected clients spreads out instead of thundering back
//! in lockstep.

/// Static admission limits, fixed at daemon start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// High-water mark for the pending (queued, not yet running) sessions.
    pub max_queued: usize,
    /// Per-tenant cap on in-flight (queued + running) sessions.
    pub per_tenant_cap: usize,
    /// Base unit for backoff hints, in milliseconds.
    pub base_backoff_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig { max_queued: 8, per_tenant_cap: 4, base_backoff_ms: 200 }
    }
}

/// A typed admission rejection — maps 1:1 onto the wire error object.
#[derive(Debug, Clone, PartialEq)]
pub struct Rejection {
    /// One of the [`crate::protocol::kind`] constants.
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// Whether retrying after `backoff_ms` can succeed.
    pub retryable: bool,
    /// Suggested wait before the retry (absent on non-retryable kinds).
    pub backoff_ms: Option<u64>,
}

impl AdmissionConfig {
    /// Decide whether a new session may join. `queued` is the current
    /// pending-queue depth, `tenant_inflight` the submitting tenant's
    /// queued + running count, `draining` the daemon's drain flag.
    ///
    /// Checks are ordered from least to most recoverable: draining is
    /// permanent (this daemon will never accept again), the tenant cap
    /// clears as that tenant's sessions finish, queue pressure clears as
    /// any session finishes.
    pub fn admit(
        &self,
        queued: usize,
        tenant_inflight: usize,
        draining: bool,
    ) -> Result<(), Rejection> {
        if draining {
            return Err(Rejection {
                kind: crate::protocol::kind::DRAINING,
                message: "daemon is draining; no new sessions are admitted".into(),
                retryable: false,
                backoff_ms: None,
            });
        }
        if tenant_inflight >= self.per_tenant_cap {
            return Err(Rejection {
                kind: crate::protocol::kind::TENANT_CAP,
                message: format!(
                    "tenant has {tenant_inflight} sessions in flight (cap {})",
                    self.per_tenant_cap
                ),
                retryable: true,
                backoff_ms: Some(self.base_backoff_ms),
            });
        }
        if queued >= self.max_queued {
            // Linear pressure-proportional hint: one base unit per session
            // past the mark, so deeper overload spreads retries wider.
            let overload = (queued - self.max_queued + 1) as u64;
            return Err(Rejection {
                kind: crate::protocol::kind::QUEUE_FULL,
                message: format!("{queued} sessions pending (high-water mark {})", self.max_queued),
                retryable: true,
                backoff_ms: Some(self.base_backoff_ms.saturating_mul(overload)),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::kind;

    const CFG: AdmissionConfig =
        AdmissionConfig { max_queued: 2, per_tenant_cap: 3, base_backoff_ms: 100 };

    #[test]
    fn under_limits_admits() {
        assert_eq!(CFG.admit(0, 0, false), Ok(()));
        assert_eq!(CFG.admit(1, 2, false), Ok(()));
    }

    #[test]
    fn queue_high_water_rejects_retryably_with_growing_backoff() {
        let at_mark = CFG.admit(2, 0, false).unwrap_err();
        assert_eq!(at_mark.kind, kind::QUEUE_FULL);
        assert!(at_mark.retryable);
        assert_eq!(at_mark.backoff_ms, Some(100));
        let deeper = CFG.admit(5, 0, false).unwrap_err();
        assert_eq!(deeper.backoff_ms, Some(400), "backoff grows with overload depth");
    }

    #[test]
    fn tenant_cap_rejects_before_queue_pressure() {
        let r = CFG.admit(10, 3, false).unwrap_err();
        assert_eq!(r.kind, kind::TENANT_CAP, "the tenant-specific reason wins");
        assert!(r.retryable);
        assert_eq!(r.backoff_ms, Some(100));
    }

    #[test]
    fn draining_rejects_everything_non_retryably() {
        let r = CFG.admit(0, 0, true).unwrap_err();
        assert_eq!(r.kind, kind::DRAINING);
        assert!(!r.retryable);
        assert_eq!(r.backoff_ms, None);
    }

    #[test]
    fn decision_is_a_pure_function() {
        // Same inputs, same outputs — call it a thousand times.
        let first = CFG.admit(3, 1, false);
        for _ in 0..1000 {
            assert_eq!(CFG.admit(3, 1, false), first);
        }
    }
}
