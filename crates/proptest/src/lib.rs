//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `proptest` it uses: the [`proptest!`] macro,
//! range/tuple/`any`/`prop::collection::vec` strategies, the
//! `prop_assert*` macros, and [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: cases are drawn from a deterministic
//! per-test RNG (no persisted failure file), and failing inputs are
//! reported but not shrunk.

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property assertion (carries the formatted message).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Generator of random values for one test argument.
pub trait Strategy {
    /// Generated type.
    type Value: fmt::Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draw one value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

/// Strategy over the full domain of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Length specification for collection strategies: an exact length or a
/// range of lengths.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_exclusive: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_exclusive: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
    }
}

/// `prop::collection::vec` strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// The `prop::` namespace mirrored from upstream.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, VecStrategy};

        /// Vectors of `element` values with lengths drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }
    }
}

/// Everything a proptest-based test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
    pub use rand::rngs::StdRng as ProptestRng;
}

/// Stable seed for a test from its name, so failures reproduce across runs.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fail the current case if `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Define property tests: each named function runs `cases` times with
/// freshly sampled arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::Strategy as _;
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(
                    $crate::seed_for(stringify!($name)),
                );
                for case in 0..config.cases {
                    $(let $arg = ($strat).sample(&mut rng);)*
                    let dbg = format!(concat!($(stringify!($arg), " = {:?}; ",)*) $(, &$arg)*);
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {case} failed: {e}\n  inputs: {dbg}");
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, f in -1.0f64..1.0, b in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            #[allow(clippy::overly_complex_bool_expr)]
            {
                prop_assert!(b || !b);
            }
        }

        #[test]
        fn vec_lengths_respect_size(
            v in prop::collection::vec(0u8..5, 2..6),
            w in prop::collection::vec(0u32..2, 4),
            pairs in prop::collection::vec((0.0f64..1.0, 1usize..3), 0..4),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(w.len(), 4);
            for (f, k) in &pairs {
                prop_assert!((0.0..1.0).contains(f));
                prop_assert!((1..3).contains(k));
            }
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(8))]
                fn inner(x in 0usize..4) {
                    prop_assert!(x < 2, "x was {}", x);
                }
            }
            inner();
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        assert!(msg.contains("proptest case"), "{msg}");
        assert!(msg.contains("inputs:"), "{msg}");
    }

    #[test]
    fn seeds_differ_per_test_name() {
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
        assert_eq!(crate::seed_for("a"), crate::seed_for("a"));
    }
}
