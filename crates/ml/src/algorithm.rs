//! Algorithm registry: the paper's six ML algorithms behind one enum, with
//! the random hyperparameter search spaces of §4.4.

use crate::dtree::{DecisionTreeClassifier, DtParams};
use crate::forest::{RandomForestClassifier, RfParams};
use crate::gbm::{GbmParams, GradientBoostingClassifier};
use crate::knn::{KnnClassifier, KnnParams};
use crate::linear::{
    LinearRegressionClassifier, LinearSvm, LirParams, LogisticRegression, LorParams, SvmParams,
};
use crate::mlp::{MlpClassifier, MlpParams};
use crate::model::Classifier;
use crate::nb::{NaiveBayesClassifier, NbParams};
use rand::Rng;
use std::fmt;

/// The ML algorithms evaluated in the paper: SVM, KNN, MLP, GB with the
/// FIR/RR/CL baselines; SVM ("AC-SVM"), LOR, LIR with ActiveClean.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Algorithm {
    /// Linear support vector machine.
    Svm,
    /// k-nearest neighbors.
    Knn,
    /// Multi-layer perceptron.
    Mlp,
    /// Gradient boosting.
    Gb,
    /// Logistic regression (LOR).
    LogReg,
    /// Linear regression classifier (LIR).
    LinReg,
    /// Decision tree (extension beyond the paper's suite).
    Dt,
    /// Random forest (extension beyond the paper's suite).
    Rf,
    /// Gaussian naive Bayes (extension beyond the paper's suite).
    Nb,
}

impl Algorithm {
    /// All algorithms, including the extensions beyond the paper's suite.
    pub const ALL: [Algorithm; 9] = [
        Algorithm::Svm,
        Algorithm::Knn,
        Algorithm::Mlp,
        Algorithm::Gb,
        Algorithm::LogReg,
        Algorithm::LinReg,
        Algorithm::Dt,
        Algorithm::Rf,
        Algorithm::Nb,
    ];

    /// The four algorithms compared against FIR/RR/CL (§4.4).
    pub const COMET_SUITE: [Algorithm; 4] =
        [Algorithm::Svm, Algorithm::Knn, Algorithm::Mlp, Algorithm::Gb];

    /// The three convex-loss algorithms ActiveClean supports (§4.5).
    pub const ACTIVECLEAN_SUITE: [Algorithm; 3] =
        [Algorithm::Svm, Algorithm::LogReg, Algorithm::LinReg];

    /// Short name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Svm => "SVM",
            Algorithm::Knn => "KNN",
            Algorithm::Mlp => "MLP",
            Algorithm::Gb => "GB",
            Algorithm::LogReg => "LOR",
            Algorithm::LinReg => "LIR",
            Algorithm::Dt => "DT",
            Algorithm::Rf => "RF",
            Algorithm::Nb => "NB",
        }
    }

    /// Parse a (case-insensitive) name.
    pub fn parse(s: &str) -> Option<Algorithm> {
        match s.to_ascii_lowercase().as_str() {
            "svm" | "acsvm" | "ac-svm" => Some(Algorithm::Svm),
            "knn" => Some(Algorithm::Knn),
            "mlp" => Some(Algorithm::Mlp),
            "gb" | "gbm" => Some(Algorithm::Gb),
            "lor" | "logreg" | "logistic" => Some(Algorithm::LogReg),
            "lir" | "linreg" | "linear" => Some(Algorithm::LinReg),
            "dt" | "tree" | "decisiontree" => Some(Algorithm::Dt),
            "rf" | "forest" | "randomforest" => Some(Algorithm::Rf),
            "nb" | "naivebayes" | "bayes" => Some(Algorithm::Nb),
            _ => None,
        }
    }

    /// Whether ActiveClean's convex-loss machinery supports this algorithm.
    pub fn is_convex_linear(self) -> bool {
        matches!(self, Algorithm::Svm | Algorithm::LogReg | Algorithm::LinReg)
    }

    /// Default hyperparameters.
    pub fn default_params(self) -> HyperParams {
        match self {
            Algorithm::Svm => HyperParams::Svm(SvmParams::default()),
            Algorithm::Knn => HyperParams::Knn(KnnParams::default()),
            Algorithm::Mlp => HyperParams::Mlp(MlpParams::default()),
            Algorithm::Gb => HyperParams::Gb(GbmParams::default()),
            Algorithm::LogReg => HyperParams::LogReg(LorParams::default()),
            Algorithm::LinReg => HyperParams::LinReg(LirParams::default()),
            Algorithm::Dt => HyperParams::Dt(DtParams::default()),
            Algorithm::Rf => HyperParams::Rf(RfParams::default()),
            Algorithm::Nb => HyperParams::Nb(NbParams::default()),
        }
    }

    /// Sample hyperparameters from the random-search space (§4.4).
    pub fn sample_params<R: Rng + ?Sized>(self, rng: &mut R) -> HyperParams {
        let log_uniform = |rng: &mut R, lo: f64, hi: f64| -> f64 {
            (rng.gen::<f64>() * (hi.ln() - lo.ln()) + lo.ln()).exp()
        };
        match self {
            Algorithm::Svm => HyperParams::Svm(SvmParams {
                l2: log_uniform(rng, 1e-5, 1e-2),
                epochs: *[20, 40, 60].get(rng.gen_range(0..3usize)).expect("in range"),
                learning_rate: log_uniform(rng, 0.02, 0.5),
            }),
            Algorithm::Knn => {
                const KS: [usize; 7] = [1, 3, 5, 7, 9, 11, 15];
                HyperParams::Knn(KnnParams { k: KS[rng.gen_range(0..KS.len())] })
            }
            Algorithm::Mlp => HyperParams::Mlp(MlpParams {
                hidden: [16, 32, 64][rng.gen_range(0..3usize)],
                epochs: [40, 60, 80][rng.gen_range(0..3usize)],
                learning_rate: log_uniform(rng, 0.01, 0.1),
                ..MlpParams::default()
            }),
            Algorithm::Gb => HyperParams::Gb(GbmParams {
                n_rounds: [20, 30, 50][rng.gen_range(0..3usize)],
                learning_rate: [0.05, 0.1, 0.2, 0.3][rng.gen_range(0..4usize)],
                max_depth: [2, 3, 4][rng.gen_range(0..3usize)],
                min_leaf: 5,
            }),
            Algorithm::LogReg => HyperParams::LogReg(LorParams {
                l2: log_uniform(rng, 1e-5, 1e-2),
                epochs: [20, 40, 60][rng.gen_range(0..3usize)],
                learning_rate: log_uniform(rng, 0.02, 0.5),
            }),
            Algorithm::LinReg => HyperParams::LinReg(LirParams {
                l2: log_uniform(rng, 1e-5, 1e-2),
                epochs: [20, 40, 60][rng.gen_range(0..3usize)],
                learning_rate: log_uniform(rng, 0.01, 0.2),
            }),
            Algorithm::Dt => HyperParams::Dt(DtParams {
                max_depth: [3, 5, 8, 12][rng.gen_range(0..4usize)],
                min_leaf: [1, 2, 5][rng.gen_range(0..3usize)],
                max_features: None,
            }),
            Algorithm::Rf => HyperParams::Rf(RfParams {
                n_trees: [10, 25, 50][rng.gen_range(0..3usize)],
                max_depth: [4, 8, 12][rng.gen_range(0..3usize)],
                min_leaf: [1, 2, 5][rng.gen_range(0..3usize)],
            }),
            Algorithm::Nb => {
                HyperParams::Nb(NbParams { var_smoothing: log_uniform(rng, 1e-10, 1e-6) })
            }
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete hyperparameter assignment for one algorithm.
#[derive(Debug, Clone, PartialEq)]
pub enum HyperParams {
    /// SVM parameters.
    Svm(SvmParams),
    /// KNN parameters.
    Knn(KnnParams),
    /// MLP parameters.
    Mlp(MlpParams),
    /// Gradient-boosting parameters.
    Gb(GbmParams),
    /// Logistic-regression parameters.
    LogReg(LorParams),
    /// Linear-regression parameters.
    LinReg(LirParams),
    /// Decision-tree parameters.
    Dt(DtParams),
    /// Random-forest parameters.
    Rf(RfParams),
    /// Naive-Bayes parameters.
    Nb(NbParams),
}

impl HyperParams {
    /// Which algorithm these parameters belong to.
    pub fn algorithm(&self) -> Algorithm {
        match self {
            HyperParams::Svm(_) => Algorithm::Svm,
            HyperParams::Knn(_) => Algorithm::Knn,
            HyperParams::Mlp(_) => Algorithm::Mlp,
            HyperParams::Gb(_) => Algorithm::Gb,
            HyperParams::LogReg(_) => Algorithm::LogReg,
            HyperParams::LinReg(_) => Algorithm::LinReg,
            HyperParams::Dt(_) => Algorithm::Dt,
            HyperParams::Rf(_) => Algorithm::Rf,
            HyperParams::Nb(_) => Algorithm::Nb,
        }
    }

    /// Instantiate an unfitted classifier.
    pub fn build(&self) -> Box<dyn Classifier> {
        match *self {
            HyperParams::Svm(p) => Box::new(LinearSvm::new(p)),
            HyperParams::Knn(p) => Box::new(KnnClassifier::new(p)),
            HyperParams::Mlp(p) => Box::new(MlpClassifier::new(p)),
            HyperParams::Gb(p) => Box::new(GradientBoostingClassifier::new(p)),
            HyperParams::LogReg(p) => Box::new(LogisticRegression::new(p)),
            HyperParams::LinReg(p) => Box::new(LinearRegressionClassifier::new(p)),
            HyperParams::Dt(p) => Box::new(DecisionTreeClassifier::new(p)),
            HyperParams::Rf(p) => Box::new(RandomForestClassifier::new(p)),
            HyperParams::Nb(p) => Box::new(NaiveBayesClassifier::new(p)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn names_roundtrip() {
        for a in Algorithm::ALL {
            assert_eq!(Algorithm::parse(a.name()), Some(a));
        }
        assert_eq!(Algorithm::parse("ac-svm"), Some(Algorithm::Svm));
        assert_eq!(Algorithm::parse("zzz"), None);
    }

    #[test]
    fn suites_match_paper() {
        assert!(Algorithm::COMET_SUITE.contains(&Algorithm::Mlp));
        assert!(!Algorithm::COMET_SUITE.contains(&Algorithm::LinReg));
        for a in Algorithm::ACTIVECLEAN_SUITE {
            assert!(a.is_convex_linear());
        }
        assert!(!Algorithm::Knn.is_convex_linear());
    }

    #[test]
    fn every_algorithm_builds_and_fits() {
        let x = Matrix::from_vecs(&[
            vec![0.0, 1.0],
            vec![0.1, 0.9],
            vec![1.0, 0.0],
            vec![0.9, 0.1],
            vec![0.05, 1.1],
            vec![1.1, -0.1],
        ]);
        let y = vec![0, 0, 1, 1, 0, 1];
        for algo in Algorithm::ALL {
            let mut model = algo.default_params().build();
            let mut rng = StdRng::seed_from_u64(0);
            model.fit(&x, &y, 2, &mut rng);
            let pred = model.predict(&x);
            assert_eq!(pred.len(), 6);
            assert!(pred.iter().all(|&p| p < 2), "{algo} produced invalid codes");
        }
    }

    #[test]
    fn sampled_params_are_in_space() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            for algo in Algorithm::ALL {
                let hp = algo.sample_params(&mut rng);
                assert_eq!(hp.algorithm(), algo);
                match hp {
                    HyperParams::Svm(p) => {
                        assert!(p.l2 >= 1e-5 && p.l2 <= 1e-2);
                        assert!([20, 40, 60].contains(&p.epochs));
                    }
                    HyperParams::Knn(p) => assert!([1, 3, 5, 7, 9, 11, 15].contains(&p.k)),
                    HyperParams::Mlp(p) => assert!([16, 32, 64].contains(&p.hidden)),
                    HyperParams::Gb(p) => assert!([2, 3, 4].contains(&p.max_depth)),
                    HyperParams::LogReg(p) => assert!(p.learning_rate > 0.0),
                    HyperParams::LinReg(p) => assert!(p.learning_rate > 0.0),
                    HyperParams::Dt(p) => assert!(p.max_depth >= 3),
                    HyperParams::Rf(p) => assert!(p.n_trees >= 10),
                    HyperParams::Nb(p) => assert!(p.var_smoothing > 0.0),
                }
            }
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Algorithm::Gb.to_string(), "GB");
    }
}
