//! Minimal dense row-major matrix.

/// Dense row-major `f64` matrix. Rows are observations, columns features.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero-filled matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Matrix { nrows, ncols, data: vec![0.0; nrows * ncols] }
    }

    /// Build from row-major data. Panics if `data.len() != nrows * ncols`.
    pub fn from_rows(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "data length must be nrows*ncols");
        Matrix { nrows, ncols, data }
    }

    /// Build from a slice of row vectors (all must share a length).
    pub fn from_vecs(rows: &[Vec<f64>]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            assert_eq!(r.len(), ncols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix { nrows, ncols, data }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Mutable row access.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Element access.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.ncols + j]
    }

    /// Element write.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.ncols + j] = v;
    }

    /// Iterate rows.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.ncols.max(1)).take(self.nrows)
    }

    /// New matrix with only the given rows (order-preserving, duplicates OK).
    pub fn take_rows(&self, rows: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(rows.len() * self.ncols);
        for &r in rows {
            data.extend_from_slice(self.row(r));
        }
        Matrix { nrows: rows.len(), ncols: self.ncols, data }
    }

    /// Euclidean distance between two rows of (possibly different) matrices.
    pub fn row_distance(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        m.row_mut(0)[0] = -1.0;
        assert_eq!(m.get(0, 0), -1.0);
    }

    #[test]
    fn from_rows_and_vecs_agree() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vecs(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "nrows*ncols")]
    fn bad_length_panics() {
        Matrix::from_rows(2, 2, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        Matrix::from_vecs(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn rows_iterator() {
        let m = Matrix::from_vecs(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let rows: Vec<&[f64]> = m.rows().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
    }

    #[test]
    fn take_rows_duplicates_and_reorders() {
        let m = Matrix::from_vecs(&[vec![1.0], vec![2.0], vec![3.0]]);
        let t = m.take_rows(&[2, 0, 2]);
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.row(0), &[3.0]);
        assert_eq!(t.row(2), &[3.0]);
    }

    #[test]
    fn distance() {
        assert_eq!(Matrix::row_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(Matrix::row_distance(&[1.0], &[1.0]), 0.0);
    }
}
