//! Minimal dense row-major matrix.

use std::fmt;

/// Shape violation when assembling a [`Matrix`] from untrusted row data.
/// Converted to `CometError::Invalid` at the `comet-core` boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixShapeError {
    /// No rows were provided, so the column count cannot be inferred and
    /// downstream consumers (model `fit`, row iteration) have nothing to
    /// train on.
    EmptyRowSet,
    /// A row's length disagrees with the first row's.
    RaggedRow {
        /// Index of the offending row.
        row: usize,
        /// Length the first row established.
        expected: usize,
        /// Length actually seen.
        got: usize,
    },
}

impl fmt::Display for MatrixShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixShapeError::EmptyRowSet => {
                write!(f, "cannot build a matrix from an empty row set")
            }
            MatrixShapeError::RaggedRow { row, expected, got } => {
                write!(f, "ragged row {row}: expected {expected} columns, got {got}")
            }
        }
    }
}

impl std::error::Error for MatrixShapeError {}

/// Dense row-major `f64` matrix. Rows are observations, columns features.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero-filled matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Matrix { nrows, ncols, data: vec![0.0; nrows * ncols] }
    }

    /// Build from row-major data. Panics if `data.len() != nrows * ncols`.
    pub fn from_rows(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "data length must be nrows*ncols");
        Matrix { nrows, ncols, data }
    }

    /// Build from a slice of row vectors. An empty slice yields the empty
    /// `0×0` matrix; panics on ragged rows (programmer error in trusted
    /// callers — use [`Matrix::try_from_vecs`] for untrusted row data).
    pub fn from_vecs(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        match Matrix::try_from_vecs(rows) {
            Ok(m) => m,
            Err(e) => panic!("ragged rows: {e}"),
        }
    }

    /// Fallible [`Matrix::from_vecs`]: rejects an empty row set (the column
    /// count would be unrecoverably inferred as 0) and ragged rows with a
    /// typed error instead of panicking.
    pub fn try_from_vecs(rows: &[Vec<f64>]) -> Result<Self, MatrixShapeError> {
        let Some(first) = rows.first() else {
            return Err(MatrixShapeError::EmptyRowSet);
        };
        let ncols = first.len();
        let mut data = Vec::with_capacity(rows.len() * ncols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != ncols {
                return Err(MatrixShapeError::RaggedRow { row: i, expected: ncols, got: r.len() });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix { nrows: rows.len(), ncols, data })
    }

    /// Re-shape a recycled buffer into a zero-filled `nrows × ncols` matrix,
    /// reusing its allocation (the scratch-pool entry point: no new heap
    /// allocation when the buffer's capacity already suffices).
    pub fn from_buffer(nrows: usize, ncols: usize, mut buf: Vec<f64>) -> Self {
        buf.clear();
        buf.resize(nrows * ncols, 0.0);
        Matrix { nrows, ncols, data: buf }
    }

    /// Tear down into the backing buffer so the allocation can be pooled.
    pub fn into_buffer(self) -> Vec<f64> {
        self.data
    }

    /// Row-major backing slice (`nrows * ncols` elements).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major backing slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Mutable row access.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Element access.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.ncols + j]
    }

    /// Element write.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.ncols + j] = v;
    }

    /// Iterate rows. Yields exactly `nrows` items even for zero-column
    /// matrices (each row is then the empty slice).
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        (0..self.nrows).map(move |i| self.row(i))
    }

    /// New matrix with only the given rows (order-preserving, duplicates OK).
    pub fn take_rows(&self, rows: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(rows.len() * self.ncols);
        for &r in rows {
            data.extend_from_slice(self.row(r));
        }
        Matrix { nrows: rows.len(), ncols: self.ncols, data }
    }

    /// Euclidean distance between two rows of (possibly different) matrices.
    pub fn row_distance(a: &[f64], b: &[f64]) -> f64 {
        crate::kernels::sq_dist(a, b).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        m.row_mut(0)[0] = -1.0;
        assert_eq!(m.get(0, 0), -1.0);
    }

    #[test]
    fn from_rows_and_vecs_agree() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vecs(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "nrows*ncols")]
    fn bad_length_panics() {
        Matrix::from_rows(2, 2, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        Matrix::from_vecs(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn from_vecs_empty_yields_empty_matrix() {
        let m = Matrix::from_vecs(&[]);
        assert_eq!((m.nrows(), m.ncols()), (0, 0));
        assert_eq!(m.rows().count(), 0);
    }

    #[test]
    fn try_from_vecs_rejects_empty_and_ragged() {
        assert_eq!(Matrix::try_from_vecs(&[]), Err(MatrixShapeError::EmptyRowSet));
        let err = Matrix::try_from_vecs(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert_eq!(err, MatrixShapeError::RaggedRow { row: 1, expected: 2, got: 1 });
        assert!(err.to_string().contains("ragged row 1"));
        let ok = Matrix::try_from_vecs(&[vec![1.0], vec![2.0]]).unwrap();
        assert_eq!(ok, Matrix::from_vecs(&[vec![1.0], vec![2.0]]));
    }

    #[test]
    fn zero_column_rows_iterate_per_row() {
        // Regression: chunks_exact over an empty buffer used to yield zero
        // rows for an n×0 matrix; models then saw no data at all.
        let m = Matrix::zeros(3, 0);
        let rows: Vec<&[f64]> = m.rows().collect();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn buffer_roundtrip_reuses_allocation() {
        let m = Matrix::from_vecs(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let buf = m.into_buffer();
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        let m2 = Matrix::from_buffer(2, 2, buf);
        assert_eq!(m2, Matrix::zeros(2, 2));
        let buf2 = m2.into_buffer();
        assert_eq!(buf2.capacity(), cap);
        assert_eq!(buf2.as_ptr(), ptr);
    }

    #[test]
    fn rows_iterator() {
        let m = Matrix::from_vecs(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let rows: Vec<&[f64]> = m.rows().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
    }

    #[test]
    fn take_rows_duplicates_and_reorders() {
        let m = Matrix::from_vecs(&[vec![1.0], vec![2.0], vec![3.0]]);
        let t = m.take_rows(&[2, 0, 2]);
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.row(0), &[3.0]);
        assert_eq!(t.row(2), &[3.0]);
    }

    #[test]
    fn distance() {
        assert_eq!(Matrix::row_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(Matrix::row_distance(&[1.0], &[1.0]), 0.0);
    }
}
