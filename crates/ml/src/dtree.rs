//! Classification tree (CART with Gini impurity).
//!
//! Not part of the paper's algorithm suite (§4.4) but a natural extension:
//! a standalone interpretable model and the base learner for
//! [`crate::RandomForestClassifier`].

use crate::model::Classifier;
use crate::Matrix;
use rand::RngCore;

/// Classification-tree hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DtParams {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_leaf: usize,
    /// Consider only a random subset of this many features per split
    /// (`None` = all features). Used by random forests.
    pub max_features: Option<usize>,
}

impl Default for DtParams {
    fn default() -> Self {
        DtParams { max_depth: 6, min_leaf: 2, max_features: None }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf { class: u32 },
    Split { feature: usize, threshold: f64, left: usize, right: usize },
}

/// A fitted classification tree.
#[derive(Debug, Clone)]
pub struct DecisionTreeClassifier {
    params: DtParams,
    n_classes: usize,
    nodes: Vec<Node>,
}

impl DecisionTreeClassifier {
    /// Build with hyperparameters.
    pub fn new(params: DtParams) -> Self {
        assert!(params.min_leaf >= 1, "min_leaf must be at least 1");
        DecisionTreeClassifier { params, n_classes: 0, nodes: Vec::new() }
    }

    /// Number of nodes (diagnostics).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Human-readable dump of the tree structure (diagnostics).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for (i, node) in self.nodes.iter().enumerate() {
            match node {
                Node::Leaf { class } => {
                    out.push_str(&format!("{i}: leaf class={class}\n"));
                }
                Node::Split { feature, threshold, left, right } => {
                    out.push_str(&format!(
                        "{i}: split f{feature} @ {threshold:.4} -> {left}/{right}\n"
                    ));
                }
            }
        }
        out
    }

    fn gini(counts: &[usize]) -> f64 {
        let n: usize = counts.iter().sum();
        if n == 0 {
            return 0.0;
        }
        let n = n as f64;
        // comet-lint: allow(D6) — gini impurity over <= n_classes counts in fixed class order
        1.0 - counts.iter().map(|&c| (c as f64 / n).powi(2)).sum::<f64>()
    }

    fn majority(counts: &[usize]) -> u32 {
        let mut best = 0usize;
        for (c, &count) in counts.iter().enumerate().skip(1) {
            if count > counts[best] {
                best = c;
            }
        }
        best as u32
    }

    fn grow(
        &mut self,
        x: &Matrix,
        y: &[u32],
        rows: Vec<usize>,
        depth: usize,
        rng: &mut dyn RngCore,
    ) -> usize {
        let mut counts = vec![0usize; self.n_classes];
        for &r in &rows {
            counts[y[r] as usize] += 1;
        }
        let make_leaf = |tree: &mut Self| {
            tree.nodes.push(Node::Leaf { class: Self::majority(&counts) });
            tree.nodes.len() - 1
        };
        if depth >= self.params.max_depth
            || rows.len() < 2 * self.params.min_leaf
            || counts.iter().filter(|&&c| c > 0).count() <= 1
        {
            return make_leaf(self);
        }

        // Candidate features (optionally a random subset, forest-style).
        let mut features: Vec<usize> = (0..x.ncols()).collect();
        if let Some(m) = self.params.max_features {
            let m = m.min(features.len()).max(1);
            for i in 0..m {
                let j = i + (rng.next_u64() as usize) % (features.len() - i);
                features.swap(i, j);
            }
            features.truncate(m);
        }

        let parent_gini = Self::gini(&counts);
        let n = rows.len();
        // (gain, balance, feature, threshold); ties on gain prefer the most
        // balanced split — on zero-gain plateaus (XOR) this lands on the
        // natural cluster boundary instead of a float-noise artifact.
        let mut best: Option<(f64, usize, usize, f64)> = None;
        let mut order = rows.clone();
        let mut left_counts = vec![0usize; self.n_classes];
        for &feature in &features {
            // `total_cmp`: a NaN feature (dirty numeric cell) must sort
            // deterministically instead of panicking mid-fit (D2).
            order.sort_by(|&a, &b| x.get(a, feature).total_cmp(&x.get(b, feature)));
            left_counts.iter_mut().for_each(|c| *c = 0);
            for i in 0..n - 1 {
                left_counts[y[order[i]] as usize] += 1;
                let nl = i + 1;
                let nr = n - nl;
                if nl < self.params.min_leaf || nr < self.params.min_leaf {
                    continue;
                }
                let v_here = x.get(order[i], feature);
                let v_next = x.get(order[i + 1], feature);
                if v_here == v_next {
                    continue;
                }
                let right_counts: Vec<usize> =
                    counts.iter().zip(&left_counts).map(|(&t, &l)| t - l).collect();
                let weighted = (nl as f64 * Self::gini(&left_counts)
                    + nr as f64 * Self::gini(&right_counts))
                    / n as f64;
                let gain = parent_gini - weighted;
                // Zero-gain splits are allowed (like scikit-learn): balanced
                // XOR-style interactions only pay off one level down;
                // max_depth bounds the recursion.
                let balance = nl.min(nr);
                let better = match best {
                    None => gain > -1e-12,
                    Some((g, b, _, _)) => {
                        gain > g + 1e-12 || ((gain - g).abs() <= 1e-12 && balance > b)
                    }
                };
                if better && gain > -1e-12 {
                    best = Some((gain, balance, feature, 0.5 * (v_here + v_next)));
                }
            }
        }
        let Some((_, _, feature, threshold)) = best else {
            return make_leaf(self);
        };
        let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
            rows.iter().partition(|&&r| x.get(r, feature) <= threshold);
        if left_rows.len() < self.params.min_leaf || right_rows.len() < self.params.min_leaf {
            return make_leaf(self);
        }
        let idx = self.nodes.len();
        self.nodes.push(Node::Leaf { class: 0 });
        let left = self.grow(x, y, left_rows, depth + 1, rng);
        let right = self.grow(x, y, right_rows, depth + 1, rng);
        self.nodes[idx] = Node::Split { feature, threshold, left, right };
        idx
    }
}

impl Default for DecisionTreeClassifier {
    fn default() -> Self {
        Self::new(DtParams::default())
    }
}

impl Classifier for DecisionTreeClassifier {
    fn fit(&mut self, x: &Matrix, y: &[u32], n_classes: usize, rng: &mut dyn RngCore) {
        assert_eq!(x.nrows(), y.len(), "rows and labels must align");
        assert!(x.nrows() > 0, "cannot fit on empty data");
        self.n_classes = n_classes.max(2);
        self.nodes.clear();
        let rows: Vec<usize> = (0..x.nrows()).collect();
        self.grow(x, y, rows, 0, rng);
    }

    fn predict_row(&self, row: &[f64]) -> u32 {
        assert!(!self.nodes.is_empty(), "predict called before fit");
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { class } => return *class,
                Node::Split { feature, threshold, left, right } => {
                    idx = if row[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_data() -> (Matrix, Vec<u32>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..160 {
            let a = (i / 2) % 2;
            let b = i % 2;
            // Jitter with period coprime to the label period, so every
            // jitter level sees all four (a, b) combinations equally —
            // no spurious gain inside a cluster.
            let jitter = (i % 5) as f64 * 0.02;
            rows.push(vec![a as f64 + jitter, b as f64 - jitter]);
            labels.push(((a + b) % 2) as u32);
        }
        (Matrix::from_vecs(&rows), labels)
    }

    #[test]
    fn solves_xor() {
        let (x, y) = xor_data();
        let mut dt =
            DecisionTreeClassifier::new(DtParams { max_depth: 3, min_leaf: 1, max_features: None });
        let mut rng = StdRng::seed_from_u64(0);
        dt.fit(&x, &y, 2, &mut rng);
        let acc = crate::metrics::accuracy(&y, &dt.predict(&x));
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn depth_limit_respected() {
        let (x, y) = xor_data();
        let mut dt =
            DecisionTreeClassifier::new(DtParams { max_depth: 0, min_leaf: 1, max_features: None });
        let mut rng = StdRng::seed_from_u64(1);
        dt.fit(&x, &y, 2, &mut rng);
        assert_eq!(dt.n_nodes(), 1, "depth 0 yields the majority leaf");
    }

    #[test]
    fn pure_node_stops_early() {
        let x = Matrix::from_vecs(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let y = vec![1, 1, 1, 1];
        let mut dt = DecisionTreeClassifier::default();
        let mut rng = StdRng::seed_from_u64(2);
        dt.fit(&x, &y, 2, &mut rng);
        assert_eq!(dt.n_nodes(), 1);
        assert_eq!(dt.predict_row(&[9.0]), 1);
    }

    #[test]
    fn three_classes() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..240 {
            let c = i % 3;
            rows.push(vec![c as f64 * 2.0 + ((i * 7) % 10) as f64 / 10.0]);
            labels.push(c as u32);
        }
        let x = Matrix::from_vecs(&rows);
        let mut dt = DecisionTreeClassifier::default();
        let mut rng = StdRng::seed_from_u64(3);
        dt.fit(&x, &labels, 3, &mut rng);
        let acc = crate::metrics::accuracy(&labels, &dt.predict(&x));
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn max_features_subsampling_still_learns() {
        let (x, y) = xor_data();
        let mut dt = DecisionTreeClassifier::new(DtParams {
            max_depth: 4,
            min_leaf: 1,
            max_features: Some(1),
        });
        let mut rng = StdRng::seed_from_u64(4);
        dt.fit(&x, &y, 2, &mut rng);
        // With one random feature per split it may need more depth but must
        // stay valid.
        let preds = dt.predict(&x);
        assert!(preds.iter().all(|&p| p < 2));
    }

    #[test]
    fn gini_values() {
        assert_eq!(DecisionTreeClassifier::gini(&[4, 0]), 0.0);
        assert!((DecisionTreeClassifier::gini(&[2, 2]) - 0.5).abs() < 1e-12);
        assert_eq!(DecisionTreeClassifier::gini(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        DecisionTreeClassifier::default().predict_row(&[0.0]);
    }
}
