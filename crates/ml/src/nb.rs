//! Gaussian naive Bayes classifier — an extension beyond the paper's
//! algorithm suite. Operates on the featurized matrix (one-hot columns are
//! treated as Gaussians too, the common practical shortcut).

use crate::model::Classifier;
use crate::Matrix;
use rand::RngCore;

/// Naive-Bayes hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NbParams {
    /// Variance smoothing added to every per-class variance (relative to
    /// the largest feature variance), preventing zero-variance collapse.
    pub var_smoothing: f64,
}

impl Default for NbParams {
    fn default() -> Self {
        NbParams { var_smoothing: 1e-9 }
    }
}

/// A fitted Gaussian naive-Bayes model.
#[derive(Debug, Clone)]
pub struct NaiveBayesClassifier {
    params: NbParams,
    n_classes: usize,
    dim: usize,
    /// Log class priors.
    log_prior: Vec<f64>,
    /// Per-class feature means, row-major `n_classes × dim`.
    means: Vec<f64>,
    /// Per-class feature variances (smoothed).
    vars: Vec<f64>,
}

impl NaiveBayesClassifier {
    /// Build with hyperparameters.
    pub fn new(params: NbParams) -> Self {
        NaiveBayesClassifier {
            params,
            n_classes: 0,
            dim: 0,
            log_prior: Vec::new(),
            means: Vec::new(),
            vars: Vec::new(),
        }
    }
}

impl Default for NaiveBayesClassifier {
    fn default() -> Self {
        Self::new(NbParams::default())
    }
}

impl Classifier for NaiveBayesClassifier {
    fn fit(&mut self, x: &Matrix, y: &[u32], n_classes: usize, _rng: &mut dyn RngCore) {
        assert_eq!(x.nrows(), y.len(), "rows and labels must align");
        assert!(x.nrows() > 0, "cannot fit on empty data");
        let k = n_classes.max(2);
        let d = x.ncols();
        self.n_classes = k;
        self.dim = d;

        let mut counts = vec![0usize; k];
        self.means = vec![0.0; k * d];
        self.vars = vec![0.0; k * d];
        for (i, &label) in y.iter().enumerate() {
            let c = label as usize;
            counts[c] += 1;
            for (j, &v) in x.row(i).iter().enumerate() {
                self.means[c * d + j] += v;
            }
        }
        for (c, &count) in counts.iter().enumerate() {
            if count > 0 {
                for j in 0..d {
                    self.means[c * d + j] /= count as f64;
                }
            }
        }
        let mut max_var = 0.0f64;
        for (i, &label) in y.iter().enumerate() {
            let c = label as usize;
            for (j, &v) in x.row(i).iter().enumerate() {
                let delta = v - self.means[c * d + j];
                self.vars[c * d + j] += delta * delta;
            }
        }
        for (c, &count) in counts.iter().enumerate() {
            for j in 0..d {
                if count > 0 {
                    self.vars[c * d + j] /= count as f64;
                }
                max_var = max_var.max(self.vars[c * d + j]);
            }
        }
        // comet-lint: allow(D2) — smoothing scale clamp over non-negative variances
        let smoothing = self.params.var_smoothing * max_var.max(1.0);
        // comet-lint: allow(D2) — epsilon floor keeps Gaussian variances strictly positive
        self.vars.iter_mut().for_each(|v| *v += smoothing.max(1e-12));

        // Laplace-smoothed priors keep absent classes representable.
        let total = y.len() as f64 + k as f64;
        self.log_prior = counts.iter().map(|&c| ((c as f64 + 1.0) / total).ln()).collect();
    }

    fn predict_row(&self, row: &[f64]) -> u32 {
        assert!(self.n_classes > 0, "predict called before fit");
        let d = self.dim;
        let mut best = (0u32, f64::NEG_INFINITY);
        for c in 0..self.n_classes {
            let mut log_p = self.log_prior[c];
            for (j, &v) in row.iter().enumerate() {
                let mean = self.means[c * d + j];
                let var = self.vars[c * d + j];
                log_p -=
                    0.5 * ((2.0 * std::f64::consts::PI * var).ln() + (v - mean) * (v - mean) / var);
            }
            if log_p > best.1 {
                best = (c as u32, log_p);
            }
        }
        best.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs() -> (Matrix, Vec<u32>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            let c = i % 2;
            let offset = if c == 0 { -2.0 } else { 2.0 };
            let j = ((i * 29) % 31) as f64 / 31.0 - 0.5;
            rows.push(vec![offset + j, j]);
            labels.push(c as u32);
        }
        (Matrix::from_vecs(&rows), labels)
    }

    #[test]
    fn separates_gaussian_blobs() {
        let (x, y) = blobs();
        let mut nb = NaiveBayesClassifier::default();
        let mut rng = StdRng::seed_from_u64(0);
        nb.fit(&x, &y, 2, &mut rng);
        let acc = crate::metrics::accuracy(&y, &nb.predict(&x));
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn constant_feature_does_not_crash() {
        let x =
            Matrix::from_vecs(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 0.1], vec![1.0, 0.9]]);
        let y = vec![0, 1, 0, 1];
        let mut nb = NaiveBayesClassifier::default();
        let mut rng = StdRng::seed_from_u64(1);
        nb.fit(&x, &y, 2, &mut rng);
        let preds = nb.predict(&x);
        assert!(preds.iter().all(|&p| p < 2));
        assert_eq!(preds, y, "the informative feature still separates");
    }

    #[test]
    fn absent_class_gets_prior_only() {
        let x = Matrix::from_vecs(&[vec![0.0], vec![0.1], vec![0.2]]);
        let y = vec![0, 0, 0];
        let mut nb = NaiveBayesClassifier::default();
        let mut rng = StdRng::seed_from_u64(2);
        nb.fit(&x, &y, 3, &mut rng);
        assert_eq!(nb.predict_row(&[0.05]), 0);
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        NaiveBayesClassifier::default().predict_row(&[0.0]);
    }
}
