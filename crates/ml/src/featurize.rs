//! Featurization: frame → numeric design matrix.
//!
//! Pipeline (fitted on training data only, then applied to both splits —
//! the paper's Polluter keeps train and test separate to avoid leakage,
//! and so must the preprocessing):
//!
//! 1. numeric features: impute missing with the training mean, then
//!    standardize with training mean/std,
//! 2. categorical features: impute missing with the training mode, then
//!    one-hot encode over the column's full dictionary.
//!
//! Imputation-then-standardization means a missing numeric value maps to
//! exactly `0.0` — information is lost (which is why missing-value pollution
//! hurts accuracy) but training never crashes.

use crate::Matrix;
use comet_frame::{ColumnKind, DataFrame, FrameError, Result};

#[derive(Debug, Clone, PartialEq)]
enum FeatSpec {
    Numeric { col: usize, mean: f64, std: f64 },
    Categorical { col: usize, cardinality: usize, mode: u32 },
}

/// Maps one original feature column to a range of output matrix columns —
/// needed by Shapley grouping (perturb all one-hot columns of a feature
/// together).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureGroup {
    /// Original frame column index.
    pub col: usize,
    /// First output column.
    pub start: usize,
    /// One-past-last output column.
    pub end: usize,
}

/// Fitted featurization pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Featurizer {
    specs: Vec<FeatSpec>,
    groups: Vec<FeatureGroup>,
    out_dim: usize,
}

impl Featurizer {
    /// Fit on the training frame: record means/stds/modes/cardinalities.
    pub fn fit(train: &DataFrame) -> Result<Self> {
        let mut specs = Vec::new();
        let mut groups = Vec::new();
        let mut out = 0usize;
        for col in train.feature_indices() {
            let column = train.column(col)?;
            match column.kind() {
                ColumnKind::Numeric => {
                    let mean = column.mean().unwrap_or(0.0);
                    let mut std = column.std().unwrap_or(1.0);
                    if std < 1e-12 {
                        std = 1.0; // constant column: center only
                    }
                    specs.push(FeatSpec::Numeric { col, mean, std });
                    groups.push(FeatureGroup { col, start: out, end: out + 1 });
                    out += 1;
                }
                ColumnKind::Categorical => {
                    let cardinality = column.cardinality();
                    if cardinality == 0 {
                        return Err(FrameError::InvalidArgument(format!(
                            "categorical column {:?} has an empty dictionary",
                            column.name()
                        )));
                    }
                    let mode = column.mode().unwrap_or(0);
                    specs.push(FeatSpec::Categorical { col, cardinality, mode });
                    groups.push(FeatureGroup { col, start: out, end: out + cardinality });
                    out += cardinality;
                }
            }
        }
        if out == 0 {
            return Err(FrameError::InvalidArgument("frame has no features".into()));
        }
        Ok(Featurizer { specs, groups, out_dim: out })
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.out_dim
    }

    /// Original-feature → output-column grouping.
    pub fn groups(&self) -> &[FeatureGroup] {
        &self.groups
    }

    /// Transform a frame (train or test) into a design matrix. The frame
    /// must have the same schema as the fitting frame.
    pub fn transform(&self, df: &DataFrame) -> Result<Matrix> {
        let n = df.nrows();
        let mut m = Matrix::zeros(n, self.out_dim);
        let mut offset = 0usize;
        for spec in &self.specs {
            match *spec {
                FeatSpec::Numeric { col, mean, std } => {
                    let column = df.column(col)?;
                    if column.kind() != ColumnKind::Numeric {
                        return Err(FrameError::TypeMismatch {
                            column: column.name().to_string(),
                            expected: "numeric",
                            got: column.kind().name(),
                        });
                    }
                    for row in 0..n {
                        // Missing → mean-impute → standardized 0. Non-finite
                        // values (overflowed scaling errors) are clamped.
                        let v = column.num(row).unwrap_or(mean);
                        let z = (v - mean) / std;
                        m.set(row, offset, z.clamp(-1e9, 1e9));
                    }
                    offset += 1;
                }
                FeatSpec::Categorical { col, cardinality, mode } => {
                    let column = df.column(col)?;
                    if column.kind() != ColumnKind::Categorical {
                        return Err(FrameError::TypeMismatch {
                            column: column.name().to_string(),
                            expected: "categorical",
                            got: column.kind().name(),
                        });
                    }
                    if column.cardinality() != cardinality {
                        return Err(FrameError::InvalidArgument(format!(
                            "column {:?} cardinality changed ({} → {})",
                            column.name(),
                            cardinality,
                            column.cardinality()
                        )));
                    }
                    for row in 0..n {
                        let code = column.cat(row).unwrap_or(mode) as usize;
                        m.set(row, offset + code, 1.0);
                    }
                    offset += cardinality;
                }
            }
        }
        Ok(m)
    }

    /// Fit on `train` and transform both splits — the common call.
    pub fn fit_transform(
        train: &DataFrame,
        test: &DataFrame,
    ) -> Result<(Featurizer, Matrix, Matrix)> {
        let f = Featurizer::fit(train)?;
        let xtr = f.transform(train)?;
        let xte = f.transform(test)?;
        Ok((f, xtr, xte))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_frame::{Cell, Column};

    fn frame() -> DataFrame {
        let x = Column::numeric("x", vec![1.0, 2.0, 3.0, 4.0]);
        let c =
            Column::categorical("c", vec![0, 1, 1, 2], vec!["a".into(), "b".into(), "d".into()])
                .unwrap();
        let y = Column::categorical("y", vec![0, 1, 0, 1], vec!["n".into(), "p".into()]).unwrap();
        DataFrame::new(vec![x, c, y], Some("y")).unwrap()
    }

    #[test]
    fn dimensions_and_groups() {
        let df = frame();
        let f = Featurizer::fit(&df).unwrap();
        assert_eq!(f.dim(), 4); // 1 numeric + 3 one-hot
        assert_eq!(
            f.groups(),
            &[FeatureGroup { col: 0, start: 0, end: 1 }, FeatureGroup { col: 1, start: 1, end: 4 },]
        );
    }

    #[test]
    fn standardization_uses_train_stats() {
        let df = frame();
        let f = Featurizer::fit(&df).unwrap();
        let m = f.transform(&df).unwrap();
        // Column 0 standardized: mean 2.5, std = sqrt(5/3).
        let std = (5.0f64 / 3.0).sqrt();
        assert!((m.get(0, 0) - (1.0 - 2.5) / std).abs() < 1e-12);
        // Standardized column has mean ~0.
        let mean: f64 = (0..4).map(|i| m.get(i, 0)).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
    }

    #[test]
    fn one_hot_layout() {
        let df = frame();
        let f = Featurizer::fit(&df).unwrap();
        let m = f.transform(&df).unwrap();
        // Row 0 has category 0 → [1,0,0]; row 3 category 2 → [0,0,1].
        assert_eq!(&m.row(0)[1..4], &[1.0, 0.0, 0.0]);
        assert_eq!(&m.row(3)[1..4], &[0.0, 0.0, 1.0]);
        // Exactly one hot per row.
        for i in 0..4 {
            let s: f64 = m.row(i)[1..4].iter().sum();
            assert_eq!(s, 1.0);
        }
    }

    #[test]
    fn missing_numeric_maps_to_zero() {
        let mut df = frame();
        df.set(0, 0, Cell::Missing).unwrap();
        let clean = frame();
        let f = Featurizer::fit(&clean).unwrap();
        let m = f.transform(&df).unwrap();
        assert_eq!(m.get(0, 0), 0.0, "mean-imputed missing standardizes to 0");
    }

    #[test]
    fn missing_categorical_maps_to_mode() {
        let mut df = frame();
        df.set(0, 1, Cell::Missing).unwrap();
        let f = Featurizer::fit(&frame()).unwrap();
        let m = f.transform(&df).unwrap();
        // Mode of c is code 1 ("b").
        assert_eq!(&m.row(0)[1..4], &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn constant_column_does_not_divide_by_zero() {
        let x = Column::numeric("x", vec![5.0, 5.0, 5.0]);
        let y = Column::categorical("y", vec![0, 1, 0], vec!["n".into(), "p".into()]).unwrap();
        let df = DataFrame::new(vec![x, y], Some("y")).unwrap();
        let f = Featurizer::fit(&df).unwrap();
        let m = f.transform(&df).unwrap();
        for i in 0..3 {
            assert_eq!(m.get(i, 0), 0.0);
            assert!(m.get(i, 0).is_finite());
        }
    }

    #[test]
    fn test_split_transformed_with_train_stats() {
        let train = frame();
        let test = frame().take(&[0, 1]).unwrap();
        let (f, xtr, xte) = Featurizer::fit_transform(&train, &test).unwrap();
        assert_eq!(xtr.nrows(), 4);
        assert_eq!(xte.nrows(), 2);
        assert_eq!(xte.row(0), xtr.row(0), "same row, same stats → same output");
        assert_eq!(f.dim(), 4);
    }

    #[test]
    fn extreme_values_are_clamped() {
        let mut df = frame();
        df.set(0, 0, Cell::Num(1e300)).unwrap();
        let f = Featurizer::fit(&frame()).unwrap();
        let m = f.transform(&df).unwrap();
        assert!(m.get(0, 0).is_finite());
        assert!(m.get(0, 0) <= 1e9);
    }

    #[test]
    fn no_features_rejected() {
        let y = Column::categorical("y", vec![0, 1], vec!["n".into(), "p".into()]).unwrap();
        let df = DataFrame::new(vec![y], Some("y")).unwrap();
        assert!(Featurizer::fit(&df).is_err());
    }
}
