//! Featurization: frame → numeric design matrix.
//!
//! Pipeline (fitted on training data only, then applied to both splits —
//! the paper's Polluter keeps train and test separate to avoid leakage,
//! and so must the preprocessing):
//!
//! 1. numeric features: impute missing with the training mean, then
//!    standardize with training mean/std,
//! 2. categorical features: impute missing with the training mode, then
//!    one-hot encode over the column's full dictionary.
//!
//! Imputation-then-standardization means a missing numeric value maps to
//! exactly `0.0` — information is lost (which is why missing-value pollution
//! hurts accuracy) but training never crashes.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::Matrix;
use comet_frame::{Column, ColumnKind, ColumnSummary, DataFrame, FrameError, Result, SegmentView};

#[derive(Debug, Clone, PartialEq)]
enum FeatSpec {
    Numeric { col: usize, mean: f64, std: f64 },
    Categorical { col: usize, cardinality: usize, mode: u32 },
}

impl FeatSpec {
    /// Number of output columns this spec produces.
    fn width(&self) -> usize {
        match *self {
            FeatSpec::Numeric { .. } => 1,
            FeatSpec::Categorical { cardinality, .. } => cardinality,
        }
    }

    /// Key describing the *transformation parameters* (not the source
    /// column): blocks are cached per (params, input-content) pair, so a
    /// refitted featurizer with identical stats still hits.
    fn params_key(&self) -> u64 {
        const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        fn mix(hash: u64, word: u64) -> u64 {
            (hash.rotate_left(5) ^ word).wrapping_mul(SEED)
        }
        match *self {
            FeatSpec::Numeric { mean, std, .. } => {
                mix(mix(mix(SEED, 1), mean.to_bits()), std.to_bits())
            }
            FeatSpec::Categorical { cardinality, mode, .. } => {
                mix(mix(mix(SEED, 2), cardinality as u64), mode as u64)
            }
        }
    }
}

/// Per-column fitted statistics, independent of column position — what the
/// [`FeatureCache`] memoizes so `fit` stops re-scanning unchanged columns.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SpecStats {
    Numeric { mean: f64, std: f64 },
    Categorical { cardinality: usize, mode: u32 },
}

/// Hit/miss/occupancy snapshot of a [`FeatureCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FeatureCacheStats {
    /// Cached per-column fitted stats.
    pub spec_entries: usize,
    /// Cached transformed blocks.
    pub block_entries: usize,
    /// Block lookups answered from cache.
    pub block_hits: u64,
    /// Block lookups that had to transform.
    pub block_misses: u64,
}

#[derive(Debug)]
struct FeatureCacheInner {
    /// Column content fingerprint → fitted stats.
    // comet-lint: allow(D1) — lookup-only memo; never iterated, so order cannot leak into a trace
    stats: HashMap<u64, SpecStats>,
    /// (spec params key, *segment* content fingerprint) → dense transformed
    /// block, row-major `seg_len × spec.width()`. Per-segment granularity
    /// means a few-cell pollution on a huge column invalidates (and
    /// recomputes) only the touched segments' blocks.
    // comet-lint: allow(D1) — lookup-only memo; eviction clears wholesale rather than iterating
    blocks: HashMap<(u64, u64), Arc<Vec<f64>>>,
    /// Heap bytes currently held by `blocks` values.
    block_bytes: usize,
    /// Byte budget for `blocks` before a wholesale clear.
    block_byte_budget: usize,
    block_hits: u64,
    block_misses: u64,
}

impl Default for FeatureCacheInner {
    fn default() -> Self {
        FeatureCacheInner {
            // comet-lint: allow(D1) — construction of the lookup-only memos declared above
            stats: HashMap::default(),
            // comet-lint: allow(D1) — construction of the lookup-only memos declared above
            blocks: HashMap::default(),
            block_bytes: 0,
            block_byte_budget: DEFAULT_BLOCK_BYTE_BUDGET,
            block_hits: 0,
            block_misses: 0,
        }
    }
}

/// Bounds before a wholesale clear: a spec entry is a few words, a block is
/// `seg_len × width` floats, so blocks get the tighter cap. Blocks are
/// *derived* data — their source segments are content-addressed (and
/// possibly already on disk in the spill tier), so "evicting" a feature
/// block is just dropping it; recompute is one pass over the segment. That
/// is why cold feature blocks are dropped under memory pressure rather than
/// spilled: re-reading a spilled block would cost the same I/O as reloading
/// the segment, without saving the (cheap, clamp-and-scale) transform.
const SPEC_CACHE_CAP: usize = 65_536;
const BLOCK_CACHE_CAP: usize = 4_096;
/// Default byte budget for cached blocks (256 MiB) — small frames never hit
/// it; million-row sessions bound their featurize footprint with it. The
/// session runner lowers it via [`FeatureCache::set_block_byte_budget`]
/// when a `--memory-budget` is configured.
const DEFAULT_BLOCK_BYTE_BUDGET: usize = 256 << 20;

/// Column-block featurization cache.
///
/// A candidate pollution mutates exactly one column, yet the pre-cache hot
/// path re-fitted the featurizer and re-transformed *every* column of both
/// splits per candidate. This cache keys each column's fitted stats and its
/// transformed output block by the column's content fingerprint
/// (`comet-frame::fingerprint`, memoized per column), so only the dirty
/// column's block is recomputed and the clean columns' blocks are spliced
/// from cache into the reused output buffer.
///
/// Clones share storage (the cleaning environment clones per worker), and
/// all methods take `&self`; compute happens outside the short lock-held
/// sections. Counters: `featurize.block_hits` / `featurize.block_misses`.
#[derive(Debug, Clone, Default)]
pub struct FeatureCache {
    inner: Arc<Mutex<FeatureCacheInner>>,
}

impl FeatureCache {
    /// New empty cache.
    pub fn new() -> Self {
        FeatureCache::default()
    }

    /// Drop every entry (counters survive; they describe the process run).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.stats.clear();
        inner.blocks.clear();
        inner.block_bytes = 0;
    }

    /// Occupancy and hit/miss counters.
    pub fn stats(&self) -> FeatureCacheStats {
        let inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        FeatureCacheStats {
            spec_entries: inner.stats.len(),
            block_entries: inner.blocks.len(),
            block_hits: inner.block_hits,
            block_misses: inner.block_misses,
        }
    }

    fn lookup_stats(&self, fp: u64) -> Option<SpecStats> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner).stats.get(&fp).copied()
    }

    fn insert_stats(&self, fp: u64, stats: SpecStats) {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if inner.stats.len() >= SPEC_CACHE_CAP {
            inner.stats.clear();
        }
        inner.stats.insert(fp, stats);
    }

    fn lookup_block(&self, key: (u64, u64)) -> Option<Arc<Vec<f64>>> {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match inner.blocks.get(&key) {
            Some(block) => {
                let block = Arc::clone(block);
                inner.block_hits += 1;
                drop(inner);
                comet_obs::counter_add("featurize.block_hits", 1);
                Some(block)
            }
            None => {
                inner.block_misses += 1;
                drop(inner);
                comet_obs::counter_add("featurize.block_misses", 1);
                None
            }
        }
    }

    fn insert_block(&self, key: (u64, u64), block: Arc<Vec<f64>>) {
        let bytes = block.len() * std::mem::size_of::<f64>();
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if inner.blocks.len() >= BLOCK_CACHE_CAP
            || inner.block_bytes.saturating_add(bytes) > inner.block_byte_budget
        {
            inner.blocks.clear();
            inner.block_bytes = 0;
        }
        inner.block_bytes += bytes;
        inner.blocks.insert(key, block);
    }

    /// Bound the bytes held by cached transformed blocks; exceeding it
    /// clears the block cache wholesale (blocks are cheap to recompute from
    /// their — possibly disk-backed — source segments).
    pub fn set_block_byte_budget(&self, bytes: usize) {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.block_byte_budget = bytes.max(1);
        if inner.block_bytes > inner.block_byte_budget {
            inner.blocks.clear();
            inner.block_bytes = 0;
        }
    }
}

/// Maps one original feature column to a range of output matrix columns —
/// needed by Shapley grouping (perturb all one-hot columns of a feature
/// together).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureGroup {
    /// Original frame column index.
    pub col: usize,
    /// First output column.
    pub start: usize,
    /// One-past-last output column.
    pub end: usize,
}

/// Fitted featurization pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Featurizer {
    specs: Vec<FeatSpec>,
    groups: Vec<FeatureGroup>,
    out_dim: usize,
}

/// Fit one column's statistics (the O(rows) scan the cache avoids).
fn column_stats(column: &Column) -> Result<SpecStats> {
    match column.kind() {
        ColumnKind::Numeric => {
            // One summary() pass: mean() + std() would each run the full
            // Welford scan, doubling the dominant per-column cost of an
            // uncached fit. Same scan, same bits.
            let (mean, mut std) = match column.summary() {
                ColumnSummary::Numeric(s) if s.count > 0 => (s.mean, s.std),
                _ => (0.0, 1.0),
            };
            if std < 1e-12 {
                std = 1.0; // constant column: center only
            }
            Ok(SpecStats::Numeric { mean, std })
        }
        ColumnKind::Categorical => {
            let cardinality = column.cardinality();
            if cardinality == 0 {
                return Err(FrameError::InvalidArgument(format!(
                    "categorical column {:?} has an empty dictionary",
                    column.name()
                )));
            }
            let mode = column.mode().unwrap_or(0);
            Ok(SpecStats::Categorical { cardinality, mode })
        }
    }
}

impl Featurizer {
    /// Fit on the training frame: record means/stds/modes/cardinalities.
    pub fn fit(train: &DataFrame) -> Result<Self> {
        Featurizer::fit_impl(train, None)
    }

    /// [`Featurizer::fit`] memoizing per-column statistics in `cache`, so a
    /// candidate that mutated one column only re-scans that column. Results
    /// are bit-identical to an uncached fit (stats are a pure function of
    /// column content, and the fingerprint covers all of it).
    pub fn fit_cached(train: &DataFrame, cache: &FeatureCache) -> Result<Self> {
        Featurizer::fit_impl(train, Some(cache))
    }

    fn fit_impl(train: &DataFrame, cache: Option<&FeatureCache>) -> Result<Self> {
        let mut specs = Vec::new();
        let mut groups = Vec::new();
        let mut out = 0usize;
        for col in train.feature_indices() {
            let column = train.column(col)?;
            let stats = match cache {
                Some(cache) => {
                    let fp = column.fingerprint();
                    match cache.lookup_stats(fp) {
                        Some(stats) => stats,
                        None => {
                            let stats = column_stats(column)?;
                            cache.insert_stats(fp, stats);
                            stats
                        }
                    }
                }
                None => column_stats(column)?,
            };
            match stats {
                SpecStats::Numeric { mean, std } => {
                    specs.push(FeatSpec::Numeric { col, mean, std });
                    groups.push(FeatureGroup { col, start: out, end: out + 1 });
                    out += 1;
                }
                SpecStats::Categorical { cardinality, mode } => {
                    specs.push(FeatSpec::Categorical { col, cardinality, mode });
                    groups.push(FeatureGroup { col, start: out, end: out + cardinality });
                    out += cardinality;
                }
            }
        }
        if out == 0 {
            return Err(FrameError::InvalidArgument("frame has no features".into()));
        }
        Ok(Featurizer { specs, groups, out_dim: out })
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.out_dim
    }

    /// Original-feature → output-column grouping.
    pub fn groups(&self) -> &[FeatureGroup] {
        &self.groups
    }

    /// Check that `column` still matches `spec` (schema drift errors are
    /// the same whether or not the block cache is in play).
    fn validate(spec: &FeatSpec, column: &Column) -> Result<()> {
        match *spec {
            FeatSpec::Numeric { .. } => {
                if column.kind() != ColumnKind::Numeric {
                    return Err(FrameError::TypeMismatch {
                        column: column.name().to_string(),
                        expected: "numeric",
                        got: column.kind().name(),
                    });
                }
            }
            FeatSpec::Categorical { cardinality, .. } => {
                if column.kind() != ColumnKind::Categorical {
                    return Err(FrameError::TypeMismatch {
                        column: column.name().to_string(),
                        expected: "categorical",
                        got: column.kind().name(),
                    });
                }
                if column.cardinality() != cardinality {
                    return Err(FrameError::InvalidArgument(format!(
                        "column {:?} cardinality changed ({} → {})",
                        column.name(),
                        cardinality,
                        column.cardinality()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Transform one segment into a dense row-major `seg_len × width` block.
    fn compute_segment_block(spec: &FeatSpec, view: &SegmentView) -> Vec<f64> {
        let n = view.len();
        match *spec {
            FeatSpec::Numeric { mean, std, .. } => {
                let mut block = Vec::with_capacity(n);
                for local in 0..n {
                    // Missing → mean-impute → standardized 0. Non-finite
                    // values (overflowed scaling errors) are clamped.
                    let v = view.num(local).unwrap_or(mean);
                    let z = (v - mean) / std;
                    block.push(z.clamp(-1e9, 1e9));
                }
                block
            }
            FeatSpec::Categorical { cardinality, mode, .. } => {
                let mut block = vec![0.0; n * cardinality];
                for local in 0..n {
                    let code = view.cat(local).unwrap_or(mode) as usize;
                    block[local * cardinality + code] = 1.0;
                }
                block
            }
        }
    }

    /// Transform a frame (train or test) into a design matrix. The frame
    /// must have the same schema as the fitting frame.
    pub fn transform(&self, df: &DataFrame) -> Result<Matrix> {
        self.transform_with(df, None, Vec::new())
    }

    /// [`Featurizer::transform`] into a recycled buffer, optionally splicing
    /// per-segment blocks from `cache`. Only segments whose (params, segment
    /// content) key misses are recomputed — in parallel via `comet-par` when
    /// several segments miss at once; output is bit-identical to an uncached
    /// transform. The buffer's allocation is reused when large enough.
    pub fn transform_with(
        &self,
        df: &DataFrame,
        cache: Option<&FeatureCache>,
        buf: Vec<f64>,
    ) -> Result<Matrix> {
        let n = df.nrows();
        let d = self.out_dim;
        let mut m = Matrix::from_buffer(n, d, buf);
        let out = m.as_mut_slice();
        for (spec, group) in self.specs.iter().zip(&self.groups) {
            let column = df.column(group.col)?;
            Featurizer::validate(spec, column)?;
            let w = spec.width();
            match cache {
                Some(cache) => {
                    // Per-segment keys: a few-cell pollution invalidates only
                    // the touched segments' blocks, not the whole column.
                    let params = spec.params_key();
                    let mut blocks: Vec<Option<Arc<Vec<f64>>>> =
                        Vec::with_capacity(column.n_segments());
                    let mut missed: Vec<(usize, SegmentView)> = Vec::new();
                    for seg in 0..column.n_segments() {
                        let key = (params, column.segment_fingerprint(seg)?);
                        match cache.lookup_block(key) {
                            Some(block) => blocks.push(Some(block)),
                            None => {
                                blocks.push(None);
                                missed.push((seg, column.segment_view(seg)?));
                            }
                        }
                    }
                    let computed = comet_par::par_map(missed, |(seg, view)| {
                        (seg, Arc::new(Featurizer::compute_segment_block(spec, &view)))
                    });
                    for (seg, block) in computed {
                        let key = (params, column.segment_fingerprint(seg)?);
                        cache.insert_block(key, Arc::clone(&block));
                        blocks[seg] = Some(block);
                    }
                    // Splice each dense block into its output column range.
                    for (seg, block) in blocks.iter().enumerate() {
                        let Some(block) = block else { continue };
                        let offset = column.segment_offset(seg);
                        for local in 0..column.segment_len(seg) {
                            let row = offset + local;
                            out[row * d + group.start..row * d + group.end]
                                .copy_from_slice(&block[local * w..(local + 1) * w]);
                        }
                    }
                }
                None => {
                    for seg in 0..column.n_segments() {
                        let view = column.segment_view(seg)?;
                        let offset = column.segment_offset(seg);
                        match *spec {
                            FeatSpec::Numeric { mean, std, .. } => {
                                for local in 0..view.len() {
                                    let v = view.num(local).unwrap_or(mean);
                                    let z = (v - mean) / std;
                                    out[(offset + local) * d + group.start] = z.clamp(-1e9, 1e9);
                                }
                            }
                            FeatSpec::Categorical { mode, .. } => {
                                for local in 0..view.len() {
                                    let code = view.cat(local).unwrap_or(mode) as usize;
                                    out[(offset + local) * d + group.start + code] = 1.0;
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(m)
    }

    /// Fit on `train` and transform both splits — the common call.
    pub fn fit_transform(
        train: &DataFrame,
        test: &DataFrame,
    ) -> Result<(Featurizer, Matrix, Matrix)> {
        let f = Featurizer::fit(train)?;
        let xtr = f.transform(train)?;
        let xte = f.transform(test)?;
        Ok((f, xtr, xte))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_frame::{Cell, Column};

    fn frame() -> DataFrame {
        let x = Column::numeric("x", vec![1.0, 2.0, 3.0, 4.0]);
        let c =
            Column::categorical("c", vec![0, 1, 1, 2], vec!["a".into(), "b".into(), "d".into()])
                .unwrap();
        let y = Column::categorical("y", vec![0, 1, 0, 1], vec!["n".into(), "p".into()]).unwrap();
        DataFrame::new(vec![x, c, y], Some("y")).unwrap()
    }

    #[test]
    fn dimensions_and_groups() {
        let df = frame();
        let f = Featurizer::fit(&df).unwrap();
        assert_eq!(f.dim(), 4); // 1 numeric + 3 one-hot
        assert_eq!(
            f.groups(),
            &[FeatureGroup { col: 0, start: 0, end: 1 }, FeatureGroup { col: 1, start: 1, end: 4 },]
        );
    }

    #[test]
    fn standardization_uses_train_stats() {
        let df = frame();
        let f = Featurizer::fit(&df).unwrap();
        let m = f.transform(&df).unwrap();
        // Column 0 standardized: mean 2.5, std = sqrt(5/3).
        let std = (5.0f64 / 3.0).sqrt();
        assert!((m.get(0, 0) - (1.0 - 2.5) / std).abs() < 1e-12);
        // Standardized column has mean ~0.
        let mean: f64 = (0..4).map(|i| m.get(i, 0)).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
    }

    #[test]
    fn one_hot_layout() {
        let df = frame();
        let f = Featurizer::fit(&df).unwrap();
        let m = f.transform(&df).unwrap();
        // Row 0 has category 0 → [1,0,0]; row 3 category 2 → [0,0,1].
        assert_eq!(&m.row(0)[1..4], &[1.0, 0.0, 0.0]);
        assert_eq!(&m.row(3)[1..4], &[0.0, 0.0, 1.0]);
        // Exactly one hot per row.
        for i in 0..4 {
            let s: f64 = m.row(i)[1..4].iter().sum();
            assert_eq!(s, 1.0);
        }
    }

    #[test]
    fn missing_numeric_maps_to_zero() {
        let mut df = frame();
        df.set(0, 0, Cell::Missing).unwrap();
        let clean = frame();
        let f = Featurizer::fit(&clean).unwrap();
        let m = f.transform(&df).unwrap();
        assert_eq!(m.get(0, 0), 0.0, "mean-imputed missing standardizes to 0");
    }

    #[test]
    fn missing_categorical_maps_to_mode() {
        let mut df = frame();
        df.set(0, 1, Cell::Missing).unwrap();
        let f = Featurizer::fit(&frame()).unwrap();
        let m = f.transform(&df).unwrap();
        // Mode of c is code 1 ("b").
        assert_eq!(&m.row(0)[1..4], &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn constant_column_does_not_divide_by_zero() {
        let x = Column::numeric("x", vec![5.0, 5.0, 5.0]);
        let y = Column::categorical("y", vec![0, 1, 0], vec!["n".into(), "p".into()]).unwrap();
        let df = DataFrame::new(vec![x, y], Some("y")).unwrap();
        let f = Featurizer::fit(&df).unwrap();
        let m = f.transform(&df).unwrap();
        for i in 0..3 {
            assert_eq!(m.get(i, 0), 0.0);
            assert!(m.get(i, 0).is_finite());
        }
    }

    #[test]
    fn test_split_transformed_with_train_stats() {
        let train = frame();
        let test = frame().take(&[0, 1]).unwrap();
        let (f, xtr, xte) = Featurizer::fit_transform(&train, &test).unwrap();
        assert_eq!(xtr.nrows(), 4);
        assert_eq!(xte.nrows(), 2);
        assert_eq!(xte.row(0), xtr.row(0), "same row, same stats → same output");
        assert_eq!(f.dim(), 4);
    }

    #[test]
    fn extreme_values_are_clamped() {
        let mut df = frame();
        df.set(0, 0, Cell::Num(1e300)).unwrap();
        let f = Featurizer::fit(&frame()).unwrap();
        let m = f.transform(&df).unwrap();
        assert!(m.get(0, 0).is_finite());
        assert!(m.get(0, 0) <= 1e9);
    }

    #[test]
    fn cached_fit_and_transform_match_uncached_bitwise() {
        let cache = FeatureCache::new();
        let mut df = frame();
        for _ in 0..3 {
            // Cold then warm passes over the same content.
            let plain = Featurizer::fit(&df).unwrap();
            let cached = Featurizer::fit_cached(&df, &cache).unwrap();
            assert_eq!(plain, cached);
            let m_plain = plain.transform(&df).unwrap();
            let m_cached = cached.transform_with(&df, Some(&cache), Vec::new()).unwrap();
            assert_eq!(m_plain, m_cached);
            // Mutate one column and go again.
            df.set(1, 0, Cell::Num(99.0)).unwrap();
        }
        let stats = cache.stats();
        assert!(stats.block_hits > 0, "repeat passes must hit: {stats:?}");
        assert!(stats.block_entries > 0 && stats.spec_entries > 0);
    }

    #[test]
    fn cache_reuses_clean_columns_after_single_column_mutation() {
        let cache = FeatureCache::new();
        let df = frame();
        let f = Featurizer::fit_cached(&df, &cache).unwrap();
        f.transform_with(&df, Some(&cache), Vec::new()).unwrap();
        let misses_before = cache.stats().block_misses;
        let mut polluted = df.clone();
        polluted.set(0, 0, Cell::Missing).unwrap(); // dirty numeric col only
        let f2 = Featurizer::fit_cached(&polluted, &cache).unwrap();
        f2.transform_with(&polluted, Some(&cache), Vec::new()).unwrap();
        let stats = cache.stats();
        // Only the mutated column's block missed; the categorical column hit.
        assert_eq!(stats.block_misses, misses_before + 1, "{stats:?}");
    }

    #[test]
    fn cached_transform_reports_schema_errors_like_uncached() {
        let cache = FeatureCache::new();
        let df = frame();
        let f = Featurizer::fit_cached(&df, &cache).unwrap();
        // Swap the frames' columns: categorical where numeric was expected.
        let c = Column::categorical("x", vec![0, 0, 0, 0], vec!["a".into()]).unwrap();
        let k = Column::numeric("c", vec![0.0; 4]);
        let y = Column::categorical("y", vec![0, 1, 0, 1], vec!["n".into(), "p".into()]).unwrap();
        let swapped = DataFrame::new(vec![c, k, y], Some("y")).unwrap();
        let plain = f.transform(&swapped).unwrap_err();
        let cached = f.transform_with(&swapped, Some(&cache), Vec::new()).unwrap_err();
        assert_eq!(format!("{plain}"), format!("{cached}"));
    }

    #[test]
    fn clear_empties_cache() {
        let cache = FeatureCache::new();
        let df = frame();
        let f = Featurizer::fit_cached(&df, &cache).unwrap();
        f.transform_with(&df, Some(&cache), Vec::new()).unwrap();
        assert!(cache.stats().block_entries > 0);
        cache.clear();
        let stats = cache.stats();
        assert_eq!((stats.spec_entries, stats.block_entries), (0, 0));
    }

    #[test]
    fn no_features_rejected() {
        let y = Column::categorical("y", vec![0, 1], vec!["n".into(), "p".into()]).unwrap();
        let df = DataFrame::new(vec![y], Some("y")).unwrap();
        assert!(Featurizer::fit(&df).is_err());
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(24))]
        #[test]
        fn cached_transform_bit_identical_across_pollute_restore(
            ops in proptest::prop::collection::vec((0usize..4, 0usize..4), 1..10),
        ) {
            // One long-lived cache across an arbitrary pollute/restore
            // sequence — the session-loop shape. After every mutation the
            // cached fit + transform must match a fresh fit + transform
            // bit for bit (restores revisit earlier fingerprints, so stale
            // entries would surface here).
            let cache = FeatureCache::new();
            let base = frame();
            let mut df = frame();
            for &(row, op) in &ops {
                match op {
                    0 => df.set(row, 0, Cell::Missing).unwrap(),
                    1 => df.set(row, 0, Cell::Num(row as f64 * 3.5 - 1.0)).unwrap(),
                    2 => df.set(row, 1, Cell::Cat((row % 3) as u32)).unwrap(),
                    _ => {
                        // Restore both feature cells to ground truth.
                        df.set(row, 0, base.column(0).unwrap().get(row).unwrap()).unwrap();
                        df.set(row, 1, base.column(1).unwrap().get(row).unwrap()).unwrap();
                    }
                }
                let fresh = Featurizer::fit(&df).unwrap();
                let cached = Featurizer::fit_cached(&df, &cache).unwrap();
                let a = fresh.transform(&df).unwrap();
                let b = cached.transform_with(&df, Some(&cache), Vec::new()).unwrap();
                proptest::prop_assert_eq!((a.nrows(), a.ncols()), (b.nrows(), b.ncols()));
                for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                    proptest::prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }
}
