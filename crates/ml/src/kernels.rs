//! Fixed-order, 4-way-unrolled linear-algebra kernels for the hot path.
//!
//! Every kernel accumulates in a *fixed* order — four independent lanes
//! over the unrolled body, combined as `(l0 + l1) + (l2 + l3)` plus a
//! sequential tail — so results are bit-identical run-to-run and across
//! thread counts (each parallel worker runs the same serial kernel on the
//! same slice). The unrolling exists to break the sequential-add dependency
//! chain; the compiler can keep four accumulators in flight without being
//! allowed to re-associate the sum itself (which `-ffast-math`-style
//! vectorization would need, and which would break trace determinism).
//!
//! [`matmul`] additionally blocks over rows/columns so the working set of
//! the inner loops stays cache-resident on large operands; the loop order
//! (i-k-j with a unit-stride inner loop) is itself fixed, so blocking does
//! not perturb each output cell's accumulation order relative to the
//! unblocked i-k-j loop.

/// Dot product with four fixed-order accumulator lanes.
///
/// Panics in debug builds if the slices differ in length; in release the
/// shorter length governs.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let (mut l0, mut l1, mut l2, mut l3) = (0.0, 0.0, 0.0, 0.0);
    for (pa, pb) in ca.by_ref().zip(cb.by_ref()) {
        l0 += pa[0] * pb[0];
        l1 += pa[1] * pb[1];
        l2 += pa[2] * pb[2];
        l3 += pa[3] * pb[3];
    }
    let mut tail = 0.0;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    ((l0 + l1) + (l2 + l3)) + tail
}

/// `y += alpha * x`, unrolled 4-wide. Element-wise, so no accumulation
/// order is involved; the unroll only widens the store pipeline.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    let mut cy = y.chunks_exact_mut(4);
    let mut cx = x.chunks_exact(4);
    for (py, px) in cy.by_ref().zip(cx.by_ref()) {
        py[0] += alpha * px[0];
        py[1] += alpha * px[1];
        py[2] += alpha * px[2];
        py[3] += alpha * px[3];
    }
    for (yi, xi) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *yi += alpha * xi;
    }
}

/// `y = alpha * y + beta * x`, unrolled 4-wide (the SGD weight-decay +
/// gradient step fused into one pass).
#[inline]
pub fn scale_axpy(alpha: f64, y: &mut [f64], beta: f64, x: &[f64]) {
    debug_assert_eq!(x.len(), y.len());
    let mut cy = y.chunks_exact_mut(4);
    let mut cx = x.chunks_exact(4);
    for (py, px) in cy.by_ref().zip(cx.by_ref()) {
        py[0] = alpha * py[0] + beta * px[0];
        py[1] = alpha * py[1] + beta * px[1];
        py[2] = alpha * py[2] + beta * px[2];
        py[3] = alpha * py[3] + beta * px[3];
    }
    for (yi, xi) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *yi = alpha * *yi + beta * xi;
    }
}

/// Squared Euclidean distance with four fixed-order lanes (k-NN's inner
/// loop; callers take the square root once at the end if they need the
/// metric itself).
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let (mut l0, mut l1, mut l2, mut l3) = (0.0, 0.0, 0.0, 0.0);
    for (pa, pb) in ca.by_ref().zip(cb.by_ref()) {
        let d0 = pa[0] - pb[0];
        let d1 = pa[1] - pb[1];
        let d2 = pa[2] - pb[2];
        let d3 = pa[3] - pb[3];
        l0 += d0 * d0;
        l1 += d1 * d1;
        l2 += d2 * d2;
        l3 += d3 * d3;
    }
    let mut tail = 0.0;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x - y;
        tail += d * d;
    }
    ((l0 + l1) + (l2 + l3)) + tail
}

/// Dense row-major matrix–vector product: `out[i] = dot(a_row_i, x)`.
/// `a` holds `nrows * ncols` elements; rows stream through cache in order,
/// so no extra blocking is needed for the matvec shape.
#[inline]
pub fn matvec(a: &[f64], nrows: usize, ncols: usize, x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), nrows * ncols);
    debug_assert_eq!(x.len(), ncols);
    debug_assert_eq!(out.len(), nrows);
    if ncols == 0 {
        out.fill(0.0);
        return;
    }
    for (o, row) in out.iter_mut().zip(a.chunks_exact(ncols)) {
        *o = dot(row, x);
    }
}

/// [`matvec`] with a per-row bias added after the dot: `out[i] = dot(a_row_i,
/// x) + bias[i]` — the linear-layer forward shape shared by the GLM and MLP.
#[inline]
pub fn matvec_bias(
    a: &[f64],
    nrows: usize,
    ncols: usize,
    x: &[f64],
    bias: &[f64],
    out: &mut [f64],
) {
    debug_assert_eq!(bias.len(), nrows);
    matvec(a, nrows, ncols, x, out);
    for (o, b) in out.iter_mut().zip(bias) {
        *o += b;
    }
}

/// Block edge for [`matmul`]: 64 f64 columns = one 512-byte panel per row,
/// keeping a `B × B` tile of `b` plus a row of `out` inside L1/L2.
const MM_BLOCK: usize = 64;

/// Dense row-major matrix product `out = a(m×k) * b(k×n)`, cache-blocked.
///
/// The accumulation order per output cell is the plain k-ascending order of
/// the textbook i-k-j loop: blocking tiles the j (columns of `out`) and k
/// dimensions, but each `out[i][j]` still receives its `a[i][k]*b[k][j]`
/// terms with k strictly ascending, so the result is bit-identical to the
/// unblocked loop and independent of the block size.
pub fn matmul(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    for j0 in (0..n).step_by(MM_BLOCK) {
        let j1 = (j0 + MM_BLOCK).min(n);
        for k0 in (0..k).step_by(MM_BLOCK) {
            let k1 = (k0 + MM_BLOCK).min(k);
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let out_row = &mut out[i * n + j0..i * n + j1];
                for kk in k0..k1 {
                    axpy(a_row[kk], &b[kk * n + j0..kk * n + j1], out_row);
                }
            }
        }
    }
}

/// NaN-safe maximum over a slice in fixed left-to-right order.
///
/// NaN entries are sanitized to `-∞` ("no information") so they can never
/// poison or win the reduction — unlike `f64::max`, which silently drops
/// NaN from whichever side it lands on, and unlike raw `total_cmp`, which
/// would rank `+NaN` above `+∞`. Returns `-∞` for an empty or all-NaN
/// slice. This is the D2-sanctioned way to take a max over score-like
/// values.
#[inline]
pub fn max_sanitized(xs: &[f64]) -> f64 {
    let mut best = f64::NEG_INFINITY;
    for &x in xs {
        let x = if x.is_nan() { f64::NEG_INFINITY } else { x };
        if x > best {
            best = x;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    fn seq(n: usize, scale: f64) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.37 - 1.5) * scale).collect()
    }

    #[test]
    fn max_sanitized_ignores_nan_and_handles_empty() {
        assert_eq!(max_sanitized(&[1.0, 3.0, 2.0]), 3.0);
        assert_eq!(max_sanitized(&[1.0, f64::NAN, 2.0]), 2.0);
        assert_eq!(max_sanitized(&[f64::NAN; 3]), f64::NEG_INFINITY);
        assert_eq!(max_sanitized(&[]), f64::NEG_INFINITY);
        // NaN must not outrank +∞ the way raw `total_cmp` would let it.
        assert_eq!(max_sanitized(&[f64::INFINITY, f64::NAN]), f64::INFINITY);
    }

    #[test]
    fn dot_matches_naive_within_tolerance_and_is_deterministic() {
        for n in [0, 1, 3, 4, 5, 8, 17, 100] {
            let a = seq(n, 1.0);
            let b = seq(n, -0.5);
            let d = dot(&a, &b);
            assert!((d - naive_dot(&a, &b)).abs() < 1e-9 * (n.max(1) as f64));
            // Bitwise repeatable.
            assert_eq!(d.to_bits(), dot(&a, &b).to_bits());
        }
    }

    #[test]
    fn axpy_and_scale_axpy() {
        for n in [0, 1, 4, 7, 9] {
            let x = seq(n, 2.0);
            let mut y = seq(n, 1.0);
            let expect: Vec<f64> = y.iter().zip(&x).map(|(yi, xi)| yi + 0.5 * xi).collect();
            axpy(0.5, &x, &mut y);
            assert_eq!(y, expect);

            let mut z = seq(n, 1.0);
            let expect: Vec<f64> = z.iter().zip(&x).map(|(zi, xi)| 0.9 * zi - 0.1 * xi).collect();
            scale_axpy(0.9, &mut z, -0.1, &x);
            assert_eq!(z, expect);
        }
    }

    #[test]
    fn sq_dist_matches_naive() {
        for n in [0, 1, 4, 6, 13] {
            let a = seq(n, 1.0);
            let b = seq(n, 0.25);
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
            assert!((sq_dist(&a, &b) - naive).abs() < 1e-9);
        }
    }

    #[test]
    fn matvec_and_bias() {
        // 2x3 matrix times x.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let x = [1.0, 0.0, -1.0];
        let mut out = [0.0; 2];
        matvec(&a, 2, 3, &x, &mut out);
        assert_eq!(out, [-2.0, -2.0]);
        matvec_bias(&a, 2, 3, &x, &[10.0, 20.0], &mut out);
        assert_eq!(out, [8.0, 18.0]);
    }

    #[test]
    fn matvec_zero_cols() {
        let mut out = [1.0; 3];
        matvec(&[], 3, 0, &[], &mut out);
        assert_eq!(out, [0.0; 3]);
    }

    #[test]
    fn matmul_matches_naive_bitwise() {
        // Sizes straddling the block edge so every tiling branch runs.
        for (m, k, n) in [(1, 1, 1), (3, 4, 5), (7, 65, 9), (65, 3, 70), (70, 70, 70)] {
            let a = seq(m * k, 0.01);
            let b = seq(k * n, -0.02);
            let mut blocked = vec![0.0; m * n];
            matmul(&a, m, k, &b, n, &mut blocked);
            // Unblocked i-k-j reference with the same k-ascending order.
            let mut naive = vec![0.0; m * n];
            for i in 0..m {
                for kk in 0..k {
                    let aik = a[i * k + kk];
                    for j in 0..n {
                        naive[i * n + j] += aik * b[kk * n + j];
                    }
                }
            }
            for (x, y) in blocked.iter().zip(&naive) {
                assert_eq!(x.to_bits(), y.to_bits(), "m={m} k={k} n={n}");
            }
        }
    }
}
