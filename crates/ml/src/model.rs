//! The model-agnostic classifier interface COMET trains and evaluates.

use crate::Matrix;
use rand::RngCore;

/// A trainable multi-class classifier.
///
/// All learners take an explicit RNG so every experiment is reproducible,
/// and `n_classes` explicitly (labels are `0..n_classes` codes; a polluted
/// training split may lack some class entirely and the model must still
/// produce valid codes).
pub trait Classifier: Send + Sync {
    /// Train on a design matrix and label codes.
    fn fit(&mut self, x: &Matrix, y: &[u32], n_classes: usize, rng: &mut dyn RngCore);

    /// Predict the class of a single featurized row.
    fn predict_row(&self, row: &[f64]) -> u32;

    /// Predict all rows.
    fn predict(&self, x: &Matrix) -> Vec<u32> {
        (0..x.nrows()).map(|i| self.predict_row(x.row(i))).collect()
    }
}

/// Numerically stable softmax (in place).
pub(crate) fn softmax(scores: &mut [f64]) {
    let max = crate::kernels::max_sanitized(scores);
    let mut total = 0.0;
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
        total += *s;
    }
    if total > 0.0 {
        for s in scores.iter_mut() {
            *s /= total;
        }
    } else {
        let uniform = 1.0 / scores.len() as f64;
        scores.iter_mut().for_each(|s| *s = uniform);
    }
}

/// Argmax with lowest-index tie-breaking.
pub(crate) fn argmax(scores: &[f64]) -> u32 {
    let mut best = 0usize;
    for (i, &s) in scores.iter().enumerate().skip(1) {
        if s > scores[best] {
            best = i;
        }
    }
    best as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut s = vec![1.0, 2.0, 3.0];
        softmax(&mut s);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s[2] > s[1] && s[1] > s[0]);
    }

    #[test]
    fn softmax_handles_large_scores() {
        let mut s = vec![1000.0, 1001.0];
        softmax(&mut s);
        assert!(s.iter().all(|v| v.is_finite()));
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn softmax_degenerate_input() {
        let mut s = vec![f64::NEG_INFINITY, f64::NEG_INFINITY];
        softmax(&mut s);
        assert_eq!(s, vec![0.5, 0.5]);
    }

    #[test]
    fn argmax_ties_break_low() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }
}
