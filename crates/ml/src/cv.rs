//! k-fold cross-validation utilities.

use crate::algorithm::HyperParams;
use crate::metrics::Metric;
use crate::Matrix;
use rand::Rng;

/// Row-index folds for k-fold cross-validation.
#[derive(Debug, Clone)]
pub struct KFold {
    folds: Vec<Vec<usize>>,
}

impl KFold {
    /// Split `n` rows into `k` shuffled folds of near-equal size.
    pub fn new<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Self {
        assert!(k >= 2, "need at least 2 folds");
        assert!(n >= k, "need at least one row per fold");
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut folds: Vec<Vec<usize>> = vec![Vec::with_capacity(n / k + 1); k];
        for (i, row) in order.into_iter().enumerate() {
            folds[i % k].push(row);
        }
        folds.iter_mut().for_each(|f| f.sort_unstable());
        KFold { folds }
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.folds.len()
    }

    /// `(train_rows, validation_rows)` for fold `i`.
    pub fn split(&self, i: usize) -> (Vec<usize>, Vec<usize>) {
        assert!(i < self.folds.len(), "fold out of range");
        let val = self.folds[i].clone();
        let train: Vec<usize> = self
            .folds
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .flat_map(|(_, f)| f.iter().copied())
            .collect();
        (train, val)
    }
}

/// Mean k-fold cross-validation score of a hyperparameter assignment.
pub fn cross_val_score<R: Rng>(
    params: &HyperParams,
    x: &Matrix,
    y: &[u32],
    n_classes: usize,
    k: usize,
    metric: Metric,
    rng: &mut R,
) -> f64 {
    assert_eq!(x.nrows(), y.len(), "rows and labels must align");
    let folds = KFold::new(x.nrows(), k, rng);
    let mut total = 0.0;
    for i in 0..folds.k() {
        let (train_rows, val_rows) = folds.split(i);
        let xtr = x.take_rows(&train_rows);
        let ytr: Vec<u32> = train_rows.iter().map(|&r| y[r]).collect();
        let xval = x.take_rows(&val_rows);
        let yval: Vec<u32> = val_rows.iter().map(|&r| y[r]).collect();
        let mut model = params.build();
        model.fit(&xtr, &ytr, n_classes, rng);
        total += metric.eval(&yval, &model.predict(&xval), n_classes);
    }
    total / folds.k() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Algorithm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn folds_partition_rows() {
        let mut rng = StdRng::seed_from_u64(0);
        let kf = KFold::new(23, 5, &mut rng);
        assert_eq!(kf.k(), 5);
        let mut all: Vec<usize> = Vec::new();
        for i in 0..5 {
            let (train, val) = kf.split(i);
            assert_eq!(train.len() + val.len(), 23);
            // Disjoint.
            for v in &val {
                assert!(!train.contains(v));
            }
            all.extend(val);
        }
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>(), "validation folds partition rows");
    }

    #[test]
    fn fold_sizes_near_equal() {
        let mut rng = StdRng::seed_from_u64(1);
        let kf = KFold::new(10, 3, &mut rng);
        let sizes: Vec<usize> = (0..3).map(|i| kf.split(i).1.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
    }

    #[test]
    fn cross_val_scores_separable_data_high() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..100 {
            let c = i % 2;
            rows.push(vec![if c == 0 { -1.0 } else { 1.0 } + ((i * 7) % 13) as f64 / 26.0]);
            labels.push(c as u32);
        }
        let x = Matrix::from_vecs(&rows);
        let mut rng = StdRng::seed_from_u64(2);
        let score = cross_val_score(
            &Algorithm::Knn.default_params(),
            &x,
            &labels,
            2,
            5,
            Metric::Accuracy,
            &mut rng,
        );
        assert!(score > 0.9, "CV score {score}");
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn one_fold_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        KFold::new(10, 1, &mut rng);
    }

    #[test]
    #[should_panic(expected = "one row per fold")]
    fn too_many_folds_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        KFold::new(3, 5, &mut rng);
    }
}
