//! Random forest classifier: bagged [`DecisionTreeClassifier`]s with
//! per-split feature subsampling (Breiman 2001). An extension beyond the
//! paper's algorithm suite.

use crate::dtree::{DecisionTreeClassifier, DtParams};
use crate::model::Classifier;
use crate::Matrix;
use rand::RngCore;

/// Random-forest hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RfParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_leaf: usize,
}

impl Default for RfParams {
    fn default() -> Self {
        RfParams { n_trees: 25, max_depth: 8, min_leaf: 2 }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone)]
pub struct RandomForestClassifier {
    params: RfParams,
    n_classes: usize,
    trees: Vec<DecisionTreeClassifier>,
}

impl RandomForestClassifier {
    /// Build with hyperparameters.
    pub fn new(params: RfParams) -> Self {
        assert!(params.n_trees >= 1, "need at least one tree");
        RandomForestClassifier { params, n_classes: 0, trees: Vec::new() }
    }

    /// Number of fitted trees.
    pub fn n_trees_fitted(&self) -> usize {
        self.trees.len()
    }
}

impl Default for RandomForestClassifier {
    fn default() -> Self {
        Self::new(RfParams::default())
    }
}

impl Classifier for RandomForestClassifier {
    fn fit(&mut self, x: &Matrix, y: &[u32], n_classes: usize, rng: &mut dyn RngCore) {
        assert_eq!(x.nrows(), y.len(), "rows and labels must align");
        assert!(x.nrows() > 0, "cannot fit on empty data");
        self.n_classes = n_classes.max(2);
        self.trees.clear();
        let n = x.nrows();
        // √d features per split, the classification default.
        let max_features = ((x.ncols() as f64).sqrt().ceil() as usize).max(1);
        let tree_params = DtParams {
            max_depth: self.params.max_depth,
            min_leaf: self.params.min_leaf,
            max_features: Some(max_features),
        };
        for _ in 0..self.params.n_trees {
            // Bootstrap sample.
            let rows: Vec<usize> = (0..n).map(|_| (rng.next_u64() as usize) % n).collect();
            let xb = x.take_rows(&rows);
            let yb: Vec<u32> = rows.iter().map(|&r| y[r]).collect();
            let mut tree = DecisionTreeClassifier::new(tree_params);
            tree.fit(&xb, &yb, self.n_classes, rng);
            self.trees.push(tree);
        }
    }

    fn predict_row(&self, row: &[f64]) -> u32 {
        assert!(!self.trees.is_empty(), "predict called before fit");
        let mut votes = vec![0usize; self.n_classes];
        for tree in &self.trees {
            votes[tree.predict_row(row) as usize] += 1;
        }
        let mut best = 0usize;
        for (c, &v) in votes.iter().enumerate().skip(1) {
            if v > votes[best] {
                best = c;
            }
        }
        best as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn noisy_blobs() -> (Matrix, Vec<u32>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..240 {
            let c = i % 2;
            let offset = if c == 0 { -1.0 } else { 1.0 };
            let j1 = ((i * 31) % 37) as f64 / 37.0 - 0.5;
            let j2 = ((i * 17) % 23) as f64 / 23.0 - 0.5;
            rows.push(vec![offset + j1, j2, j1 * j2]);
            labels.push(c as u32);
        }
        (Matrix::from_vecs(&rows), labels)
    }

    #[test]
    fn learns_and_votes() {
        let (x, y) = noisy_blobs();
        let mut rf =
            RandomForestClassifier::new(RfParams { n_trees: 15, max_depth: 6, min_leaf: 2 });
        let mut rng = StdRng::seed_from_u64(0);
        rf.fit(&x, &y, 2, &mut rng);
        assert_eq!(rf.n_trees_fitted(), 15);
        let acc = crate::metrics::accuracy(&y, &rf.predict(&x));
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn single_tree_forest_works() {
        let (x, y) = noisy_blobs();
        let mut rf = RandomForestClassifier::new(RfParams { n_trees: 1, ..RfParams::default() });
        let mut rng = StdRng::seed_from_u64(1);
        rf.fit(&x, &y, 2, &mut rng);
        assert!(rf.predict(&x).iter().all(|&p| p < 2));
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = noisy_blobs();
        let run = |seed| {
            let mut rf = RandomForestClassifier::default();
            let mut rng = StdRng::seed_from_u64(seed);
            rf.fit(&x, &y, 2, &mut rng);
            rf.predict(&x)
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_rejected() {
        RandomForestClassifier::new(RfParams { n_trees: 0, ..RfParams::default() });
    }
}
