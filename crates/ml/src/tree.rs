//! CART regression tree — the base learner for gradient boosting.
//!
//! Exact greedy split search: at each node every feature's values are
//! sorted and all midpoints between distinct consecutive values are scored
//! by variance reduction (equivalently, maximizing Σ²/n over children).

use crate::Matrix;

/// Tree hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeParams {
    /// Maximum depth (0 = a single leaf).
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_leaf: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams { max_depth: 3, min_leaf: 5 }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf { value: f64 },
    Split { feature: usize, threshold: f64, left: usize, right: usize },
}

/// A fitted regression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    params: TreeParams,
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Fit a tree on `(x, targets)`; `leaf_value` maps the target values in
    /// a leaf to the leaf's prediction (gradient boosting passes Friedman's
    /// Newton-step formula; plain regression passes the mean).
    pub fn fit<F>(x: &Matrix, targets: &[f64], params: TreeParams, leaf_value: F) -> Self
    where
        F: Fn(&[f64]) -> f64,
    {
        assert_eq!(x.nrows(), targets.len(), "rows and targets must align");
        assert!(x.nrows() > 0, "cannot fit on empty data");
        let mut tree = RegressionTree { params, nodes: Vec::new() };
        let rows: Vec<usize> = (0..x.nrows()).collect();
        tree.grow(x, targets, rows, 0, &leaf_value);
        tree
    }

    /// Convenience: fit with mean-valued leaves (plain regression tree).
    pub fn fit_mean(x: &Matrix, targets: &[f64], params: TreeParams) -> Self {
        // comet-lint: allow(D6) — leaf mean over in-node targets; order fixed by row order
        Self::fit(x, targets, params, |vals| vals.iter().sum::<f64>() / vals.len() as f64)
    }

    fn grow<F>(
        &mut self,
        x: &Matrix,
        targets: &[f64],
        rows: Vec<usize>,
        depth: usize,
        leaf_value: &F,
    ) -> usize
    where
        F: Fn(&[f64]) -> f64,
    {
        let make_leaf = |tree: &mut Self, rows: &[usize]| {
            let vals: Vec<f64> = rows.iter().map(|&r| targets[r]).collect();
            let v = leaf_value(&vals);
            tree.nodes.push(Node::Leaf { value: if v.is_finite() { v } else { 0.0 } });
            tree.nodes.len() - 1
        };

        if depth >= self.params.max_depth || rows.len() < 2 * self.params.min_leaf {
            return make_leaf(self, &rows);
        }
        // Pure node: nothing left to explain.
        let first = targets[rows[0]];
        if rows.iter().all(|&r| targets[r] == first) {
            return make_leaf(self, &rows);
        }
        let Some((feature, threshold)) = self.best_split(x, targets, &rows) else {
            return make_leaf(self, &rows);
        };

        let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
            rows.iter().partition(|&&r| x.get(r, feature) <= threshold);
        if left_rows.len() < self.params.min_leaf || right_rows.len() < self.params.min_leaf {
            return make_leaf(self, &rows);
        }

        // Reserve this node's slot before recursing so child indices are
        // stable.
        let idx = self.nodes.len();
        self.nodes.push(Node::Leaf { value: 0.0 });
        let left = self.grow(x, targets, left_rows, depth + 1, leaf_value);
        let right = self.grow(x, targets, right_rows, depth + 1, leaf_value);
        self.nodes[idx] = Node::Split { feature, threshold, left, right };
        idx
    }

    /// Best (feature, threshold) by variance reduction, or None if no valid
    /// split exists (e.g. all feature values identical).
    fn best_split(&self, x: &Matrix, targets: &[f64], rows: &[usize]) -> Option<(usize, f64)> {
        let n = rows.len();
        let total_sum: f64 = rows.iter().map(|&r| targets[r]).sum();
        let parent_score = total_sum * total_sum / n as f64;
        let min_leaf = self.params.min_leaf;

        // (gain, balance, feature, threshold); gain ties prefer balance.
        let mut best: Option<(f64, usize, usize, f64)> = None;
        let mut order: Vec<usize> = Vec::with_capacity(n);
        for feature in 0..x.ncols() {
            order.clear();
            order.extend_from_slice(rows);
            // `total_cmp`: a NaN feature (dirty numeric cell) must sort
            // deterministically instead of panicking mid-fit (D2).
            order.sort_by(|&a, &b| x.get(a, feature).total_cmp(&x.get(b, feature)));
            let mut left_sum = 0.0;
            for i in 0..n - 1 {
                left_sum += targets[order[i]];
                let nl = i + 1;
                let nr = n - nl;
                if nl < min_leaf || nr < min_leaf {
                    continue;
                }
                let v_here = x.get(order[i], feature);
                let v_next = x.get(order[i + 1], feature);
                if v_here == v_next {
                    continue; // cannot split between equal values
                }
                let right_sum = total_sum - left_sum;
                let score = left_sum * left_sum / nl as f64 + right_sum * right_sum / nr as f64;
                let gain = score - parent_score;
                // Zero-gain splits are allowed (like scikit-learn): balanced
                // XOR-style interactions have no first-level gain but become
                // separable one level down. max_depth bounds the recursion;
                // gain ties prefer the most balanced split so zero-gain
                // plateaus cut at the natural boundary.
                let balance = nl.min(nr);
                let better = match best {
                    None => gain > -1e-12,
                    Some((g, b, _, _)) => {
                        gain > g + 1e-12 || ((gain - g).abs() <= 1e-12 && balance > b)
                    }
                };
                if better && gain > -1e-12 {
                    best = Some((gain, balance, feature, 0.5 * (v_here + v_next)));
                }
            }
        }
        best.map(|(_, _, f, t)| (f, t))
    }

    /// Predict one row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    idx = if row[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Predict all rows.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        (0..x.nrows()).map(|i| self.predict_row(x.row(i))).collect()
    }

    /// Number of nodes (diagnostics).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Tree depth (diagnostics).
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], idx: usize) -> usize {
            match &nodes[idx] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, *left).max(walk(nodes, *right)),
            }
        }
        walk(&self.nodes, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_step_function_exactly() {
        // y = 1 for x > 0.5 else 0 — one split suffices.
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        let targets: Vec<f64> = rows.iter().map(|r| if r[0] > 0.5 { 1.0 } else { 0.0 }).collect();
        let x = Matrix::from_vecs(&rows);
        let tree = RegressionTree::fit_mean(&x, &targets, TreeParams { max_depth: 2, min_leaf: 1 });
        for (r, &t) in rows.iter().zip(&targets) {
            assert_eq!(tree.predict_row(r), t);
        }
        assert!(tree.depth() >= 1);
    }

    #[test]
    fn depth_zero_is_global_mean() {
        let x = Matrix::from_vecs(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let targets = vec![1.0, 2.0, 3.0, 4.0];
        let tree = RegressionTree::fit_mean(&x, &targets, TreeParams { max_depth: 0, min_leaf: 1 });
        assert_eq!(tree.n_nodes(), 1);
        assert_eq!(tree.predict_row(&[9.0]), 2.5);
    }

    #[test]
    fn min_leaf_prevents_tiny_splits() {
        let x = Matrix::from_vecs(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let targets = vec![0.0, 0.0, 0.0, 10.0];
        // min_leaf 3 forbids isolating the outlier (1-row leaf).
        let tree = RegressionTree::fit_mean(&x, &targets, TreeParams { max_depth: 5, min_leaf: 3 });
        assert_eq!(tree.n_nodes(), 1, "no legal split should exist");
    }

    #[test]
    fn constant_features_make_a_leaf() {
        let x = Matrix::from_vecs(&[vec![1.0], vec![1.0], vec![1.0], vec![1.0]]);
        let targets = vec![0.0, 1.0, 0.0, 1.0];
        let tree = RegressionTree::fit_mean(&x, &targets, TreeParams::default());
        assert_eq!(tree.n_nodes(), 1);
        assert_eq!(tree.predict_row(&[1.0]), 0.5);
    }

    #[test]
    fn picks_the_informative_feature() {
        // Feature 1 is pure noise; feature 0 determines the target.
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        for i in 0..60 {
            let signal = if i % 2 == 0 { 0.0 } else { 1.0 };
            rows.push(vec![signal, ((i * 7) % 13) as f64]);
            targets.push(signal * 2.0);
        }
        let x = Matrix::from_vecs(&rows);
        let tree = RegressionTree::fit_mean(&x, &targets, TreeParams { max_depth: 1, min_leaf: 5 });
        match &tree.nodes[0] {
            Node::Split { feature, .. } => assert_eq!(*feature, 0),
            Node::Leaf { .. } => panic!("expected a split"),
        }
    }

    #[test]
    fn deeper_trees_fit_xor() {
        // XOR needs depth 2.
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for _ in 0..5 {
                    rows.push(vec![a as f64, b as f64]);
                    targets.push(((a + b) % 2) as f64);
                }
            }
        }
        let x = Matrix::from_vecs(&rows);
        let shallow =
            RegressionTree::fit_mean(&x, &targets, TreeParams { max_depth: 1, min_leaf: 1 });
        let deep = RegressionTree::fit_mean(&x, &targets, TreeParams { max_depth: 2, min_leaf: 1 });
        let sse = |t: &RegressionTree| -> f64 {
            rows.iter().zip(&targets).map(|(r, &y)| (t.predict_row(r) - y).powi(2)).sum()
        };
        assert!(sse(&deep) < 1e-12, "deep tree must solve XOR");
        assert!(sse(&shallow) > 1.0, "depth-1 tree cannot solve XOR");
    }

    #[test]
    fn custom_leaf_value_applied() {
        let x = Matrix::from_vecs(&[vec![0.0], vec![1.0]]);
        let targets = vec![2.0, 4.0];
        let tree =
            RegressionTree::fit(&x, &targets, TreeParams { max_depth: 0, min_leaf: 1 }, |v| {
                v.iter().product()
            });
        assert_eq!(tree.predict_row(&[0.0]), 8.0);
    }

    #[test]
    fn non_finite_leaf_guard() {
        let x = Matrix::from_vecs(&[vec![0.0]]);
        let tree = RegressionTree::fit(&x, &[1.0], TreeParams::default(), |_| f64::NAN);
        assert_eq!(tree.predict_row(&[0.0]), 0.0);
    }
}
