//! Generic linear model trained by SGD, with per-sample gradient access.
//!
//! One engine serves three paper models — SVM (hinge), logistic regression
//! (softmax cross-entropy), and linear regression on one-hot targets
//! (squared loss) — and exposes exactly the hooks ActiveClean needs:
//! per-record gradients for record selection and incremental SGD updates
//! after partial cleaning (Krishnan et al., VLDB 2016).

use crate::model::{argmax, softmax};
use crate::{kernels, scratch, Matrix};
use rand::RngCore;

/// Convex loss of a one-vs-rest / softmax linear model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loss {
    /// Hinge loss, one-vs-rest (linear SVM).
    Hinge,
    /// Softmax cross-entropy (logistic regression).
    Logistic,
    /// Squared loss on one-hot targets (linear regression classifier).
    Squared,
}

/// Rows per shuffle block in [`Glm::fit`]: 8192 × a typical 10–40-feature
/// row ≈ 1–2.5 MB, small enough that within-block random access stays in
/// L2/L3. One block covers every fit below this size, keeping small-n
/// sampling order identical to an unblocked shuffle.
const SHUFFLE_BLOCK_ROWS: usize = 8192;

/// SGD hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdParams {
    /// Initial learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Number of passes over the data.
    pub epochs: usize,
}

impl Default for SgdParams {
    fn default() -> Self {
        SgdParams { learning_rate: 0.1, l2: 1e-4, epochs: 40 }
    }
}

/// A linear model with one weight row per class (bias folded in as the last
/// weight), trained by SGD on a convex loss.
#[derive(Debug, Clone)]
pub struct Glm {
    loss: Loss,
    params: SgdParams,
    n_classes: usize,
    dim: usize,
    /// Row-major `n_classes × (dim + 1)`; last column is the bias.
    weights: Vec<f64>,
}

impl Glm {
    /// New zero-initialized model (weights are allocated at first fit).
    pub fn new(loss: Loss, params: SgdParams) -> Self {
        Glm { loss, params, n_classes: 0, dim: 0, weights: Vec::new() }
    }

    /// The loss function.
    pub fn loss(&self) -> Loss {
        self.loss
    }

    /// Number of classes (0 before fitting).
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Input dimensionality (0 before fitting).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Flat weights (`n_classes × (dim+1)`), bias last per row.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Reset weights to zero for `dim` inputs and `n_classes` outputs.
    pub fn reset(&mut self, dim: usize, n_classes: usize) {
        self.dim = dim;
        self.n_classes = n_classes.max(1);
        self.weights = vec![0.0; self.n_classes * (dim + 1)];
    }

    /// Raw per-class scores for a row.
    pub fn scores(&self, row: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_classes);
        self.scores_into(row, &mut out);
        out
    }

    /// [`Glm::scores`] into a reused buffer (cleared and refilled) — the
    /// per-sample hot path avoids one allocation per call.
    pub fn scores_into(&self, row: &[f64], out: &mut Vec<f64>) {
        let stride = self.dim + 1;
        out.clear();
        for c in 0..self.n_classes {
            let w = &self.weights[c * stride..(c + 1) * stride];
            out.push(kernels::dot(&w[..self.dim], row) + w[self.dim]);
        }
    }

    /// Class-probability estimates (softmax over scores; for hinge/squared
    /// losses this is a calibration-free convenience).
    pub fn proba(&self, row: &[f64]) -> Vec<f64> {
        let mut s = self.scores(row);
        softmax(&mut s);
        s
    }

    /// Per-sample loss gradient, flattened like `weights`. Does not include
    /// the L2 term (ActiveClean's selection uses the data-dependent part).
    pub fn grad_sample(&self, row: &[f64], y: u32) -> Vec<f64> {
        let mut scores = Vec::new();
        let mut grad = Vec::new();
        self.grad_sample_into(row, y, &mut scores, &mut grad);
        grad
    }

    /// [`Glm::grad_sample`] into reused buffers: `scores` is clobbered with
    /// intermediate per-class scores, `grad` receives the gradient.
    pub fn grad_sample_into(
        &self,
        row: &[f64],
        y: u32,
        scores: &mut Vec<f64>,
        grad: &mut Vec<f64>,
    ) {
        let stride = self.dim + 1;
        grad.clear();
        grad.resize(self.n_classes * stride, 0.0);
        self.scores_into(row, scores);
        match self.loss {
            Loss::Hinge => {
                for c in 0..self.n_classes {
                    let t = if y as usize == c { 1.0 } else { -1.0 };
                    if t * scores[c] < 1.0 {
                        let g = &mut grad[c * stride..(c + 1) * stride];
                        for (gi, xi) in g[..self.dim].iter_mut().zip(row) {
                            *gi = -t * xi;
                        }
                        g[self.dim] = -t;
                    }
                }
            }
            Loss::Logistic => {
                softmax(scores);
                for c in 0..self.n_classes {
                    let e = scores[c] - if y as usize == c { 1.0 } else { 0.0 };
                    let g = &mut grad[c * stride..(c + 1) * stride];
                    for (gi, xi) in g[..self.dim].iter_mut().zip(row) {
                        *gi = e * xi;
                    }
                    g[self.dim] = e;
                }
            }
            Loss::Squared => {
                for c in 0..self.n_classes {
                    let e = scores[c] - if y as usize == c { 1.0 } else { 0.0 };
                    let g = &mut grad[c * stride..(c + 1) * stride];
                    for (gi, xi) in g[..self.dim].iter_mut().zip(row) {
                        *gi = e * xi;
                    }
                    g[self.dim] = e;
                }
            }
        }
    }

    /// Euclidean norm of the per-sample gradient — ActiveClean's record
    /// priority.
    pub fn grad_norm(&self, row: &[f64], y: u32) -> f64 {
        let g = self.grad_sample(row, y);
        kernels::dot(&g, &g).sqrt()
    }

    /// One SGD step on a single sample with the given learning rate
    /// (includes L2 shrinkage).
    pub fn sgd_step(&mut self, row: &[f64], y: u32, lr: f64) {
        let mut scores = Vec::new();
        let mut grad = Vec::new();
        self.sgd_step_scratch(row, y, lr, &mut scores, &mut grad);
    }

    /// [`Glm::sgd_step`] with caller-owned scratch. The update fuses the L2
    /// shrink and the gradient step into one [`kernels::scale_axpy`] pass:
    /// `w = (1 - lr·l2)·w - lr·g`.
    fn sgd_step_scratch(
        &mut self,
        row: &[f64],
        y: u32,
        lr: f64,
        scores: &mut Vec<f64>,
        grad: &mut Vec<f64>,
    ) {
        self.grad_sample_into(row, y, scores, grad);
        let shrink = 1.0 - lr * self.params.l2;
        kernels::scale_axpy(shrink, &mut self.weights, -lr, grad);
    }

    /// Full SGD training: `epochs` shuffled passes with a `1/(1+t)` decayed
    /// learning rate. Per-sample scratch comes from the global pool, so a
    /// steady-state tuning/evaluation loop performs no per-step allocation.
    ///
    /// Shuffling is block-local: each epoch shuffles the order of
    /// [`SHUFFLE_BLOCK_ROWS`]-row blocks, then the sample order within each
    /// block, so the gather working set stays cache-resident instead of
    /// striding randomly over the whole matrix (which is DRAM-latency-bound
    /// once `n × dim × 8B` outgrows the last-level cache — measured ~2× per
    /// step at 2²⁸ bytes). For `n ≤ SHUFFLE_BLOCK_ROWS` there is exactly one
    /// block and the order — including RNG consumption — is bit-identical
    /// to a full Fisher–Yates pass.
    pub fn fit(&mut self, x: &Matrix, y: &[u32], n_classes: usize, rng: &mut dyn RngCore) {
        assert_eq!(x.nrows(), y.len(), "rows and labels must align");
        assert!(x.nrows() > 0, "cannot fit on empty data");
        self.reset(x.ncols(), n_classes);
        let n = x.nrows();
        let n_blocks = n.div_ceil(SHUFFLE_BLOCK_ROWS);
        let mut blocks: Vec<usize> = (0..n_blocks).collect();
        let mut order: Vec<usize> = (0..n).collect();
        let mut scores = scratch::take(self.n_classes);
        let mut grad = scratch::take(self.weights.len());
        let mut t = 0usize;
        for _ in 0..self.params.epochs {
            // Fisher–Yates over block order, then within each block. Swaps
            // never cross a block boundary, so `order[start..end]` stays a
            // permutation of that block's rows across epochs.
            for i in (1..n_blocks).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                blocks.swap(i, j);
            }
            for &b in &blocks {
                let start = b * SHUFFLE_BLOCK_ROWS;
                let end = (start + SHUFFLE_BLOCK_ROWS).min(n);
                let block = &mut order[start..end];
                for i in (1..block.len()).rev() {
                    let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                    block.swap(i, j);
                }
                for &i in block.iter() {
                    t += 1;
                    let lr = self.params.learning_rate / (1.0 + 0.01 * t as f64);
                    self.sgd_step_scratch(x.row(i), y[i], lr, &mut scores, &mut grad);
                }
            }
        }
        scratch::put(scores);
        scratch::put(grad);
    }

    /// Predict a single row (argmax score).
    pub fn predict_row(&self, row: &[f64]) -> u32 {
        argmax(&self.scores(row))
    }

    /// Mean loss over a dataset (training diagnostics, AC convergence).
    pub fn mean_loss(&self, x: &Matrix, y: &[u32]) -> f64 {
        let n = x.nrows();
        if n == 0 {
            return 0.0;
        }
        let mut scores = scratch::take(self.n_classes);
        let mut total = 0.0;
        for i in 0..n {
            self.scores_into(x.row(i), &mut scores);
            total += match self.loss {
                Loss::Hinge => (0..self.n_classes)
                    .map(|c| {
                        let t = if y[i] as usize == c { 1.0 } else { -1.0 };
                        // comet-lint: allow(D2) — hinge-loss clamp at zero; margins are finite by construction
                        (1.0 - t * scores[c]).max(0.0)
                    })
                    // comet-lint: allow(D6) — per-class hinge sum, <= n_classes terms in fixed class order
                    .sum::<f64>(),
                Loss::Logistic => {
                    softmax(&mut scores);
                    // comet-lint: allow(D2) — log-argument floor on a softmax probability in [0, 1]
                    -(scores[y[i] as usize].max(1e-12)).ln()
                }
                Loss::Squared => (0..self.n_classes)
                    .map(|c| {
                        let target = if y[i] as usize == c { 1.0 } else { 0.0 };
                        0.5 * (scores[c] - target).powi(2)
                    })
                    // comet-lint: allow(D6) — per-class squared-error sum, <= n_classes terms in fixed class order
                    .sum::<f64>(),
            };
        }
        scratch::put(scores);
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Linearly separable 2-class data: class = sign of first coordinate.
    fn separable(n: usize) -> (Matrix, Vec<u32>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let x0 = if i % 2 == 0 { 1.0 } else { -1.0 };
            let x1 = ((i * 7) % 11) as f64 / 11.0 - 0.5;
            rows.push(vec![x0 + 0.1 * x1, x1]);
            labels.push(if x0 > 0.0 { 1 } else { 0 });
        }
        (Matrix::from_vecs(&rows), labels)
    }

    fn train_and_score(loss: Loss) -> f64 {
        let (x, y) = separable(200);
        let mut glm = Glm::new(loss, SgdParams::default());
        let mut rng = StdRng::seed_from_u64(0);
        glm.fit(&x, &y, 2, &mut rng);
        let preds: Vec<u32> = (0..x.nrows()).map(|i| glm.predict_row(x.row(i))).collect();
        crate::metrics::accuracy(&y, &preds)
    }

    #[test]
    fn all_losses_learn_separable_data() {
        for loss in [Loss::Hinge, Loss::Logistic, Loss::Squared] {
            let acc = train_and_score(loss);
            assert!(acc > 0.95, "{loss:?} accuracy {acc}");
        }
    }

    #[test]
    fn three_class_softmax() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..300 {
            let c = i % 3;
            let center = [(0.0, 0.0), (5.0, 0.0), (0.0, 5.0)][c];
            let jitter = ((i * 13) % 7) as f64 / 7.0 - 0.5;
            rows.push(vec![center.0 + jitter, center.1 - jitter]);
            labels.push(c as u32);
        }
        let x = Matrix::from_vecs(&rows);
        let mut glm = Glm::new(Loss::Logistic, SgdParams::default());
        let mut rng = StdRng::seed_from_u64(1);
        glm.fit(&x, &labels, 3, &mut rng);
        let preds: Vec<u32> = (0..x.nrows()).map(|i| glm.predict_row(x.row(i))).collect();
        assert!(crate::metrics::accuracy(&labels, &preds) > 0.95);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let (x, y) = separable(10);
        for loss in [Loss::Hinge, Loss::Logistic, Loss::Squared] {
            let mut glm = Glm::new(loss, SgdParams::default());
            glm.reset(2, 2);
            // Non-trivial weights.
            for (i, w) in glm.weights.iter_mut().enumerate() {
                *w = 0.1 * (i as f64 - 2.5);
            }
            let row = x.row(3);
            let label = y[3];
            let grad = glm.grad_sample(row, label);
            let eps = 1e-6;
            #[allow(clippy::needless_range_loop)]
            for k in 0..glm.weights.len() {
                let mut plus = glm.clone();
                plus.weights[k] += eps;
                let mut minus = glm.clone();
                minus.weights[k] -= eps;
                let x1 = Matrix::from_vecs(&[row.to_vec()]);
                let fd =
                    (plus.mean_loss(&x1, &[label]) - minus.mean_loss(&x1, &[label])) / (2.0 * eps);
                // Hinge is non-smooth at the margin; skip near-kink points.
                if loss == Loss::Hinge {
                    let scores = glm.scores(row);
                    let near_kink = (0..2).any(|c| {
                        let t = if label as usize == c { 1.0 } else { -1.0 };
                        (t * scores[c] - 1.0).abs() < 1e-4
                    });
                    if near_kink {
                        continue;
                    }
                }
                assert!(
                    (grad[k] - fd).abs() < 1e-4,
                    "{loss:?} weight {k}: analytic {} vs fd {fd}",
                    grad[k]
                );
            }
        }
    }

    #[test]
    fn grad_norm_zero_for_confident_hinge() {
        let mut glm = Glm::new(Loss::Hinge, SgdParams::default());
        glm.reset(1, 2);
        // Class-1 weight strongly positive, class-0 strongly negative.
        glm.weights = vec![-10.0, 0.0, 10.0, 0.0];
        // x = 1, y = 1: both margins ≥ 1 → zero gradient.
        assert_eq!(glm.grad_norm(&[1.0], 1), 0.0);
        // Misclassified point has positive gradient norm.
        assert!(glm.grad_norm(&[1.0], 0) > 0.0);
    }

    #[test]
    fn sgd_step_reduces_loss() {
        let (x, y) = separable(50);
        let mut glm = Glm::new(Loss::Logistic, SgdParams::default());
        glm.reset(2, 2);
        let before = glm.mean_loss(&x, &y);
        for (i, &label) in y.iter().enumerate().take(50) {
            glm.sgd_step(x.row(i), label, 0.1);
        }
        assert!(glm.mean_loss(&x, &y) < before);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = separable(60);
        let fit = |seed: u64| {
            let mut glm = Glm::new(Loss::Logistic, SgdParams::default());
            let mut rng = StdRng::seed_from_u64(seed);
            glm.fit(&x, &y, 2, &mut rng);
            glm.weights.clone()
        };
        assert_eq!(fit(5), fit(5));
        assert_ne!(fit(5), fit(6));
    }

    #[test]
    fn proba_is_distribution() {
        let (x, y) = separable(40);
        let mut glm = Glm::new(Loss::Logistic, SgdParams::default());
        let mut rng = StdRng::seed_from_u64(2);
        glm.fit(&x, &y, 2, &mut rng);
        let p = glm.proba(x.row(0));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_fit_panics() {
        let x = Matrix::zeros(0, 2);
        let mut glm = Glm::new(Loss::Logistic, SgdParams::default());
        let mut rng = StdRng::seed_from_u64(0);
        glm.fit(&x, &[], 2, &mut rng);
    }
}
