//! Gradient boosting classifier (Friedman 2001) — the paper's GB model.
//!
//! K-class boosting on the softmax deviance: each round fits one regression
//! tree per class to the gradient residuals `y_onehot − p`, with Friedman's
//! Newton-step leaf values `((K−1)/K) · Σr / Σ|r|(1−|r|)`.

use crate::model::{argmax, softmax, Classifier};
use crate::tree::{RegressionTree, TreeParams};
use crate::{scratch, Matrix};
use rand::RngCore;

/// Gradient-boosting hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbmParams {
    /// Boosting rounds.
    pub n_rounds: usize,
    /// Shrinkage.
    pub learning_rate: f64,
    /// Depth of each tree.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_leaf: usize,
}

impl Default for GbmParams {
    fn default() -> Self {
        GbmParams { n_rounds: 30, learning_rate: 0.2, max_depth: 3, min_leaf: 5 }
    }
}

/// A fitted gradient-boosting classifier.
#[derive(Debug, Clone)]
pub struct GradientBoostingClassifier {
    params: GbmParams,
    n_classes: usize,
    /// Log-odds priors per class.
    base: Vec<f64>,
    /// `rounds × n_classes` trees, row-major.
    trees: Vec<RegressionTree>,
}

impl GradientBoostingClassifier {
    /// Build with hyperparameters.
    pub fn new(params: GbmParams) -> Self {
        GradientBoostingClassifier { params, n_classes: 0, base: Vec::new(), trees: Vec::new() }
    }

    /// Rounds actually fitted.
    pub fn n_rounds_fitted(&self) -> usize {
        self.trees.len().checked_div(self.n_classes).unwrap_or(0)
    }

    fn raw_scores_into(&self, row: &[f64], scores: &mut Vec<f64>) {
        scores.clear();
        scores.extend_from_slice(&self.base);
        for (i, tree) in self.trees.iter().enumerate() {
            let class = i % self.n_classes;
            scores[class] += self.params.learning_rate * tree.predict_row(row);
        }
    }
}

impl Default for GradientBoostingClassifier {
    fn default() -> Self {
        Self::new(GbmParams::default())
    }
}

impl Classifier for GradientBoostingClassifier {
    fn fit(&mut self, x: &Matrix, y: &[u32], n_classes: usize, _rng: &mut dyn RngCore) {
        assert_eq!(x.nrows(), y.len(), "rows and labels must align");
        assert!(x.nrows() > 0, "cannot fit on empty data");
        let k = n_classes.max(2);
        self.n_classes = k;
        self.trees.clear();

        let n = x.nrows();
        // Class priors as initial log-odds (with Laplace smoothing so absent
        // classes don't produce −∞).
        let mut counts = vec![1.0f64; k];
        for &label in y {
            counts[label as usize] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        self.base = counts.iter().map(|c| (c / total).ln()).collect();

        let tree_params =
            TreeParams { max_depth: self.params.max_depth, min_leaf: self.params.min_leaf };
        // Current raw scores per (row, class).
        let mut f = vec![0.0f64; n * k];
        for row in 0..n {
            f[row * k..(row + 1) * k].copy_from_slice(&self.base);
        }

        let mut residuals = vec![0.0f64; n];
        let mut p = scratch::take(k);
        for _ in 0..self.params.n_rounds {
            for class in 0..k {
                // p = softmax(f); residual = 1{y=c} − p_c.
                for row in 0..n {
                    p.clear();
                    p.extend_from_slice(&f[row * k..(row + 1) * k]);
                    softmax(&mut p);
                    let target = if y[row] as usize == class { 1.0 } else { 0.0 };
                    residuals[row] = target - p[class];
                }
                let kf = k as f64;
                let tree = RegressionTree::fit(x, &residuals, tree_params, move |vals| {
                    // Friedman's multiclass Newton step.
                    let num: f64 = vals.iter().sum();
                    let den: f64 = vals.iter().map(|r| r.abs() * (1.0 - r.abs())).sum();
                    if den.abs() < 1e-12 {
                        0.0
                    } else {
                        (kf - 1.0) / kf * num / den
                    }
                });
                for row in 0..n {
                    f[row * k + class] += self.params.learning_rate * tree.predict_row(x.row(row));
                }
                self.trees.push(tree);
            }
        }
        scratch::put(p);
    }

    fn predict_row(&self, row: &[f64]) -> u32 {
        let mut scores = Vec::with_capacity(self.n_classes);
        self.raw_scores_into(row, &mut scores);
        argmax(&scores)
    }

    fn predict(&self, x: &Matrix) -> Vec<u32> {
        let mut scores = scratch::take(self.n_classes);
        let mut out = Vec::with_capacity(x.nrows());
        for row in x.rows() {
            self.raw_scores_into(row, &mut scores);
            out.push(argmax(&scores));
        }
        scratch::put(scores);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_data() -> (Matrix, Vec<u32>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            let a = (i / 2) % 2;
            let b = i % 2;
            let jitter = ((i * 17) % 23) as f64 / 230.0;
            rows.push(vec![a as f64 + jitter, b as f64 - jitter]);
            labels.push(((a + b) % 2) as u32);
        }
        (Matrix::from_vecs(&rows), labels)
    }

    #[test]
    fn learns_xor() {
        // Linear models cannot learn XOR; boosted depth-2 trees can.
        let (x, y) = xor_data();
        let mut gb = GradientBoostingClassifier::new(GbmParams {
            n_rounds: 20,
            learning_rate: 0.3,
            max_depth: 2,
            min_leaf: 2,
        });
        let mut rng = StdRng::seed_from_u64(0);
        gb.fit(&x, &y, 2, &mut rng);
        let acc = crate::metrics::accuracy(&y, &gb.predict(&x));
        assert!(acc > 0.95, "accuracy {acc}");
        assert_eq!(gb.n_rounds_fitted(), 20);
    }

    #[test]
    fn three_class_blobs() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..300 {
            let c = i % 3;
            let center = [(0.0, 0.0), (4.0, 0.0), (0.0, 4.0)][c];
            let j = ((i * 29) % 19) as f64 / 19.0 - 0.5;
            rows.push(vec![center.0 + j, center.1 - j]);
            labels.push(c as u32);
        }
        let x = Matrix::from_vecs(&rows);
        let mut gb = GradientBoostingClassifier::default();
        let mut rng = StdRng::seed_from_u64(1);
        gb.fit(&x, &labels, 3, &mut rng);
        let acc = crate::metrics::accuracy(&labels, &gb.predict(&x));
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn single_class_training_data() {
        // All labels 0 (can happen after heavy pollution of a tiny split):
        // the model must still predict valid codes.
        let x = Matrix::from_vecs(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let y = vec![0, 0, 0, 0];
        let mut gb = GradientBoostingClassifier::default();
        let mut rng = StdRng::seed_from_u64(2);
        gb.fit(&x, &y, 2, &mut rng);
        for i in 0..4 {
            assert_eq!(gb.predict_row(x.row(i)), 0);
        }
    }

    #[test]
    fn more_rounds_do_not_hurt_training_fit() {
        let (x, y) = xor_data();
        let fit_acc = |rounds: usize| {
            let mut gb = GradientBoostingClassifier::new(GbmParams {
                n_rounds: rounds,
                learning_rate: 0.2,
                max_depth: 2,
                min_leaf: 2,
            });
            let mut rng = StdRng::seed_from_u64(3);
            gb.fit(&x, &y, 2, &mut rng);
            crate::metrics::accuracy(&y, &gb.predict(&x))
        };
        assert!(fit_acc(25) >= fit_acc(2) - 1e-9);
    }
}
