//! Classification metrics. The paper reports F1 (binary) and, for the
//! three-class CMC dataset, we use macro-F1 — the standard multi-class
//! generalization scikit-learn would apply.

/// Which prediction-accuracy metric to optimize/report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Binary F1 for 2 classes (positive class = 1), macro-F1 otherwise.
    F1,
    /// Plain accuracy.
    Accuracy,
}

impl Metric {
    /// Evaluate the metric.
    pub fn eval(self, y_true: &[u32], y_pred: &[u32], n_classes: usize) -> f64 {
        match self {
            Metric::Accuracy => accuracy(y_true, y_pred),
            Metric::F1 => {
                if n_classes == 2 {
                    f1_binary(y_true, y_pred, 1)
                } else {
                    f1_macro(y_true, y_pred, n_classes)
                }
            }
        }
    }
}

/// Fraction of correct predictions.
pub fn accuracy(y_true: &[u32], y_pred: &[u32]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    if y_true.is_empty() {
        return 0.0;
    }
    let correct = y_true.iter().zip(y_pred).filter(|(a, b)| a == b).count();
    correct as f64 / y_true.len() as f64
}

/// Confusion matrix `c[true][pred]`, row-major `n_classes × n_classes`.
pub fn confusion_matrix(y_true: &[u32], y_pred: &[u32], n_classes: usize) -> Vec<usize> {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    let mut m = vec![0usize; n_classes * n_classes];
    for (&t, &p) in y_true.iter().zip(y_pred) {
        assert!((t as usize) < n_classes && (p as usize) < n_classes, "label out of range");
        m[t as usize * n_classes + p as usize] += 1;
    }
    m
}

/// True when the ground truth collapsed to one class — a pathological
/// pollution can wipe out a class entirely. The metrics below still return
/// defined values there (never NaN), but the event is worth counting:
/// `metrics.single_class` in the `comet_obs` registry.
fn note_single_class(y_true: &[u32]) -> bool {
    let single = !y_true.is_empty() && y_true.iter().all(|&t| t == y_true[0]);
    if single {
        comet_obs::counter_add("metrics.single_class", 1);
    }
    single
}

/// F1 for one class treated as positive. Returns 0 when precision+recall
/// are both undefined (scikit-learn's `zero_division=0` convention), so the
/// result is defined even for single-class ground truth (which additionally
/// bumps the `metrics.single_class` counter).
pub fn f1_binary(y_true: &[u32], y_pred: &[u32], positive: u32) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    note_single_class(y_true);
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fne = 0usize;
    for (&t, &p) in y_true.iter().zip(y_pred) {
        match (t == positive, p == positive) {
            (true, true) => tp += 1,
            (false, true) => fp += 1,
            (true, false) => fne += 1,
            (false, false) => {}
        }
    }
    if 2 * tp + fp + fne == 0 {
        return 0.0;
    }
    2.0 * tp as f64 / (2 * tp + fp + fne) as f64
}

/// Unweighted mean of per-class F1 scores.
pub fn f1_macro(y_true: &[u32], y_pred: &[u32], n_classes: usize) -> f64 {
    assert!(n_classes > 0, "need at least one class");
    let total: f64 = (0..n_classes as u32).map(|c| f1_binary(y_true, y_pred, c)).sum();
    total / n_classes as f64
}

/// Precision for one class treated as positive (`tp / (tp + fp)`; 0 when no
/// positive prediction exists, including the empty-split case). Single-class
/// ground truth bumps the `metrics.single_class` counter, exactly like
/// [`f1_binary`] — detector precision/recall scoring runs on arbitrary flag
/// vectors and must never panic or emit NaN into the trace.
pub fn precision(y_true: &[u32], y_pred: &[u32], positive: u32) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    note_single_class(y_true);
    let tp = y_true.iter().zip(y_pred).filter(|&(&t, &p)| t == positive && p == positive).count();
    let predicted = y_pred.iter().filter(|&&p| p == positive).count();
    if predicted == 0 {
        0.0
    } else {
        tp as f64 / predicted as f64
    }
}

/// Recall for one class treated as positive (`tp / (tp + fn)`; 0 when the
/// class is absent from the labels, including the empty-split case).
/// Single-class ground truth bumps the `metrics.single_class` counter.
pub fn recall(y_true: &[u32], y_pred: &[u32], positive: u32) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    note_single_class(y_true);
    let tp = y_true.iter().zip(y_pred).filter(|&(&t, &p)| t == positive && p == positive).count();
    let actual = y_true.iter().filter(|&&t| t == positive).count();
    if actual == 0 {
        0.0
    } else {
        tp as f64 / actual as f64
    }
}

/// Balanced accuracy: unweighted mean of per-class recalls (classes absent
/// from the labels are skipped).
pub fn balanced_accuracy(y_true: &[u32], y_pred: &[u32], n_classes: usize) -> f64 {
    assert!(n_classes > 0, "need at least one class");
    let mut total = 0.0;
    let mut present = 0usize;
    for c in 0..n_classes as u32 {
        if y_true.contains(&c) {
            total += recall(y_true, y_pred, c);
            present += 1;
        }
    }
    if present == 0 {
        0.0
    } else {
        total / present as f64
    }
}

/// Area under the ROC curve for binary labels, from real-valued scores of
/// the positive class (Mann–Whitney formulation: the probability a random
/// positive outscores a random negative, ties counting ½).
///
/// Returns 0.5 when one class is absent (no ranking information); that
/// single-class case also bumps the `metrics.single_class` counter.
pub fn roc_auc(y_true: &[u32], scores: &[f64]) -> f64 {
    assert_eq!(y_true.len(), scores.len(), "length mismatch");
    note_single_class(y_true);
    // `total_cmp` over a NaN-sanitized key, not `partial_cmp(..).expect(..)`:
    // a degenerate model (all-equal features, zero-variance fit) can emit a
    // NaN score, and computing a metric must not panic mid-session. NaN maps
    // to -∞ — "no confidence in the positive class" — so such entries rank
    // below every real score, the same convention `Recommender::rank` uses.
    let key = |i: usize| if scores[i].is_nan() { f64::NEG_INFINITY } else { scores[i] };
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| key(a).total_cmp(&key(b)));
    // Rank with tie-averaging (over the sanitized key, so NaNs tie with
    // each other instead of comparing unequal to themselves).
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && key(order[j + 1]) == key(order[i]) {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        i = j + 1;
    }
    let n_pos = y_true.iter().filter(|&&t| t == 1).count();
    let n_neg = y_true.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let rank_sum: f64 = y_true.iter().zip(&ranks).filter(|&(&t, _)| t == 1).map(|(_, &r)| r).sum();
    (rank_sum - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0) / (n_pos as f64 * n_neg as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[1, 0, 1, 1], &[1, 0, 0, 1]), 0.75);
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[1], &[1]), 1.0);
    }

    #[test]
    fn f1_perfect_and_worst() {
        assert_eq!(f1_binary(&[1, 0, 1], &[1, 0, 1], 1), 1.0);
        assert_eq!(f1_binary(&[1, 1, 1], &[0, 0, 0], 1), 0.0);
        // No positives anywhere → 0 by convention.
        assert_eq!(f1_binary(&[0, 0], &[0, 0], 1), 0.0);
    }

    #[test]
    fn f1_hand_computed() {
        // tp=2, fp=1, fn=1 → precision 2/3, recall 2/3, F1 = 2/3.
        let y_true = [1, 1, 1, 0, 0];
        let y_pred = [1, 1, 0, 1, 0];
        let f1 = f1_binary(&y_true, &y_pred, 1);
        assert!((f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_averages_classes() {
        // Three classes; class 2 never predicted.
        let y_true = [0, 0, 1, 1, 2, 2];
        let y_pred = [0, 0, 1, 0, 1, 1];
        // class0: tp=2, fp=1, fn=0 → 0.8; class1: tp=1, fp=2, fn=1 → 0.4;
        // class2: tp=0 → 0. macro = 0.4.
        let f1 = f1_macro(&y_true, &y_pred, 3);
        assert!((f1 - 0.4).abs() < 1e-12, "{f1}");
    }

    #[test]
    fn metric_dispatch() {
        let y_true = [1, 1, 0, 0];
        let y_pred = [1, 0, 0, 0];
        assert_eq!(Metric::Accuracy.eval(&y_true, &y_pred, 2), 0.75);
        // binary F1: tp=1, fp=0, fn=1 → 2/3.
        assert!((Metric::F1.eval(&y_true, &y_pred, 2) - 2.0 / 3.0).abs() < 1e-12);
        // With n_classes=3 the same data routes to macro.
        let macro_f1 = Metric::F1.eval(&y_true, &y_pred, 3);
        assert!(macro_f1 > 0.0 && macro_f1 < 1.0);
    }

    #[test]
    fn confusion_matrix_layout() {
        let m = confusion_matrix(&[0, 1, 1, 0], &[0, 1, 0, 1], 2);
        assert_eq!(m, vec![1, 1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        accuracy(&[1], &[1, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_out_of_range_panics() {
        confusion_matrix(&[5], &[0], 2);
    }

    #[test]
    fn precision_recall_hand_computed() {
        // tp=2, fp=1, fn=1.
        let y_true = [1, 1, 1, 0, 0];
        let y_pred = [1, 1, 0, 1, 0];
        assert!((precision(&y_true, &y_pred, 1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((recall(&y_true, &y_pred, 1) - 2.0 / 3.0).abs() < 1e-12);
        // No positive predictions → precision 0; class absent → recall 0.
        assert_eq!(precision(&[0, 0], &[0, 0], 1), 0.0);
        assert_eq!(recall(&[0, 0], &[0, 1], 1), 0.0);
    }

    #[test]
    fn balanced_accuracy_weights_classes_equally() {
        // Class 0: 3 of 3 correct; class 1: 0 of 1 correct → (1 + 0)/2.
        let y_true = [0, 0, 0, 1];
        let y_pred = [0, 0, 0, 0];
        assert!((balanced_accuracy(&y_true, &y_pred, 2) - 0.5).abs() < 1e-12);
        // Plain accuracy would be 0.75 — balanced accuracy resists imbalance.
        assert_eq!(accuracy(&y_true, &y_pred), 0.75);
        // Absent classes are skipped.
        assert_eq!(balanced_accuracy(&[0, 0], &[0, 0], 3), 1.0);
    }

    #[test]
    fn roc_auc_perfect_and_random() {
        let y = [0, 0, 1, 1];
        assert_eq!(roc_auc(&y, &[0.1, 0.2, 0.8, 0.9]), 1.0);
        assert_eq!(roc_auc(&y, &[0.9, 0.8, 0.2, 0.1]), 0.0);
        // All scores equal → ties give 0.5.
        assert_eq!(roc_auc(&y, &[0.5, 0.5, 0.5, 0.5]), 0.5);
        // One class absent → 0.5 by convention.
        assert_eq!(roc_auc(&[1, 1], &[0.2, 0.9]), 0.5);
    }

    #[test]
    fn roc_auc_nan_scores_do_not_panic() {
        // Regression: a single NaN score used to panic the
        // `partial_cmp(..).expect("finite scores")` sort mid-session.
        let y = [0, 0, 1, 1];
        let auc = roc_auc(&y, &[0.1, f64::NAN, 0.8, 0.9]);
        assert!((0.0..=1.0).contains(&auc), "auc {auc}");
        // NaN ranks below every real score: here the NaN sits on a negative,
        // so the ranking is still perfect.
        assert_eq!(auc, 1.0);
        // NaN on a positive ranks that positive below both negatives:
        // pairs won = (0.9 beats both negatives) = 2 of 4 → 0.5.
        assert_eq!(roc_auc(&y, &[0.1, 0.2, f64::NAN, 0.9]), 0.5);
        // All-NaN scores carry no ranking information → ties everywhere.
        assert_eq!(roc_auc(&y, &[f64::NAN; 4]), 0.5);
    }

    #[test]
    fn single_class_ground_truth_is_defined_and_counted() {
        // All-one-class ground truth: both metrics must return defined
        // values (no NaN) and count the event while recording is on.
        comet_obs::set_enabled(true);
        let before = comet_obs::snapshot().counter("metrics.single_class");
        let f1_all_pos = f1_binary(&[1, 1, 1], &[1, 0, 1], 1);
        let f1_all_neg = f1_binary(&[0, 0, 0], &[1, 0, 1], 1);
        let auc = roc_auc(&[1, 1, 1], &[0.2, 0.5, 0.9]);
        let after = comet_obs::snapshot().counter("metrics.single_class");
        comet_obs::set_enabled(false);
        assert!(f1_all_pos.is_finite() && (0.0..=1.0).contains(&f1_all_pos));
        assert_eq!(f1_all_neg, 0.0);
        assert_eq!(auc, 0.5);
        // Concurrent tests may also bump the counter, so assert growth by
        // at least the three single-class calls above.
        assert!(after >= before + 3, "counter {before} -> {after}");
    }

    #[test]
    fn empty_test_split_never_panics_or_emits_nan() {
        // Detector scoring and pathological splits can hand every metric an
        // empty vector; each must return a defined (finite) value.
        let empty: [u32; 0] = [];
        let scores: [f64; 0] = [];
        for v in [
            accuracy(&empty, &empty),
            f1_binary(&empty, &empty, 1),
            f1_macro(&empty, &empty, 2),
            precision(&empty, &empty, 1),
            recall(&empty, &empty, 1),
            balanced_accuracy(&empty, &empty, 2),
            roc_auc(&empty, &scores),
            Metric::F1.eval(&empty, &empty, 2),
            Metric::Accuracy.eval(&empty, &empty, 2),
        ] {
            assert!(v.is_finite(), "metric emitted {v}");
            assert!((0.0..=1.0).contains(&v), "metric out of range: {v}");
        }
    }

    #[test]
    fn precision_recall_single_class_is_defined_and_counted() {
        comet_obs::set_enabled(true);
        let before = comet_obs::snapshot().counter("metrics.single_class");
        let p = precision(&[1, 1, 1], &[1, 0, 1], 1);
        let r = recall(&[0, 0, 0], &[1, 0, 1], 0);
        let after = comet_obs::snapshot().counter("metrics.single_class");
        comet_obs::set_enabled(false);
        assert!(p.is_finite() && (0.0..=1.0).contains(&p));
        assert!(r.is_finite() && (0.0..=1.0).contains(&r));
        assert!(after >= before + 2, "counter {before} -> {after}");
    }

    #[test]
    fn roc_auc_hand_computed() {
        // Scores: pos {0.9, 0.4}, neg {0.5, 0.3}. Pairs won: (0.9>0.5),
        // (0.9>0.3), (0.4<0.5 lose), (0.4>0.3) → 3/4.
        let y = [1, 0, 1, 0];
        let s = [0.9, 0.5, 0.4, 0.3];
        assert!((roc_auc(&y, &s) - 0.75).abs() < 1e-12);
    }
}
