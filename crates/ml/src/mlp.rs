//! Multi-layer perceptron — the paper's MLP model (§4.4).
//!
//! One hidden layer, ReLU activation, softmax output, cross-entropy loss,
//! mini-batch SGD with classical momentum, He initialization.

use crate::model::{argmax, softmax, Classifier};
use crate::{kernels, scratch, Matrix};
use rand::RngCore;

/// MLP hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpParams {
    /// Hidden-layer width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// L2 weight decay.
    pub l2: f64,
}

impl Default for MlpParams {
    fn default() -> Self {
        MlpParams {
            hidden: 32,
            epochs: 60,
            learning_rate: 0.05,
            momentum: 0.9,
            batch_size: 32,
            l2: 1e-4,
        }
    }
}

/// A one-hidden-layer MLP classifier.
#[derive(Debug, Clone)]
pub struct MlpClassifier {
    params: MlpParams,
    n_classes: usize,
    dim: usize,
    /// Hidden weights `hidden × dim` (row-major) and biases.
    w1: Vec<f64>,
    b1: Vec<f64>,
    /// Output weights `n_classes × hidden` and biases.
    w2: Vec<f64>,
    b2: Vec<f64>,
}

impl MlpClassifier {
    /// Build with hyperparameters.
    pub fn new(params: MlpParams) -> Self {
        assert!(params.hidden > 0, "hidden width must be positive");
        assert!(params.batch_size > 0, "batch size must be positive");
        MlpClassifier {
            params,
            n_classes: 0,
            dim: 0,
            w1: Vec::new(),
            b1: Vec::new(),
            w2: Vec::new(),
            b2: Vec::new(),
        }
    }

    /// Forward pass into caller-owned buffers: `hidden_out` receives the
    /// ReLU activations, `scores_out` the raw class scores. Both linear
    /// layers run through the fixed-order [`kernels::matvec_bias`].
    fn forward_into(&self, row: &[f64], hidden_out: &mut Vec<f64>, scores_out: &mut Vec<f64>) {
        let h = self.params.hidden;
        hidden_out.clear();
        hidden_out.resize(h, 0.0);
        kernels::matvec_bias(&self.w1, h, self.dim, row, &self.b1, hidden_out);
        for a in hidden_out.iter_mut() {
            // comet-lint: allow(D2) — ReLU hinge on a finite activation; max(0) is the definition
            *a = a.max(0.0); // ReLU
        }
        scores_out.clear();
        scores_out.resize(self.n_classes, 0.0);
        kernels::matvec_bias(&self.w2, self.n_classes, h, hidden_out, &self.b2, scores_out);
    }
}

impl Default for MlpClassifier {
    fn default() -> Self {
        Self::new(MlpParams::default())
    }
}

impl Classifier for MlpClassifier {
    fn fit(&mut self, x: &Matrix, y: &[u32], n_classes: usize, rng: &mut dyn RngCore) {
        assert_eq!(x.nrows(), y.len(), "rows and labels must align");
        assert!(x.nrows() > 0, "cannot fit on empty data");
        let d = x.ncols();
        let h = self.params.hidden;
        let k = n_classes.max(2);
        self.dim = d;
        self.n_classes = k;

        // He-uniform init: U(−√(6/fan_in), +√(6/fan_in)).
        let mut uniform = |scale: f64| {
            let u = (rng.next_u64() as f64) / (u64::MAX as f64);
            (2.0 * u - 1.0) * scale
        };
        let s1 = (6.0 / d as f64).sqrt();
        self.w1 = (0..h * d).map(|_| uniform(s1)).collect();
        self.b1 = vec![0.0; h];
        let s2 = (6.0 / h as f64).sqrt();
        self.w2 = (0..k * h).map(|_| uniform(s2)).collect();
        self.b2 = vec![0.0; k];

        // Momentum buffers.
        let mut vw1 = vec![0.0; h * d];
        let mut vb1 = vec![0.0; h];
        let mut vw2 = vec![0.0; k * h];
        let mut vb2 = vec![0.0; k];

        let n = x.nrows();
        let mut order: Vec<usize> = (0..n).collect();
        let mut hidden = scratch::take(h);
        let mut p = scratch::take(k);

        // Gradient accumulators per batch.
        let mut gw1 = vec![0.0; h * d];
        let mut gb1 = vec![0.0; h];
        let mut gw2 = vec![0.0; k * h];
        let mut gb2 = vec![0.0; k];

        for _ in 0..self.params.epochs {
            for i in (1..n).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            for batch in order.chunks(self.params.batch_size) {
                gw1.iter_mut().for_each(|g| *g = 0.0);
                gb1.iter_mut().for_each(|g| *g = 0.0);
                gw2.iter_mut().for_each(|g| *g = 0.0);
                gb2.iter_mut().for_each(|g| *g = 0.0);

                for &i in batch {
                    let row = x.row(i);
                    self.forward_into(row, &mut hidden, &mut p);
                    softmax(&mut p);
                    // Output delta: p − onehot(y).
                    p[y[i] as usize] -= 1.0;
                    for c in 0..k {
                        let delta = p[c];
                        gb2[c] += delta;
                        kernels::axpy(delta, &hidden, &mut gw2[c * h..(c + 1) * h]);
                    }
                    // Hidden delta through ReLU.
                    for j in 0..h {
                        if hidden[j] <= 0.0 {
                            continue;
                        }
                        let mut delta = 0.0;
                        #[allow(clippy::needless_range_loop)]
                        for c in 0..k {
                            delta += p[c] * self.w2[c * h + j];
                        }
                        gb1[j] += delta;
                        kernels::axpy(delta, row, &mut gw1[j * d..(j + 1) * d]);
                    }
                }

                let scale = 1.0 / batch.len() as f64;
                let lr = self.params.learning_rate;
                let mu = self.params.momentum;
                let l2 = self.params.l2;
                let update = |w: &mut [f64], v: &mut [f64], g: &[f64]| {
                    for ((wi, vi), gi) in w.iter_mut().zip(v.iter_mut()).zip(g) {
                        *vi = mu * *vi - lr * (gi * scale + l2 * *wi);
                        *wi += *vi;
                    }
                };
                update(&mut self.w1, &mut vw1, &gw1);
                update(&mut self.b1, &mut vb1, &gb1);
                update(&mut self.w2, &mut vw2, &gw2);
                update(&mut self.b2, &mut vb2, &gb2);
            }
        }
        scratch::put(hidden);
        scratch::put(p);
    }

    fn predict_row(&self, row: &[f64]) -> u32 {
        assert!(!self.w1.is_empty(), "predict called before fit");
        let mut hidden = Vec::new();
        let mut scores = Vec::new();
        self.forward_into(row, &mut hidden, &mut scores);
        argmax(&scores)
    }

    fn predict(&self, x: &Matrix) -> Vec<u32> {
        assert!(!self.w1.is_empty(), "predict called before fit");
        let mut hidden = scratch::take(self.params.hidden);
        let mut scores = scratch::take(self.n_classes);
        let mut out = Vec::with_capacity(x.nrows());
        for row in x.rows() {
            self.forward_into(row, &mut hidden, &mut scores);
            out.push(argmax(&scores));
        }
        scratch::put(hidden);
        scratch::put(scores);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_data() -> (Matrix, Vec<u32>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            let a = (i / 2) % 2;
            let b = i % 2;
            let jitter = ((i * 11) % 19) as f64 / 190.0;
            rows.push(vec![a as f64 + jitter, b as f64 - jitter]);
            labels.push(((a + b) % 2) as u32);
        }
        (Matrix::from_vecs(&rows), labels)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let mut mlp =
            MlpClassifier::new(MlpParams { hidden: 16, epochs: 120, ..MlpParams::default() });
        let mut rng = StdRng::seed_from_u64(0);
        mlp.fit(&x, &y, 2, &mut rng);
        let acc = crate::metrics::accuracy(&y, &mlp.predict(&x));
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn learns_linear_boundary() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..150 {
            let v = i as f64 / 150.0 - 0.5;
            rows.push(vec![v, -v * 0.3]);
            labels.push(if v > 0.0 { 1 } else { 0 });
        }
        let x = Matrix::from_vecs(&rows);
        let mut mlp = MlpClassifier::default();
        let mut rng = StdRng::seed_from_u64(1);
        mlp.fit(&x, &labels, 2, &mut rng);
        let acc = crate::metrics::accuracy(&labels, &mlp.predict(&x));
        assert!(acc > 0.93, "accuracy {acc}");
    }

    #[test]
    fn three_classes() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..240 {
            let c = i % 3;
            let center = [(-3.0, 0.0), (3.0, 0.0), (0.0, 3.0)][c];
            let j = ((i * 7) % 11) as f64 / 11.0 - 0.5;
            rows.push(vec![center.0 + j, center.1 + j * 0.5]);
            labels.push(c as u32);
        }
        let x = Matrix::from_vecs(&rows);
        let mut mlp = MlpClassifier::default();
        let mut rng = StdRng::seed_from_u64(2);
        mlp.fit(&x, &labels, 3, &mut rng);
        let acc = crate::metrics::accuracy(&labels, &mlp.predict(&x));
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = xor_data();
        let run = |seed: u64| {
            let mut mlp = MlpClassifier::default();
            let mut rng = StdRng::seed_from_u64(seed);
            mlp.fit(&x, &y, 2, &mut rng);
            mlp.predict(&x)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        MlpClassifier::default().predict_row(&[0.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_hidden_rejected() {
        MlpClassifier::new(MlpParams { hidden: 0, ..MlpParams::default() });
    }
}
