//! k-nearest-neighbors classifier (brute force, Euclidean distance).
//!
//! The paper's KNN (§4.4). Operates on the standardized feature matrix the
//! [`crate::Featurizer`] produces, so Euclidean distance is meaningful
//! across mixed numeric/one-hot features.
//!
//! The distance scan is tier-shaped (DESIGN.md §12). The scalar tier keeps
//! the original per-pair [`kernels::sq_dist`] scan and sorted-insert
//! neighbor list, bit-identical to every pre-tier release. The SIMD tier
//! batches the scan through the norm decomposition
//! `‖a − xᵢ‖² = ‖a‖² + ‖xᵢ‖² − 2·a·xᵢ`: train-row norms are computed once
//! per predict pass, the cross terms for a block of test rows come from
//! one cache-blocked [`kernels::matmul`] against the transposed training
//! matrix (throughput-bound element-wise axpy instead of `n_train · n_test`
//! tiny latency-chained dot calls), and the k nearest are selected by an
//! unsorted worst-tracking scan instead of a `Vec::insert` memmove per
//! improvement. Both strategies are fixed-order and deterministic; they
//! are simply *different* fixed orders (including how distance ties at
//! the k-boundary are broken), which is exactly why the kernel tier is
//! part of the trace fingerprint.

use crate::kernels::KernelTier;
use crate::model::Classifier;
use crate::{kernels, Matrix};
use rand::RngCore;

/// KNN hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnnParams {
    /// Number of neighbors.
    pub k: usize,
}

impl Default for KnnParams {
    fn default() -> Self {
        KnnParams { k: 5 }
    }
}

/// Brute-force KNN. `fit` memorizes the training set; `predict_row` scans
/// all training rows, keeps the `k` nearest, and majority-votes (ties break
/// toward the smaller class code, matching scikit-learn's behaviour for
/// `uniform` weights).
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    params: KnnParams,
    train_x: Option<Matrix>,
    train_y: Vec<u32>,
    n_classes: usize,
}

impl KnnClassifier {
    /// Build with hyperparameters.
    pub fn new(params: KnnParams) -> Self {
        assert!(params.k > 0, "k must be at least 1");
        KnnClassifier { params, train_x: None, train_y: Vec::new(), n_classes: 0 }
    }

    /// The effective `k` (clamped to the training-set size at predict time).
    pub fn k(&self) -> usize {
        self.params.k
    }

    /// Keep the `k` nearest in `best` (sorted ascending by squared
    /// distance; sqrt is monotone, so ranking on the squared metric picks
    /// the same neighbors without a sqrt per row).
    #[inline]
    fn consider(best: &mut Vec<(f64, u32)>, k: usize, d: f64, label: u32) {
        if best.len() < k {
            let at = best.partition_point(|&(bd, _)| bd <= d);
            best.insert(at, (d, label));
        } else if d < best[k - 1].0 {
            best.pop();
            let at = best.partition_point(|&(bd, _)| bd <= d);
            best.insert(at, (d, label));
        }
    }

    /// Majority-vote over `best` into `votes` (ties break toward the
    /// smaller class code).
    fn majority(&self, best: &[(f64, u32)], votes: &mut Vec<usize>) -> u32 {
        votes.clear();
        votes.resize(self.n_classes, 0);
        for &(_, label) in best {
            votes[label as usize] += 1;
        }
        let mut winner = 0usize;
        for (c, &v) in votes.iter().enumerate().skip(1) {
            if v > votes[winner] {
                winner = c;
            }
        }
        winner as u32
    }

    /// The fitted training matrix; predicting before `fit` is a caller
    /// bug (`predict_before_fit_panics` pins the message).
    fn fitted(&self) -> &Matrix {
        self.train_x.as_ref().expect("predict called before fit")
    }

    /// Scalar-tier scan: one [`kernels::sq_dist`] per training row, the
    /// pre-tier evaluation order.
    fn vote(&self, row: &[f64], best: &mut Vec<(f64, u32)>, votes: &mut Vec<usize>) -> u32 {
        let x = self.fitted();
        let k = self.params.k.min(x.nrows());
        best.clear();
        for i in 0..x.nrows() {
            let d = kernels::sq_dist(row, x.row(i));
            Self::consider(best, k, d, self.train_y[i]);
        }
        self.majority(best, votes)
    }

    /// Squared norm of every training row, in the current tier's dot
    /// order — the amortized half of the SIMD-tier decomposition.
    fn train_norms(&self) -> Vec<f64> {
        let x = self.fitted();
        (0..x.nrows()).map(|i| kernels::dot(x.row(i), x.row(i))).collect()
    }

    /// Column-major (transposed) copy of the training matrix, the `b`
    /// operand of the cross-term [`kernels::matmul`].
    fn transposed_train(&self) -> Vec<f64> {
        let x = self.fitted();
        let (n, d) = (x.nrows(), x.ncols());
        let mut t = vec![0.0; n * d];
        for i in 0..n {
            for (j, &v) in x.row(i).iter().enumerate() {
                t[j * n + i] = v;
            }
        }
        t
    }

    /// Deterministic unsorted top-k over one distance row: keep the `k`
    /// smallest seen so far, tracking the index of the current worst; a
    /// strictly smaller distance overwrites the worst, then the worst is
    /// re-scanned (first index wins ties). Same strict `<` admission rule
    /// as the scalar tier's sorted insert.
    fn top_k_scan(dists: &[f64], labels: &[u32], k: usize, best: &mut Vec<(f64, u32)>) {
        best.clear();
        // The worst entry's (value, index) live in registers: the re-scan
        // after an admission would otherwise reload `best[worst].0` every
        // iteration, a loop-carried load chain that dominates at larger k.
        let (mut wv, mut wi) = (f64::NEG_INFINITY, 0usize);
        let fill = k.min(dists.len());
        for i in 0..fill {
            let d = dists[i];
            if d > wv {
                wv = d;
                wi = i;
            }
            best.push((d, labels[i]));
        }
        for i in fill..dists.len() {
            let d = dists[i];
            if d < wv {
                best[wi] = (d, labels[i]);
                wv = best[0].0;
                wi = 0;
                for (j, &(bd, _)) in best.iter().enumerate().skip(1) {
                    if bd > wv {
                        wv = bd;
                        wi = j;
                    }
                }
            }
        }
    }

    /// SIMD-tier vote for one test row, given its matmul cross-term row.
    /// `dists` is a caller-provided `n_train` scratch buffer.
    fn vote_decomposed(
        &self,
        rn: f64,
        norms: &[f64],
        cross: &[f64],
        dists: &mut [f64],
        best: &mut Vec<(f64, u32)>,
        votes: &mut Vec<usize>,
    ) -> u32 {
        let k = self.params.k.min(norms.len());
        for ((di, &ni), &ci) in dists.iter_mut().zip(norms).zip(cross) {
            *di = (rn + ni) - 2.0 * ci;
        }
        Self::top_k_scan(dists, &self.train_y, k, best);
        self.majority(best, votes)
    }
}

/// Test rows per cross-term [`kernels::matmul`] block: bounds the
/// `block × n_train` cross buffer while amortizing the blocked product.
const KNN_BLOCK: usize = 64;

impl Default for KnnClassifier {
    fn default() -> Self {
        Self::new(KnnParams::default())
    }
}

impl Classifier for KnnClassifier {
    fn fit(&mut self, x: &Matrix, y: &[u32], n_classes: usize, _rng: &mut dyn RngCore) {
        assert_eq!(x.nrows(), y.len(), "rows and labels must align");
        assert!(x.nrows() > 0, "cannot fit on empty data");
        self.train_x = Some(x.clone());
        self.train_y = y.to_vec();
        self.n_classes = n_classes.max(1);
    }

    fn predict_row(&self, row: &[f64]) -> u32 {
        let mut best = Vec::with_capacity(self.params.k + 1);
        let mut votes = Vec::with_capacity(self.n_classes);
        match kernels::tier() {
            KernelTier::Scalar => self.vote(row, &mut best, &mut votes),
            KernelTier::Simd => {
                // One-row block of the batched path: matmul's per-cell
                // order is m-invariant, so this matches `predict` exactly.
                let norms = self.train_norms();
                let xt = self.transposed_train();
                let n = norms.len();
                let mut cross = vec![0.0; n];
                kernels::matmul(row, 1, row.len(), &xt, n, &mut cross);
                let rn = kernels::dot(row, row);
                let mut dists = vec![0.0; n];
                self.vote_decomposed(rn, &norms, &cross, &mut dists, &mut best, &mut votes)
            }
        }
    }

    fn predict(&self, x: &Matrix) -> Vec<u32> {
        // One set of buffers for the whole test set; the distance scan per
        // row reuses them instead of allocating (the KNN workloads in the
        // session loop predict a few thousand rows per candidate).
        let mut best = Vec::with_capacity(self.params.k + 1);
        let mut votes = Vec::with_capacity(self.n_classes);
        let mut out = Vec::with_capacity(x.nrows());
        match kernels::tier() {
            KernelTier::Scalar => {
                for i in 0..x.nrows() {
                    out.push(self.vote(x.row(i), &mut best, &mut votes));
                }
            }
            KernelTier::Simd => {
                // Train norms and the transposed training matrix amortize
                // over the whole test set; cross terms stream through one
                // matmul per KNN_BLOCK test rows.
                let norms = self.train_norms();
                let xt = self.transposed_train();
                let (n, d) = (norms.len(), x.ncols());
                let mut cross = vec![0.0; KNN_BLOCK * n];
                let mut dists = vec![0.0; n];
                let mut i0 = 0;
                while i0 < x.nrows() {
                    let i1 = (i0 + KNN_BLOCK).min(x.nrows());
                    let rows = i1 - i0;
                    let block = &x.as_slice()[i0 * d..i1 * d];
                    kernels::matmul(block, rows, d, &xt, n, &mut cross[..rows * n]);
                    for i in 0..rows {
                        let rn = kernels::dot(x.row(i0 + i), x.row(i0 + i));
                        out.push(self.vote_decomposed(
                            rn,
                            &norms,
                            &cross[i * n..(i + 1) * n],
                            &mut dists,
                            &mut best,
                            &mut votes,
                        ));
                    }
                    i0 = i1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid() -> (Matrix, Vec<u32>) {
        // Two tight clusters.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let c = i % 2;
            let base = if c == 0 { 0.0 } else { 10.0 };
            rows.push(vec![base + (i / 2) as f64 * 0.01, base]);
            labels.push(c as u32);
        }
        (Matrix::from_vecs(&rows), labels)
    }

    #[test]
    fn classifies_clusters_perfectly() {
        let (x, y) = grid();
        let mut knn = KnnClassifier::default();
        let mut rng = StdRng::seed_from_u64(0);
        knn.fit(&x, &y, 2, &mut rng);
        assert_eq!(knn.predict(&x), y);
        assert_eq!(knn.predict_row(&[0.5, 0.5]), 0);
        assert_eq!(knn.predict_row(&[9.5, 9.5]), 1);
    }

    #[test]
    fn k_one_memorizes() {
        let x = Matrix::from_vecs(&[vec![0.0], vec![1.0], vec![2.0]]);
        let y = vec![0, 1, 0];
        let mut knn = KnnClassifier::new(KnnParams { k: 1 });
        let mut rng = StdRng::seed_from_u64(0);
        knn.fit(&x, &y, 2, &mut rng);
        assert_eq!(knn.predict(&x), y);
    }

    #[test]
    fn k_larger_than_train_clamps() {
        let x = Matrix::from_vecs(&[vec![0.0], vec![1.0]]);
        let y = vec![0, 0];
        let mut knn = KnnClassifier::new(KnnParams { k: 99 });
        let mut rng = StdRng::seed_from_u64(0);
        knn.fit(&x, &y, 2, &mut rng);
        assert_eq!(knn.predict_row(&[5.0]), 0);
    }

    #[test]
    fn majority_vote_with_k3() {
        let x = Matrix::from_vecs(&[vec![0.0], vec![0.1], vec![0.2], vec![5.0]]);
        let y = vec![1, 1, 0, 0];
        let mut knn = KnnClassifier::new(KnnParams { k: 3 });
        let mut rng = StdRng::seed_from_u64(0);
        knn.fit(&x, &y, 2, &mut rng);
        // Neighbors of 0.05: {0.0:1, 0.1:1, 0.2:0} → majority 1.
        assert_eq!(knn.predict_row(&[0.05]), 1);
    }

    #[test]
    fn tie_breaks_to_lower_class() {
        let x = Matrix::from_vecs(&[vec![0.0], vec![1.0]]);
        let y = vec![1, 0];
        let mut knn = KnnClassifier::new(KnnParams { k: 2 });
        let mut rng = StdRng::seed_from_u64(0);
        knn.fit(&x, &y, 2, &mut rng);
        assert_eq!(knn.predict_row(&[0.5]), 0);
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        KnnClassifier::default().predict_row(&[0.0]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_k_rejected() {
        KnnClassifier::new(KnnParams { k: 0 });
    }
}
