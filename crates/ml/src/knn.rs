//! k-nearest-neighbors classifier (brute force, Euclidean distance).
//!
//! The paper's KNN (§4.4). Operates on the standardized feature matrix the
//! [`crate::Featurizer`] produces, so Euclidean distance is meaningful
//! across mixed numeric/one-hot features.

use crate::model::Classifier;
use crate::{kernels, Matrix};
use rand::RngCore;

/// KNN hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnnParams {
    /// Number of neighbors.
    pub k: usize,
}

impl Default for KnnParams {
    fn default() -> Self {
        KnnParams { k: 5 }
    }
}

/// Brute-force KNN. `fit` memorizes the training set; `predict_row` scans
/// all training rows, keeps the `k` nearest, and majority-votes (ties break
/// toward the smaller class code, matching scikit-learn's behaviour for
/// `uniform` weights).
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    params: KnnParams,
    train_x: Option<Matrix>,
    train_y: Vec<u32>,
    n_classes: usize,
}

impl KnnClassifier {
    /// Build with hyperparameters.
    pub fn new(params: KnnParams) -> Self {
        assert!(params.k > 0, "k must be at least 1");
        KnnClassifier { params, train_x: None, train_y: Vec::new(), n_classes: 0 }
    }

    /// The effective `k` (clamped to the training-set size at predict time).
    pub fn k(&self) -> usize {
        self.params.k
    }

    /// Scan all training rows keeping the `k` nearest in `best` (sorted
    /// ascending by squared distance; sqrt is monotone, so ranking on the
    /// squared metric picks the same neighbors without a sqrt per row),
    /// then majority-vote into `votes`.
    fn vote(&self, row: &[f64], best: &mut Vec<(f64, u32)>, votes: &mut Vec<usize>) -> u32 {
        let x = self.train_x.as_ref().expect("predict called before fit");
        let k = self.params.k.min(x.nrows());
        best.clear();
        for i in 0..x.nrows() {
            let d = kernels::sq_dist(row, x.row(i));
            if best.len() < k {
                let at = best.partition_point(|&(bd, _)| bd <= d);
                best.insert(at, (d, self.train_y[i]));
            } else if d < best[k - 1].0 {
                best.pop();
                let at = best.partition_point(|&(bd, _)| bd <= d);
                best.insert(at, (d, self.train_y[i]));
            }
        }
        votes.clear();
        votes.resize(self.n_classes, 0);
        for &(_, label) in best.iter() {
            votes[label as usize] += 1;
        }
        let mut winner = 0usize;
        for (c, &v) in votes.iter().enumerate().skip(1) {
            if v > votes[winner] {
                winner = c;
            }
        }
        winner as u32
    }
}

impl Default for KnnClassifier {
    fn default() -> Self {
        Self::new(KnnParams::default())
    }
}

impl Classifier for KnnClassifier {
    fn fit(&mut self, x: &Matrix, y: &[u32], n_classes: usize, _rng: &mut dyn RngCore) {
        assert_eq!(x.nrows(), y.len(), "rows and labels must align");
        assert!(x.nrows() > 0, "cannot fit on empty data");
        self.train_x = Some(x.clone());
        self.train_y = y.to_vec();
        self.n_classes = n_classes.max(1);
    }

    fn predict_row(&self, row: &[f64]) -> u32 {
        let mut best = Vec::with_capacity(self.params.k + 1);
        let mut votes = Vec::with_capacity(self.n_classes);
        self.vote(row, &mut best, &mut votes)
    }

    fn predict(&self, x: &Matrix) -> Vec<u32> {
        // One pair of buffers for the whole test set; the distance scan per
        // row reuses them instead of allocating (the KNN workloads in the
        // session loop predict a few thousand rows per candidate).
        let mut best = Vec::with_capacity(self.params.k + 1);
        let mut votes = Vec::with_capacity(self.n_classes);
        let mut out = Vec::with_capacity(x.nrows());
        for i in 0..x.nrows() {
            out.push(self.vote(x.row(i), &mut best, &mut votes));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid() -> (Matrix, Vec<u32>) {
        // Two tight clusters.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let c = i % 2;
            let base = if c == 0 { 0.0 } else { 10.0 };
            rows.push(vec![base + (i / 2) as f64 * 0.01, base]);
            labels.push(c as u32);
        }
        (Matrix::from_vecs(&rows), labels)
    }

    #[test]
    fn classifies_clusters_perfectly() {
        let (x, y) = grid();
        let mut knn = KnnClassifier::default();
        let mut rng = StdRng::seed_from_u64(0);
        knn.fit(&x, &y, 2, &mut rng);
        assert_eq!(knn.predict(&x), y);
        assert_eq!(knn.predict_row(&[0.5, 0.5]), 0);
        assert_eq!(knn.predict_row(&[9.5, 9.5]), 1);
    }

    #[test]
    fn k_one_memorizes() {
        let x = Matrix::from_vecs(&[vec![0.0], vec![1.0], vec![2.0]]);
        let y = vec![0, 1, 0];
        let mut knn = KnnClassifier::new(KnnParams { k: 1 });
        let mut rng = StdRng::seed_from_u64(0);
        knn.fit(&x, &y, 2, &mut rng);
        assert_eq!(knn.predict(&x), y);
    }

    #[test]
    fn k_larger_than_train_clamps() {
        let x = Matrix::from_vecs(&[vec![0.0], vec![1.0]]);
        let y = vec![0, 0];
        let mut knn = KnnClassifier::new(KnnParams { k: 99 });
        let mut rng = StdRng::seed_from_u64(0);
        knn.fit(&x, &y, 2, &mut rng);
        assert_eq!(knn.predict_row(&[5.0]), 0);
    }

    #[test]
    fn majority_vote_with_k3() {
        let x = Matrix::from_vecs(&[vec![0.0], vec![0.1], vec![0.2], vec![5.0]]);
        let y = vec![1, 1, 0, 0];
        let mut knn = KnnClassifier::new(KnnParams { k: 3 });
        let mut rng = StdRng::seed_from_u64(0);
        knn.fit(&x, &y, 2, &mut rng);
        // Neighbors of 0.05: {0.0:1, 0.1:1, 0.2:0} → majority 1.
        assert_eq!(knn.predict_row(&[0.05]), 1);
    }

    #[test]
    fn tie_breaks_to_lower_class() {
        let x = Matrix::from_vecs(&[vec![0.0], vec![1.0]]);
        let y = vec![1, 0];
        let mut knn = KnnClassifier::new(KnnParams { k: 2 });
        let mut rng = StdRng::seed_from_u64(0);
        knn.fit(&x, &y, 2, &mut rng);
        assert_eq!(knn.predict_row(&[0.5]), 0);
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        KnnClassifier::default().predict_row(&[0.0]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_k_rejected() {
        KnnClassifier::new(KnnParams { k: 0 });
    }
}
