//! Sampling-based permutation Shapley values — the stand-in for SHAP
//! (Lundberg & Lee, 2017) that powers the FIR baseline (paper §4.5).
//!
//! The value function of a feature coalition `S` is the model's metric on a
//! copy of the evaluation matrix where every feature *not* in `S` is masked
//! to its background (training-mean) value. Shapley values are estimated by
//! Monte-Carlo over permutations: walk each permutation, unmask features one
//! at a time, and credit each feature its marginal metric gain.

use crate::featurize::FeatureGroup;
use crate::metrics::Metric;
use crate::model::Classifier;
use crate::Matrix;
use rand::Rng;

/// Configuration for the Shapley estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapleyConfig {
    /// Number of sampled permutations. More → lower variance; the estimator
    /// is unbiased for any count ≥ 1.
    pub n_permutations: usize,
    /// Metric defining the coalition value.
    pub metric: Metric,
}

impl Default for ShapleyConfig {
    fn default() -> Self {
        ShapleyConfig { n_permutations: 8, metric: Metric::F1 }
    }
}

/// Per-column means of a matrix — the masking background.
pub fn column_means(x: &Matrix) -> Vec<f64> {
    let mut means = vec![0.0; x.ncols()];
    if x.nrows() == 0 {
        return means;
    }
    for row in x.rows() {
        for (m, v) in means.iter_mut().zip(row) {
            *m += v;
        }
    }
    let n = x.nrows() as f64;
    means.iter_mut().for_each(|m| *m /= n);
    means
}

/// Estimate Shapley importances of the original features (as grouped by the
/// featurizer) for a *fitted* model evaluated on `(x, y)`.
///
/// Returns one value per group, in group order. The sum of values equals
/// `v(all features) − v(no features)` per permutation (exactly), hence also
/// in expectation.
#[allow(clippy::too_many_arguments)]
pub fn shapley_importance<R: Rng + ?Sized>(
    model: &dyn Classifier,
    x: &Matrix,
    y: &[u32],
    n_classes: usize,
    groups: &[FeatureGroup],
    background: &[f64],
    config: ShapleyConfig,
    rng: &mut R,
) -> Vec<f64> {
    assert_eq!(x.nrows(), y.len(), "rows and labels must align");
    assert_eq!(background.len(), x.ncols(), "background must cover all columns");
    assert!(config.n_permutations > 0, "need at least one permutation");
    assert!(!groups.is_empty(), "need at least one feature group");

    let n = x.nrows();

    // Fully-masked matrix (all columns at background).
    let mut masked = Matrix::zeros(n, x.ncols());
    for i in 0..n {
        masked.row_mut(i).copy_from_slice(background);
    }
    let empty_value = {
        let preds = model.predict(&masked);
        config.metric.eval(y, &preds, n_classes)
    };

    // Draw all permutations up front (identical rng consumption to the
    // sequential walk), then evaluate the walks in parallel. Each walk is
    // independent; contributions are folded in permutation order so the
    // float sums are bit-identical at any thread count.
    let mut perm: Vec<usize> = (0..groups.len()).collect();
    let permutations: Vec<Vec<usize>> = (0..config.n_permutations)
        .map(|_| {
            for i in (1..perm.len()).rev() {
                let j = rng.gen_range(0..=i);
                perm.swap(i, j);
            }
            perm.clone()
        })
        .collect();

    let walks = comet_par::par_map(permutations, |perm| {
        let mut work = masked.clone();
        let mut deltas = vec![0.0; groups.len()];
        let mut prev = empty_value;
        for &g in &perm {
            let group = &groups[g];
            for i in 0..n {
                let src = &x.row(i)[group.start..group.end];
                work.row_mut(i)[group.start..group.end].copy_from_slice(src);
            }
            let preds = model.predict(&work);
            let value = config.metric.eval(y, &preds, n_classes);
            deltas[g] = value - prev;
            prev = value;
        }
        deltas
    });
    let mut contributions = vec![0.0; groups.len()];
    for deltas in walks {
        for (c, d) in contributions.iter_mut().zip(deltas) {
            *c += d;
        }
    }
    contributions.iter().map(|c| c / config.n_permutations as f64).collect()
}

/// Rank group indices by descending Shapley importance.
pub fn rank_by_importance(importances: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..importances.len()).collect();
    // `total_cmp` over a NaN-sanitized key: a degenerate metric can emit a
    // NaN importance, and ranking must neither panic nor let NaN outrank
    // real contributions (D2). Ties break on index for determinism.
    let key = |i: usize| {
        if importances[i].is_nan() {
            f64::NEG_INFINITY
        } else {
            importances[i]
        }
    };
    order.sort_by(|&a, &b| key(b).total_cmp(&key(a)).then(a.cmp(&b)));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::{KnnClassifier, KnnParams};
    use crate::model::Classifier;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Label depends only on feature 0; features 1 and 2 are noise.
    fn dataset() -> (Matrix, Vec<u32>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..120 {
            let c = i % 2;
            let signal = if c == 0 { -1.0 } else { 1.0 };
            let noise1 = ((i * 31) % 17) as f64 / 17.0 - 0.5;
            let noise2 = ((i * 7) % 13) as f64 / 13.0 - 0.5;
            rows.push(vec![signal, noise1, noise2]);
            labels.push(c as u32);
        }
        (Matrix::from_vecs(&rows), labels)
    }

    fn groups3() -> Vec<FeatureGroup> {
        (0..3).map(|c| FeatureGroup { col: c, start: c, end: c + 1 }).collect()
    }

    #[test]
    fn signal_feature_dominates() {
        let (x, y) = dataset();
        let mut knn = KnnClassifier::new(KnnParams { k: 3 });
        let mut rng = StdRng::seed_from_u64(0);
        knn.fit(&x, &y, 2, &mut rng);
        let bg = column_means(&x);
        let imp = shapley_importance(
            &knn,
            &x,
            &y,
            2,
            &groups3(),
            &bg,
            ShapleyConfig { n_permutations: 6, metric: Metric::Accuracy },
            &mut rng,
        );
        assert!(imp[0] > imp[1], "signal {} vs noise {}", imp[0], imp[1]);
        assert!(imp[0] > imp[2]);
        assert!(imp[0] > 0.3);
    }

    #[test]
    fn efficiency_property() {
        // Σ shapley = v(full) − v(empty), exactly, for any permutation count.
        let (x, y) = dataset();
        let mut knn = KnnClassifier::new(KnnParams { k: 3 });
        let mut rng = StdRng::seed_from_u64(1);
        knn.fit(&x, &y, 2, &mut rng);
        let bg = column_means(&x);
        let cfg = ShapleyConfig { n_permutations: 3, metric: Metric::Accuracy };
        let imp = shapley_importance(&knn, &x, &y, 2, &groups3(), &bg, cfg, &mut rng);

        let full = Metric::Accuracy.eval(&y, &knn.predict(&x), 2);
        let mut masked = Matrix::zeros(x.nrows(), 3);
        for i in 0..x.nrows() {
            masked.row_mut(i).copy_from_slice(&bg);
        }
        let empty = Metric::Accuracy.eval(&y, &knn.predict(&masked), 2);
        let total: f64 = imp.iter().sum();
        assert!((total - (full - empty)).abs() < 1e-9, "{total} vs {}", full - empty);
    }

    #[test]
    fn column_means_computed() {
        let m = Matrix::from_vecs(&[vec![1.0, 10.0], vec![3.0, 30.0]]);
        assert_eq!(column_means(&m), vec![2.0, 20.0]);
        assert_eq!(column_means(&Matrix::zeros(0, 2)), vec![0.0, 0.0]);
    }

    #[test]
    fn ranking_descends_with_stable_ties() {
        assert_eq!(rank_by_importance(&[0.1, 0.9, 0.5]), vec![1, 2, 0]);
        assert_eq!(rank_by_importance(&[0.5, 0.5]), vec![0, 1]);
    }

    #[test]
    fn multi_column_groups_move_together() {
        // Group 0 covers columns 0..2; both carry the signal jointly.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..80 {
            let c = (i % 2) as f64;
            rows.push(vec![c, 1.0 - c, 0.0]);
            labels.push(c as u32);
        }
        let x = Matrix::from_vecs(&rows);
        let y = labels;
        let mut knn = KnnClassifier::new(KnnParams { k: 1 });
        let mut rng = StdRng::seed_from_u64(2);
        knn.fit(&x, &y, 2, &mut rng);
        let groups = vec![
            FeatureGroup { col: 0, start: 0, end: 2 },
            FeatureGroup { col: 1, start: 2, end: 3 },
        ];
        let bg = column_means(&x);
        let imp = shapley_importance(
            &knn,
            &x,
            &y,
            2,
            &groups,
            &bg,
            ShapleyConfig { n_permutations: 4, metric: Metric::Accuracy },
            &mut rng,
        );
        assert!(imp[0] > imp[1]);
    }

    #[test]
    #[should_panic(expected = "at least one permutation")]
    fn zero_permutations_rejected() {
        let (x, y) = dataset();
        let mut knn = KnnClassifier::default();
        let mut rng = StdRng::seed_from_u64(3);
        knn.fit(&x, &y, 2, &mut rng);
        let bg = column_means(&x);
        shapley_importance(
            &knn,
            &x,
            &y,
            2,
            &groups3(),
            &bg,
            ShapleyConfig { n_permutations: 0, metric: Metric::F1 },
            &mut rng,
        );
    }
}
