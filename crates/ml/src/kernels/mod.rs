//! Tiered fixed-order linear-algebra kernels for the hot path.
//!
//! Two kernel tiers implement the same API:
//!
//! * [`KernelTier::Scalar`] — the original 4-lane unrolled kernels
//!   ([`scalar`]): four independent accumulator lanes combined as
//!   `(l0 + l1) + (l2 + l3)` plus a sequential tail. Portable default.
//! * [`KernelTier::Simd`] — 8-lane explicitly-vectorized kernels: AVX2
//!   or SSE2 `core::arch` intrinsics ([`x86`]) behind runtime feature
//!   detection, with a portable 8-lane fallback ([`lanes8`]) that
//!   *defines* the tier's reduction order. All three implementations are
//!   bit-identical to each other on every input, so the Simd tier is
//!   deterministic across machines — only the *tier choice* changes
//!   results, never the hardware it runs on.
//!
//! Each lane width fixes one reduction order; the two tiers therefore
//! produce *different* (each internally deterministic) results for the
//! reducing kernels `dot`/`sq_dist` (and everything built on them). The
//! selected tier is part of the session fingerprint and checkpoint
//! header in `comet-core`: a checkpoint taken under one tier refuses to
//! resume under the other. Element-wise kernels ([`axpy`],
//! [`scale_axpy`]) and [`matmul`] (per-cell k-ascending single adds) are
//! bit-identical across tiers.
//!
//! Tier selection, highest priority first: [`set_tier`] (sessions apply
//! their config; the CLI's `--kernels` flag and benches call it
//! directly), then the `COMET_KERNELS=scalar|simd` environment variable,
//! then the scalar default. The choice is process-global (parallel
//! evaluation workers must all agree) and read with a relaxed atomic
//! load, so dispatch costs one predictable branch per kernel call.
//!
//! The `_f32` twins serve the opt-in f32 probe tier (`f32_probes` in
//! `comet-core`): same lane-order rules in single precision.

pub mod lanes8;
pub mod scalar;
#[cfg(target_arch = "x86_64")]
pub mod x86;

use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel implementation tier evaluates hot-path reductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KernelTier {
    /// 4-lane unrolled scalar kernels (portable default).
    Scalar,
    /// 8-lane SIMD kernels (AVX2/SSE2 with portable fallback).
    Simd,
}

impl KernelTier {
    /// Stable lowercase name (used in flags, fingerprints, checkpoint
    /// headers, and bench JSON).
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Simd => "simd",
        }
    }

    /// Accumulator lanes per reduction — the fixed reduction order's
    /// width, recorded alongside the tier name wherever it is persisted.
    pub fn lanes(self) -> usize {
        match self {
            KernelTier::Scalar => 4,
            KernelTier::Simd => 8,
        }
    }

    /// Parse a (case-insensitive) tier name.
    pub fn parse(s: &str) -> Option<KernelTier> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelTier::Scalar),
            "simd" => Some(KernelTier::Simd),
            _ => None,
        }
    }

    /// Resolve the `COMET_KERNELS` environment variable, falling back to
    /// [`KernelTier::Scalar`] when unset or unparseable.
    pub fn from_env_or_scalar() -> KernelTier {
        std::env::var("COMET_KERNELS")
            .ok()
            .and_then(|v| KernelTier::parse(&v))
            .unwrap_or(KernelTier::Scalar)
    }
}

impl std::fmt::Display for KernelTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Unset sentinel; the first [`tier`] read resolves `COMET_KERNELS`.
const TIER_UNSET: u8 = 0;
const TIER_SCALAR: u8 = 1;
const TIER_SIMD: u8 = 2;

/// Process-global tier selection (see module docs for precedence).
static TIER: AtomicU8 = AtomicU8::new(TIER_UNSET);

/// The currently selected kernel tier. Resolves `COMET_KERNELS` on the
/// first call; afterwards a relaxed atomic load.
#[inline]
pub fn tier() -> KernelTier {
    // comet-lint: allow(D9) — single u8 flag, no dependent data; worst case is one redundant env re-read
    match TIER.load(Ordering::Relaxed) {
        TIER_SCALAR => KernelTier::Scalar,
        TIER_SIMD => KernelTier::Simd,
        _ => {
            let t = KernelTier::from_env_or_scalar();
            set_tier(t);
            t
        }
    }
}

/// Select the process-global kernel tier. Sessions call this with their
/// config's tier before any evaluation; flipping it mid-computation is
/// safe memory-wise (kernels re-read per call) but changes reduction
/// orders, so callers that care about trace continuity must not.
pub fn set_tier(t: KernelTier) {
    let raw = match t {
        KernelTier::Scalar => TIER_SCALAR,
        KernelTier::Simd => TIER_SIMD,
    };
    // comet-lint: allow(D9) — publishes a standalone u8; no other memory must become visible with it
    TIER.store(raw, Ordering::Relaxed);
}

/// Dot product in the selected tier's fixed lane order.
///
/// Panics in debug builds if the slices differ in length; in release the
/// shorter length governs.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    match tier() {
        KernelTier::Scalar => scalar::dot(a, b),
        KernelTier::Simd => simd_dot(a, b),
    }
}

/// `y += alpha * x`. Element-wise, so no accumulation order is involved
/// and the result is bit-identical in every tier.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    match tier() {
        KernelTier::Scalar => scalar::axpy(alpha, x, y),
        KernelTier::Simd => simd_axpy(alpha, x, y),
    }
}

/// `y = alpha * y + beta * x` (the SGD weight-decay + gradient step
/// fused into one pass). Element-wise; bit-identical in every tier.
#[inline]
pub fn scale_axpy(alpha: f64, y: &mut [f64], beta: f64, x: &[f64]) {
    match tier() {
        KernelTier::Scalar => scalar::scale_axpy(alpha, y, beta, x),
        KernelTier::Simd => simd_scale_axpy(alpha, y, beta, x),
    }
}

/// Squared Euclidean distance in the selected tier's fixed lane order
/// (k-NN's inner loop; callers take the square root once at the end if
/// they need the metric itself).
///
/// # Contract
///
/// `a` and `b` must have equal lengths: the distance between vectors of
/// different dimensionality is undefined. Debug builds panic on a
/// mismatch; release builds let the shorter length govern, silently
/// ignoring the excess — so callers that can receive *user-shaped*
/// lengths must validate first and return a typed error (`comet-core`
/// does this at the featurization boundary before any model sees the
/// matrices). Two empty slices are at distance `0.0`.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(
        a.len(),
        b.len(),
        "sq_dist requires equal dimensionality (got {} vs {})",
        a.len(),
        b.len()
    );
    match tier() {
        KernelTier::Scalar => scalar::sq_dist(a, b),
        KernelTier::Simd => simd_sq_dist(a, b),
    }
}

/// Dense row-major matrix–vector product: `out[i] = dot(a_row_i, x)`.
/// `a` holds `nrows * ncols` elements; rows stream through cache in
/// order, so no extra blocking is needed for the matvec shape. The tier
/// is resolved once per call, not once per row.
#[inline]
pub fn matvec(a: &[f64], nrows: usize, ncols: usize, x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), nrows * ncols);
    debug_assert_eq!(x.len(), ncols);
    debug_assert_eq!(out.len(), nrows);
    if ncols == 0 {
        out.fill(0.0);
        return;
    }
    match tier() {
        KernelTier::Scalar => {
            for (o, row) in out.iter_mut().zip(a.chunks_exact(ncols)) {
                *o = scalar::dot(row, x);
            }
        }
        KernelTier::Simd => {
            for (o, row) in out.iter_mut().zip(a.chunks_exact(ncols)) {
                *o = simd_dot(row, x);
            }
        }
    }
}

/// [`matvec`] with a per-row bias added after the dot: `out[i] =
/// dot(a_row_i, x) + bias[i]` — the linear-layer forward shape shared by
/// the GLM and MLP.
#[inline]
pub fn matvec_bias(
    a: &[f64],
    nrows: usize,
    ncols: usize,
    x: &[f64],
    bias: &[f64],
    out: &mut [f64],
) {
    debug_assert_eq!(bias.len(), nrows);
    matvec(a, nrows, ncols, x, out);
    for (o, b) in out.iter_mut().zip(bias) {
        *o += b;
    }
}

/// Block edge for [`matmul`]: 64 f64 columns = one 512-byte panel per
/// row, keeping a `B × B` tile of `b` plus a row of `out` inside L1/L2.
const MM_BLOCK: usize = 64;

/// Dense row-major matrix product `out = a(m×k) * b(k×n)`, cache-blocked.
///
/// The accumulation order per output cell is the plain k-ascending order
/// of the textbook i-k-j loop: each `out[i][j]` receives its
/// `a[i][k]*b[k][j]` terms with k strictly ascending — one add per term,
/// no horizontal combines — so the result is bit-identical to the
/// unblocked loop, independent of the blocking, *and identical across
/// kernel tiers*. The scalar tier tiles the j/k dimensions around an
/// axpy panel loop; the SIMD tier uses register-blocked broadcast
/// micro-kernels (4×8 f64 tiles of dedicated accumulators in
/// [`x86::matmul_avx2`]/[`x86::matmul_sse2`]) that add instruction-level
/// parallelism across cells, never within one. The ISA is resolved once
/// per call, so the inner loops carry no dispatch overhead.
pub fn matmul(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    match tier() {
        KernelTier::Scalar => {
            out.fill(0.0);
            matmul_with(scalar::axpy, a, m, k, b, n, out);
        }
        KernelTier::Simd => {
            #[cfg(target_arch = "x86_64")]
            {
                if x86::has_avx2() {
                    // SAFETY: AVX2 support was verified at runtime just above.
                    return unsafe { x86::matmul_avx2(a, m, k, b, n, out) };
                }
                if x86::has_sse2() {
                    // SAFETY: SSE2 support was verified at runtime just above.
                    return unsafe { x86::matmul_sse2(a, m, k, b, n, out) };
                }
            }
            out.fill(0.0);
            matmul_with(lanes8::axpy, a, m, k, b, n, out);
        }
    }
}

/// The blocked i-k-j loop behind [`matmul`], monomorphized over the axpy
/// implementation so the hoisted ISA choice inlines into the inner loop.
#[inline]
fn matmul_with(
    axpy_k: impl Fn(f64, &[f64], &mut [f64]),
    a: &[f64],
    m: usize,
    k: usize,
    b: &[f64],
    n: usize,
    out: &mut [f64],
) {
    for j0 in (0..n).step_by(MM_BLOCK) {
        let j1 = (j0 + MM_BLOCK).min(n);
        for k0 in (0..k).step_by(MM_BLOCK) {
            let k1 = (k0 + MM_BLOCK).min(k);
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let out_row = &mut out[i * n + j0..i * n + j1];
                for kk in k0..k1 {
                    axpy_k(a_row[kk], &b[kk * n + j0..kk * n + j1], out_row);
                }
            }
        }
    }
}

/// [`matmul`] in single precision (f32 probe tier). Same k-ascending
/// per-cell accumulation order, so it is likewise block-size- and
/// tier-invariant.
pub fn matmul_f32(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    match tier() {
        KernelTier::Scalar => {
            out.fill(0.0);
            matmul_with_f32(scalar::axpy_f32, a, m, k, b, n, out);
        }
        KernelTier::Simd => {
            #[cfg(target_arch = "x86_64")]
            {
                if x86::has_avx2() {
                    // SAFETY: AVX2 support was verified at runtime just above.
                    return unsafe { x86::matmul_f32_avx2(a, m, k, b, n, out) };
                }
                if x86::has_sse2() {
                    // SAFETY: SSE2 support was verified at runtime just above.
                    return unsafe { x86::matmul_f32_sse2(a, m, k, b, n, out) };
                }
            }
            out.fill(0.0);
            matmul_with_f32(lanes8::axpy_f32, a, m, k, b, n, out);
        }
    }
}

/// [`matmul_with`] in single precision.
#[inline]
fn matmul_with_f32(
    axpy_k: impl Fn(f32, &[f32], &mut [f32]),
    a: &[f32],
    m: usize,
    k: usize,
    b: &[f32],
    n: usize,
    out: &mut [f32],
) {
    for j0 in (0..n).step_by(MM_BLOCK) {
        let j1 = (j0 + MM_BLOCK).min(n);
        for k0 in (0..k).step_by(MM_BLOCK) {
            let k1 = (k0 + MM_BLOCK).min(k);
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let out_row = &mut out[i * n + j0..i * n + j1];
                for kk in k0..k1 {
                    axpy_k(a_row[kk], &b[kk * n + j0..kk * n + j1], out_row);
                }
            }
        }
    }
}

/// NaN-safe maximum over a slice in fixed left-to-right order.
///
/// NaN entries are sanitized to `-∞` ("no information") so they can
/// never poison or win the reduction — unlike `f64::max`, which silently
/// drops NaN from whichever side it lands on, and unlike raw
/// `total_cmp`, which would rank `+NaN` above `+∞`. This is the
/// D2-sanctioned way to take a max over score-like values. The scan is
/// order-independent in value, so it is shared by both kernel tiers.
///
/// # Contract
///
/// An empty slice carries no information: the result is `-∞` by
/// definition, the same as for an all-NaN slice. Callers for whom "no
/// candidates" is a *user-reachable* state (rather than a programmer
/// error upstream) must treat a `-∞` result as "nothing to rank" — or
/// validate emptiness first and return a typed error, as `comet-core`
/// does where candidate sets come from user-shaped inputs.
#[inline]
pub fn max_sanitized(xs: &[f64]) -> f64 {
    let mut best = f64::NEG_INFINITY;
    for &x in xs {
        let x = if x.is_nan() { f64::NEG_INFINITY } else { x };
        if x > best {
            best = x;
        }
    }
    best
}

/// [`max_sanitized`] in single precision (same contract).
#[inline]
pub fn max_sanitized_f32(xs: &[f32]) -> f32 {
    let mut best = f32::NEG_INFINITY;
    for &x in xs {
        let x = if x.is_nan() { f32::NEG_INFINITY } else { x };
        if x > best {
            best = x;
        }
    }
    best
}

/// [`dot`] in single precision (f32 probe tier).
#[inline]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    match tier() {
        KernelTier::Scalar => scalar::dot_f32(a, b),
        KernelTier::Simd => simd_dot_f32(a, b),
    }
}

/// [`axpy`] in single precision (f32 probe tier).
#[inline]
pub fn axpy_f32(alpha: f32, x: &[f32], y: &mut [f32]) {
    match tier() {
        KernelTier::Scalar => scalar::axpy_f32(alpha, x, y),
        KernelTier::Simd => simd_axpy_f32(alpha, x, y),
    }
}

/// [`scale_axpy`] in single precision (f32 probe tier).
#[inline]
pub fn scale_axpy_f32(alpha: f32, y: &mut [f32], beta: f32, x: &[f32]) {
    match tier() {
        KernelTier::Scalar => scalar::scale_axpy_f32(alpha, y, beta, x),
        KernelTier::Simd => simd_scale_axpy_f32(alpha, y, beta, x),
    }
}

/// [`sq_dist`] in single precision (f32 probe tier; same contract as
/// [`sq_dist`]).
#[inline]
pub fn sq_dist_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(
        a.len(),
        b.len(),
        "sq_dist_f32 requires equal dimensionality (got {} vs {})",
        a.len(),
        b.len()
    );
    match tier() {
        KernelTier::Scalar => scalar::sq_dist_f32(a, b),
        KernelTier::Simd => simd_sq_dist_f32(a, b),
    }
}

/// [`matvec`] in single precision (f32 probe tier).
#[inline]
pub fn matvec_f32(a: &[f32], nrows: usize, ncols: usize, x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), nrows * ncols);
    debug_assert_eq!(x.len(), ncols);
    debug_assert_eq!(out.len(), nrows);
    if ncols == 0 {
        out.fill(0.0);
        return;
    }
    match tier() {
        KernelTier::Scalar => {
            for (o, row) in out.iter_mut().zip(a.chunks_exact(ncols)) {
                *o = scalar::dot_f32(row, x);
            }
        }
        KernelTier::Simd => {
            for (o, row) in out.iter_mut().zip(a.chunks_exact(ncols)) {
                *o = simd_dot_f32(row, x);
            }
        }
    }
}

/// [`matvec_bias`] in single precision (f32 probe tier).
#[inline]
pub fn matvec_bias_f32(
    a: &[f32],
    nrows: usize,
    ncols: usize,
    x: &[f32],
    bias: &[f32],
    out: &mut [f32],
) {
    debug_assert_eq!(bias.len(), nrows);
    matvec_f32(a, nrows, ncols, x, out);
    for (o, b) in out.iter_mut().zip(bias) {
        *o += b;
    }
}

// ---------------------------------------------------------------------
// Simd-tier dispatch: AVX2 when detected, SSE2 otherwise (x86_64
// baseline), portable lanes8 elsewhere. All three are bit-identical.

#[inline]
fn simd_dot(a: &[f64], b: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    {
        if x86::has_avx2() {
            // SAFETY: AVX2 support was verified at runtime just above.
            return unsafe { x86::dot_avx2(a, b) };
        }
        if x86::has_sse2() {
            // SAFETY: SSE2 support was verified at runtime just above.
            return unsafe { x86::dot_sse2(a, b) };
        }
    }
    lanes8::dot(a, b)
}

#[inline]
fn simd_sq_dist(a: &[f64], b: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    {
        if x86::has_avx2() {
            // SAFETY: AVX2 support was verified at runtime just above.
            return unsafe { x86::sq_dist_avx2(a, b) };
        }
        if x86::has_sse2() {
            // SAFETY: SSE2 support was verified at runtime just above.
            return unsafe { x86::sq_dist_sse2(a, b) };
        }
    }
    lanes8::sq_dist(a, b)
}

#[inline]
fn simd_axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    {
        if x86::has_avx2() {
            // SAFETY: AVX2 support was verified at runtime just above.
            return unsafe { x86::axpy_avx2(alpha, x, y) };
        }
        if x86::has_sse2() {
            // SAFETY: SSE2 support was verified at runtime just above.
            return unsafe { x86::axpy_sse2(alpha, x, y) };
        }
    }
    lanes8::axpy(alpha, x, y)
}

#[inline]
fn simd_scale_axpy(alpha: f64, y: &mut [f64], beta: f64, x: &[f64]) {
    #[cfg(target_arch = "x86_64")]
    {
        if x86::has_avx2() {
            // SAFETY: AVX2 support was verified at runtime just above.
            return unsafe { x86::scale_axpy_avx2(alpha, y, beta, x) };
        }
        if x86::has_sse2() {
            // SAFETY: SSE2 support was verified at runtime just above.
            return unsafe { x86::scale_axpy_sse2(alpha, y, beta, x) };
        }
    }
    lanes8::scale_axpy(alpha, y, beta, x)
}

#[inline]
fn simd_dot_f32(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    {
        if x86::has_avx2() {
            // SAFETY: AVX2 support was verified at runtime just above.
            return unsafe { x86::dot_f32_avx2(a, b) };
        }
        if x86::has_sse2() {
            // SAFETY: SSE2 support was verified at runtime just above.
            return unsafe { x86::dot_f32_sse2(a, b) };
        }
    }
    lanes8::dot_f32(a, b)
}

#[inline]
fn simd_sq_dist_f32(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    {
        if x86::has_avx2() {
            // SAFETY: AVX2 support was verified at runtime just above.
            return unsafe { x86::sq_dist_f32_avx2(a, b) };
        }
        if x86::has_sse2() {
            // SAFETY: SSE2 support was verified at runtime just above.
            return unsafe { x86::sq_dist_f32_sse2(a, b) };
        }
    }
    lanes8::sq_dist_f32(a, b)
}

#[inline]
fn simd_axpy_f32(alpha: f32, x: &[f32], y: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    {
        if x86::has_avx2() {
            // SAFETY: AVX2 support was verified at runtime just above.
            return unsafe { x86::axpy_f32_avx2(alpha, x, y) };
        }
        if x86::has_sse2() {
            // SAFETY: SSE2 support was verified at runtime just above.
            return unsafe { x86::axpy_f32_sse2(alpha, x, y) };
        }
    }
    lanes8::axpy_f32(alpha, x, y)
}

#[inline]
fn simd_scale_axpy_f32(alpha: f32, y: &mut [f32], beta: f32, x: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    {
        if x86::has_avx2() {
            // SAFETY: AVX2 support was verified at runtime just above.
            return unsafe { x86::scale_axpy_f32_avx2(alpha, y, beta, x) };
        }
        if x86::has_sse2() {
            // SAFETY: SSE2 support was verified at runtime just above.
            return unsafe { x86::scale_axpy_f32_sse2(alpha, y, beta, x) };
        }
    }
    lanes8::scale_axpy_f32(alpha, y, beta, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The tier selection is process-global; tests that flip it must
    /// serialize and restore (same pattern as `OBS_LOCK` in comet-core).
    static TIER_LOCK: Mutex<()> = Mutex::new(());

    fn tier_guard(t: KernelTier) -> (MutexGuard<'static, ()>, KernelTier) {
        let guard = TIER_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let prev = tier();
        set_tier(t);
        (guard, prev)
    }

    fn naive_dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    fn seq(n: usize, scale: f64) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.37 - 1.5) * scale).collect()
    }

    #[test]
    fn max_sanitized_ignores_nan_and_handles_empty() {
        assert_eq!(max_sanitized(&[1.0, 3.0, 2.0]), 3.0);
        assert_eq!(max_sanitized(&[1.0, f64::NAN, 2.0]), 2.0);
        assert_eq!(max_sanitized(&[f64::NAN; 3]), f64::NEG_INFINITY);
        assert_eq!(max_sanitized(&[]), f64::NEG_INFINITY);
        // NaN must not outrank +∞ the way raw `total_cmp` would let it.
        assert_eq!(max_sanitized(&[f64::INFINITY, f64::NAN]), f64::INFINITY);
        assert_eq!(max_sanitized_f32(&[1.0, f32::NAN, 2.0]), 2.0);
        assert_eq!(max_sanitized_f32(&[]), f32::NEG_INFINITY);
    }

    #[test]
    fn tier_names_roundtrip() {
        for t in [KernelTier::Scalar, KernelTier::Simd] {
            assert_eq!(KernelTier::parse(t.name()), Some(t));
            assert_eq!(t.to_string(), t.name());
        }
        assert_eq!(KernelTier::parse("SIMD"), Some(KernelTier::Simd));
        assert_eq!(KernelTier::parse("avx512"), None);
        assert_eq!(KernelTier::Scalar.lanes(), 4);
        assert_eq!(KernelTier::Simd.lanes(), 8);
    }

    #[test]
    fn dot_matches_naive_within_tolerance_and_is_deterministic() {
        for t in [KernelTier::Scalar, KernelTier::Simd] {
            let (_g, prev) = tier_guard(t);
            for n in [0, 1, 3, 4, 5, 8, 17, 100] {
                let a = seq(n, 1.0);
                let b = seq(n, -0.5);
                let d = dot(&a, &b);
                assert!((d - naive_dot(&a, &b)).abs() < 1e-9 * (n.max(1) as f64));
                // Bitwise repeatable.
                assert_eq!(d.to_bits(), dot(&a, &b).to_bits());
            }
            set_tier(prev);
        }
    }

    #[test]
    fn axpy_and_scale_axpy() {
        for t in [KernelTier::Scalar, KernelTier::Simd] {
            let (_g, prev) = tier_guard(t);
            for n in [0, 1, 4, 7, 9, 16, 21] {
                let x = seq(n, 2.0);
                let mut y = seq(n, 1.0);
                let expect: Vec<f64> = y.iter().zip(&x).map(|(yi, xi)| yi + 0.5 * xi).collect();
                axpy(0.5, &x, &mut y);
                assert_eq!(y, expect);

                let mut z = seq(n, 1.0);
                let expect: Vec<f64> =
                    z.iter().zip(&x).map(|(zi, xi)| 0.9 * zi - 0.1 * xi).collect();
                scale_axpy(0.9, &mut z, -0.1, &x);
                assert_eq!(z, expect);
            }
            set_tier(prev);
        }
    }

    #[test]
    fn sq_dist_matches_naive() {
        for t in [KernelTier::Scalar, KernelTier::Simd] {
            let (_g, prev) = tier_guard(t);
            for n in [0, 1, 4, 6, 13, 24] {
                let a = seq(n, 1.0);
                let b = seq(n, 0.25);
                let naive: f64 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
                assert!((sq_dist(&a, &b) - naive).abs() < 1e-9);
            }
            set_tier(prev);
        }
    }

    #[test]
    fn matvec_and_bias() {
        // 2x3 matrix times x.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let x = [1.0, 0.0, -1.0];
        for t in [KernelTier::Scalar, KernelTier::Simd] {
            let (_g, prev) = tier_guard(t);
            let mut out = [0.0; 2];
            matvec(&a, 2, 3, &x, &mut out);
            assert_eq!(out, [-2.0, -2.0]);
            matvec_bias(&a, 2, 3, &x, &[10.0, 20.0], &mut out);
            assert_eq!(out, [8.0, 18.0]);
            set_tier(prev);
        }
    }

    #[test]
    fn matvec_zero_cols() {
        let mut out = [1.0; 3];
        matvec(&[], 3, 0, &[], &mut out);
        assert_eq!(out, [0.0; 3]);
        let mut out32 = [1.0f32; 3];
        matvec_bias_f32(&[], 3, 0, &[], &[0.5; 3], &mut out32);
        assert_eq!(out32, [0.5; 3]);
    }

    #[test]
    fn matmul_matches_naive_bitwise_in_both_tiers() {
        // Sizes straddling the block edge so every tiling branch runs.
        for (m, k, n) in [(1, 1, 1), (3, 4, 5), (7, 65, 9), (65, 3, 70), (70, 70, 70)] {
            let a = seq(m * k, 0.01);
            let b = seq(k * n, -0.02);
            // Unblocked i-k-j reference with the same k-ascending order.
            let mut naive = vec![0.0; m * n];
            for i in 0..m {
                for kk in 0..k {
                    let aik = a[i * k + kk];
                    for j in 0..n {
                        naive[i * n + j] += aik * b[kk * n + j];
                    }
                }
            }
            for t in [KernelTier::Scalar, KernelTier::Simd] {
                let (_g, prev) = tier_guard(t);
                let mut blocked = vec![0.0; m * n];
                matmul(&a, m, k, &b, n, &mut blocked);
                for (x, y) in blocked.iter().zip(&naive) {
                    assert_eq!(x.to_bits(), y.to_bits(), "tier={t} m={m} k={k} n={n}");
                }
                set_tier(prev);
            }
        }
    }

    #[test]
    fn elementwise_kernels_bit_identical_across_tiers() {
        for n in [0, 1, 5, 8, 16, 19, 64, 100] {
            let x = seq(n, 0.7);
            let y0 = seq(n, -1.3);
            let run = |t: KernelTier| {
                let (_g, prev) = tier_guard(t);
                let mut y = y0.clone();
                axpy(0.25, &x, &mut y);
                scale_axpy(0.9, &mut y, -0.35, &x);
                set_tier(prev);
                y
            };
            let scalar_out = run(KernelTier::Scalar);
            let simd_out = run(KernelTier::Simd);
            for (a, b) in scalar_out.iter().zip(&simd_out) {
                assert_eq!(a.to_bits(), b.to_bits(), "n={n}");
            }
        }
    }
}
