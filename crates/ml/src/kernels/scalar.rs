//! Scalar tier: 4-lane fixed-order kernels (the portable default).
//!
//! These are the original COMET kernels: four independent accumulator
//! lanes over a 4-wide unrolled body, combined as `(l0 + l1) + (l2 + l3)`
//! plus a sequential tail. The unrolling breaks the sequential-add
//! dependency chain without licensing the compiler to re-associate the
//! sum, so results are bit-identical run-to-run and across thread counts.
//!
//! This module is a *lane-ordered primitive*: raw float reductions are
//! permitted here (and only here, in `lanes8`, and in `x86`) because the
//! lane order itself is the contract. Everything else routes through the
//! dispatchers in [`super`].
//!
//! The `_f32` twins implement the same 4-lane order in single precision
//! for the opt-in f32 probe tier; they are *not* expected to match the
//! f64 kernels bitwise (different precision), only to be fixed-order and
//! deterministic in their own right.

/// Dot product with four fixed-order accumulator lanes.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let (mut l0, mut l1, mut l2, mut l3) = (0.0, 0.0, 0.0, 0.0);
    for (pa, pb) in ca.by_ref().zip(cb.by_ref()) {
        l0 += pa[0] * pb[0];
        l1 += pa[1] * pb[1];
        l2 += pa[2] * pb[2];
        l3 += pa[3] * pb[3];
    }
    let mut tail = 0.0;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    ((l0 + l1) + (l2 + l3)) + tail
}

/// `y += alpha * x`, unrolled 4-wide. Element-wise, so no accumulation
/// order is involved; the unroll only widens the store pipeline.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    let mut cy = y.chunks_exact_mut(4);
    let mut cx = x.chunks_exact(4);
    for (py, px) in cy.by_ref().zip(cx.by_ref()) {
        py[0] += alpha * px[0];
        py[1] += alpha * px[1];
        py[2] += alpha * px[2];
        py[3] += alpha * px[3];
    }
    for (yi, xi) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *yi += alpha * xi;
    }
}

/// `y = alpha * y + beta * x`, unrolled 4-wide (the SGD weight-decay +
/// gradient step fused into one pass).
#[inline]
pub fn scale_axpy(alpha: f64, y: &mut [f64], beta: f64, x: &[f64]) {
    debug_assert_eq!(x.len(), y.len());
    let mut cy = y.chunks_exact_mut(4);
    let mut cx = x.chunks_exact(4);
    for (py, px) in cy.by_ref().zip(cx.by_ref()) {
        py[0] = alpha * py[0] + beta * px[0];
        py[1] = alpha * py[1] + beta * px[1];
        py[2] = alpha * py[2] + beta * px[2];
        py[3] = alpha * py[3] + beta * px[3];
    }
    for (yi, xi) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *yi = alpha * *yi + beta * xi;
    }
}

/// Squared Euclidean distance with four fixed-order lanes.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let (mut l0, mut l1, mut l2, mut l3) = (0.0, 0.0, 0.0, 0.0);
    for (pa, pb) in ca.by_ref().zip(cb.by_ref()) {
        let d0 = pa[0] - pb[0];
        let d1 = pa[1] - pb[1];
        let d2 = pa[2] - pb[2];
        let d3 = pa[3] - pb[3];
        l0 += d0 * d0;
        l1 += d1 * d1;
        l2 += d2 * d2;
        l3 += d3 * d3;
    }
    let mut tail = 0.0;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x - y;
        tail += d * d;
    }
    ((l0 + l1) + (l2 + l3)) + tail
}

/// [`dot`] in single precision, same 4-lane order.
#[inline]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let (mut l0, mut l1, mut l2, mut l3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for (pa, pb) in ca.by_ref().zip(cb.by_ref()) {
        l0 += pa[0] * pb[0];
        l1 += pa[1] * pb[1];
        l2 += pa[2] * pb[2];
        l3 += pa[3] * pb[3];
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    ((l0 + l1) + (l2 + l3)) + tail
}

/// [`axpy`] in single precision.
#[inline]
pub fn axpy_f32(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    let mut cy = y.chunks_exact_mut(4);
    let mut cx = x.chunks_exact(4);
    for (py, px) in cy.by_ref().zip(cx.by_ref()) {
        py[0] += alpha * px[0];
        py[1] += alpha * px[1];
        py[2] += alpha * px[2];
        py[3] += alpha * px[3];
    }
    for (yi, xi) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *yi += alpha * xi;
    }
}

/// [`scale_axpy`] in single precision.
#[inline]
pub fn scale_axpy_f32(alpha: f32, y: &mut [f32], beta: f32, x: &[f32]) {
    debug_assert_eq!(x.len(), y.len());
    let mut cy = y.chunks_exact_mut(4);
    let mut cx = x.chunks_exact(4);
    for (py, px) in cy.by_ref().zip(cx.by_ref()) {
        py[0] = alpha * py[0] + beta * px[0];
        py[1] = alpha * py[1] + beta * px[1];
        py[2] = alpha * py[2] + beta * px[2];
        py[3] = alpha * py[3] + beta * px[3];
    }
    for (yi, xi) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *yi = alpha * *yi + beta * xi;
    }
}

/// [`sq_dist`] in single precision, same 4-lane order.
#[inline]
pub fn sq_dist_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let (mut l0, mut l1, mut l2, mut l3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for (pa, pb) in ca.by_ref().zip(cb.by_ref()) {
        let d0 = pa[0] - pb[0];
        let d1 = pa[1] - pb[1];
        let d2 = pa[2] - pb[2];
        let d3 = pa[3] - pb[3];
        l0 += d0 * d0;
        l1 += d1 * d1;
        l2 += d2 * d2;
        l3 += d3 * d3;
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x - y;
        tail += d * d;
    }
    ((l0 + l1) + (l2 + l3)) + tail
}
