//! x86_64 AVX2/SSE2 implementations of the SIMD tier.
//!
//! Every function here is required to be **bit-identical** to its
//! portable reference in [`super::lanes8`] on every input — the lane
//! assignment and horizontal-combine order are the same, only the
//! instruction encoding differs:
//!
//! * AVX2 keeps lanes `l0..l3` in the low 256-bit accumulator and
//!   `l4..l7` in the high one (one register each for f64; one register
//!   total for f32). The vertical `lo + hi` add produces `[s0, s1, s2,
//!   s3]`, combined in scalar code as `(s0 + s1) + (s2 + s3)`.
//! * SSE2 splits the same 8 lanes across four 128-bit f64 accumulators
//!   (two for f32) and performs the identical vertical adds.
//!
//! No fused multiply–add: FMA rounds once where the reference's
//! mul-then-add rounds twice, so `_mm256_fmadd_pd` and friends are
//! banned in this module even when the CPU supports them. IEEE-754
//! addition and multiplication are themselves deterministic, so matching
//! the operation order is sufficient for bit-identity.
//!
//! Dispatch lives in [`super`]: callers check [`has_avx2`]/[`has_sse2`]
//! and fall back to `lanes8` (the proptests in `tests/kernel_tiers.rs`
//! exercise all three paths against each other).

use core::arch::x86_64::{
    __m128, __m256, _mm256_add_pd, _mm256_add_ps, _mm256_castps256_ps128, _mm256_extractf128_ps,
    _mm256_loadu_pd, _mm256_loadu_ps, _mm256_mul_pd, _mm256_mul_ps, _mm256_set1_pd, _mm256_set1_ps,
    _mm256_setzero_pd, _mm256_setzero_ps, _mm256_storeu_pd, _mm256_storeu_ps, _mm256_sub_pd,
    _mm256_sub_ps, _mm_add_pd, _mm_add_ps, _mm_loadu_pd, _mm_loadu_ps, _mm_mul_pd, _mm_mul_ps,
    _mm_set1_pd, _mm_set1_ps, _mm_setzero_pd, _mm_setzero_ps, _mm_storeu_pd, _mm_storeu_ps,
    _mm_sub_pd, _mm_sub_ps,
};

/// Runtime AVX2 support (cached by `std` after the first query).
#[inline]
pub fn has_avx2() -> bool {
    std::is_x86_feature_detected!("avx2")
}

/// Runtime SSE2 support. Always true on x86_64 (SSE2 is part of the
/// baseline ISA), kept as an explicit check so the dispatcher's fallback
/// chain is uniform.
#[inline]
pub fn has_sse2() -> bool {
    std::is_x86_feature_detected!("sse2")
}

/// Horizontal combine of `[s0, s1, s2, s3]` matching
/// [`super::lanes8::combine8`]'s final step.
#[inline(always)]
fn combine4(s: [f64; 4]) -> f64 {
    (s[0] + s[1]) + (s[2] + s[3])
}

/// f32 variant of [`combine4`].
#[inline(always)]
fn combine4_f32(s: [f32; 4]) -> f32 {
    (s[0] + s[1]) + (s[2] + s[3])
}

/// [`super::lanes8::dot`] via AVX2, bit-identical.
///
/// # Safety
/// The CPU must support AVX2 ([`has_avx2`]).
// SAFETY: body reads a[i..i+8]/b[i..i+8] only for i + 8 <= n (n = min length).
#[target_feature(enable = "avx2")]
pub unsafe fn dot_avx2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc_lo = _mm256_setzero_pd(); // lanes l0..l3
    let mut acc_hi = _mm256_setzero_pd(); // lanes l4..l7
    let chunks = n / 8;
    for c in 0..chunks {
        let i = c * 8;
        acc_lo = _mm256_add_pd(
            acc_lo,
            _mm256_mul_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i))),
        );
        acc_hi = _mm256_add_pd(
            acc_hi,
            _mm256_mul_pd(_mm256_loadu_pd(ap.add(i + 4)), _mm256_loadu_pd(bp.add(i + 4))),
        );
    }
    let mut s = [0.0f64; 4];
    _mm256_storeu_pd(s.as_mut_ptr(), _mm256_add_pd(acc_lo, acc_hi));
    let mut tail = 0.0;
    for i in chunks * 8..n {
        tail += a[i] * b[i];
    }
    combine4(s) + tail
}

/// [`super::lanes8::dot`] via SSE2, bit-identical.
///
/// # Safety
/// The CPU must support SSE2 ([`has_sse2`]; x86_64 baseline).
// SAFETY: body reads a[i..i+8]/b[i..i+8] only for i + 8 <= n (n = min length).
#[target_feature(enable = "sse2")]
pub unsafe fn dot_sse2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    // Lane pairs [l0,l1] [l2,l3] [l4,l5] [l6,l7].
    let mut a01 = _mm_setzero_pd();
    let mut a23 = _mm_setzero_pd();
    let mut a45 = _mm_setzero_pd();
    let mut a67 = _mm_setzero_pd();
    let chunks = n / 8;
    for c in 0..chunks {
        let i = c * 8;
        a01 = _mm_add_pd(a01, _mm_mul_pd(_mm_loadu_pd(ap.add(i)), _mm_loadu_pd(bp.add(i))));
        a23 = _mm_add_pd(a23, _mm_mul_pd(_mm_loadu_pd(ap.add(i + 2)), _mm_loadu_pd(bp.add(i + 2))));
        a45 = _mm_add_pd(a45, _mm_mul_pd(_mm_loadu_pd(ap.add(i + 4)), _mm_loadu_pd(bp.add(i + 4))));
        a67 = _mm_add_pd(a67, _mm_mul_pd(_mm_loadu_pd(ap.add(i + 6)), _mm_loadu_pd(bp.add(i + 6))));
    }
    // Vertical lo + hi: [l0+l4, l1+l5] and [l2+l6, l3+l7].
    let mut s01 = [0.0f64; 2];
    let mut s23 = [0.0f64; 2];
    _mm_storeu_pd(s01.as_mut_ptr(), _mm_add_pd(a01, a45));
    _mm_storeu_pd(s23.as_mut_ptr(), _mm_add_pd(a23, a67));
    let mut tail = 0.0;
    for i in chunks * 8..n {
        tail += a[i] * b[i];
    }
    combine4([s01[0], s01[1], s23[0], s23[1]]) + tail
}

/// [`super::lanes8::sq_dist`] via AVX2, bit-identical.
///
/// # Safety
/// The CPU must support AVX2 ([`has_avx2`]).
// SAFETY: body reads a[i..i+8]/b[i..i+8] only for i + 8 <= n (n = min length).
#[target_feature(enable = "avx2")]
pub unsafe fn sq_dist_avx2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc_lo = _mm256_setzero_pd();
    let mut acc_hi = _mm256_setzero_pd();
    let chunks = n / 8;
    for c in 0..chunks {
        let i = c * 8;
        let d_lo = _mm256_sub_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)));
        let d_hi = _mm256_sub_pd(_mm256_loadu_pd(ap.add(i + 4)), _mm256_loadu_pd(bp.add(i + 4)));
        acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(d_lo, d_lo));
        acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(d_hi, d_hi));
    }
    let mut s = [0.0f64; 4];
    _mm256_storeu_pd(s.as_mut_ptr(), _mm256_add_pd(acc_lo, acc_hi));
    let mut tail = 0.0;
    for i in chunks * 8..n {
        let d = a[i] - b[i];
        tail += d * d;
    }
    combine4(s) + tail
}

/// [`super::lanes8::sq_dist`] via SSE2, bit-identical.
///
/// # Safety
/// The CPU must support SSE2 ([`has_sse2`]; x86_64 baseline).
// SAFETY: body reads a[i..i+8]/b[i..i+8] only for i + 8 <= n (n = min length).
#[target_feature(enable = "sse2")]
pub unsafe fn sq_dist_sse2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut a01 = _mm_setzero_pd();
    let mut a23 = _mm_setzero_pd();
    let mut a45 = _mm_setzero_pd();
    let mut a67 = _mm_setzero_pd();
    let chunks = n / 8;
    for c in 0..chunks {
        let i = c * 8;
        let d0 = _mm_sub_pd(_mm_loadu_pd(ap.add(i)), _mm_loadu_pd(bp.add(i)));
        let d1 = _mm_sub_pd(_mm_loadu_pd(ap.add(i + 2)), _mm_loadu_pd(bp.add(i + 2)));
        let d2 = _mm_sub_pd(_mm_loadu_pd(ap.add(i + 4)), _mm_loadu_pd(bp.add(i + 4)));
        let d3 = _mm_sub_pd(_mm_loadu_pd(ap.add(i + 6)), _mm_loadu_pd(bp.add(i + 6)));
        a01 = _mm_add_pd(a01, _mm_mul_pd(d0, d0));
        a23 = _mm_add_pd(a23, _mm_mul_pd(d1, d1));
        a45 = _mm_add_pd(a45, _mm_mul_pd(d2, d2));
        a67 = _mm_add_pd(a67, _mm_mul_pd(d3, d3));
    }
    let mut s01 = [0.0f64; 2];
    let mut s23 = [0.0f64; 2];
    _mm_storeu_pd(s01.as_mut_ptr(), _mm_add_pd(a01, a45));
    _mm_storeu_pd(s23.as_mut_ptr(), _mm_add_pd(a23, a67));
    let mut tail = 0.0;
    for i in chunks * 8..n {
        let d = a[i] - b[i];
        tail += d * d;
    }
    combine4([s01[0], s01[1], s23[0], s23[1]]) + tail
}

/// `y += alpha * x` via AVX2 (element-wise; bit-identical to every tier).
///
/// # Safety
/// The CPU must support AVX2 ([`has_avx2`]).
// SAFETY: body reads/writes x[i..i+8]/y[i..i+8] only for i + 8 <= n (n = min length).
#[target_feature(enable = "avx2")]
pub unsafe fn axpy_avx2(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len().min(y.len());
    let va = _mm256_set1_pd(alpha);
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    let chunks = n / 8;
    for c in 0..chunks {
        let i = c * 8;
        let y_lo = _mm256_add_pd(
            _mm256_loadu_pd(yp.add(i)),
            _mm256_mul_pd(va, _mm256_loadu_pd(xp.add(i))),
        );
        let y_hi = _mm256_add_pd(
            _mm256_loadu_pd(yp.add(i + 4)),
            _mm256_mul_pd(va, _mm256_loadu_pd(xp.add(i + 4))),
        );
        _mm256_storeu_pd(yp.add(i), y_lo);
        _mm256_storeu_pd(yp.add(i + 4), y_hi);
    }
    for i in chunks * 8..n {
        y[i] += alpha * x[i];
    }
}

/// `y += alpha * x` via SSE2 (element-wise; bit-identical to every tier).
///
/// # Safety
/// The CPU must support SSE2 ([`has_sse2`]; x86_64 baseline).
// SAFETY: body reads/writes x[i..i+8]/y[i..i+8] only for i + 8 <= n (n = min length).
#[target_feature(enable = "sse2")]
pub unsafe fn axpy_sse2(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len().min(y.len());
    let va = _mm_set1_pd(alpha);
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    let chunks = n / 8;
    for c in 0..chunks {
        let i = c * 8;
        for off in [0usize, 2, 4, 6] {
            let v = _mm_add_pd(
                _mm_loadu_pd(yp.add(i + off)),
                _mm_mul_pd(va, _mm_loadu_pd(xp.add(i + off))),
            );
            _mm_storeu_pd(yp.add(i + off), v);
        }
    }
    for i in chunks * 8..n {
        y[i] += alpha * x[i];
    }
}

/// `y = alpha * y + beta * x` via AVX2 (element-wise).
///
/// # Safety
/// The CPU must support AVX2 ([`has_avx2`]).
// SAFETY: body reads/writes x[i..i+8]/y[i..i+8] only for i + 8 <= n (n = min length).
#[target_feature(enable = "avx2")]
pub unsafe fn scale_axpy_avx2(alpha: f64, y: &mut [f64], beta: f64, x: &[f64]) {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len().min(y.len());
    let va = _mm256_set1_pd(alpha);
    let vb = _mm256_set1_pd(beta);
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    let chunks = n / 8;
    for c in 0..chunks {
        let i = c * 8;
        for off in [0usize, 4] {
            let ay = _mm256_mul_pd(va, _mm256_loadu_pd(yp.add(i + off)));
            let bx = _mm256_mul_pd(vb, _mm256_loadu_pd(xp.add(i + off)));
            _mm256_storeu_pd(yp.add(i + off), _mm256_add_pd(ay, bx));
        }
    }
    for i in chunks * 8..n {
        y[i] = alpha * y[i] + beta * x[i];
    }
}

/// `y = alpha * y + beta * x` via SSE2 (element-wise).
///
/// # Safety
/// The CPU must support SSE2 ([`has_sse2`]; x86_64 baseline).
// SAFETY: body reads/writes x[i..i+8]/y[i..i+8] only for i + 8 <= n (n = min length).
#[target_feature(enable = "sse2")]
pub unsafe fn scale_axpy_sse2(alpha: f64, y: &mut [f64], beta: f64, x: &[f64]) {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len().min(y.len());
    let va = _mm_set1_pd(alpha);
    let vb = _mm_set1_pd(beta);
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    let chunks = n / 8;
    for c in 0..chunks {
        let i = c * 8;
        for off in [0usize, 2, 4, 6] {
            let ay = _mm_mul_pd(va, _mm_loadu_pd(yp.add(i + off)));
            let bx = _mm_mul_pd(vb, _mm_loadu_pd(xp.add(i + off)));
            _mm_storeu_pd(yp.add(i + off), _mm_add_pd(ay, bx));
        }
    }
    for i in chunks * 8..n {
        y[i] = alpha * y[i] + beta * x[i];
    }
}

/// [`super::lanes8::dot_f32`] via AVX2, bit-identical. One 256-bit
/// register holds all 8 lanes; `lo + hi` is the 128-bit halves add.
///
/// # Safety
/// The CPU must support AVX2 ([`has_avx2`]).
// SAFETY: body reads a[i..i+8]/b[i..i+8] only for i + 8 <= n (n = min length).
#[target_feature(enable = "avx2")]
pub unsafe fn dot_f32_avx2(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc: __m256 = _mm256_setzero_ps(); // lanes l0..l7
    let chunks = n / 8;
    for c in 0..chunks {
        let i = c * 8;
        acc = _mm256_add_ps(
            acc,
            _mm256_mul_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i))),
        );
    }
    let mut tail = 0.0f32;
    for i in chunks * 8..n {
        tail += a[i] * b[i];
    }
    hsum8_f32(acc) + tail
}

/// [`super::lanes8::dot_f32`] via SSE2, bit-identical.
///
/// # Safety
/// The CPU must support SSE2 ([`has_sse2`]; x86_64 baseline).
// SAFETY: body reads a[i..i+8]/b[i..i+8] only for i + 8 <= n (n = min length).
#[target_feature(enable = "sse2")]
pub unsafe fn dot_f32_sse2(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc_lo: __m128 = _mm_setzero_ps(); // lanes l0..l3
    let mut acc_hi: __m128 = _mm_setzero_ps(); // lanes l4..l7
    let chunks = n / 8;
    for c in 0..chunks {
        let i = c * 8;
        acc_lo = _mm_add_ps(acc_lo, _mm_mul_ps(_mm_loadu_ps(ap.add(i)), _mm_loadu_ps(bp.add(i))));
        acc_hi = _mm_add_ps(
            acc_hi,
            _mm_mul_ps(_mm_loadu_ps(ap.add(i + 4)), _mm_loadu_ps(bp.add(i + 4))),
        );
    }
    let mut s = [0.0f32; 4];
    _mm_storeu_ps(s.as_mut_ptr(), _mm_add_ps(acc_lo, acc_hi));
    let mut tail = 0.0f32;
    for i in chunks * 8..n {
        tail += a[i] * b[i];
    }
    combine4_f32(s) + tail
}

/// [`super::lanes8::sq_dist_f32`] via AVX2, bit-identical.
///
/// # Safety
/// The CPU must support AVX2 ([`has_avx2`]).
// SAFETY: body reads a[i..i+8]/b[i..i+8] only for i + 8 <= n (n = min length).
#[target_feature(enable = "avx2")]
pub unsafe fn sq_dist_f32_avx2(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc: __m256 = _mm256_setzero_ps();
    let chunks = n / 8;
    for c in 0..chunks {
        let i = c * 8;
        let d = _mm256_sub_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)));
        acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
    }
    let mut tail = 0.0f32;
    for i in chunks * 8..n {
        let d = a[i] - b[i];
        tail += d * d;
    }
    hsum8_f32(acc) + tail
}

/// [`super::lanes8::sq_dist_f32`] via SSE2, bit-identical.
///
/// # Safety
/// The CPU must support SSE2 ([`has_sse2`]; x86_64 baseline).
// SAFETY: body reads a[i..i+8]/b[i..i+8] only for i + 8 <= n (n = min length).
#[target_feature(enable = "sse2")]
pub unsafe fn sq_dist_f32_sse2(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc_lo: __m128 = _mm_setzero_ps();
    let mut acc_hi: __m128 = _mm_setzero_ps();
    let chunks = n / 8;
    for c in 0..chunks {
        let i = c * 8;
        let d_lo = _mm_sub_ps(_mm_loadu_ps(ap.add(i)), _mm_loadu_ps(bp.add(i)));
        let d_hi = _mm_sub_ps(_mm_loadu_ps(ap.add(i + 4)), _mm_loadu_ps(bp.add(i + 4)));
        acc_lo = _mm_add_ps(acc_lo, _mm_mul_ps(d_lo, d_lo));
        acc_hi = _mm_add_ps(acc_hi, _mm_mul_ps(d_hi, d_hi));
    }
    let mut s = [0.0f32; 4];
    _mm_storeu_ps(s.as_mut_ptr(), _mm_add_ps(acc_lo, acc_hi));
    let mut tail = 0.0f32;
    for i in chunks * 8..n {
        let d = a[i] - b[i];
        tail += d * d;
    }
    combine4_f32(s) + tail
}

/// `y += alpha * x` (f32) via AVX2 (element-wise).
///
/// # Safety
/// The CPU must support AVX2 ([`has_avx2`]).
// SAFETY: body reads/writes x[i..i+8]/y[i..i+8] only for i + 8 <= n (n = min length).
#[target_feature(enable = "avx2")]
pub unsafe fn axpy_f32_avx2(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len().min(y.len());
    let va = _mm256_set1_ps(alpha);
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    let chunks = n / 8;
    for c in 0..chunks {
        let i = c * 8;
        let v = _mm256_add_ps(
            _mm256_loadu_ps(yp.add(i)),
            _mm256_mul_ps(va, _mm256_loadu_ps(xp.add(i))),
        );
        _mm256_storeu_ps(yp.add(i), v);
    }
    for i in chunks * 8..n {
        y[i] += alpha * x[i];
    }
}

/// `y += alpha * x` (f32) via SSE2 (element-wise).
///
/// # Safety
/// The CPU must support SSE2 ([`has_sse2`]; x86_64 baseline).
// SAFETY: body reads/writes x[i..i+8]/y[i..i+8] only for i + 8 <= n (n = min length).
#[target_feature(enable = "sse2")]
pub unsafe fn axpy_f32_sse2(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len().min(y.len());
    let va = _mm_set1_ps(alpha);
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    let chunks = n / 8;
    for c in 0..chunks {
        let i = c * 8;
        for off in [0usize, 4] {
            let v = _mm_add_ps(
                _mm_loadu_ps(yp.add(i + off)),
                _mm_mul_ps(va, _mm_loadu_ps(xp.add(i + off))),
            );
            _mm_storeu_ps(yp.add(i + off), v);
        }
    }
    for i in chunks * 8..n {
        y[i] += alpha * x[i];
    }
}

/// `y = alpha * y + beta * x` (f32) via AVX2 (element-wise).
///
/// # Safety
/// The CPU must support AVX2 ([`has_avx2`]).
// SAFETY: body reads/writes x[i..i+8]/y[i..i+8] only for i + 8 <= n (n = min length).
#[target_feature(enable = "avx2")]
pub unsafe fn scale_axpy_f32_avx2(alpha: f32, y: &mut [f32], beta: f32, x: &[f32]) {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len().min(y.len());
    let va = _mm256_set1_ps(alpha);
    let vb = _mm256_set1_ps(beta);
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    let chunks = n / 8;
    for c in 0..chunks {
        let i = c * 8;
        let ay = _mm256_mul_ps(va, _mm256_loadu_ps(yp.add(i)));
        let bx = _mm256_mul_ps(vb, _mm256_loadu_ps(xp.add(i)));
        _mm256_storeu_ps(yp.add(i), _mm256_add_ps(ay, bx));
    }
    for i in chunks * 8..n {
        y[i] = alpha * y[i] + beta * x[i];
    }
}

/// `y = alpha * y + beta * x` (f32) via SSE2 (element-wise).
///
/// # Safety
/// The CPU must support SSE2 ([`has_sse2`]; x86_64 baseline).
// SAFETY: body reads/writes x[i..i+8]/y[i..i+8] only for i + 8 <= n (n = min length).
#[target_feature(enable = "sse2")]
pub unsafe fn scale_axpy_f32_sse2(alpha: f32, y: &mut [f32], beta: f32, x: &[f32]) {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len().min(y.len());
    let va = _mm_set1_ps(alpha);
    let vb = _mm_set1_ps(beta);
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    let chunks = n / 8;
    for c in 0..chunks {
        let i = c * 8;
        for off in [0usize, 4] {
            let ay = _mm_mul_ps(va, _mm_loadu_ps(yp.add(i + off)));
            let bx = _mm_mul_ps(vb, _mm_loadu_ps(xp.add(i + off)));
            _mm_storeu_ps(yp.add(i + off), _mm_add_ps(ay, bx));
        }
    }
    for i in chunks * 8..n {
        y[i] = alpha * y[i] + beta * x[i];
    }
}

/// Register-blocked `out = a(m×k) · b(k×n)` via AVX2.
///
/// Each output cell accumulates its `a[i][kk] * b[kk][j]` terms with
/// `kk` strictly ascending in one dedicated accumulator lane — a single
/// add per term, no horizontal combines, no FMA — so the result is
/// bit-identical to the naive i-k-j loop and to [`super::matmul`] in
/// every other tier. The 4×8 register tile (eight ymm accumulators)
/// only adds instruction-level parallelism *across* cells, never within
/// one; remainder rows/columns fall back to the same-order scalar cell
/// loop.
///
/// # Safety
/// The CPU must support AVX2 ([`has_avx2`]).
// SAFETY: pointer access bounded by the debug-asserted m*k/k*n/m*n shapes;
// the vector body touches only full 4×8 tiles (i + 4 <= m, j + 8 <= n).
#[target_feature(enable = "avx2")]
pub unsafe fn matmul_avx2(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let op = out.as_mut_ptr();
    let full_m = m / 4 * 4;
    let full_n = n / 8 * 8;
    // Column strips outer: the k×8 panel of `b` a strip reads (a few KB)
    // stays L1-resident across every row tile of that strip.
    let mut j = 0;
    while j < full_n {
        let mut i = 0;
        while i < full_m {
            let mut c00 = _mm256_setzero_pd();
            let mut c01 = _mm256_setzero_pd();
            let mut c10 = _mm256_setzero_pd();
            let mut c11 = _mm256_setzero_pd();
            let mut c20 = _mm256_setzero_pd();
            let mut c21 = _mm256_setzero_pd();
            let mut c30 = _mm256_setzero_pd();
            let mut c31 = _mm256_setzero_pd();
            for kk in 0..k {
                let b0 = _mm256_loadu_pd(bp.add(kk * n + j));
                let b1 = _mm256_loadu_pd(bp.add(kk * n + j + 4));
                let a0 = _mm256_set1_pd(*ap.add(i * k + kk));
                c00 = _mm256_add_pd(c00, _mm256_mul_pd(a0, b0));
                c01 = _mm256_add_pd(c01, _mm256_mul_pd(a0, b1));
                let a1 = _mm256_set1_pd(*ap.add((i + 1) * k + kk));
                c10 = _mm256_add_pd(c10, _mm256_mul_pd(a1, b0));
                c11 = _mm256_add_pd(c11, _mm256_mul_pd(a1, b1));
                let a2 = _mm256_set1_pd(*ap.add((i + 2) * k + kk));
                c20 = _mm256_add_pd(c20, _mm256_mul_pd(a2, b0));
                c21 = _mm256_add_pd(c21, _mm256_mul_pd(a2, b1));
                let a3 = _mm256_set1_pd(*ap.add((i + 3) * k + kk));
                c30 = _mm256_add_pd(c30, _mm256_mul_pd(a3, b0));
                c31 = _mm256_add_pd(c31, _mm256_mul_pd(a3, b1));
            }
            _mm256_storeu_pd(op.add(i * n + j), c00);
            _mm256_storeu_pd(op.add(i * n + j + 4), c01);
            _mm256_storeu_pd(op.add((i + 1) * n + j), c10);
            _mm256_storeu_pd(op.add((i + 1) * n + j + 4), c11);
            _mm256_storeu_pd(op.add((i + 2) * n + j), c20);
            _mm256_storeu_pd(op.add((i + 2) * n + j + 4), c21);
            _mm256_storeu_pd(op.add((i + 3) * n + j), c30);
            _mm256_storeu_pd(op.add((i + 3) * n + j + 4), c31);
            i += 4;
        }
        j += 8;
    }
    matmul_cells(a, k, b, n, out, 0..full_m, full_n..n);
    matmul_cells(a, k, b, n, out, full_m..m, 0..n);
}

/// Register-blocked `out = a(m×k) · b(k×n)` via SSE2 — the 4×4 xmm
/// version of [`matmul_avx2`], same per-cell k-ascending order.
///
/// # Safety
/// The CPU must support SSE2 ([`has_sse2`]; x86_64 baseline).
// SAFETY: pointer access bounded by the debug-asserted m*k/k*n/m*n shapes;
// the vector body touches only full 4×4 tiles (i + 4 <= m, j + 4 <= n).
#[target_feature(enable = "sse2")]
pub unsafe fn matmul_sse2(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let op = out.as_mut_ptr();
    let full_m = m / 4 * 4;
    let full_n = n / 4 * 4;
    // Column strips outer, as in [`matmul_avx2`].
    let mut j = 0;
    while j < full_n {
        let mut i = 0;
        while i < full_m {
            let mut c00 = _mm_setzero_pd();
            let mut c01 = _mm_setzero_pd();
            let mut c10 = _mm_setzero_pd();
            let mut c11 = _mm_setzero_pd();
            let mut c20 = _mm_setzero_pd();
            let mut c21 = _mm_setzero_pd();
            let mut c30 = _mm_setzero_pd();
            let mut c31 = _mm_setzero_pd();
            for kk in 0..k {
                let b0 = _mm_loadu_pd(bp.add(kk * n + j));
                let b1 = _mm_loadu_pd(bp.add(kk * n + j + 2));
                let a0 = _mm_set1_pd(*ap.add(i * k + kk));
                c00 = _mm_add_pd(c00, _mm_mul_pd(a0, b0));
                c01 = _mm_add_pd(c01, _mm_mul_pd(a0, b1));
                let a1 = _mm_set1_pd(*ap.add((i + 1) * k + kk));
                c10 = _mm_add_pd(c10, _mm_mul_pd(a1, b0));
                c11 = _mm_add_pd(c11, _mm_mul_pd(a1, b1));
                let a2 = _mm_set1_pd(*ap.add((i + 2) * k + kk));
                c20 = _mm_add_pd(c20, _mm_mul_pd(a2, b0));
                c21 = _mm_add_pd(c21, _mm_mul_pd(a2, b1));
                let a3 = _mm_set1_pd(*ap.add((i + 3) * k + kk));
                c30 = _mm_add_pd(c30, _mm_mul_pd(a3, b0));
                c31 = _mm_add_pd(c31, _mm_mul_pd(a3, b1));
            }
            _mm_storeu_pd(op.add(i * n + j), c00);
            _mm_storeu_pd(op.add(i * n + j + 2), c01);
            _mm_storeu_pd(op.add((i + 1) * n + j), c10);
            _mm_storeu_pd(op.add((i + 1) * n + j + 2), c11);
            _mm_storeu_pd(op.add((i + 2) * n + j), c20);
            _mm_storeu_pd(op.add((i + 2) * n + j + 2), c21);
            _mm_storeu_pd(op.add((i + 3) * n + j), c30);
            _mm_storeu_pd(op.add((i + 3) * n + j + 2), c31);
            i += 4;
        }
        j += 4;
    }
    matmul_cells(a, k, b, n, out, 0..full_m, full_n..n);
    matmul_cells(a, k, b, n, out, full_m..m, 0..n);
}

/// Scalar remainder cells for the register-blocked matmuls: the same
/// per-cell single-accumulator k-ascending chain the vector tiles use,
/// just one cell at a time.
#[inline(always)]
fn matmul_cells(
    a: &[f64],
    k: usize,
    b: &[f64],
    n: usize,
    out: &mut [f64],
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) {
    for i in rows {
        let a_row = &a[i * k..(i + 1) * k];
        for j in cols.clone() {
            let mut acc = 0.0;
            for (kk, &aik) in a_row.iter().enumerate() {
                acc += aik * b[kk * n + j];
            }
            out[i * n + j] = acc;
        }
    }
}

/// Register-blocked `out = a(m×k) · b(k×n)` (f32) via AVX2 — the 4×16
/// single-precision version of [`matmul_avx2`], same per-cell
/// k-ascending order.
///
/// # Safety
/// The CPU must support AVX2 ([`has_avx2`]).
// SAFETY: pointer access bounded by the debug-asserted m*k/k*n/m*n shapes;
// the vector body touches only full 4×16 tiles (i + 4 <= m, j + 16 <= n).
#[target_feature(enable = "avx2")]
pub unsafe fn matmul_f32_avx2(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let op = out.as_mut_ptr();
    let full_m = m / 4 * 4;
    let full_n = n / 16 * 16;
    // Column strips outer, as in [`matmul_avx2`].
    let mut j = 0;
    while j < full_n {
        let mut i = 0;
        while i < full_m {
            let mut c00 = _mm256_setzero_ps();
            let mut c01 = _mm256_setzero_ps();
            let mut c10 = _mm256_setzero_ps();
            let mut c11 = _mm256_setzero_ps();
            let mut c20 = _mm256_setzero_ps();
            let mut c21 = _mm256_setzero_ps();
            let mut c30 = _mm256_setzero_ps();
            let mut c31 = _mm256_setzero_ps();
            for kk in 0..k {
                let b0 = _mm256_loadu_ps(bp.add(kk * n + j));
                let b1 = _mm256_loadu_ps(bp.add(kk * n + j + 8));
                let a0 = _mm256_set1_ps(*ap.add(i * k + kk));
                c00 = _mm256_add_ps(c00, _mm256_mul_ps(a0, b0));
                c01 = _mm256_add_ps(c01, _mm256_mul_ps(a0, b1));
                let a1 = _mm256_set1_ps(*ap.add((i + 1) * k + kk));
                c10 = _mm256_add_ps(c10, _mm256_mul_ps(a1, b0));
                c11 = _mm256_add_ps(c11, _mm256_mul_ps(a1, b1));
                let a2 = _mm256_set1_ps(*ap.add((i + 2) * k + kk));
                c20 = _mm256_add_ps(c20, _mm256_mul_ps(a2, b0));
                c21 = _mm256_add_ps(c21, _mm256_mul_ps(a2, b1));
                let a3 = _mm256_set1_ps(*ap.add((i + 3) * k + kk));
                c30 = _mm256_add_ps(c30, _mm256_mul_ps(a3, b0));
                c31 = _mm256_add_ps(c31, _mm256_mul_ps(a3, b1));
            }
            _mm256_storeu_ps(op.add(i * n + j), c00);
            _mm256_storeu_ps(op.add(i * n + j + 8), c01);
            _mm256_storeu_ps(op.add((i + 1) * n + j), c10);
            _mm256_storeu_ps(op.add((i + 1) * n + j + 8), c11);
            _mm256_storeu_ps(op.add((i + 2) * n + j), c20);
            _mm256_storeu_ps(op.add((i + 2) * n + j + 8), c21);
            _mm256_storeu_ps(op.add((i + 3) * n + j), c30);
            _mm256_storeu_ps(op.add((i + 3) * n + j + 8), c31);
            i += 4;
        }
        j += 16;
    }
    matmul_cells_f32(a, k, b, n, out, 0..full_m, full_n..n);
    matmul_cells_f32(a, k, b, n, out, full_m..m, 0..n);
}

/// Register-blocked `out = a(m×k) · b(k×n)` (f32) via SSE2 — the 4×8
/// xmm version of [`matmul_f32_avx2`], same per-cell k-ascending order.
///
/// # Safety
/// The CPU must support SSE2 ([`has_sse2`]; x86_64 baseline).
// SAFETY: pointer access bounded by the debug-asserted m*k/k*n/m*n shapes;
// the vector body touches only full 4×8 tiles (i + 4 <= m, j + 8 <= n).
#[target_feature(enable = "sse2")]
pub unsafe fn matmul_f32_sse2(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let op = out.as_mut_ptr();
    let full_m = m / 4 * 4;
    let full_n = n / 8 * 8;
    // Column strips outer, as in [`matmul_avx2`].
    let mut j = 0;
    while j < full_n {
        let mut i = 0;
        while i < full_m {
            let mut c00 = _mm_setzero_ps();
            let mut c01 = _mm_setzero_ps();
            let mut c10 = _mm_setzero_ps();
            let mut c11 = _mm_setzero_ps();
            let mut c20 = _mm_setzero_ps();
            let mut c21 = _mm_setzero_ps();
            let mut c30 = _mm_setzero_ps();
            let mut c31 = _mm_setzero_ps();
            for kk in 0..k {
                let b0 = _mm_loadu_ps(bp.add(kk * n + j));
                let b1 = _mm_loadu_ps(bp.add(kk * n + j + 4));
                let a0 = _mm_set1_ps(*ap.add(i * k + kk));
                c00 = _mm_add_ps(c00, _mm_mul_ps(a0, b0));
                c01 = _mm_add_ps(c01, _mm_mul_ps(a0, b1));
                let a1 = _mm_set1_ps(*ap.add((i + 1) * k + kk));
                c10 = _mm_add_ps(c10, _mm_mul_ps(a1, b0));
                c11 = _mm_add_ps(c11, _mm_mul_ps(a1, b1));
                let a2 = _mm_set1_ps(*ap.add((i + 2) * k + kk));
                c20 = _mm_add_ps(c20, _mm_mul_ps(a2, b0));
                c21 = _mm_add_ps(c21, _mm_mul_ps(a2, b1));
                let a3 = _mm_set1_ps(*ap.add((i + 3) * k + kk));
                c30 = _mm_add_ps(c30, _mm_mul_ps(a3, b0));
                c31 = _mm_add_ps(c31, _mm_mul_ps(a3, b1));
            }
            _mm_storeu_ps(op.add(i * n + j), c00);
            _mm_storeu_ps(op.add(i * n + j + 4), c01);
            _mm_storeu_ps(op.add((i + 1) * n + j), c10);
            _mm_storeu_ps(op.add((i + 1) * n + j + 4), c11);
            _mm_storeu_ps(op.add((i + 2) * n + j), c20);
            _mm_storeu_ps(op.add((i + 2) * n + j + 4), c21);
            _mm_storeu_ps(op.add((i + 3) * n + j), c30);
            _mm_storeu_ps(op.add((i + 3) * n + j + 4), c31);
            i += 4;
        }
        j += 8;
    }
    matmul_cells_f32(a, k, b, n, out, 0..full_m, full_n..n);
    matmul_cells_f32(a, k, b, n, out, full_m..m, 0..n);
}

/// f32 variant of [`matmul_cells`].
#[inline(always)]
fn matmul_cells_f32(
    a: &[f32],
    k: usize,
    b: &[f32],
    n: usize,
    out: &mut [f32],
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) {
    for i in rows {
        let a_row = &a[i * k..(i + 1) * k];
        for j in cols.clone() {
            let mut acc = 0.0f32;
            for (kk, &aik) in a_row.iter().enumerate() {
                acc += aik * b[kk * n + j];
            }
            out[i * n + j] = acc;
        }
    }
}

/// Horizontal sum of an 8-lane f32 register in the fixed order: split
/// into 128-bit halves `[l0..l3]`/`[l4..l7]`, vertical add to `[s0..s3]`,
/// then `(s0 + s1) + (s2 + s3)` — matching [`super::lanes8::combine8_f32`].
///
/// # Safety
/// The CPU must support AVX2 (callers are AVX2 `target_feature` fns).
// SAFETY: pure register arithmetic plus a store into a local array.
#[target_feature(enable = "avx2")]
unsafe fn hsum8_f32(acc: __m256) -> f32 {
    let lo: __m128 = _mm256_castps256_ps128(acc);
    let hi: __m128 = _mm256_extractf128_ps::<1>(acc);
    let mut s = [0.0f32; 4];
    _mm_storeu_ps(s.as_mut_ptr(), _mm_add_ps(lo, hi));
    combine4_f32(s)
}
