//! SIMD tier reference: portable 8-lane fixed-order kernels.
//!
//! The SIMD tier's semantics are defined *here*, in plain Rust. Eight
//! independent accumulator lanes run over an 8-wide unrolled body; lane
//! `j` accumulates elements `8·c + j`. The horizontal combine is fixed as
//!
//! ```text
//! s0 = l0 + l4    s1 = l1 + l5    s2 = l2 + l6    s3 = l3 + l7
//! result = ((s0 + s1) + (s2 + s3)) + tail
//! ```
//!
//! where `tail` is the sequential left-to-right remainder sum. The pair
//! step `l_j + l_{j+4}` is exactly the vertical `acc_lo + acc_hi` add the
//! AVX2/SSE2 implementations in [`super::x86`] perform, so the intrinsics
//! are required (and property-tested) to be bit-identical to this module
//! on every input. Fused multiply–add is deliberately *not* used anywhere
//! in the SIMD tier: FMA rounds once where mul-then-add rounds twice, and
//! would diverge from this reference.
//!
//! Like [`super::scalar`], this module is a lane-ordered primitive: raw
//! float reductions are allowed here because the lane order is the
//! contract.

/// Dot product with eight fixed-order accumulator lanes.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    let mut l = [0.0f64; 8];
    for (pa, pb) in ca.by_ref().zip(cb.by_ref()) {
        l[0] += pa[0] * pb[0];
        l[1] += pa[1] * pb[1];
        l[2] += pa[2] * pb[2];
        l[3] += pa[3] * pb[3];
        l[4] += pa[4] * pb[4];
        l[5] += pa[5] * pb[5];
        l[6] += pa[6] * pb[6];
        l[7] += pa[7] * pb[7];
    }
    let mut tail = 0.0;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    combine8(&l) + tail
}

/// Squared Euclidean distance with eight fixed-order lanes.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    let mut l = [0.0f64; 8];
    for (pa, pb) in ca.by_ref().zip(cb.by_ref()) {
        for j in 0..8 {
            let d = pa[j] - pb[j];
            l[j] += d * d;
        }
    }
    let mut tail = 0.0;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x - y;
        tail += d * d;
    }
    combine8(&l) + tail
}

/// `y += alpha * x`, unrolled 8-wide. Element-wise (order-free); the
/// results are bit-identical to the scalar tier by construction.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    let mut cy = y.chunks_exact_mut(8);
    let mut cx = x.chunks_exact(8);
    for (py, px) in cy.by_ref().zip(cx.by_ref()) {
        for j in 0..8 {
            py[j] += alpha * px[j];
        }
    }
    for (yi, xi) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *yi += alpha * xi;
    }
}

/// `y = alpha * y + beta * x`, unrolled 8-wide. Element-wise (order-free).
#[inline]
pub fn scale_axpy(alpha: f64, y: &mut [f64], beta: f64, x: &[f64]) {
    debug_assert_eq!(x.len(), y.len());
    let mut cy = y.chunks_exact_mut(8);
    let mut cx = x.chunks_exact(8);
    for (py, px) in cy.by_ref().zip(cx.by_ref()) {
        for j in 0..8 {
            py[j] = alpha * py[j] + beta * px[j];
        }
    }
    for (yi, xi) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *yi = alpha * *yi + beta * xi;
    }
}

/// The fixed 8-lane horizontal combine shared by every SIMD-tier
/// implementation: pairwise `l_j + l_{j+4}` (the vector `lo + hi` add),
/// then `((s0 + s1) + (s2 + s3))`.
#[inline]
pub fn combine8(l: &[f64; 8]) -> f64 {
    let s0 = l[0] + l[4];
    let s1 = l[1] + l[5];
    let s2 = l[2] + l[6];
    let s3 = l[3] + l[7];
    (s0 + s1) + (s2 + s3)
}

/// [`dot`] in single precision, same 8-lane order.
#[inline]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    let mut l = [0.0f32; 8];
    for (pa, pb) in ca.by_ref().zip(cb.by_ref()) {
        for j in 0..8 {
            l[j] += pa[j] * pb[j];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    combine8_f32(&l) + tail
}

/// [`sq_dist`] in single precision, same 8-lane order.
#[inline]
pub fn sq_dist_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    let mut l = [0.0f32; 8];
    for (pa, pb) in ca.by_ref().zip(cb.by_ref()) {
        for j in 0..8 {
            let d = pa[j] - pb[j];
            l[j] += d * d;
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x - y;
        tail += d * d;
    }
    combine8_f32(&l) + tail
}

/// [`axpy`] in single precision.
#[inline]
pub fn axpy_f32(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    let mut cy = y.chunks_exact_mut(8);
    let mut cx = x.chunks_exact(8);
    for (py, px) in cy.by_ref().zip(cx.by_ref()) {
        for j in 0..8 {
            py[j] += alpha * px[j];
        }
    }
    for (yi, xi) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *yi += alpha * xi;
    }
}

/// [`scale_axpy`] in single precision.
#[inline]
pub fn scale_axpy_f32(alpha: f32, y: &mut [f32], beta: f32, x: &[f32]) {
    debug_assert_eq!(x.len(), y.len());
    let mut cy = y.chunks_exact_mut(8);
    let mut cx = x.chunks_exact(8);
    for (py, px) in cy.by_ref().zip(cx.by_ref()) {
        for j in 0..8 {
            py[j] = alpha * py[j] + beta * px[j];
        }
    }
    for (yi, xi) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *yi = alpha * *yi + beta * xi;
    }
}

/// The fixed 8-lane combine in single precision.
#[inline]
pub fn combine8_f32(l: &[f32; 8]) -> f32 {
    let s0 = l[0] + l[4];
    let s1 = l[1] + l[5];
    let s2 = l[2] + l[6];
    let s3 = l[3] + l[7];
    (s0 + s1) + (s2 + s3)
}
