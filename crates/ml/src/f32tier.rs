//! Opt-in f32 training tier for pollution-probe evaluations.
//!
//! The estimator's inner probe loop trains many throwaway models per
//! session step; their scores feed the Bayesian pollution fit, not the
//! final ranking. Training those probes in single precision halves
//! memory traffic and doubles SIMD lane width, while the Bayesian fit
//! and the final candidate ranking stay in f64 — the f32→f64 promotion
//! happens exactly once, at the metric boundary: predictions are class
//! codes (`u32`), so the metric computed from them is bit-exact f64 no
//! matter which precision produced the codes.
//!
//! Only the SGD-family linear models, the MLP, and KNN have f32 twins —
//! the models whose inner loops are dense kernel calls. Tree ensembles
//! and naive Bayes gain nothing from f32 (comparison-bound) and fall
//! back to the f64 path; [`build_f32`] returns `None` for them.
//!
//! Like the f64 models, every f32 twin draws from the caller's RNG in
//! exactly the same pattern as its f64 counterpart and reduces through
//! the lane-ordered `_f32` kernels, so probe results are deterministic
//! for a given (seed, kernel tier, f32_probes) triple.

use crate::algorithm::HyperParams;
use crate::kernels;
use crate::sgd::Loss;
use crate::Matrix;
use rand::RngCore;

/// Row-major single-precision design matrix (probe-local; narrowed from
/// the featurizer's f64 output once per evaluation).
#[derive(Debug, Clone)]
pub struct MatrixF32 {
    nrows: usize,
    ncols: usize,
    data: Vec<f32>,
}

impl MatrixF32 {
    /// Narrow an f64 matrix to f32 (one rounding per element).
    pub fn from_matrix(m: &Matrix) -> Self {
        MatrixF32 {
            nrows: m.nrows(),
            ncols: m.ncols(),
            data: m.as_slice().iter().map(|&v| v as f32).collect(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// The full row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }
}

/// A trainable multi-class classifier in single precision — the f32
/// mirror of [`crate::Classifier`], with the same RNG and `n_classes`
/// conventions.
pub trait ClassifierF32: Send + Sync {
    /// Train on a single-precision design matrix and label codes.
    fn fit(&mut self, x: &MatrixF32, y: &[u32], n_classes: usize, rng: &mut dyn RngCore);

    /// Predict the class of a single featurized row.
    fn predict_row(&self, row: &[f32]) -> u32;

    /// Predict all rows.
    fn predict(&self, x: &MatrixF32) -> Vec<u32> {
        (0..x.nrows()).map(|i| self.predict_row(x.row(i))).collect()
    }
}

/// Instantiate the f32 twin of a hyperparameter assignment, or `None`
/// for algorithms without one (tree ensembles, naive Bayes — these run
/// the normal f64 path even when f32 probes are enabled).
pub fn build_f32(hp: &HyperParams) -> Option<Box<dyn ClassifierF32>> {
    match *hp {
        HyperParams::Svm(p) => {
            Some(Box::new(GlmF32::new(Loss::Hinge, p.learning_rate, p.l2, p.epochs)))
        }
        HyperParams::LogReg(p) => {
            Some(Box::new(GlmF32::new(Loss::Logistic, p.learning_rate, p.l2, p.epochs)))
        }
        HyperParams::LinReg(p) => {
            Some(Box::new(GlmF32::new(Loss::Squared, p.learning_rate, p.l2, p.epochs)))
        }
        HyperParams::Knn(p) => Some(Box::new(KnnF32::new(p.k))),
        HyperParams::Mlp(p) => Some(Box::new(MlpF32::new(
            p.hidden,
            p.epochs,
            p.learning_rate,
            p.momentum,
            p.batch_size,
            p.l2,
        ))),
        _ => None,
    }
}

/// Numerically stable softmax (in place), single precision.
fn softmax_f32(scores: &mut [f32]) {
    let max = kernels::max_sanitized_f32(scores);
    let mut total = 0.0f32;
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
        total += *s;
    }
    if total > 0.0 {
        for s in scores.iter_mut() {
            *s /= total;
        }
    } else {
        let uniform = 1.0 / scores.len() as f32;
        scores.iter_mut().for_each(|s| *s = uniform);
    }
}

/// Argmax with lowest-index tie-breaking, single precision.
fn argmax_f32(scores: &[f32]) -> u32 {
    let mut best = 0usize;
    for (i, &s) in scores.iter().enumerate().skip(1) {
        if s > scores[best] {
            best = i;
        }
    }
    best as u32
}

/// Single-precision mirror of [`crate::sgd::Glm`]: one weight row per
/// class (bias last), trained by SGD with the same shuffle, learning-rate
/// decay, and fused shrink+step update as the f64 engine.
pub struct GlmF32 {
    loss: Loss,
    learning_rate: f32,
    l2: f32,
    epochs: usize,
    n_classes: usize,
    dim: usize,
    /// Row-major `n_classes × (dim + 1)`; last column is the bias.
    weights: Vec<f32>,
}

impl GlmF32 {
    /// New zero-initialized model (weights are allocated at first fit).
    pub fn new(loss: Loss, learning_rate: f64, l2: f64, epochs: usize) -> Self {
        GlmF32 {
            loss,
            learning_rate: learning_rate as f32,
            l2: l2 as f32,
            epochs,
            n_classes: 0,
            dim: 0,
            weights: Vec::new(),
        }
    }

    fn scores_into(&self, row: &[f32], out: &mut Vec<f32>) {
        let stride = self.dim + 1;
        out.clear();
        for c in 0..self.n_classes {
            let w = &self.weights[c * stride..(c + 1) * stride];
            out.push(kernels::dot_f32(&w[..self.dim], row) + w[self.dim]);
        }
    }

    fn sgd_step_scratch(
        &mut self,
        row: &[f32],
        y: u32,
        lr: f32,
        scores: &mut Vec<f32>,
        grad: &mut Vec<f32>,
    ) {
        let stride = self.dim + 1;
        grad.clear();
        grad.resize(self.n_classes * stride, 0.0);
        self.scores_into(row, scores);
        match self.loss {
            Loss::Hinge => {
                for c in 0..self.n_classes {
                    let t = if y as usize == c { 1.0f32 } else { -1.0f32 };
                    if t * scores[c] < 1.0 {
                        let g = &mut grad[c * stride..(c + 1) * stride];
                        for (gi, xi) in g[..self.dim].iter_mut().zip(row) {
                            *gi = -t * xi;
                        }
                        g[self.dim] = -t;
                    }
                }
            }
            Loss::Logistic => {
                softmax_f32(scores);
                for c in 0..self.n_classes {
                    let e = scores[c] - if y as usize == c { 1.0 } else { 0.0 };
                    let g = &mut grad[c * stride..(c + 1) * stride];
                    for (gi, xi) in g[..self.dim].iter_mut().zip(row) {
                        *gi = e * xi;
                    }
                    g[self.dim] = e;
                }
            }
            Loss::Squared => {
                for c in 0..self.n_classes {
                    let e = scores[c] - if y as usize == c { 1.0 } else { 0.0 };
                    let g = &mut grad[c * stride..(c + 1) * stride];
                    for (gi, xi) in g[..self.dim].iter_mut().zip(row) {
                        *gi = e * xi;
                    }
                    g[self.dim] = e;
                }
            }
        }
        let shrink = 1.0 - lr * self.l2;
        kernels::scale_axpy_f32(shrink, &mut self.weights, -lr, grad);
    }
}

impl ClassifierF32 for GlmF32 {
    fn fit(&mut self, x: &MatrixF32, y: &[u32], n_classes: usize, rng: &mut dyn RngCore) {
        assert_eq!(x.nrows(), y.len(), "rows and labels must align");
        assert!(x.nrows() > 0, "cannot fit on empty data");
        self.dim = x.ncols();
        self.n_classes = n_classes.max(1);
        self.weights = vec![0.0; self.n_classes * (self.dim + 1)];
        let n = x.nrows();
        let mut order: Vec<usize> = (0..n).collect();
        let mut scores = Vec::with_capacity(self.n_classes);
        let mut grad = Vec::with_capacity(self.weights.len());
        let mut t = 0usize;
        for _ in 0..self.epochs {
            // Fisher–Yates shuffle, same draw pattern as the f64 engine.
            for i in (1..n).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            for &i in &order {
                t += 1;
                let lr = self.learning_rate / (1.0 + 0.01 * t as f32);
                self.sgd_step_scratch(x.row(i), y[i], lr, &mut scores, &mut grad);
            }
        }
    }

    fn predict_row(&self, row: &[f32]) -> u32 {
        let mut scores = Vec::with_capacity(self.n_classes);
        self.scores_into(row, &mut scores);
        argmax_f32(&scores)
    }

    fn predict(&self, x: &MatrixF32) -> Vec<u32> {
        let mut scores = Vec::with_capacity(self.n_classes);
        let mut out = Vec::with_capacity(x.nrows());
        for i in 0..x.nrows() {
            self.scores_into(x.row(i), &mut scores);
            out.push(argmax_f32(&scores));
        }
        out
    }
}

/// Single-precision mirror of [`crate::mlp::MlpClassifier`]: one hidden
/// layer, ReLU, softmax cross-entropy, mini-batch SGD with momentum. The
/// He init draws in f64 (same RNG consumption as the f64 MLP) and
/// narrows each weight once.
pub struct MlpF32 {
    hidden: usize,
    epochs: usize,
    learning_rate: f32,
    momentum: f32,
    batch_size: usize,
    l2: f32,
    n_classes: usize,
    dim: usize,
    w1: Vec<f32>,
    b1: Vec<f32>,
    w2: Vec<f32>,
    b2: Vec<f32>,
}

impl MlpF32 {
    /// Build with hyperparameters (f64 inputs narrowed once).
    pub fn new(
        hidden: usize,
        epochs: usize,
        learning_rate: f64,
        momentum: f64,
        batch_size: usize,
        l2: f64,
    ) -> Self {
        assert!(hidden > 0, "hidden width must be positive");
        assert!(batch_size > 0, "batch size must be positive");
        MlpF32 {
            hidden,
            epochs,
            learning_rate: learning_rate as f32,
            momentum: momentum as f32,
            batch_size,
            l2: l2 as f32,
            n_classes: 0,
            dim: 0,
            w1: Vec::new(),
            b1: Vec::new(),
            w2: Vec::new(),
            b2: Vec::new(),
        }
    }

    fn forward_into(&self, row: &[f32], hidden_out: &mut Vec<f32>, scores_out: &mut Vec<f32>) {
        let h = self.hidden;
        hidden_out.clear();
        hidden_out.resize(h, 0.0);
        kernels::matvec_bias_f32(&self.w1, h, self.dim, row, &self.b1, hidden_out);
        for a in hidden_out.iter_mut() {
            // comet-lint: allow(D2) — ReLU hinge on a finite activation; max(0) is the definition
            *a = a.max(0.0); // ReLU
        }
        scores_out.clear();
        scores_out.resize(self.n_classes, 0.0);
        kernels::matvec_bias_f32(&self.w2, self.n_classes, h, hidden_out, &self.b2, scores_out);
    }
}

impl ClassifierF32 for MlpF32 {
    fn fit(&mut self, x: &MatrixF32, y: &[u32], n_classes: usize, rng: &mut dyn RngCore) {
        assert_eq!(x.nrows(), y.len(), "rows and labels must align");
        assert!(x.nrows() > 0, "cannot fit on empty data");
        let d = x.ncols();
        let h = self.hidden;
        let k = n_classes.max(2);
        self.dim = d;
        self.n_classes = k;

        // He-uniform init: U(−√(6/fan_in), +√(6/fan_in)), drawn in f64
        // like the f64 MLP and narrowed per weight.
        let mut uniform = |scale: f64| {
            let u = (rng.next_u64() as f64) / (u64::MAX as f64);
            ((2.0 * u - 1.0) * scale) as f32
        };
        let s1 = (6.0 / d as f64).sqrt();
        self.w1 = (0..h * d).map(|_| uniform(s1)).collect();
        self.b1 = vec![0.0; h];
        let s2 = (6.0 / h as f64).sqrt();
        self.w2 = (0..k * h).map(|_| uniform(s2)).collect();
        self.b2 = vec![0.0; k];

        let mut vw1 = vec![0.0f32; h * d];
        let mut vb1 = vec![0.0f32; h];
        let mut vw2 = vec![0.0f32; k * h];
        let mut vb2 = vec![0.0f32; k];

        let n = x.nrows();
        let mut order: Vec<usize> = (0..n).collect();
        let mut hidden = Vec::with_capacity(h);
        let mut p = Vec::with_capacity(k);

        let mut gw1 = vec![0.0f32; h * d];
        let mut gb1 = vec![0.0f32; h];
        let mut gw2 = vec![0.0f32; k * h];
        let mut gb2 = vec![0.0f32; k];

        for _ in 0..self.epochs {
            for i in (1..n).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            for batch in order.chunks(self.batch_size) {
                gw1.iter_mut().for_each(|g| *g = 0.0);
                gb1.iter_mut().for_each(|g| *g = 0.0);
                gw2.iter_mut().for_each(|g| *g = 0.0);
                gb2.iter_mut().for_each(|g| *g = 0.0);

                for &i in batch {
                    let row = x.row(i);
                    self.forward_into(row, &mut hidden, &mut p);
                    softmax_f32(&mut p);
                    p[y[i] as usize] -= 1.0;
                    for c in 0..k {
                        let delta = p[c];
                        gb2[c] += delta;
                        kernels::axpy_f32(delta, &hidden, &mut gw2[c * h..(c + 1) * h]);
                    }
                    for j in 0..h {
                        if hidden[j] <= 0.0 {
                            continue;
                        }
                        let mut delta = 0.0f32;
                        #[allow(clippy::needless_range_loop)]
                        for c in 0..k {
                            delta += p[c] * self.w2[c * h + j];
                        }
                        gb1[j] += delta;
                        kernels::axpy_f32(delta, row, &mut gw1[j * d..(j + 1) * d]);
                    }
                }

                let scale = 1.0 / batch.len() as f32;
                let lr = self.learning_rate;
                let mu = self.momentum;
                let l2 = self.l2;
                let update = |w: &mut [f32], v: &mut [f32], g: &[f32]| {
                    for ((wi, vi), gi) in w.iter_mut().zip(v.iter_mut()).zip(g) {
                        *vi = mu * *vi - lr * (gi * scale + l2 * *wi);
                        *wi += *vi;
                    }
                };
                update(&mut self.w1, &mut vw1, &gw1);
                update(&mut self.b1, &mut vb1, &gb1);
                update(&mut self.w2, &mut vw2, &gw2);
                update(&mut self.b2, &mut vb2, &gb2);
            }
        }
    }

    fn predict_row(&self, row: &[f32]) -> u32 {
        assert!(!self.w1.is_empty(), "predict called before fit");
        let mut hidden = Vec::new();
        let mut scores = Vec::new();
        self.forward_into(row, &mut hidden, &mut scores);
        argmax_f32(&scores)
    }

    fn predict(&self, x: &MatrixF32) -> Vec<u32> {
        assert!(!self.w1.is_empty(), "predict called before fit");
        let mut hidden = Vec::with_capacity(self.hidden);
        let mut scores = Vec::with_capacity(self.n_classes);
        let mut out = Vec::with_capacity(x.nrows());
        for i in 0..x.nrows() {
            self.forward_into(x.row(i), &mut hidden, &mut scores);
            out.push(argmax_f32(&scores));
        }
        out
    }
}

/// Single-precision mirror of [`crate::knn::KnnClassifier`]: same
/// tier-shaped distance scan (per-pair [`kernels::sq_dist_f32`] on the
/// scalar tier, norm decomposition through [`kernels::matvec_f32`] on the
/// SIMD tier), same sorted-insert neighbor list and tie-to-lower-class
/// majority vote.
pub struct KnnF32 {
    k: usize,
    train: Option<MatrixF32>,
    train_y: Vec<u32>,
    n_classes: usize,
}

impl KnnF32 {
    /// Build with the neighbor count.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be at least 1");
        KnnF32 { k, train: None, train_y: Vec::new(), n_classes: 0 }
    }

    #[inline]
    fn consider(best: &mut Vec<(f32, u32)>, k: usize, d: f32, label: u32) {
        if best.len() < k {
            let at = best.partition_point(|&(bd, _)| bd <= d);
            best.insert(at, (d, label));
        } else if d < best[k - 1].0 {
            best.pop();
            let at = best.partition_point(|&(bd, _)| bd <= d);
            best.insert(at, (d, label));
        }
    }

    fn majority(&self, best: &[(f32, u32)], votes: &mut Vec<usize>) -> u32 {
        votes.clear();
        votes.resize(self.n_classes, 0);
        for &(_, label) in best {
            votes[label as usize] += 1;
        }
        let mut winner = 0usize;
        for (c, &v) in votes.iter().enumerate().skip(1) {
            if v > votes[winner] {
                winner = c;
            }
        }
        winner as u32
    }

    /// The fitted training matrix — see `KnnClassifier::fitted`.
    fn fitted(&self) -> &MatrixF32 {
        // comet-lint: allow(D4) — precondition: the probe path always fits before predicting
        self.train.as_ref().expect("predict called before fit")
    }

    fn vote(&self, row: &[f32], best: &mut Vec<(f32, u32)>, votes: &mut Vec<usize>) -> u32 {
        let x = self.fitted();
        let k = self.k.min(x.nrows());
        best.clear();
        for i in 0..x.nrows() {
            let d = kernels::sq_dist_f32(row, x.row(i));
            Self::consider(best, k, d, self.train_y[i]);
        }
        self.majority(best, votes)
    }

    fn train_norms(&self) -> Vec<f32> {
        let x = self.fitted();
        (0..x.nrows()).map(|i| kernels::dot_f32(x.row(i), x.row(i))).collect()
    }

    fn transposed_train(&self) -> Vec<f32> {
        let x = self.fitted();
        let (n, d) = (x.nrows(), x.ncols());
        let mut t = vec![0.0; n * d];
        for i in 0..n {
            for (j, &v) in x.row(i).iter().enumerate() {
                t[j * n + i] = v;
            }
        }
        t
    }

    /// Mirror of `KnnClassifier::top_k_scan` (same admission and
    /// tie-break rules, single precision).
    fn top_k_scan(dists: &[f32], labels: &[u32], k: usize, best: &mut Vec<(f32, u32)>) {
        best.clear();
        // Worst (value, index) in registers — see `KnnClassifier::top_k_scan`.
        let (mut wv, mut wi) = (f32::NEG_INFINITY, 0usize);
        let fill = k.min(dists.len());
        for i in 0..fill {
            let d = dists[i];
            if d > wv {
                wv = d;
                wi = i;
            }
            best.push((d, labels[i]));
        }
        for i in fill..dists.len() {
            let d = dists[i];
            if d < wv {
                best[wi] = (d, labels[i]);
                wv = best[0].0;
                wi = 0;
                for (j, &(bd, _)) in best.iter().enumerate().skip(1) {
                    if bd > wv {
                        wv = bd;
                        wi = j;
                    }
                }
            }
        }
    }

    fn vote_decomposed(
        &self,
        rn: f32,
        norms: &[f32],
        cross: &[f32],
        dists: &mut [f32],
        best: &mut Vec<(f32, u32)>,
        votes: &mut Vec<usize>,
    ) -> u32 {
        let k = self.k.min(norms.len());
        for ((di, &ni), &ci) in dists.iter_mut().zip(norms).zip(cross) {
            *di = (rn + ni) - 2.0 * ci;
        }
        Self::top_k_scan(dists, &self.train_y, k, best);
        self.majority(best, votes)
    }
}

/// Test rows per cross-term block (matches `knn::KNN_BLOCK`).
const KNN_F32_BLOCK: usize = 64;

impl ClassifierF32 for KnnF32 {
    fn fit(&mut self, x: &MatrixF32, y: &[u32], n_classes: usize, _rng: &mut dyn RngCore) {
        assert_eq!(x.nrows(), y.len(), "rows and labels must align");
        assert!(x.nrows() > 0, "cannot fit on empty data");
        self.train = Some(x.clone());
        self.train_y = y.to_vec();
        self.n_classes = n_classes.max(1);
    }

    fn predict_row(&self, row: &[f32]) -> u32 {
        let mut best = Vec::with_capacity(self.k + 1);
        let mut votes = Vec::with_capacity(self.n_classes);
        match kernels::tier() {
            kernels::KernelTier::Scalar => self.vote(row, &mut best, &mut votes),
            kernels::KernelTier::Simd => {
                let norms = self.train_norms();
                let xt = self.transposed_train();
                let n = norms.len();
                let mut cross = vec![0.0; n];
                kernels::matmul_f32(row, 1, row.len(), &xt, n, &mut cross);
                let rn = kernels::dot_f32(row, row);
                let mut dists = vec![0.0; n];
                self.vote_decomposed(rn, &norms, &cross, &mut dists, &mut best, &mut votes)
            }
        }
    }

    fn predict(&self, x: &MatrixF32) -> Vec<u32> {
        let mut best = Vec::with_capacity(self.k + 1);
        let mut votes = Vec::with_capacity(self.n_classes);
        let mut out = Vec::with_capacity(x.nrows());
        match kernels::tier() {
            kernels::KernelTier::Scalar => {
                for i in 0..x.nrows() {
                    out.push(self.vote(x.row(i), &mut best, &mut votes));
                }
            }
            kernels::KernelTier::Simd => {
                let norms = self.train_norms();
                let xt = self.transposed_train();
                let (n, d) = (norms.len(), x.ncols());
                let mut cross = vec![0.0; KNN_F32_BLOCK * n];
                let mut dists = vec![0.0; n];
                let mut i0 = 0;
                while i0 < x.nrows() {
                    let i1 = (i0 + KNN_F32_BLOCK).min(x.nrows());
                    let rows = i1 - i0;
                    let block = &x.as_slice()[i0 * d..i1 * d];
                    kernels::matmul_f32(block, rows, d, &xt, n, &mut cross[..rows * n]);
                    for i in 0..rows {
                        let rn = kernels::dot_f32(x.row(i0 + i), x.row(i0 + i));
                        out.push(self.vote_decomposed(
                            rn,
                            &norms,
                            &cross[i * n..(i + 1) * n],
                            &mut dists,
                            &mut best,
                            &mut votes,
                        ));
                    }
                    i0 = i1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::KnnParams;
    use crate::linear::SvmParams;
    use crate::mlp::MlpParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn separable(n: usize) -> (Matrix, Vec<u32>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let x0 = if i % 2 == 0 { 1.0 } else { -1.0 };
            let x1 = ((i * 7) % 11) as f64 / 11.0 - 0.5;
            rows.push(vec![x0 + 0.1 * x1, x1]);
            labels.push(if x0 > 0.0 { 1 } else { 0 });
        }
        (Matrix::from_vecs(&rows), labels)
    }

    #[test]
    fn f32_twins_learn_separable_data() {
        let (x64, y) = separable(200);
        let x = MatrixF32::from_matrix(&x64);
        let candidates: Vec<HyperParams> = vec![
            HyperParams::Svm(SvmParams::default()),
            HyperParams::Knn(KnnParams::default()),
            HyperParams::Mlp(MlpParams::default()),
        ];
        for hp in &candidates {
            let mut model = build_f32(hp).expect("f32 twin exists");
            let mut rng = StdRng::seed_from_u64(0);
            model.fit(&x, &y, 2, &mut rng);
            let preds = model.predict(&x);
            let acc = crate::metrics::accuracy(&y, &preds);
            assert!(acc > 0.9, "{:?} accuracy {acc}", hp.algorithm());
        }
    }

    #[test]
    fn unsupported_algorithms_fall_back() {
        use crate::gbm::GbmParams;
        assert!(build_f32(&HyperParams::Gb(GbmParams::default())).is_none());
    }

    #[test]
    fn f32_fit_is_deterministic() {
        let (x64, y) = separable(80);
        let x = MatrixF32::from_matrix(&x64);
        let run = |seed: u64| {
            let mut m = GlmF32::new(Loss::Logistic, 0.1, 1e-4, 20);
            let mut rng = StdRng::seed_from_u64(seed);
            m.fit(&x, &y, 2, &mut rng);
            m.weights
        };
        let a = run(3);
        let b = run(3);
        for (u, v) in a.iter().zip(&b) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
    }
}
