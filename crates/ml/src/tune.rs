//! Random hyperparameter search (paper §4.4: "10-sampled random
//! hyperparameter optimization for each configuration").

use crate::algorithm::{Algorithm, HyperParams};
use crate::metrics::Metric;
use crate::model::Classifier;
use crate::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random-search configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomSearch {
    /// Number of hyperparameter draws (paper: 10).
    pub n_samples: usize,
    /// Fraction of the training data held out for validation.
    pub val_fraction: f64,
    /// Selection metric.
    pub metric: Metric,
}

impl Default for RandomSearch {
    fn default() -> Self {
        RandomSearch { n_samples: 10, val_fraction: 0.2, metric: Metric::F1 }
    }
}

/// The outcome of a search: winning hyperparameters and the model refitted
/// on the full training data.
pub struct TunedModel {
    /// Winning hyperparameters.
    pub params: HyperParams,
    /// Validation score of the winner.
    pub val_score: f64,
    /// Model refitted on all training rows with the winning parameters.
    pub model: Box<dyn Classifier>,
}

impl RandomSearch {
    /// Run the search for `algorithm` on `(x, y)`.
    ///
    /// Internally splits off a validation set, scores each sampled
    /// configuration, then refits the winner on all rows. With fewer than 5
    /// rows the search degenerates to default parameters fitted on
    /// everything (no meaningful validation possible).
    pub fn tune<R: Rng>(
        &self,
        algorithm: Algorithm,
        x: &Matrix,
        y: &[u32],
        n_classes: usize,
        rng: &mut R,
    ) -> TunedModel {
        assert_eq!(x.nrows(), y.len(), "rows and labels must align");
        assert!(x.nrows() > 0, "cannot tune on empty data");
        let n = x.nrows();

        comet_obs::counter_add("tune.searches", 1);
        if n < 5 || self.n_samples == 0 {
            comet_obs::counter_add("tune.degenerate", 1);
            let params = algorithm.default_params();
            let mut model = params.build();
            model.fit(x, y, n_classes, rng);
            return TunedModel { params, val_score: f64::NAN, model };
        }
        comet_obs::counter_add("tune.trials", self.n_samples as u64);

        // Shuffled split.
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let n_val = ((n as f64 * self.val_fraction).round() as usize).clamp(1, n - 1);
        let (val_rows, train_rows) = order.split_at(n_val);
        let x_train = x.take_rows(train_rows);
        let y_train: Vec<u32> = train_rows.iter().map(|&r| y[r]).collect();
        let x_val = x.take_rows(val_rows);
        let y_val: Vec<u32> = val_rows.iter().map(|&r| y[r]).collect();

        // Draw every trial's hyperparameters and fit seed sequentially from
        // the caller's rng, then fit/score the trials in parallel with
        // per-trial rng streams. The winner is the first maximum in draw
        // order, so the result is identical at any thread count.
        let trials: Vec<(HyperParams, u64)> =
            (0..self.n_samples).map(|_| (algorithm.sample_params(rng), rng.next_u64())).collect();
        let scored = comet_par::par_map(trials, |(params, fit_seed)| {
            let mut trial_rng = StdRng::seed_from_u64(fit_seed);
            let mut model = params.build();
            model.fit(&x_train, &y_train, n_classes, &mut trial_rng);
            let preds = model.predict(&x_val);
            let score = self.metric.eval(&y_val, &preds, n_classes);
            (params, score)
        });
        let mut best: Option<(HyperParams, f64)> = None;
        for (params, score) in scored {
            if best.as_ref().is_none_or(|(_, s)| score > *s) {
                best = Some((params, score));
            }
        }
        let (params, val_score) = best.expect("n_samples > 0");
        let mut model = params.build();
        model.fit(x, y, n_classes, rng);
        TunedModel { params, val_score, model }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs(n: usize) -> (Matrix, Vec<u32>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let offset = if c == 0 { -1.5 } else { 1.5 };
            let j = ((i * 37) % 23) as f64 / 23.0 - 0.5;
            rows.push(vec![offset + j, j * 0.5]);
            labels.push(c as u32);
        }
        (Matrix::from_vecs(&rows), labels)
    }

    #[test]
    fn search_finds_a_working_model() {
        let (x, y) = blobs(120);
        let search = RandomSearch { n_samples: 5, ..RandomSearch::default() };
        let mut rng = StdRng::seed_from_u64(0);
        let tuned = search.tune(Algorithm::Knn, &x, &y, 2, &mut rng);
        assert!(tuned.val_score > 0.8, "val score {}", tuned.val_score);
        let acc = crate::metrics::accuracy(&y, &tuned.model.predict(&x));
        assert!(acc > 0.9, "refit accuracy {acc}");
        assert_eq!(tuned.params.algorithm(), Algorithm::Knn);
    }

    #[test]
    fn tiny_data_falls_back_to_defaults() {
        let x = Matrix::from_vecs(&[vec![0.0], vec![1.0], vec![2.0]]);
        let y = vec![0, 1, 1];
        let search = RandomSearch::default();
        let mut rng = StdRng::seed_from_u64(1);
        let tuned = search.tune(Algorithm::Svm, &x, &y, 2, &mut rng);
        assert!(tuned.val_score.is_nan());
        assert_eq!(tuned.model.predict(&x).len(), 3);
    }

    #[test]
    fn zero_samples_uses_defaults() {
        let (x, y) = blobs(40);
        let search = RandomSearch { n_samples: 0, ..RandomSearch::default() };
        let mut rng = StdRng::seed_from_u64(2);
        let tuned = search.tune(Algorithm::Gb, &x, &y, 2, &mut rng);
        assert_eq!(tuned.params, Algorithm::Gb.default_params());
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = blobs(80);
        let search = RandomSearch { n_samples: 4, ..RandomSearch::default() };
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let t = search.tune(Algorithm::Svm, &x, &y, 2, &mut rng);
            (format!("{:?}", t.params), t.val_score)
        };
        assert_eq!(run(3), run(3));
    }
}
