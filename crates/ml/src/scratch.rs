//! Process-global pool of reusable `f64` buffers (scratch arenas).
//!
//! The evaluation hot path builds two dense matrices (train/test features)
//! plus per-fit gradient scratch for every candidate pollution — hundreds
//! of times per session. Workers are *scoped threads spawned per fan-out*
//! (see `comet-par`), so thread-local arenas would be torn down after every
//! `par_map`; instead buffers live in one global pool guarded by a `Mutex`
//! with take/put critical sections of a few instructions. Buffers are
//! handed out largest-first so a steady-state loop converges on a fixed set
//! of allocations (allocation-flat), whatever order workers arrive in.
//!
//! Observability: `alloc.scratch_reuse` counts pool hits (an allocation
//! avoided), `alloc.scratch_alloc` counts misses that had to allocate.

use std::sync::Mutex;

use crate::Matrix;

/// Retained buffers. Bounded so a one-off huge evaluation cannot pin
/// arbitrary memory forever.
const POOL_CAP: usize = 64;

static POOL: Mutex<Vec<Vec<f64>>> = Mutex::new(Vec::new());

/// Take a buffer with capacity for at least `len` elements, preferring the
/// largest pooled buffer (contents are unspecified; callers overwrite).
/// Falls back to a fresh allocation when the pool is empty.
pub fn take(len: usize) -> Vec<f64> {
    let candidate = {
        let mut pool = POOL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        pool.pop()
    };
    match candidate {
        Some(mut buf) => {
            if buf.capacity() >= len {
                comet_obs::counter_add("alloc.scratch_reuse", 1);
            } else {
                // Growing a recycled buffer still beats a cold allocation
                // only sometimes; count it as an allocation for honesty.
                comet_obs::counter_add("alloc.scratch_alloc", 1);
                buf.reserve(len - buf.len());
            }
            buf
        }
        None => {
            comet_obs::counter_add("alloc.scratch_alloc", 1);
            Vec::with_capacity(len)
        }
    }
}

/// Return a buffer to the pool. Kept sorted ascending by capacity so
/// [`take`] (which pops the back) hands out the largest buffer first.
pub fn put(buf: Vec<f64>) {
    if buf.capacity() == 0 {
        return;
    }
    let mut pool = POOL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if pool.len() >= POOL_CAP {
        return; // drop: pool full
    }
    let at = pool.partition_point(|b| b.capacity() <= buf.capacity());
    pool.insert(at, buf);
}

/// Take a zero-filled `nrows × ncols` matrix backed by a pooled buffer.
pub fn take_matrix(nrows: usize, ncols: usize) -> Matrix {
    Matrix::from_buffer(nrows, ncols, take(nrows * ncols))
}

/// Recycle a matrix's backing buffer.
pub fn put_matrix(m: Matrix) {
    put(m.into_buffer());
}

/// Number of buffers currently pooled (diagnostics/tests).
pub fn pooled() -> usize {
    POOL.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
}

/// Drop every pooled buffer (tests and cold-path benchmarks).
pub fn clear() {
    POOL.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The pool is process-global; tests touching it share state with each
    // other (and with any test that evaluates models). Assertions stick to
    // properties that concurrent puts/takes cannot violate.

    #[test]
    fn take_put_roundtrip_reuses_capacity() {
        let mut buf = take(16);
        buf.extend((0..16).map(|i| i as f64));
        let cap = buf.capacity();
        put(buf);
        let buf2 = take(8);
        // Largest-first: we get back a buffer at least as big as ours was.
        assert!(buf2.capacity() >= 8.min(cap));
        put(buf2);
    }

    #[test]
    fn matrix_helpers_zero_fill() {
        let mut m = take_matrix(3, 2);
        m.set(1, 1, 5.0);
        put_matrix(m);
        let m2 = take_matrix(3, 2);
        // Whatever buffer we got, from_buffer zero-fills it.
        assert!(m2.as_slice().iter().all(|&v| v == 0.0));
        put_matrix(m2);
    }

    #[test]
    fn empty_buffers_are_not_pooled() {
        let before = pooled();
        put(Vec::new());
        assert_eq!(pooled(), before);
    }
}
