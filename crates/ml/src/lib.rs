//! # comet-ml — from-scratch machine-learning substrate
//!
//! The COMET paper evaluates on scikit-learn models; the Rust ecosystem has
//! no equivalent, so this crate implements everything the paper's
//! experiments need:
//!
//! * [`Matrix`] — minimal dense row-major matrix,
//! * [`Featurizer`] — mean/mode imputation → one-hot encoding →
//!   standardization, fitted on training data only (no leakage),
//! * learners (all implementing [`Classifier`]):
//!   [`LinearSvm`] (Pegasos hinge SGD, one-vs-rest),
//!   [`KnnClassifier`], [`MlpClassifier`] (1 hidden layer, ReLU, softmax),
//!   [`GradientBoostingClassifier`] (CART regression trees on softmax
//!   gradients), [`LogisticRegression`], and [`LinearRegressionClassifier`]
//!   (the LIR model ActiveClean uses, thresholded for classification),
//! * [`metrics`] — accuracy, binary F1, macro F1 (the paper's prediction-
//!   accuracy metric), confusion matrices,
//! * [`RandomSearch`] — the 10-sample random hyperparameter optimization of
//!   §4.4,
//! * [`shapley`] — sampling-based permutation Shapley values (SHAP stand-in)
//!   powering the FIR baseline,
//! * [`sgd`] — per-sample gradients for convex linear models, the hook
//!   ActiveClean's record selection needs.

mod algorithm;
pub mod cv;
mod dtree;
pub mod f32tier;
mod featurize;
mod forest;
mod gbm;
pub mod kernels;
mod knn;
mod linear;
mod matrix;
pub mod metrics;
mod mlp;
mod model;
mod nb;
pub mod scratch;
pub mod sgd;
pub mod shapley;
mod tree;
mod tune;

pub use algorithm::{Algorithm, HyperParams};
pub use cv::{cross_val_score, KFold};
pub use dtree::{DecisionTreeClassifier, DtParams};
pub use f32tier::{build_f32, ClassifierF32, MatrixF32};
pub use featurize::{FeatureCache, FeatureCacheStats, FeatureGroup, Featurizer};
pub use forest::{RandomForestClassifier, RfParams};
pub use gbm::{GbmParams, GradientBoostingClassifier};
pub use knn::{KnnClassifier, KnnParams};
pub use linear::{
    LinearRegressionClassifier, LinearSvm, LirParams, LogisticRegression, LorParams, SvmParams,
};
pub use matrix::{Matrix, MatrixShapeError};
pub use metrics::Metric;
pub use mlp::{MlpClassifier, MlpParams};
pub use model::Classifier;
pub use nb::{NaiveBayesClassifier, NbParams};
pub use tree::{RegressionTree, TreeParams};
pub use tune::{RandomSearch, TunedModel};
