//! The three linear classifiers of the paper, thin wrappers over the shared
//! SGD engine in [`crate::sgd`]:
//!
//! * [`LinearSvm`] — the paper's SVM (§4.4); one-vs-rest hinge loss,
//! * [`LogisticRegression`] — ActiveClean's LOR model (§4.5),
//! * [`LinearRegressionClassifier`] — ActiveClean's LIR model: least squares
//!   on one-hot targets, classified by argmax (threshold 0.5 in the binary
//!   case, equivalently).

use crate::model::Classifier;
use crate::sgd::{Glm, Loss, SgdParams};
use crate::Matrix;
use rand::RngCore;

/// Linear SVM hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmParams {
    /// L2 regularization strength (the SVM's `1/C`).
    pub l2: f64,
    /// SGD epochs.
    pub epochs: usize,
    /// Initial learning rate.
    pub learning_rate: f64,
}

impl Default for SvmParams {
    fn default() -> Self {
        SvmParams { l2: 1e-4, epochs: 40, learning_rate: 0.1 }
    }
}

/// Logistic-regression hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LorParams {
    /// L2 regularization strength.
    pub l2: f64,
    /// SGD epochs.
    pub epochs: usize,
    /// Initial learning rate.
    pub learning_rate: f64,
}

impl Default for LorParams {
    fn default() -> Self {
        LorParams { l2: 1e-4, epochs: 40, learning_rate: 0.1 }
    }
}

/// Linear-regression-classifier hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LirParams {
    /// L2 (ridge) regularization strength.
    pub l2: f64,
    /// SGD epochs.
    pub epochs: usize,
    /// Initial learning rate.
    pub learning_rate: f64,
}

impl Default for LirParams {
    fn default() -> Self {
        LirParams { l2: 1e-4, epochs: 40, learning_rate: 0.05 }
    }
}

macro_rules! linear_classifier {
    ($(#[$doc:meta])* $name:ident, $params:ident, $loss:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            glm: Glm,
        }

        impl $name {
            /// Build with hyperparameters.
            pub fn new(params: $params) -> Self {
                let sgd = SgdParams {
                    learning_rate: params.learning_rate,
                    l2: params.l2,
                    epochs: params.epochs,
                };
                $name { glm: Glm::new($loss, sgd) }
            }

            /// The underlying generalized linear model (weights, gradients) —
            /// the hook ActiveClean uses.
            pub fn glm(&self) -> &Glm {
                &self.glm
            }

            /// Mutable access for incremental (ActiveClean-style) updates.
            pub fn glm_mut(&mut self) -> &mut Glm {
                &mut self.glm
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(<$params>::default())
            }
        }

        impl Classifier for $name {
            fn fit(&mut self, x: &Matrix, y: &[u32], n_classes: usize, rng: &mut dyn RngCore) {
                self.glm.fit(x, y, n_classes, rng);
            }

            fn predict_row(&self, row: &[f64]) -> u32 {
                self.glm.predict_row(row)
            }
        }
    };
}

linear_classifier!(
    /// One-vs-rest linear SVM trained with hinge-loss SGD (Pegasos-style).
    LinearSvm,
    SvmParams,
    Loss::Hinge
);

linear_classifier!(
    /// Softmax (multinomial) logistic regression.
    LogisticRegression,
    LorParams,
    Loss::Logistic
);

linear_classifier!(
    /// Linear regression on one-hot targets, classified by argmax — the
    /// "LIR" model of the ActiveClean comparison.
    LinearRegressionClassifier,
    LirParams,
    Loss::Squared
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs() -> (Matrix, Vec<u32>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            let c = i % 2;
            let offset = if c == 0 { -2.0 } else { 2.0 };
            let j1 = ((i * 31) % 17) as f64 / 17.0 - 0.5;
            let j2 = ((i * 53) % 13) as f64 / 13.0 - 0.5;
            rows.push(vec![offset + j1, j2]);
            labels.push(c as u32);
        }
        (Matrix::from_vecs(&rows), labels)
    }

    fn check_learns<C: Classifier>(mut model: C) {
        let (x, y) = blobs();
        let mut rng = StdRng::seed_from_u64(0);
        model.fit(&x, &y, 2, &mut rng);
        let preds = model.predict(&x);
        let acc = crate::metrics::accuracy(&y, &preds);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn svm_learns() {
        check_learns(LinearSvm::default());
    }

    #[test]
    fn logistic_learns() {
        check_learns(LogisticRegression::default());
    }

    #[test]
    fn linear_regression_classifier_learns() {
        check_learns(LinearRegressionClassifier::default());
    }

    #[test]
    fn glm_accessors_expose_weights() {
        let (x, y) = blobs();
        let mut svm = LinearSvm::default();
        let mut rng = StdRng::seed_from_u64(1);
        svm.fit(&x, &y, 2, &mut rng);
        assert_eq!(svm.glm().n_classes(), 2);
        assert_eq!(svm.glm().dim(), 2);
        assert_eq!(svm.glm().weights().len(), 2 * 3);
        // Mutable hook works.
        let before = svm.glm().weights().to_vec();
        svm.glm_mut().sgd_step(x.row(0), y[0], 0.5);
        // May or may not change (hinge margin), but must not panic and stays
        // the right length.
        assert_eq!(svm.glm().weights().len(), before.len());
    }

    #[test]
    fn custom_params_respected() {
        let svm = LinearSvm::new(SvmParams { l2: 0.5, epochs: 1, learning_rate: 0.01 });
        // Just verify construction + a fit pass with 3 classes works.
        let (x, _) = blobs();
        let y3: Vec<u32> = (0..x.nrows()).map(|i| (i % 3) as u32).collect();
        let mut m = svm;
        let mut rng = StdRng::seed_from_u64(2);
        m.fit(&x, &y3, 3, &mut rng);
        let p = m.predict_row(x.row(0));
        assert!(p < 3);
    }
}
