//! Cross-implementation bit-identity proptests for the kernel tiers.
//!
//! The SIMD tier's determinism story rests on one claim: the portable
//! [`lanes8`] reference and the AVX2/SSE2 [`x86`] encodings produce the
//! same bits on every input, at every length straddling the 8-lane
//! boundary. These tests drive all reachable implementations against
//! each other with random lengths and values, plus the dispatcher in
//! both tiers, the element-wise kernels' tier-independence, and
//! `matmul`'s tier- and m-invariance (the property `KnnClassifier`
//! relies on to make `predict_row` match batched `predict` bit for bit).
//!
//! The tier selection is process-global, so every test that flips it
//! holds `TIER_LOCK` and restores the previous tier before releasing.

use comet_ml::kernels::{self, lanes8, scalar, KernelTier};
use proptest::prop_assert_eq;
use std::sync::{Mutex, MutexGuard};

#[cfg(target_arch = "x86_64")]
use comet_ml::kernels::x86;

static TIER_LOCK: Mutex<()> = Mutex::new(());

/// Hold the lock, select `t`, and hand back a guard that restores on drop.
struct TierGuard {
    _lock: MutexGuard<'static, ()>,
    prev: KernelTier,
}

impl TierGuard {
    fn select(t: KernelTier) -> Self {
        let lock = TIER_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let prev = kernels::tier();
        kernels::set_tier(t);
        TierGuard { _lock: lock, prev }
    }
}

impl Drop for TierGuard {
    fn drop(&mut self) {
        kernels::set_tier(self.prev);
    }
}

/// Deterministic pseudo-random f64 vector (values in roughly ±8).
fn vec_f64(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 16.0
        })
        .collect()
}

fn vec_f32(len: usize, seed: u64) -> Vec<f32> {
    vec_f64(len, seed).into_iter().map(|v| v as f32).collect()
}

/// Every length from empty through two full 8-lane blocks plus ragged
/// tails — each residue mod 8 appears at least twice.
const LENS: [usize; 20] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 23, 40];

#[test]
fn reducing_kernels_bit_identical_across_simd_encodings() {
    for (li, &n) in LENS.iter().enumerate() {
        let a = vec_f64(n, li as u64 + 1);
        let b = vec_f64(n, li as u64 + 101);
        let dot_ref = lanes8::dot(&a, &b);
        let sq_ref = lanes8::sq_dist(&a, &b);
        #[cfg(target_arch = "x86_64")]
        {
            if x86::has_avx2() {
                // SAFETY: AVX2 support was verified at runtime just above.
                unsafe {
                    assert_eq!(x86::dot_avx2(&a, &b).to_bits(), dot_ref.to_bits(), "n={n}");
                    assert_eq!(x86::sq_dist_avx2(&a, &b).to_bits(), sq_ref.to_bits(), "n={n}");
                }
            }
            if x86::has_sse2() {
                // SAFETY: SSE2 support was verified at runtime just above.
                unsafe {
                    assert_eq!(x86::dot_sse2(&a, &b).to_bits(), dot_ref.to_bits(), "n={n}");
                    assert_eq!(x86::sq_dist_sse2(&a, &b).to_bits(), sq_ref.to_bits(), "n={n}");
                }
            }
        }
        let af = vec_f32(n, li as u64 + 1);
        let bf = vec_f32(n, li as u64 + 101);
        let dotf_ref = lanes8::dot_f32(&af, &bf);
        let sqf_ref = lanes8::sq_dist_f32(&af, &bf);
        #[cfg(target_arch = "x86_64")]
        {
            if x86::has_avx2() {
                // SAFETY: AVX2 support was verified at runtime just above.
                unsafe {
                    assert_eq!(x86::dot_f32_avx2(&af, &bf).to_bits(), dotf_ref.to_bits());
                    assert_eq!(x86::sq_dist_f32_avx2(&af, &bf).to_bits(), sqf_ref.to_bits());
                }
            }
            if x86::has_sse2() {
                // SAFETY: SSE2 support was verified at runtime just above.
                unsafe {
                    assert_eq!(x86::dot_f32_sse2(&af, &bf).to_bits(), dotf_ref.to_bits());
                    assert_eq!(x86::sq_dist_f32_sse2(&af, &bf).to_bits(), sqf_ref.to_bits());
                }
            }
        }
    }
}

#[test]
fn elementwise_kernels_bit_identical_across_simd_encodings() {
    for (li, &n) in LENS.iter().enumerate() {
        let x = vec_f64(n, li as u64 + 7);
        let y0 = vec_f64(n, li as u64 + 207);
        let mut y_ref = y0.clone();
        lanes8::axpy(0.37, &x, &mut y_ref);
        lanes8::scale_axpy(0.9, &mut y_ref, -0.21, &x);
        #[cfg(target_arch = "x86_64")]
        {
            if x86::has_avx2() {
                let mut y = y0.clone();
                // SAFETY: AVX2 support was verified at runtime just above.
                unsafe {
                    x86::axpy_avx2(0.37, &x, &mut y);
                    x86::scale_axpy_avx2(0.9, &mut y, -0.21, &x);
                }
                assert!(y.iter().zip(&y_ref).all(|(a, b)| a.to_bits() == b.to_bits()));
            }
            if x86::has_sse2() {
                let mut y = y0.clone();
                // SAFETY: SSE2 support was verified at runtime just above.
                unsafe {
                    x86::axpy_sse2(0.37, &x, &mut y);
                    x86::scale_axpy_sse2(0.9, &mut y, -0.21, &x);
                }
                assert!(y.iter().zip(&y_ref).all(|(a, b)| a.to_bits() == b.to_bits()));
            }
        }
        let xf = vec_f32(n, li as u64 + 7);
        let yf0 = vec_f32(n, li as u64 + 207);
        let mut yf_ref = yf0.clone();
        lanes8::axpy_f32(0.37, &xf, &mut yf_ref);
        lanes8::scale_axpy_f32(0.9, &mut yf_ref, -0.21, &xf);
        #[cfg(target_arch = "x86_64")]
        {
            if x86::has_avx2() {
                let mut y = yf0.clone();
                // SAFETY: AVX2 support was verified at runtime just above.
                unsafe {
                    x86::axpy_f32_avx2(0.37, &xf, &mut y);
                    x86::scale_axpy_f32_avx2(0.9, &mut y, -0.21, &xf);
                }
                assert!(y.iter().zip(&yf_ref).all(|(a, b)| a.to_bits() == b.to_bits()));
            }
            if x86::has_sse2() {
                let mut y = yf0.clone();
                // SAFETY: SSE2 support was verified at runtime just above.
                unsafe {
                    x86::axpy_f32_sse2(0.37, &xf, &mut y);
                    x86::scale_axpy_f32_sse2(0.9, &mut y, -0.21, &xf);
                }
                assert!(y.iter().zip(&yf_ref).all(|(a, b)| a.to_bits() == b.to_bits()));
            }
        }
    }
}

// The vendored `proptest!` grammar takes `ident in strategy` only, so
// tuple strategies bind one ident and destructure inside the body.
proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(48))]
    #[test]
    fn dispatcher_routes_each_tier_to_its_reference(
        args in (0usize..40, 0u64..1_000_000),
    ) {
        let (n, seed) = args;
        let a = vec_f64(n, seed);
        let b = vec_f64(n, seed ^ 0xABCD);
        let af = vec_f32(n, seed);
        let bf = vec_f32(n, seed ^ 0xABCD);
        {
            let _g = TierGuard::select(KernelTier::Scalar);
            prop_assert_eq!(kernels::dot(&a, &b).to_bits(), scalar::dot(&a, &b).to_bits());
            prop_assert_eq!(
                kernels::sq_dist(&a, &b).to_bits(),
                scalar::sq_dist(&a, &b).to_bits()
            );
            prop_assert_eq!(
                kernels::dot_f32(&af, &bf).to_bits(),
                scalar::dot_f32(&af, &bf).to_bits()
            );
        }
        {
            // All SIMD encodings are bit-identical (test above), so the
            // portable reference is the expected value regardless of
            // which ISA the dispatcher picked.
            let _g = TierGuard::select(KernelTier::Simd);
            prop_assert_eq!(kernels::dot(&a, &b).to_bits(), lanes8::dot(&a, &b).to_bits());
            prop_assert_eq!(
                kernels::sq_dist(&a, &b).to_bits(),
                lanes8::sq_dist(&a, &b).to_bits()
            );
            prop_assert_eq!(
                kernels::dot_f32(&af, &bf).to_bits(),
                lanes8::dot_f32(&af, &bf).to_bits()
            );
        }
    }
}

proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(48))]
    #[test]
    fn matvec_matches_per_row_dot_in_both_tiers(
        args in (1usize..9, 0usize..17, 0u64..1_000_000),
    ) {
        let (rows, cols, seed) = args;
        let a = vec_f64(rows * cols, seed);
        let x = vec_f64(cols, seed ^ 0x77);
        let bias = vec_f64(rows, seed ^ 0x99);
        for t in [KernelTier::Scalar, KernelTier::Simd] {
            let _g = TierGuard::select(t);
            let mut out = vec![0.0; rows];
            kernels::matvec(&a, rows, cols, &x, &mut out);
            for (i, o) in out.iter().enumerate() {
                let row = &a[i * cols..(i + 1) * cols];
                prop_assert_eq!(o.to_bits(), kernels::dot(row, &x).to_bits());
            }
            kernels::matvec_bias(&a, rows, cols, &x, &bias, &mut out);
            for (i, o) in out.iter().enumerate() {
                let row = &a[i * cols..(i + 1) * cols];
                prop_assert_eq!(o.to_bits(), (kernels::dot(row, &x) + bias[i]).to_bits());
            }
        }
    }
}

proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(48))]
    #[test]
    fn matmul_is_tier_and_m_invariant(
        args in (1usize..10, 0usize..12, 1usize..20, 0u64..1_000_000),
    ) {
        let (m, k, n, seed) = args;
        let a = vec_f64(m * k, seed);
        let b = vec_f64(k * n, seed ^ 0x55);
        // Naive i-k-j reference: one add per term, k strictly ascending.
        let mut naive = vec![0.0; m * n];
        for i in 0..m {
            for kk in 0..k {
                let aik = a[i * k + kk];
                for j in 0..n {
                    naive[i * n + j] += aik * b[kk * n + j];
                }
            }
        }
        for t in [KernelTier::Scalar, KernelTier::Simd] {
            let _g = TierGuard::select(t);
            let mut out = vec![0.0; m * n];
            kernels::matmul(&a, m, k, &b, n, &mut out);
            for (x, y) in out.iter().zip(&naive) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
            // m-invariance: row-at-a-time calls see the same bits, so a
            // one-row caller (`predict_row`) matches any batched caller.
            for i in 0..m {
                let mut row_out = vec![0.0; n];
                kernels::matmul(&a[i * k..(i + 1) * k], 1, k, &b, n, &mut row_out);
                for (x, y) in row_out.iter().zip(&naive[i * n..(i + 1) * n]) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }
}

proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(48))]
    #[test]
    fn matmul_f32_is_tier_and_m_invariant(
        args in (1usize..10, 0usize..12, 1usize..28, 0u64..1_000_000),
    ) {
        let (m, k, n, seed) = args;
        let a = vec_f32(m * k, seed);
        let b = vec_f32(k * n, seed ^ 0x55);
        let mut naive = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                let aik = a[i * k + kk];
                for j in 0..n {
                    naive[i * n + j] += aik * b[kk * n + j];
                }
            }
        }
        for t in [KernelTier::Scalar, KernelTier::Simd] {
            let _g = TierGuard::select(t);
            let mut out = vec![0.0f32; m * n];
            kernels::matmul_f32(&a, m, k, &b, n, &mut out);
            for (x, y) in out.iter().zip(&naive) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
            for i in 0..m {
                let mut row_out = vec![0.0f32; n];
                kernels::matmul_f32(&a[i * k..(i + 1) * k], 1, k, &b, n, &mut row_out);
                for (x, y) in row_out.iter().zip(&naive[i * n..(i + 1) * n]) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }
}

proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(48))]
    #[test]
    fn elementwise_kernels_identical_across_tiers(
        args in (0usize..40, 0u64..1_000_000),
    ) {
        let (n, seed) = args;
        let x = vec_f64(n, seed);
        let y0 = vec_f64(n, seed ^ 0x31);
        let run = |t: KernelTier| {
            let _g = TierGuard::select(t);
            let mut y = y0.clone();
            kernels::axpy(0.43, &x, &mut y);
            kernels::scale_axpy(0.87, &mut y, -0.12, &x);
            y
        };
        let scalar_out = run(KernelTier::Scalar);
        let simd_out = run(KernelTier::Simd);
        for (a, b) in scalar_out.iter().zip(&simd_out) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
