//! Ground-truth tracking and per-cell error provenance.
//!
//! COMET itself never sees this information (paper §3: "At no point does
//! COMET require information about the actual pollution level … nor which
//! entries are actually erroneous"). The *simulation harness* needs it to
//! play the role of the Cleaner: restore `k` dirty cells of a feature, and
//! in the multi-error scenario know which error type polluted each cell so
//! the correct cost model is charged (§4.2).

use crate::ErrorType;
use comet_frame::{DataFrame, FrameError, Result};
use rand::Rng;

/// The clean reference version of a (train or test) frame.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    clean: DataFrame,
}

impl GroundTruth {
    /// Capture the clean state. Call before any pollution is applied.
    pub fn new(clean: DataFrame) -> Self {
        GroundTruth { clean }
    }

    /// The clean frame.
    pub fn clean(&self) -> &DataFrame {
        &self.clean
    }

    /// Rows of feature `col` whose value in `dirty` differs from clean.
    pub fn dirty_rows(&self, dirty: &DataFrame, col: usize) -> Result<Vec<usize>> {
        let a = dirty.column(col)?;
        let b = self.clean.column(col)?;
        if a.len() != b.len() {
            return Err(FrameError::LengthMismatch {
                expected: b.len(),
                got: a.len(),
                column: a.name().to_string(),
            });
        }
        let mut rows = Vec::new();
        for row in 0..a.len() {
            if !cells_eq(a.get(row)?, b.get(row)?) {
                rows.push(row);
            }
        }
        Ok(rows)
    }

    /// Number of dirty cells in feature `col`.
    pub fn dirty_count(&self, dirty: &DataFrame, col: usize) -> Result<usize> {
        Ok(self.dirty_rows(dirty, col)?.len())
    }

    /// Total dirty cells across all feature columns — plus the label
    /// column when the frame has one, so label noise counts as dirt (a
    /// session is not "fully clean" while flipped labels remain).
    pub fn total_dirty(&self, dirty: &DataFrame) -> Result<usize> {
        let mut total = 0;
        for col in dirty.feature_indices() {
            total += self.dirty_count(dirty, col)?;
        }
        if let Ok(label) = dirty.label_index() {
            total += self.dirty_count(dirty, label)?;
        }
        Ok(total)
    }

    /// True when every feature (and label) cell matches ground truth.
    pub fn is_fully_clean(&self, dirty: &DataFrame) -> Result<bool> {
        Ok(self.total_dirty(dirty)? == 0)
    }

    /// Restore the given rows of feature `col` to their clean values.
    /// Returns the rows that actually changed.
    pub fn restore(&self, dirty: &mut DataFrame, col: usize, rows: &[usize]) -> Result<Vec<usize>> {
        let mut restored = Vec::new();
        for &row in rows {
            let clean_cell = self.clean.get(row, col)?;
            if !cells_eq(dirty.get(row, col)?, clean_cell) {
                dirty.set(row, col, clean_cell)?;
                restored.push(row);
            }
        }
        Ok(restored)
    }

    /// Simulate one cleaning step on feature `col`: restore up to `k` dirty
    /// cells. Cells listed in `preferred` are cleaned first (the paper's
    /// Cleaner first cleans the entries the Polluter flagged, §3.3); the
    /// remainder is drawn uniformly from the other dirty cells.
    ///
    /// Returns the rows restored (may be fewer than `k` if less dirt
    /// remains).
    pub fn clean_step<R: Rng + ?Sized>(
        &self,
        dirty: &mut DataFrame,
        col: usize,
        k: usize,
        preferred: &[usize],
        rng: &mut R,
    ) -> Result<Vec<usize>> {
        let dirty_rows = self.dirty_rows(dirty, col)?;
        if dirty_rows.is_empty() || k == 0 {
            return Ok(Vec::new());
        }
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        for &p in preferred {
            if chosen.len() == k {
                break;
            }
            if dirty_rows.binary_search(&p).is_ok() && !chosen.contains(&p) {
                chosen.push(p);
            }
        }
        if chosen.len() < k {
            // Uniform fill from the remaining dirty rows.
            let mut rest: Vec<usize> =
                dirty_rows.iter().copied().filter(|r| !chosen.contains(r)).collect();
            let need = (k - chosen.len()).min(rest.len());
            for i in 0..need {
                let j = rng.gen_range(i..rest.len());
                rest.swap(i, j);
                chosen.push(rest[i]);
            }
        }
        self.restore(dirty, col, &chosen)
    }
}

fn cells_eq(a: comet_frame::Cell, b: comet_frame::Cell) -> bool {
    use comet_frame::Cell;
    match (a, b) {
        (Cell::Missing, Cell::Missing) => true,
        (Cell::Num(x), Cell::Num(y)) => {
            // comet-lint: allow(D2) — tolerance scale over abs values; NaN cells compare unequal earlier
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= 1e-12 * scale
        }
        (Cell::Cat(x), Cell::Cat(y)) => x == y,
        _ => false,
    }
}

/// Per-cell record of which error type polluted a cell, per column.
///
/// `None` means the cell is clean (or its dirt has unknown provenance, e.g.
/// pre-existing errors in CleanML datasets before we re-derive them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    cells: Vec<Vec<Option<ErrorType>>>,
}

impl Provenance {
    /// Empty provenance for a frame with `ncols` columns of `nrows` rows.
    pub fn new(ncols: usize, nrows: usize) -> Self {
        Provenance { cells: vec![vec![None; nrows]; ncols] }
    }

    /// Build provenance sized for a frame.
    pub fn for_frame(df: &DataFrame) -> Self {
        Self::new(df.ncols(), df.nrows())
    }

    /// Record that `(col, row)` was polluted with `err`. Later pollution of
    /// the same cell overwrites the provenance (the last error dominates the
    /// observable value).
    pub fn record(&mut self, col: usize, row: usize, err: ErrorType) {
        self.cells[col][row] = Some(err);
    }

    /// Mark `(col, row)` clean.
    pub fn clear(&mut self, col: usize, row: usize) {
        self.cells[col][row] = None;
    }

    /// Provenance of a single cell.
    pub fn get(&self, col: usize, row: usize) -> Option<ErrorType> {
        self.cells[col][row]
    }

    /// Rows of `col` polluted with `err` (or with *any* error if `None`).
    pub fn rows_with(&self, col: usize, err: Option<ErrorType>) -> Vec<usize> {
        self.cells[col]
            .iter()
            .enumerate()
            .filter(|(_, e)| match err {
                Some(want) => **e == Some(want),
                None => e.is_some(),
            })
            .map(|(row, _)| row)
            .collect()
    }

    /// Distinct error types present in `col`.
    pub fn error_types_in(&self, col: usize) -> Vec<ErrorType> {
        let mut seen = Vec::new();
        for e in self.cells[col].iter().flatten() {
            if !seen.contains(e) {
                seen.push(*e);
            }
        }
        seen.sort_unstable();
        seen
    }

    /// Number of polluted cells in `col`.
    pub fn count(&self, col: usize) -> usize {
        self.cells[col].iter().filter(|e| e.is_some()).count()
    }

    /// The full provenance vector of a column (snapshot support).
    pub fn column(&self, col: usize) -> &[Option<ErrorType>] {
        &self.cells[col]
    }

    /// Replace the full provenance vector of a column (revert support).
    /// Panics on length mismatch.
    pub fn set_column(&mut self, col: usize, cells: Vec<Option<ErrorType>>) {
        assert_eq!(cells.len(), self.cells[col].len(), "provenance length mismatch");
        self.cells[col] = cells;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject;
    use comet_frame::{Cell, Column};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frame() -> DataFrame {
        let x = Column::numeric("x", (0..50).map(|i| i as f64).collect());
        let y = Column::categorical(
            "y",
            (0..50).map(|i| (i % 2) as u32).collect(),
            vec!["n".into(), "p".into()],
        )
        .unwrap();
        DataFrame::new(vec![x, y], Some("y")).unwrap()
    }

    #[test]
    fn dirty_rows_tracks_injection() {
        let mut df = frame();
        let gt = GroundTruth::new(df.clone());
        let mut rng = StdRng::seed_from_u64(1);
        inject(&mut df, 0, &[3, 7, 11], ErrorType::MissingValues, &mut rng).unwrap();
        assert_eq!(gt.dirty_rows(&df, 0).unwrap(), vec![3, 7, 11]);
        assert_eq!(gt.dirty_count(&df, 0).unwrap(), 3);
        assert_eq!(gt.total_dirty(&df).unwrap(), 3);
        assert!(!gt.is_fully_clean(&df).unwrap());
    }

    #[test]
    fn restore_brings_back_exact_values() {
        let mut df = frame();
        let gt = GroundTruth::new(df.clone());
        let mut rng = StdRng::seed_from_u64(2);
        inject(&mut df, 0, &[1, 2], ErrorType::GaussianNoise, &mut rng).unwrap();
        let restored = gt.restore(&mut df, 0, &[1, 2, 5]).unwrap();
        assert_eq!(restored, vec![1, 2]);
        assert!(gt.is_fully_clean(&df).unwrap());
        assert_eq!(df.get(1, 0).unwrap(), Cell::Num(1.0));
    }

    #[test]
    fn clean_step_prefers_flagged_rows() {
        let mut df = frame();
        let gt = GroundTruth::new(df.clone());
        let mut rng = StdRng::seed_from_u64(3);
        inject(&mut df, 0, &[0, 1, 2, 3, 4, 5], ErrorType::MissingValues, &mut rng).unwrap();
        let cleaned = gt.clean_step(&mut df, 0, 2, &[4, 5], &mut rng).unwrap();
        assert_eq!(cleaned, vec![4, 5]);
        assert_eq!(gt.dirty_rows(&df, 0).unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn clean_step_fills_from_random_dirty() {
        let mut df = frame();
        let gt = GroundTruth::new(df.clone());
        let mut rng = StdRng::seed_from_u64(4);
        inject(&mut df, 0, &[0, 1, 2, 3], ErrorType::MissingValues, &mut rng).unwrap();
        // Preferred row 10 is clean → ignored; 3 cells still get cleaned.
        let cleaned = gt.clean_step(&mut df, 0, 3, &[10], &mut rng).unwrap();
        assert_eq!(cleaned.len(), 3);
        assert_eq!(gt.dirty_count(&df, 0).unwrap(), 1);
    }

    #[test]
    fn clean_step_exhausts_dirt() {
        let mut df = frame();
        let gt = GroundTruth::new(df.clone());
        let mut rng = StdRng::seed_from_u64(5);
        inject(&mut df, 0, &[7], ErrorType::MissingValues, &mut rng).unwrap();
        let cleaned = gt.clean_step(&mut df, 0, 10, &[], &mut rng).unwrap();
        assert_eq!(cleaned, vec![7]);
        assert!(gt.is_fully_clean(&df).unwrap());
        // Cleaning a clean column is a no-op.
        let cleaned = gt.clean_step(&mut df, 0, 10, &[], &mut rng).unwrap();
        assert!(cleaned.is_empty());
    }

    #[test]
    fn label_dirt_counts_toward_total() {
        let mut df = frame();
        let gt = GroundTruth::new(df.clone());
        let mut rng = StdRng::seed_from_u64(6);
        inject(&mut df, 1, &[2, 4], ErrorType::LabelNoise, &mut rng).unwrap();
        assert_eq!(gt.total_dirty(&df).unwrap(), 2, "flipped labels are dirt");
        assert!(!gt.is_fully_clean(&df).unwrap());
        gt.restore(&mut df, 1, &[2, 4]).unwrap();
        assert!(gt.is_fully_clean(&df).unwrap());
    }

    #[test]
    fn provenance_record_query_clear() {
        let df = frame();
        let mut prov = Provenance::for_frame(&df);
        prov.record(0, 3, ErrorType::GaussianNoise);
        prov.record(0, 9, ErrorType::Scaling);
        prov.record(0, 9, ErrorType::MissingValues); // overwrite
        assert_eq!(prov.get(0, 3), Some(ErrorType::GaussianNoise));
        assert_eq!(prov.get(0, 9), Some(ErrorType::MissingValues));
        assert_eq!(prov.rows_with(0, Some(ErrorType::GaussianNoise)), vec![3]);
        assert_eq!(prov.rows_with(0, None), vec![3, 9]);
        assert_eq!(
            prov.error_types_in(0),
            vec![ErrorType::MissingValues, ErrorType::GaussianNoise]
        );
        assert_eq!(prov.count(0), 2);
        prov.clear(0, 3);
        assert_eq!(prov.count(0), 1);
        assert_eq!(prov.get(0, 3), None);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let df = frame();
        let gt = GroundTruth::new(df.clone());
        let small = df.take(&[0, 1]).unwrap();
        assert!(gt.dirty_rows(&small, 0).is_err());
    }
}
