//! Random-sampling utilities shared by the injectors.

use rand::Rng;

/// Sample a standard-normal variate via the Box–Muller transform.
///
/// Implemented in-house so the workspace needs only the `rand` core crate
/// (no `rand_distr`).
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Rejection-free polar-less form; u1 ∈ (0, 1] avoids ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_standard_normal() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = sample_normal(&mut rng);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn tail_mass_is_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let beyond_2 = (0..n).filter(|_| sample_normal(&mut rng).abs() > 2.0).count();
        let frac = beyond_2 as f64 / n as f64;
        // P(|Z| > 2) ≈ 0.0455.
        assert!((frac - 0.0455).abs() < 0.005, "tail fraction {frac}");
    }

    #[test]
    fn values_are_finite() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(sample_normal(&mut rng).is_finite());
        }
    }
}
