//! # comet-jenga — data error injection framework
//!
//! A from-scratch reimplementation of the role JENGA (Schelter et al., EDBT
//! 2021) plays in the COMET paper: controlled injection of realistic data
//! errors into tabular datasets, plus the bookkeeping COMET's simulated
//! cleaning study needs.
//!
//! Components:
//!
//! * [`ErrorType`] — the four error types of paper §3.4 (missing values,
//!   Gaussian noise, categorical shift, scaling),
//! * [`inject`] / [`sample_rows`] — pollution primitives that corrupt chosen
//!   cells of one feature and report exactly what changed,
//! * [`PrePollutionPlan`] — the paper's §4.1 *pre-pollution settings*:
//!   per-feature pollution levels drawn from an exponential distribution,
//!   in a single-error or multi-error scenario, applied with independent
//!   randomness to train and test splits,
//! * [`GroundTruth`] — the clean reference used to *simulate* a Cleaner:
//!   which cells are dirty, restore `k` of them, residual-dirt queries,
//! * [`Provenance`] — per-cell record of which error type polluted a cell,
//!   required for the multi-error scenario where cleaning costs differ per
//!   error type (§4.2).

mod error_type;
mod inject;
mod plan;
mod tracker;
mod util;

pub use error_type::ErrorType;
pub use inject::{inject, sample_rows, InjectionRecord};
pub use plan::{PrePollutionPlan, Scenario};
pub use tracker::{GroundTruth, Provenance};
pub use util::sample_normal;
