//! The four error types of paper §3.4.

use comet_frame::ColumnKind;
use std::fmt;

/// A data error type COMET can pollute with and recommend cleaning for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ErrorType {
    /// Empty / placeholder entries (§3.4 "Missing values").
    MissingValues,
    /// Additive zero-mean Gaussian noise with σ ∈ \[1, 5\] (§3.4).
    GaussianNoise,
    /// Category swapped for a different category of the same feature (§3.4).
    CategoricalShift,
    /// Value multiplied by 10, 100, or 1000 — unit-conversion errors (§3.4).
    Scaling,
}

impl ErrorType {
    /// All error types, in the paper's presentation order.
    pub const ALL: [ErrorType; 4] = [
        ErrorType::MissingValues,
        ErrorType::GaussianNoise,
        ErrorType::CategoricalShift,
        ErrorType::Scaling,
    ];

    /// Whether this error type can occur in a column of the given kind.
    /// Gaussian noise and scaling need numbers; categorical shift needs
    /// categories; missing values can hit anything.
    pub fn applicable(self, kind: ColumnKind) -> bool {
        match self {
            ErrorType::MissingValues => true,
            ErrorType::GaussianNoise | ErrorType::Scaling => kind == ColumnKind::Numeric,
            ErrorType::CategoricalShift => kind == ColumnKind::Categorical,
        }
    }

    /// Error types applicable to the given column kind.
    pub fn applicable_to(kind: ColumnKind) -> Vec<ErrorType> {
        Self::ALL.into_iter().filter(|e| e.applicable(kind)).collect()
    }

    /// The paper's abbreviation (MV, GN, CS, S) as used in Figures 10–12.
    pub fn abbrev(self) -> &'static str {
        match self {
            ErrorType::MissingValues => "MV",
            ErrorType::GaussianNoise => "GN",
            ErrorType::CategoricalShift => "CS",
            ErrorType::Scaling => "S",
        }
    }

    /// Parse an abbreviation or full name (case-insensitive).
    pub fn parse(s: &str) -> Option<ErrorType> {
        match s.to_ascii_lowercase().as_str() {
            "mv" | "missing" | "missing_values" | "missing-values" => {
                Some(ErrorType::MissingValues)
            }
            "gn" | "gaussian" | "gaussian_noise" | "gaussian-noise" | "noise" => {
                Some(ErrorType::GaussianNoise)
            }
            "cs" | "categorical" | "categorical_shift" | "categorical-shift" | "shift" => {
                Some(ErrorType::CategoricalShift)
            }
            "s" | "scaling" | "scale" => Some(ErrorType::Scaling),
            _ => None,
        }
    }
}

impl fmt::Display for ErrorType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorType::MissingValues => "missing values",
            ErrorType::GaussianNoise => "Gaussian noise",
            ErrorType::CategoricalShift => "categorical shift",
            ErrorType::Scaling => "scaling",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applicability_matrix() {
        use ColumnKind::*;
        assert!(ErrorType::MissingValues.applicable(Numeric));
        assert!(ErrorType::MissingValues.applicable(Categorical));
        assert!(ErrorType::GaussianNoise.applicable(Numeric));
        assert!(!ErrorType::GaussianNoise.applicable(Categorical));
        assert!(ErrorType::Scaling.applicable(Numeric));
        assert!(!ErrorType::Scaling.applicable(Categorical));
        assert!(!ErrorType::CategoricalShift.applicable(Numeric));
        assert!(ErrorType::CategoricalShift.applicable(Categorical));
    }

    #[test]
    fn applicable_to_lists() {
        assert_eq!(
            ErrorType::applicable_to(ColumnKind::Numeric),
            vec![ErrorType::MissingValues, ErrorType::GaussianNoise, ErrorType::Scaling]
        );
        assert_eq!(
            ErrorType::applicable_to(ColumnKind::Categorical),
            vec![ErrorType::MissingValues, ErrorType::CategoricalShift]
        );
    }

    #[test]
    fn abbreviations_roundtrip_through_parse() {
        for e in ErrorType::ALL {
            assert_eq!(ErrorType::parse(e.abbrev()), Some(e));
        }
        assert_eq!(ErrorType::parse("gaussian_noise"), Some(ErrorType::GaussianNoise));
        assert_eq!(ErrorType::parse("nonsense"), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(ErrorType::MissingValues.to_string(), "missing values");
        assert_eq!(ErrorType::Scaling.to_string(), "scaling");
    }
}
