//! The four error types of paper §3.4, plus the REIN-taxonomy extension
//! families (outliers, swapped fields, near-duplicate rows, label noise).

use comet_frame::ColumnKind;
use std::fmt;

/// A data error type COMET can pollute with and recommend cleaning for.
///
/// The first four variants are the paper's (§3.4); the rest follow REIN's
/// error taxonomy and exist so detection-seeded sessions can face the error
/// families real dirty data actually carries. Variant order is part of the
/// determinism contract: discriminants feed per-candidate seeds and
/// checkpoint fingerprints, so new variants are only ever appended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ErrorType {
    /// Empty / placeholder entries (§3.4 "Missing values").
    MissingValues,
    /// Additive zero-mean Gaussian noise with σ ∈ \[1, 5\] (§3.4).
    GaussianNoise,
    /// Category swapped for a different category of the same feature (§3.4).
    CategoricalShift,
    /// Value multiplied by 10, 100, or 1000 — unit-conversion errors (§3.4).
    Scaling,
    /// Value replaced by an extreme point far outside the column's bulk
    /// (REIN "outliers": sensor glitches, fat-finger entries).
    Outliers,
    /// Cell overwritten with the same row's value from a *different* numeric
    /// column — misaligned/shifted fields during ingestion (REIN).
    SwappedFields,
    /// Cell overwritten with a near-copy of another row's value in the same
    /// column; injected across all features of a row it makes that row a
    /// near-duplicate of its donor (REIN "duplicates").
    NearDuplicateRows,
    /// Label flipped to a different class — annotation noise (REIN). The
    /// only error type allowed to touch the label column, and the only
    /// column it may touch.
    LabelNoise,
}

impl ErrorType {
    /// The paper's error types, in its presentation order.
    pub const ALL: [ErrorType; 4] = [
        ErrorType::MissingValues,
        ErrorType::GaussianNoise,
        ErrorType::CategoricalShift,
        ErrorType::Scaling,
    ];

    /// Every error type, paper families first, then the REIN extension.
    pub const EXTENDED: [ErrorType; 8] = [
        ErrorType::MissingValues,
        ErrorType::GaussianNoise,
        ErrorType::CategoricalShift,
        ErrorType::Scaling,
        ErrorType::Outliers,
        ErrorType::SwappedFields,
        ErrorType::NearDuplicateRows,
        ErrorType::LabelNoise,
    ];

    /// Whether this error type can occur in a column of the given kind.
    /// Gaussian noise, scaling, outliers, and swapped fields need numbers;
    /// categorical shift and label noise need categories; missing values
    /// and near-duplicates can hit anything.
    pub fn applicable(self, kind: ColumnKind) -> bool {
        match self {
            ErrorType::MissingValues | ErrorType::NearDuplicateRows => true,
            ErrorType::GaussianNoise
            | ErrorType::Scaling
            | ErrorType::Outliers
            | ErrorType::SwappedFields => kind == ColumnKind::Numeric,
            ErrorType::CategoricalShift | ErrorType::LabelNoise => kind == ColumnKind::Categorical,
        }
    }

    /// True for the one error family that targets the label column (every
    /// other family is barred from it, per paper §4.1).
    pub fn targets_label(self) -> bool {
        self == ErrorType::LabelNoise
    }

    /// Paper error types applicable to the given column kind (the paper's
    /// multi-error scenario draws from this set).
    pub fn applicable_to(kind: ColumnKind) -> Vec<ErrorType> {
        Self::ALL.into_iter().filter(|e| e.applicable(kind)).collect()
    }

    /// The abbreviation used in figures and traces (paper: MV, GN, CS, S;
    /// extension: O, SF, ND, LN).
    pub fn abbrev(self) -> &'static str {
        match self {
            ErrorType::MissingValues => "MV",
            ErrorType::GaussianNoise => "GN",
            ErrorType::CategoricalShift => "CS",
            ErrorType::Scaling => "S",
            ErrorType::Outliers => "O",
            ErrorType::SwappedFields => "SF",
            ErrorType::NearDuplicateRows => "ND",
            ErrorType::LabelNoise => "LN",
        }
    }

    /// Parse an abbreviation or full name (case-insensitive).
    pub fn parse(s: &str) -> Option<ErrorType> {
        match s.to_ascii_lowercase().as_str() {
            "mv" | "missing" | "missing_values" | "missing-values" => {
                Some(ErrorType::MissingValues)
            }
            "gn" | "gaussian" | "gaussian_noise" | "gaussian-noise" | "noise" => {
                Some(ErrorType::GaussianNoise)
            }
            "cs" | "categorical" | "categorical_shift" | "categorical-shift" | "shift" => {
                Some(ErrorType::CategoricalShift)
            }
            "s" | "scaling" | "scale" => Some(ErrorType::Scaling),
            "o" | "outliers" | "outlier" => Some(ErrorType::Outliers),
            "sf" | "swapped" | "swapped_fields" | "swapped-fields" => {
                Some(ErrorType::SwappedFields)
            }
            "nd" | "duplicates" | "near_duplicates" | "near-duplicates" | "near_duplicate_rows" => {
                Some(ErrorType::NearDuplicateRows)
            }
            "ln" | "label" | "label_noise" | "label-noise" => Some(ErrorType::LabelNoise),
            _ => None,
        }
    }
}

impl fmt::Display for ErrorType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorType::MissingValues => "missing values",
            ErrorType::GaussianNoise => "Gaussian noise",
            ErrorType::CategoricalShift => "categorical shift",
            ErrorType::Scaling => "scaling",
            ErrorType::Outliers => "outliers",
            ErrorType::SwappedFields => "swapped fields",
            ErrorType::NearDuplicateRows => "near-duplicate rows",
            ErrorType::LabelNoise => "label noise",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applicability_matrix() {
        use ColumnKind::*;
        assert!(ErrorType::MissingValues.applicable(Numeric));
        assert!(ErrorType::MissingValues.applicable(Categorical));
        assert!(ErrorType::GaussianNoise.applicable(Numeric));
        assert!(!ErrorType::GaussianNoise.applicable(Categorical));
        assert!(ErrorType::Scaling.applicable(Numeric));
        assert!(!ErrorType::Scaling.applicable(Categorical));
        assert!(!ErrorType::CategoricalShift.applicable(Numeric));
        assert!(ErrorType::CategoricalShift.applicable(Categorical));
    }

    #[test]
    fn applicable_to_lists() {
        assert_eq!(
            ErrorType::applicable_to(ColumnKind::Numeric),
            vec![ErrorType::MissingValues, ErrorType::GaussianNoise, ErrorType::Scaling]
        );
        assert_eq!(
            ErrorType::applicable_to(ColumnKind::Categorical),
            vec![ErrorType::MissingValues, ErrorType::CategoricalShift]
        );
    }

    #[test]
    fn abbreviations_roundtrip_through_parse() {
        for e in ErrorType::EXTENDED {
            assert_eq!(ErrorType::parse(e.abbrev()), Some(e));
        }
        assert_eq!(ErrorType::parse("gaussian_noise"), Some(ErrorType::GaussianNoise));
        assert_eq!(ErrorType::parse("nonsense"), None);
    }

    #[test]
    fn extended_families_applicability() {
        use ColumnKind::*;
        assert!(ErrorType::Outliers.applicable(Numeric));
        assert!(!ErrorType::Outliers.applicable(Categorical));
        assert!(ErrorType::SwappedFields.applicable(Numeric));
        assert!(!ErrorType::SwappedFields.applicable(Categorical));
        assert!(ErrorType::NearDuplicateRows.applicable(Numeric));
        assert!(ErrorType::NearDuplicateRows.applicable(Categorical));
        assert!(!ErrorType::LabelNoise.applicable(Numeric));
        assert!(ErrorType::LabelNoise.applicable(Categorical));
        // The paper's multi-error scenario never draws extension families.
        assert!(!ErrorType::applicable_to(Numeric).contains(&ErrorType::Outliers));
        // Only label noise targets labels.
        for e in ErrorType::EXTENDED {
            assert_eq!(e.targets_label(), e == ErrorType::LabelNoise, "{e}");
        }
    }

    #[test]
    fn variant_order_is_appended_only() {
        // Discriminants feed candidate seeds and checkpoint fingerprints;
        // the paper's four must keep their positions.
        let d = |e: ErrorType| e as u8;
        assert_eq!(d(ErrorType::MissingValues), 0);
        assert_eq!(d(ErrorType::GaussianNoise), 1);
        assert_eq!(d(ErrorType::CategoricalShift), 2);
        assert_eq!(d(ErrorType::Scaling), 3);
        assert_eq!(d(ErrorType::Outliers), 4);
        assert_eq!(d(ErrorType::SwappedFields), 5);
        assert_eq!(d(ErrorType::NearDuplicateRows), 6);
        assert_eq!(d(ErrorType::LabelNoise), 7);
    }

    #[test]
    fn display_names() {
        assert_eq!(ErrorType::MissingValues.to_string(), "missing values");
        assert_eq!(ErrorType::Scaling.to_string(), "scaling");
    }
}
