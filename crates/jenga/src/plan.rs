//! Pre-pollution settings (paper §4.1).
//!
//! To establish a ground truth on datasets without paired dirty/clean
//! versions, the paper *pre-pollutes* clean data: each feature receives a
//! pollution level sampled from an exponential distribution ("to ensure a
//! wide-ranging representation of pollution level distribution"), under one
//! of two scenarios — a single error type for the whole dataset, or a
//! random applicable error type per pollution step of each feature.

use crate::{inject, sample_rows, ErrorType, Provenance};
use comet_frame::{DataFrame, FrameError, Result};
use rand::seq::SliceRandom;
use rand::Rng;

/// Which error types the pre-pollution uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// One error type across all (applicable) features — §5.2/§5.3 setting.
    SingleError(ErrorType),
    /// A random applicable error type per pollution step — §5.1 setting.
    MultiError,
}

/// A sampled pre-pollution setting: per-feature target pollution levels.
#[derive(Debug, Clone, PartialEq)]
pub struct PrePollutionPlan {
    /// The scenario this plan was sampled for.
    pub scenario: Scenario,
    /// `(feature column index, pollution level in [0, 1])`, one entry per
    /// feature the scenario can pollute.
    pub levels: Vec<(usize, f64)>,
}

impl PrePollutionPlan {
    /// Sample a plan for `df`. Pollution levels are `Exp(mean_level)`
    /// clamped to `[0, max_level]`; features the scenario's error types
    /// cannot apply to are skipped.
    pub fn sample<R: Rng + ?Sized>(
        df: &DataFrame,
        scenario: Scenario,
        mean_level: f64,
        max_level: f64,
        rng: &mut R,
    ) -> Result<Self> {
        if !(0.0..=1.0).contains(&max_level) || mean_level <= 0.0 {
            return Err(FrameError::InvalidArgument(format!(
                "mean_level {mean_level} / max_level {max_level} out of range"
            )));
        }
        let mut levels = Vec::new();
        for col in df.feature_indices() {
            let kind = df.column(col)?.kind();
            let applicable = match scenario {
                Scenario::SingleError(err) => err.applicable(kind),
                Scenario::MultiError => !ErrorType::applicable_to(kind).is_empty(),
            };
            if !applicable {
                continue;
            }
            // Inverse-CDF sampling of Exp(1/mean): −mean·ln(U).
            let u: f64 = 1.0 - rng.gen::<f64>();
            let level = (-mean_level * u.ln()).min(max_level);
            levels.push((col, level));
        }
        Ok(PrePollutionPlan { scenario, levels })
    }

    /// Construct a plan with explicit levels (for tests and CleanML-style
    /// datasets with known dirt).
    pub fn explicit(scenario: Scenario, levels: Vec<(usize, f64)>) -> Self {
        PrePollutionPlan { scenario, levels }
    }

    /// Apply the plan to `df`, recording per-cell provenance.
    ///
    /// * Single-error: one injection of `round(level · nrows)` cells.
    /// * Multi-error: the level is consumed in steps of `step_frac` of the
    ///   rows; each step injects a uniformly chosen error type applicable to
    ///   the feature (§4.1: "we randomly select an error type for each
    ///   pollution step of a feature during pre-pollution").
    pub fn apply<R: Rng + ?Sized>(
        &self,
        df: &mut DataFrame,
        step_frac: f64,
        provenance: &mut Provenance,
        rng: &mut R,
    ) -> Result<()> {
        if !(step_frac > 0.0 && step_frac <= 1.0) {
            return Err(FrameError::InvalidArgument(format!(
                "step_frac must be in (0,1], got {step_frac}"
            )));
        }
        let n = df.nrows();
        for (col, level) in self.effective_levels() {
            // A positive level must pollute at least one cell: plain
            // rounding yields 0 at small levels/row counts, producing plan
            // steps that pollute nothing yet consume a probe.
            let mut cells = (level * n as f64).round() as usize;
            if cells == 0 {
                if level <= 0.0 || n == 0 {
                    continue;
                }
                cells = 1;
            }
            match self.scenario {
                Scenario::SingleError(err) => {
                    let rows = sample_rows(n, cells, rng);
                    let rec = inject(df, col, &rows, err, rng)?;
                    for (row, _) in rec.changed {
                        provenance.record(col, row, err);
                    }
                }
                Scenario::MultiError => {
                    let kind = df.column(col)?.kind();
                    let candidates = ErrorType::applicable_to(kind);
                    let step = ((step_frac * n as f64).round() as usize).max(1);
                    let mut remaining = cells;
                    while remaining > 0 {
                        let batch = remaining.min(step);
                        let err = *candidates.choose(rng).expect("non-empty candidates");
                        let rows = sample_rows(n, batch, rng);
                        let rec = inject(df, col, &rows, err, rng)?;
                        for (row, _) in rec.changed {
                            provenance.record(col, row, err);
                        }
                        remaining -= batch;
                    }
                }
            }
        }
        Ok(())
    }

    /// The plan's levels with collided column entries deduplicated: when a
    /// column appears more than once (an [`explicit`](Self::explicit) plan
    /// built from overlapping sources), the entries merge into one at the
    /// maximum level, in first-appearance order — applying the same target
    /// twice would overshoot the requested pollution.
    pub fn effective_levels(&self) -> Vec<(usize, f64)> {
        let mut out: Vec<(usize, f64)> = Vec::with_capacity(self.levels.len());
        for &(col, level) in &self.levels {
            match out.iter_mut().find(|(c, _)| *c == col) {
                Some((_, existing)) => *existing = existing.max(level),
                None => out.push((col, level)),
            }
        }
        out
    }

    /// Mean pollution level across planned features (0 if none).
    pub fn mean_level(&self) -> f64 {
        if self.levels.is_empty() {
            return 0.0;
        }
        self.levels.iter().map(|&(_, l)| l).sum::<f64>() / self.levels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_frame::{Column, ColumnKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frame() -> DataFrame {
        let x = Column::numeric("x", (0..200).map(|i| i as f64).collect());
        let z = Column::numeric("z", (0..200).map(|i| (i * 2) as f64).collect());
        let c = Column::categorical(
            "c",
            (0..200).map(|i| (i % 4) as u32).collect(),
            vec!["a".into(), "b".into(), "d".into(), "e".into()],
        )
        .unwrap();
        let y = Column::categorical(
            "y",
            (0..200).map(|i| (i % 2) as u32).collect(),
            vec!["n".into(), "p".into()],
        )
        .unwrap();
        DataFrame::new(vec![x, z, c, y], Some("y")).unwrap()
    }

    #[test]
    fn sample_skips_inapplicable_features() {
        let df = frame();
        let mut rng = StdRng::seed_from_u64(1);
        let plan = PrePollutionPlan::sample(
            &df,
            Scenario::SingleError(ErrorType::GaussianNoise),
            0.1,
            0.5,
            &mut rng,
        )
        .unwrap();
        // Only the two numeric features qualify for Gaussian noise.
        let cols: Vec<usize> = plan.levels.iter().map(|&(c, _)| c).collect();
        assert_eq!(cols, vec![0, 1]);
        for &(_, level) in &plan.levels {
            assert!((0.0..=0.5).contains(&level));
        }
    }

    #[test]
    fn multi_error_covers_all_features() {
        let df = frame();
        let mut rng = StdRng::seed_from_u64(2);
        let plan = PrePollutionPlan::sample(&df, Scenario::MultiError, 0.1, 0.5, &mut rng).unwrap();
        assert_eq!(plan.levels.len(), 3); // label excluded
    }

    #[test]
    fn apply_single_error_hits_requested_fraction() {
        let mut df = frame();
        let gt = crate::GroundTruth::new(df.clone());
        let mut prov = Provenance::for_frame(&df);
        let mut rng = StdRng::seed_from_u64(3);
        let plan = PrePollutionPlan::explicit(
            Scenario::SingleError(ErrorType::MissingValues),
            vec![(0, 0.10), (2, 0.25)],
        );
        plan.apply(&mut df, 0.01, &mut prov, &mut rng).unwrap();
        assert_eq!(gt.dirty_count(&df, 0).unwrap(), 20);
        assert_eq!(gt.dirty_count(&df, 2).unwrap(), 50);
        assert_eq!(gt.dirty_count(&df, 1).unwrap(), 0);
        assert_eq!(prov.count(0), 20);
        assert_eq!(prov.rows_with(0, Some(ErrorType::MissingValues)).len(), 20);
    }

    #[test]
    fn apply_multi_error_uses_applicable_types_only() {
        let mut df = frame();
        let mut prov = Provenance::for_frame(&df);
        let mut rng = StdRng::seed_from_u64(4);
        let plan = PrePollutionPlan::explicit(Scenario::MultiError, vec![(0, 0.30), (2, 0.30)]);
        plan.apply(&mut df, 0.01, &mut prov, &mut rng).unwrap();
        // Numeric column: never categorical shift.
        for e in prov.error_types_in(0) {
            assert!(e.applicable(ColumnKind::Numeric));
        }
        // Categorical column: only MV / CS.
        for e in prov.error_types_in(2) {
            assert!(e.applicable(ColumnKind::Categorical));
        }
        assert!(prov.error_types_in(0).len() >= 2, "multi-error should mix types");
    }

    #[test]
    fn overlap_keeps_effective_level_close() {
        // Because steps sample rows independently, some pollution lands on
        // already-dirty cells; the *effective* dirt is slightly below the
        // target but must stay in the right ballpark (paper §3.1 argument).
        let mut df = frame();
        let gt = crate::GroundTruth::new(df.clone());
        let mut prov = Provenance::for_frame(&df);
        let mut rng = StdRng::seed_from_u64(5);
        let plan = PrePollutionPlan::explicit(Scenario::MultiError, vec![(0, 0.40)]);
        plan.apply(&mut df, 0.05, &mut prov, &mut rng).unwrap();
        let dirty = gt.dirty_count(&df, 0).unwrap();
        assert!(dirty > 50 && dirty <= 80, "dirty {dirty} for target 80");
    }

    #[test]
    fn zero_level_is_noop() {
        let mut df = frame();
        let clean = df.clone();
        let mut prov = Provenance::for_frame(&df);
        let mut rng = StdRng::seed_from_u64(6);
        let plan = PrePollutionPlan::explicit(
            Scenario::SingleError(ErrorType::MissingValues),
            vec![(0, 0.0)],
        );
        plan.apply(&mut df, 0.01, &mut prov, &mut rng).unwrap();
        assert_eq!(df, clean);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let df = frame();
        let mut rng = StdRng::seed_from_u64(7);
        assert!(PrePollutionPlan::sample(&df, Scenario::MultiError, 0.0, 0.5, &mut rng).is_err());
        assert!(PrePollutionPlan::sample(&df, Scenario::MultiError, 0.1, 1.5, &mut rng).is_err());
        let plan = PrePollutionPlan::explicit(Scenario::MultiError, vec![(0, 0.1)]);
        let mut prov = Provenance::for_frame(&df);
        let mut df2 = df.clone();
        assert!(plan.apply(&mut df2, 0.0, &mut prov, &mut rng).is_err());
    }

    #[test]
    fn tiny_positive_level_pollutes_at_least_one_cell() {
        // Regression: round(0.002 * 200) == 0 used to make this plan step a
        // silent no-op that still consumed a probe.
        let mut df = frame();
        let gt = crate::GroundTruth::new(df.clone());
        let mut prov = Provenance::for_frame(&df);
        let mut rng = StdRng::seed_from_u64(9);
        let plan = PrePollutionPlan::explicit(
            Scenario::SingleError(ErrorType::MissingValues),
            vec![(0, 0.002), (1, 0.0001)],
        );
        plan.apply(&mut df, 0.01, &mut prov, &mut rng).unwrap();
        assert_eq!(gt.dirty_count(&df, 0).unwrap(), 1);
        assert_eq!(gt.dirty_count(&df, 1).unwrap(), 1);
        // Level 0 still means untouched (zero_level_is_noop covers it too).
        assert_eq!(gt.dirty_count(&df, 2).unwrap(), 0);
    }

    #[test]
    fn collided_column_entries_are_deduplicated() {
        let plan = PrePollutionPlan::explicit(
            Scenario::SingleError(ErrorType::MissingValues),
            vec![(0, 0.10), (2, 0.25), (0, 0.05), (0, 0.20)],
        );
        assert_eq!(plan.effective_levels(), vec![(0, 0.20), (2, 0.25)]);

        // Applying must use the merged level, not the sum of collisions.
        let mut df = frame();
        let gt = crate::GroundTruth::new(df.clone());
        let mut prov = Provenance::for_frame(&df);
        let mut rng = StdRng::seed_from_u64(10);
        plan.apply(&mut df, 0.01, &mut prov, &mut rng).unwrap();
        assert_eq!(gt.dirty_count(&df, 0).unwrap(), 40); // 0.20 × 200, once
        assert_eq!(gt.dirty_count(&df, 2).unwrap(), 50);
    }

    #[test]
    fn mean_level_helper() {
        let plan = PrePollutionPlan::explicit(Scenario::MultiError, vec![(0, 0.2), (1, 0.4)]);
        assert!((plan.mean_level() - 0.3).abs() < 1e-12);
        let empty = PrePollutionPlan::explicit(Scenario::MultiError, vec![]);
        assert_eq!(empty.mean_level(), 0.0);
    }

    #[test]
    fn exponential_levels_are_skewed() {
        // With mean 0.1 and cap 1.0, most levels are small but a few exceed
        // the mean — a sanity check of the exponential shape.
        let df = frame();
        let mut rng = StdRng::seed_from_u64(8);
        let mut below = 0;
        let mut total = 0;
        for _ in 0..200 {
            let plan =
                PrePollutionPlan::sample(&df, Scenario::MultiError, 0.1, 1.0, &mut rng).unwrap();
            for &(_, l) in &plan.levels {
                total += 1;
                if l < 0.1 {
                    below += 1;
                }
            }
        }
        let frac = below as f64 / total as f64;
        // P(Exp(mean=0.1) < 0.1) = 1 − e⁻¹ ≈ 0.632.
        assert!((frac - 0.632).abs() < 0.05, "fraction below mean: {frac}");
    }
}
