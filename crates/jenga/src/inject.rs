//! Pollution primitives: corrupt chosen cells of one feature column.

use crate::util::sample_normal;
use crate::ErrorType;
use comet_frame::{Cell, DataFrame, FrameError, Result};
use rand::seq::SliceRandom;
use rand::Rng;

/// What one [`inject`] call changed: for every touched row, the previous
/// cell value. Rows whose value was left identical (e.g. a categorical shift
/// in a single-category column has nowhere to shift to) are *not* listed.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectionRecord {
    /// Column that was polluted.
    pub col: usize,
    /// Error type injected.
    pub error_type: ErrorType,
    /// `(row, previous_cell)` for every changed cell.
    pub changed: Vec<(usize, Cell)>,
}

impl InjectionRecord {
    /// Rows that were actually modified.
    pub fn rows(&self) -> Vec<usize> {
        self.changed.iter().map(|&(r, _)| r).collect()
    }

    /// Undo this injection (restores previous cell values).
    pub fn revert(&self, df: &mut DataFrame) -> Result<()> {
        for &(row, prev) in &self.changed {
            df.set(row, self.col, prev)?;
        }
        Ok(())
    }
}

/// Sample `k` distinct row indices from `0..n` uniformly (partial
/// Fisher–Yates). `k` is clamped to `n`.
pub fn sample_rows<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    let k = k.min(n);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

/// Inject `error_type` into the given `rows` of column `col`.
///
/// Follows paper §3.4 for the original families:
/// * **Missing values** — replace with a placeholder (our explicit missing),
/// * **Gaussian noise** — add `N(0, σ²)` with σ drawn uniformly from \[1, 5\]
///   once per call,
/// * **Categorical shift** — swap the category for a uniformly chosen
///   *different* category of the same column,
/// * **Scaling** — multiply by 10, 100, or 1000 (chosen per row),
///
/// and REIN's taxonomy for the extension families:
/// * **Outliers** — replace with `mean ± kσ`, `k ∈ [6, 12]` per row,
/// * **Swapped fields** — overwrite with the same row's value from the next
///   numeric feature column,
/// * **Near-duplicate rows** — overwrite with a ±1 %-jittered copy of the
///   next row's value in the same column,
/// * **Label noise** — flip the label to a different class (the only error
///   type allowed on the label column, and barred from features).
///
/// Cells that are already missing are skipped for value-modifying error
/// types (there is no value to perturb); `MissingValues` skips cells that
/// are already missing (no change). The returned record lists exactly the
/// cells that changed, enabling precise reverts.
pub fn inject<R: Rng + ?Sized>(
    df: &mut DataFrame,
    col: usize,
    rows: &[usize],
    error_type: ErrorType,
    rng: &mut R,
) -> Result<InjectionRecord> {
    let column = df.column(col)?;
    let kind = column.kind();
    if !error_type.applicable(kind) {
        return Err(FrameError::InvalidArgument(format!(
            "error type {error_type} is not applicable to {} column {:?}",
            kind.name(),
            column.name()
        )));
    }
    let is_label = df.label_index().ok() == Some(col);
    if is_label && !error_type.targets_label() {
        return Err(FrameError::InvalidArgument(
            "labels are never polluted (paper §4.1); only label noise targets them".into(),
        ));
    }
    if !is_label && error_type.targets_label() {
        return Err(FrameError::InvalidArgument(
            "label noise targets the label column, not features".into(),
        ));
    }

    let mut changed = Vec::with_capacity(rows.len());
    match error_type {
        ErrorType::MissingValues => {
            for &row in rows {
                let prev = df.get(row, col)?;
                if prev.is_missing() {
                    continue;
                }
                df.set(row, col, Cell::Missing)?;
                changed.push((row, prev));
            }
        }
        ErrorType::GaussianNoise => {
            let sigma = rng.gen_range(1.0..=5.0);
            for &row in rows {
                let prev = df.get(row, col)?;
                let Some(v) = prev.as_num() else { continue };
                let noisy = v + sigma * sample_normal(rng);
                df.set(row, col, Cell::Num(noisy))?;
                changed.push((row, prev));
            }
        }
        ErrorType::Scaling => {
            const FACTORS: [f64; 3] = [10.0, 100.0, 1000.0];
            for &row in rows {
                let prev = df.get(row, col)?;
                let Some(v) = prev.as_num() else { continue };
                let factor = *FACTORS.choose(rng).expect("non-empty");
                df.set(row, col, Cell::Num(v * factor))?;
                changed.push((row, prev));
            }
        }
        ErrorType::CategoricalShift | ErrorType::LabelNoise => {
            // Label noise is a categorical shift on the label column:
            // annotation errors swap the class for a different one.
            let cardinality = df.column(col)?.cardinality() as u32;
            if cardinality < 2 {
                // Nothing to shift to; report zero changes.
                return Ok(InjectionRecord { col, error_type, changed });
            }
            for &row in rows {
                let prev = df.get(row, col)?;
                let Some(code) = prev.as_cat() else { continue };
                // Uniform over the other categories.
                let mut new_code = rng.gen_range(0..cardinality - 1);
                if new_code >= code {
                    new_code += 1;
                }
                df.set(row, col, Cell::Cat(new_code))?;
                changed.push((row, prev));
            }
        }
        ErrorType::Outliers => {
            // Extreme points relative to the column's own bulk: mean ± kσ
            // with k ∈ [6, 12] per row. A constant column still yields a
            // visible outlier through the |mean|-based fallback spread.
            let (mean, std) = match df.column(col)?.summary() {
                comet_frame::ColumnSummary::Numeric(s) if s.count > 0 => (s.mean, s.std),
                _ => (0.0, 0.0),
            };
            let spread = if std > 0.0 {
                std
            } else if mean.abs() > 1.0 {
                mean.abs()
            } else {
                1.0
            };
            for &row in rows {
                let prev = df.get(row, col)?;
                if prev.as_num().is_none() {
                    continue;
                }
                let k = rng.gen_range(6.0..=12.0);
                let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                df.set(row, col, Cell::Num(mean + sign * k * spread))?;
                changed.push((row, prev));
            }
        }
        ErrorType::SwappedFields => {
            // Misaligned ingestion: the cell receives the same row's value
            // from the next numeric feature column (cyclically). With no
            // partner column there is nothing to swap from.
            let numeric: Vec<usize> = df
                .feature_indices()
                .into_iter()
                .filter(|&c| {
                    c != col
                        && df.column(c).map(|x| x.kind() == comet_frame::ColumnKind::Numeric)
                            == Ok(true)
                })
                .collect();
            let Some(&partner) = numeric.iter().find(|&&c| c > col).or_else(|| numeric.first())
            else {
                return Ok(InjectionRecord { col, error_type, changed });
            };
            for &row in rows {
                let prev = df.get(row, col)?;
                if prev.as_num().is_none() {
                    continue;
                }
                let Some(v) = df.get(row, partner)?.as_num() else { continue };
                if prev.as_num() == Some(v) {
                    continue;
                }
                df.set(row, col, Cell::Num(v))?;
                changed.push((row, prev));
            }
        }
        ErrorType::NearDuplicateRows => {
            // The cell becomes a near-copy of the next row's value. The
            // donor is a fixed function of the row, so injecting the same
            // row set across every feature column turns those rows into
            // near-duplicates of their donor rows — the whole-row shape the
            // banding detector hunts.
            let n = df.nrows();
            if n < 2 {
                return Ok(InjectionRecord { col, error_type, changed });
            }
            for &row in rows {
                let donor = (row + 1) % n;
                let prev = df.get(row, col)?;
                if prev.is_missing() {
                    continue;
                }
                let new = match df.get(donor, col)? {
                    Cell::Num(v) => {
                        // ±1% jitter: near-duplicate, not exact.
                        let jitter = 1.0 + 0.01 * (2.0 * rng.gen::<f64>() - 1.0);
                        Cell::Num(v * jitter)
                    }
                    Cell::Cat(c) => Cell::Cat(c),
                    Cell::Missing => continue,
                };
                if new == prev {
                    continue;
                }
                df.set(row, col, new)?;
                changed.push((row, prev));
            }
        }
    }
    Ok(InjectionRecord { col, error_type, changed })
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_frame::Column;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frame() -> DataFrame {
        let x = Column::numeric("x", (0..100).map(|i| i as f64).collect());
        let c = Column::categorical(
            "c",
            (0..100).map(|i| (i % 3) as u32).collect(),
            vec!["a".into(), "b".into(), "d".into()],
        )
        .unwrap();
        let y = Column::categorical(
            "y",
            (0..100).map(|i| (i % 2) as u32).collect(),
            vec!["n".into(), "p".into()],
        )
        .unwrap();
        DataFrame::new(vec![x, c, y], Some("y")).unwrap()
    }

    #[test]
    fn sample_rows_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let rows = sample_rows(50, 20, &mut rng);
        assert_eq!(rows.len(), 20);
        let mut sorted = rows.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "rows must be distinct");
        assert!(rows.iter().all(|&r| r < 50));
        // k > n clamps.
        assert_eq!(sample_rows(5, 99, &mut rng).len(), 5);
        assert!(sample_rows(0, 3, &mut rng).is_empty());
    }

    #[test]
    fn missing_values_injection() {
        let mut df = frame();
        let mut rng = StdRng::seed_from_u64(1);
        let rows = vec![0, 5, 9];
        let rec = inject(&mut df, 0, &rows, ErrorType::MissingValues, &mut rng).unwrap();
        assert_eq!(rec.changed.len(), 3);
        for &r in &rows {
            assert!(df.get(r, 0).unwrap().is_missing());
        }
        // Untouched rows unchanged.
        assert_eq!(df.get(1, 0).unwrap(), Cell::Num(1.0));
        // Re-injecting the same rows changes nothing.
        let rec2 = inject(&mut df, 0, &rows, ErrorType::MissingValues, &mut rng).unwrap();
        assert!(rec2.changed.is_empty());
    }

    #[test]
    fn gaussian_noise_perturbs_values() {
        let mut df = frame();
        let mut rng = StdRng::seed_from_u64(2);
        let rows: Vec<usize> = (0..50).collect();
        let rec = inject(&mut df, 0, &rows, ErrorType::GaussianNoise, &mut rng).unwrap();
        assert_eq!(rec.changed.len(), 50);
        let mut total_shift = 0.0;
        for &(row, prev) in &rec.changed {
            let now = df.get(row, 0).unwrap().as_num().unwrap();
            let before = prev.as_num().unwrap();
            total_shift += (now - before).abs();
        }
        assert!(total_shift > 0.0, "noise must move values");
    }

    #[test]
    fn scaling_multiplies_by_power_of_ten() {
        let mut df = frame();
        let mut rng = StdRng::seed_from_u64(4);
        let rows = vec![1, 2, 3];
        inject(&mut df, 0, &rows, ErrorType::Scaling, &mut rng).unwrap();
        for &r in &rows {
            let v = df.get(r, 0).unwrap().as_num().unwrap();
            let ratio = v / r as f64;
            assert!(
                [10.0, 100.0, 1000.0].iter().any(|f| (ratio - f).abs() < 1e-9),
                "ratio {ratio}"
            );
        }
    }

    #[test]
    fn categorical_shift_changes_category() {
        let mut df = frame();
        let mut rng = StdRng::seed_from_u64(5);
        let rows: Vec<usize> = (0..30).collect();
        let before: Vec<u32> =
            rows.iter().map(|&r| df.get(r, 1).unwrap().as_cat().unwrap()).collect();
        let rec = inject(&mut df, 1, &rows, ErrorType::CategoricalShift, &mut rng).unwrap();
        assert_eq!(rec.changed.len(), 30);
        for (i, &r) in rows.iter().enumerate() {
            let now = df.get(r, 1).unwrap().as_cat().unwrap();
            assert_ne!(now, before[i], "shift must pick a different category");
            assert!(now < 3);
        }
    }

    #[test]
    fn categorical_shift_single_category_is_noop() {
        let c = Column::categorical("c", vec![0, 0, 0], vec!["only".into()]).unwrap();
        let y = Column::categorical("y", vec![0, 1, 0], vec!["n".into(), "p".into()]).unwrap();
        let mut df = DataFrame::new(vec![c, y], Some("y")).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let rec = inject(&mut df, 0, &[0, 1, 2], ErrorType::CategoricalShift, &mut rng).unwrap();
        assert!(rec.changed.is_empty());
    }

    #[test]
    fn value_errors_skip_missing_cells() {
        let mut df = frame();
        let mut rng = StdRng::seed_from_u64(7);
        df.set(0, 0, Cell::Missing).unwrap();
        let rec = inject(&mut df, 0, &[0], ErrorType::GaussianNoise, &mut rng).unwrap();
        assert!(rec.changed.is_empty());
        assert!(df.get(0, 0).unwrap().is_missing());
    }

    #[test]
    fn wrong_kind_rejected() {
        let mut df = frame();
        let mut rng = StdRng::seed_from_u64(8);
        assert!(inject(&mut df, 1, &[0], ErrorType::GaussianNoise, &mut rng).is_err());
        assert!(inject(&mut df, 0, &[0], ErrorType::CategoricalShift, &mut rng).is_err());
        assert!(inject(&mut df, 1, &[0], ErrorType::Scaling, &mut rng).is_err());
    }

    #[test]
    fn label_pollution_rejected() {
        let mut df = frame();
        let mut rng = StdRng::seed_from_u64(9);
        let err = inject(&mut df, 2, &[0], ErrorType::MissingValues, &mut rng).unwrap_err();
        assert!(err.to_string().contains("never polluted"));
    }

    #[test]
    fn outliers_land_far_outside_the_bulk() {
        let mut df = frame();
        let mut rng = StdRng::seed_from_u64(20);
        let (mean, std) = {
            let c = df.column(0).unwrap();
            (c.mean().unwrap(), c.std().unwrap())
        };
        let rows = vec![3, 40, 77];
        let rec = inject(&mut df, 0, &rows, ErrorType::Outliers, &mut rng).unwrap();
        assert_eq!(rec.changed.len(), 3);
        for &r in &rows {
            let v = df.get(r, 0).unwrap().as_num().unwrap();
            let z = (v - mean).abs() / std;
            assert!(z >= 5.0, "outlier at z={z} is not extreme");
        }
    }

    #[test]
    fn swapped_fields_copy_from_partner_column() {
        // frame() has one numeric feature; add a second so a partner exists.
        let x = Column::numeric("x", (0..100).map(|i| i as f64).collect());
        let z = Column::numeric("z", (0..100).map(|i| 1000.0 + i as f64).collect());
        let y = Column::categorical(
            "y",
            (0..100).map(|i| (i % 2) as u32).collect(),
            vec!["n".into(), "p".into()],
        )
        .unwrap();
        let mut df = DataFrame::new(vec![x, z, y], Some("y")).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let rec = inject(&mut df, 0, &[5, 6], ErrorType::SwappedFields, &mut rng).unwrap();
        assert_eq!(rec.changed.len(), 2);
        assert_eq!(df.get(5, 0).unwrap(), Cell::Num(1005.0));
        assert_eq!(df.get(6, 0).unwrap(), Cell::Num(1006.0));
        // The partner column itself is untouched.
        assert_eq!(df.get(5, 1).unwrap(), Cell::Num(1005.0));
    }

    #[test]
    fn swapped_fields_without_partner_is_noop() {
        // frame() has exactly one numeric feature column.
        let mut df = frame();
        let mut rng = StdRng::seed_from_u64(22);
        let rec = inject(&mut df, 0, &[1, 2], ErrorType::SwappedFields, &mut rng).unwrap();
        assert!(rec.changed.is_empty());
    }

    #[test]
    fn near_duplicates_copy_the_next_row() {
        let mut df = frame();
        let mut rng = StdRng::seed_from_u64(23);
        let rec = inject(&mut df, 0, &[10], ErrorType::NearDuplicateRows, &mut rng).unwrap();
        assert_eq!(rec.changed.len(), 1);
        let v = df.get(10, 0).unwrap().as_num().unwrap();
        let donor = df.get(11, 0).unwrap().as_num().unwrap();
        assert!((v - donor).abs() / donor.abs() <= 0.011, "v={v} donor={donor}");
        assert_ne!(v, 10.0, "the original value must be gone");
        // Categorical columns copy the donor code exactly; same-code rows
        // are reported unchanged.
        let rec = inject(&mut df, 1, &[0, 30], ErrorType::NearDuplicateRows, &mut rng).unwrap();
        for &(r, _) in &rec.changed {
            assert_eq!(df.get(r, 1).unwrap(), df.get(r + 1, 1).unwrap());
        }
    }

    #[test]
    fn label_noise_flips_labels_and_only_labels() {
        let mut df = frame();
        let mut rng = StdRng::seed_from_u64(24);
        let before: Vec<u32> = (0..8).map(|r| df.get(r, 2).unwrap().as_cat().unwrap()).collect();
        let rows: Vec<usize> = (0..8).collect();
        let rec = inject(&mut df, 2, &rows, ErrorType::LabelNoise, &mut rng).unwrap();
        assert_eq!(rec.changed.len(), 8);
        for (i, &r) in rows.iter().enumerate() {
            assert_ne!(df.get(r, 2).unwrap().as_cat().unwrap(), before[i]);
        }
        // Label noise is barred from feature columns…
        let err = inject(&mut df, 1, &[0], ErrorType::LabelNoise, &mut rng).unwrap_err();
        assert!(err.to_string().contains("label column"), "{err}");
        // …and every other family stays barred from the label.
        let err = inject(&mut df, 2, &[0], ErrorType::CategoricalShift, &mut rng).unwrap_err();
        assert!(err.to_string().contains("never polluted"), "{err}");
    }

    #[test]
    fn extended_families_revert_exactly() {
        let x = Column::numeric("x", (0..60).map(|i| i as f64).collect());
        let z = Column::numeric("z", (0..60).map(|i| (i * 3) as f64).collect());
        let y = Column::categorical(
            "y",
            (0..60).map(|i| (i % 2) as u32).collect(),
            vec!["n".into(), "p".into()],
        )
        .unwrap();
        let mut df = DataFrame::new(vec![x, z, y], Some("y")).unwrap();
        let original = df.clone();
        let mut rng = StdRng::seed_from_u64(25);
        for (col, err) in [
            (0, ErrorType::Outliers),
            (0, ErrorType::SwappedFields),
            (1, ErrorType::NearDuplicateRows),
            (2, ErrorType::LabelNoise),
        ] {
            let rows = sample_rows(60, 20, &mut rng);
            let rec = inject(&mut df, col, &rows, err, &mut rng).unwrap();
            assert!(!rec.changed.is_empty(), "{err} changed nothing");
            rec.revert(&mut df).unwrap();
            assert_eq!(df, original, "{err} revert must restore exactly");
        }
    }

    #[test]
    fn revert_restores_exactly() {
        let mut df = frame();
        let original = df.clone();
        let mut rng = StdRng::seed_from_u64(10);
        let rows = sample_rows(100, 40, &mut rng);
        let rec = inject(&mut df, 0, &rows, ErrorType::GaussianNoise, &mut rng).unwrap();
        assert_ne!(df, original);
        rec.revert(&mut df).unwrap();
        assert_eq!(df, original);
    }

    #[test]
    fn record_rows_lists_changed_rows() {
        let mut df = frame();
        let mut rng = StdRng::seed_from_u64(11);
        let rec = inject(&mut df, 0, &[3, 8], ErrorType::MissingValues, &mut rng).unwrap();
        assert_eq!(rec.rows(), vec![3, 8]);
        assert_eq!(rec.col, 0);
        assert_eq!(rec.error_type, ErrorType::MissingValues);
    }
}
