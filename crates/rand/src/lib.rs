//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `rand` it actually uses: [`RngCore`], [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`], a deterministic
//! [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64), and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator is *not* stream-compatible with upstream `rand`'s
//! ChaCha12-based `StdRng`; nothing in this workspace depends on the exact
//! stream, only on determinism given a seed.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Values samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Uniform `x` in `[0, bound)` by rejection sampling (unbiased).
fn u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Largest multiple of `bound` that fits in u64.
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(u64_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in gen_range");
        start + (end - start) * f64::sample(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * f32::sample(rng)
    }
}

/// High-level convenience methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value over the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it with SplitMix64 (the
    /// rand-recommended scheme; streams for nearby seeds are uncorrelated).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** (Blackman/Vigna).
    /// Fast, 256-bit state, passes BigCrush; deterministic given a seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_support() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn shuffle_permutes_and_choose_samples() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "20 elements virtually never shuffle to identity");
        assert!(v.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_rng<R: Rng>(rng: &mut R) -> f64 {
            rng.gen()
        }
        fn takes_unsized(rng: &mut dyn RngCore) -> usize {
            rng.gen_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(7);
        takes_rng(&mut rng);
        takes_rng(&mut &mut rng);
        assert!(takes_unsized(&mut rng) < 10);
    }
}
