//! Cleaning traces: everything the evaluation section plots is derived from
//! these records.

use comet_jenga::ErrorType;
use std::time::Duration;

/// What happened in one attempted cleaning step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepAction {
    /// Cleaning improved (or held) F1 and was kept.
    Accepted,
    /// Cleaning decreased F1 and was reverted into the cleaning buffer.
    Reverted,
    /// A previously buffered cleaned state was re-applied (free).
    BufferApplied,
    /// The fallback strategy cleaned this candidate (kept regardless).
    Fallback,
}

/// One attempted cleaning step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord {
    /// Outer-loop iteration this attempt belongs to.
    pub iteration: usize,
    /// Feature column cleaned.
    pub col: usize,
    /// Error type cleaned.
    pub err: ErrorType,
    /// Outcome.
    pub action: StepAction,
    /// Cost charged for this attempt.
    pub cost: f64,
    /// Cumulative budget spent *after* this attempt.
    pub budget_spent: f64,
    /// The Estimator's (bias-corrected) predicted F1, if a prediction drove
    /// this step (fallback steps may have none).
    pub predicted_f1: Option<f64>,
    /// Raw (uncorrected) prediction, for bias-correction diagnostics.
    pub raw_predicted_f1: Option<f64>,
    /// F1 measured after the cleaning attempt (before any revert).
    pub actual_f1: f64,
    /// Cells cleaned (train + test).
    pub cleaned_cells: usize,
}

/// A candidate evaluation that failed every attempt and was skipped for
/// its iteration (fault tolerance: the session keeps going without it).
#[derive(Debug, Clone, PartialEq)]
pub struct FailureRecord {
    /// Outer-loop iteration the candidate belonged to.
    pub iteration: usize,
    /// Feature column of the failed candidate.
    pub col: usize,
    /// Error type of the failed candidate.
    pub err: ErrorType,
    /// Why the final attempt failed (panic message, estimator error, or
    /// non-finite estimate).
    pub reason: String,
    /// How many retries were spent (beyond the first attempt).
    pub retries: u32,
}

/// Full record of a cleaning run.
#[derive(Debug, Clone, Default)]
pub struct CleaningTrace {
    /// All attempted steps in order.
    pub records: Vec<StepRecord>,
    /// Candidate evaluations that failed out (after retries) and were
    /// skipped, in discovery order.
    pub failures: Vec<FailureRecord>,
    /// `(budget spent, F1 of the kept state)` after every attempt — the
    /// paper's F1-per-budget curves.
    pub f1_curve: Vec<(f64, f64)>,
    /// F1 of the initial dirty state (budget 0).
    pub initial_f1: f64,
    /// F1 of the final kept state.
    pub final_f1: f64,
    /// F1 of the fully cleaned dataset (the "cleaned" line of Figure 7).
    pub fully_clean_f1: Option<f64>,
    /// Wall-clock time per outer-loop iteration (RQ 6).
    pub iteration_runtimes: Vec<Duration>,
}

impl CleaningTrace {
    /// F1 of the kept state after spending at most `budget` units (step
    /// function through the curve; `initial_f1` before any spend).
    pub fn f1_at_budget(&self, budget: f64) -> f64 {
        let mut f1 = self.initial_f1;
        for &(spent, value) in &self.f1_curve {
            if spent <= budget + 1e-9 {
                f1 = value;
            } else {
                break;
            }
        }
        f1
    }

    /// Sample the curve at integer budgets `0..=max` (figure series).
    pub fn f1_series(&self, max_budget: usize) -> Vec<f64> {
        (0..=max_budget).map(|b| self.f1_at_budget(b as f64)).collect()
    }

    /// Mean absolute error between predicted and measured F1 over all steps
    /// that carried a prediction (RQ 5). `None` if no step did.
    pub fn prediction_mae(&self) -> Option<f64> {
        let pairs: Vec<(f64, f64)> =
            self.records.iter().filter_map(|r| r.predicted_f1.map(|p| (p, r.actual_f1))).collect();
        if pairs.is_empty() {
            return None;
        }
        Some(pairs.iter().map(|(p, a)| (p - a).abs()).sum::<f64>() / pairs.len() as f64)
    }

    /// Total budget spent.
    pub fn total_spent(&self) -> f64 {
        self.records.last().map_or(0.0, |r| r.budget_spent)
    }

    /// Count of records with a given action.
    pub fn count_action(&self, action: StepAction) -> usize {
        self.records.iter().filter(|r| r.action == action).count()
    }

    /// Bit-exact equality of everything the session *decided* — records,
    /// curve, and F1 values — ignoring `iteration_runtimes`, which is
    /// wall-clock measurement and legitimately differs between runs. This
    /// is the determinism contract the parallel engine is tested against:
    /// the same seed must produce `content_eq` traces at any thread count.
    pub fn content_eq(&self, other: &CleaningTrace) -> bool {
        self.records == other.records
            && self.failures == other.failures
            && self.f1_curve == other.f1_curve
            && self.initial_f1 == other.initial_f1
            && self.final_f1 == other.final_f1
            && self.fully_clean_f1 == other.fully_clean_f1
    }

    /// Mean iteration runtime (RQ 6).
    pub fn mean_iteration_runtime(&self) -> Option<Duration> {
        if self.iteration_runtimes.is_empty() {
            return None;
        }
        let total: Duration = self.iteration_runtimes.iter().sum();
        Some(total / self.iteration_runtimes.len() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        action: StepAction,
        cost: f64,
        spent: f64,
        pred: Option<f64>,
        actual: f64,
    ) -> StepRecord {
        StepRecord {
            iteration: 0,
            col: 0,
            err: ErrorType::MissingValues,
            action,
            cost,
            budget_spent: spent,
            predicted_f1: pred,
            raw_predicted_f1: pred,
            actual_f1: actual,
            cleaned_cells: 1,
        }
    }

    #[test]
    fn f1_at_budget_steps_through_curve() {
        let trace = CleaningTrace {
            initial_f1: 0.5,
            final_f1: 0.8,
            f1_curve: vec![(1.0, 0.6), (3.0, 0.7), (5.0, 0.8)],
            ..CleaningTrace::default()
        };
        assert_eq!(trace.f1_at_budget(0.0), 0.5);
        assert_eq!(trace.f1_at_budget(1.0), 0.6);
        assert_eq!(trace.f1_at_budget(2.0), 0.6);
        assert_eq!(trace.f1_at_budget(4.9), 0.7);
        assert_eq!(trace.f1_at_budget(50.0), 0.8);
        assert_eq!(trace.f1_series(3), vec![0.5, 0.6, 0.6, 0.7]);
    }

    #[test]
    fn prediction_mae_over_predicted_steps() {
        let trace = CleaningTrace {
            records: vec![
                record(StepAction::Accepted, 1.0, 1.0, Some(0.7), 0.8),
                record(StepAction::Reverted, 1.0, 2.0, Some(0.9), 0.6),
                record(StepAction::Fallback, 1.0, 3.0, None, 0.65),
            ],
            ..CleaningTrace::default()
        };
        // (|0.7-0.8| + |0.9-0.6|) / 2 = 0.2.
        assert!((trace.prediction_mae().unwrap() - 0.2).abs() < 1e-12);
        assert_eq!(trace.total_spent(), 3.0);
        assert_eq!(trace.count_action(StepAction::Reverted), 1);
    }

    #[test]
    fn empty_trace_defaults() {
        let trace = CleaningTrace::default();
        assert_eq!(trace.prediction_mae(), None);
        assert_eq!(trace.total_spent(), 0.0);
        assert_eq!(trace.mean_iteration_runtime(), None);
        assert_eq!(trace.f1_at_budget(10.0), 0.0);
    }

    #[test]
    fn content_eq_distinguishes_failures() {
        let base = CleaningTrace {
            records: vec![record(StepAction::Accepted, 1.0, 1.0, Some(0.7), 0.8)],
            ..CleaningTrace::default()
        };
        let mut with_failure = base.clone();
        with_failure.failures.push(FailureRecord {
            iteration: 0,
            col: 2,
            err: ErrorType::GaussianNoise,
            reason: "panic: injected".into(),
            retries: 1,
        });
        assert!(base.content_eq(&base.clone()));
        assert!(!base.content_eq(&with_failure));
        // Runtimes still don't participate.
        let mut timed = base.clone();
        timed.iteration_runtimes.push(Duration::from_millis(4));
        assert!(base.content_eq(&timed));
    }

    #[test]
    fn mean_runtime() {
        let trace = CleaningTrace {
            iteration_runtimes: vec![Duration::from_millis(10), Duration::from_millis(30)],
            ..CleaningTrace::default()
        };
        assert_eq!(trace.mean_iteration_runtime(), Some(Duration::from_millis(20)));
    }
}
