//! # comet-core — the COMET cleaning-recommendation engine
//!
//! Implements the system of *"Step-by-Step Data Cleaning Recommendations to
//! Improve ML Prediction Accuracy"* (EDBT 2025): given a dirty dataset, a
//! target ML algorithm, and a cleaning budget, COMET recommends — one
//! cleaning step at a time — which feature (and error type) to clean next
//! so the model's F1 improves the most per unit of cleaning cost.
//!
//! Architecture (paper Figure 2):
//!
//! * [`Polluter`] (§3.1) — injects *additional* errors into each candidate
//!   feature at +1 and +2 pollution steps, several random cell combinations
//!   per level, never needing to know which cells are truly dirty,
//! * [`Estimator`] (§3.2) — trains the target model on every polluted
//!   variant, fits a Bayesian linear regression through the (pollution
//!   level → F1) points, and extrapolates one step *backwards* to predict
//!   the F1 after cleaning, with a credible-interval uncertainty; a
//!   per-feature bias correction learns from observed discrepancies (§3.3),
//! * [`Recommender`] (§3.3) — keeps positive-gain candidates, ranks them by
//!   `(gain − uncertainty) / cost` (Eq. 4), reverts cleaning steps that
//!   *decreased* F1 into a cleaning buffer, and falls back to the
//!   historically best feature when no candidate looks positive,
//! * [`CleaningSession`] — the outer loop tying the modules to a simulated
//!   Cleaner ([`CleaningEnvironment`]) under a [`Budget`] with per-error
//!   [`CostModel`]s (§4.2),
//! * [`CleaningTrace`] — per-step records (predicted vs actual F1, costs,
//!   reverts, fallbacks) from which every figure of the paper is derived.
//!
//! Fault tolerance (DESIGN.md §9): candidate failures are isolated and
//! retried ([`FaultPlan`] injects them deterministically for testing),
//! errors surface through the [`CometError`] taxonomy, and sessions can
//! checkpoint/resume via [`CheckpointSpec`]. Long-running hosts supervise
//! sessions through a [`SessionControl`] (cooperative cancel/deadline +
//! live best-so-far progress, DESIGN.md §14) and build environments via
//! [`build_paired_env`] so every front end constructs sessions
//! identically.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

mod budget;
mod checkpoint;
mod config;
mod control;
mod cost;
mod env;
mod error;
mod estimator;
mod faults;
mod metrics;
mod polluter;
mod recommender;
mod report;
mod session;
mod setup;
mod trace;

pub use budget::Budget;
pub use checkpoint::CheckpointSpec;
pub use config::CometConfig;
pub use control::{SessionControl, SessionProgress, StopReason};
pub use cost::{CostModel, CostPolicy};
pub use env::{CacheStats, CleaningEnvironment, EnvError, ModelSpec, StateSnapshot};
pub use error::CometError;
pub use estimator::{Estimate, Estimator};
pub use faults::{FaultKind, FaultPlan, FaultSpec};
pub use metrics::{IterationMetrics, PhaseNanos, RunMetrics, PHASES};
pub use polluter::{PollutedVariant, Polluter};
pub use recommender::{Candidate, Recommender};
pub use session::{CleaningSession, SessionOutcome};
pub use setup::{build_paired_env, derive_provenance};
pub use trace::{CleaningTrace, FailureRecord, StepAction, StepRecord};
