//! The simulated cleaning environment.
//!
//! In the paper, a human or algorithmic *Cleaner* executes COMET's
//! recommendations. The reproduction simulates that Cleaner: it holds the
//! dirty train/test splits, their clean ground truth, and per-cell error
//! provenance, and exposes exactly the operations a Cleaner performs —
//! clean one step of one feature (restoring ground truth), evaluate the
//! model, revert a cleaning step. COMET itself only ever sees the dirty
//! frames and the evaluation scores, never the ground truth.
//!
//! All cleaning strategies (COMET, RR, FIR, CL, AC, Oracle) run against
//! this same environment, so their traces are directly comparable.

use comet_detect::{DetectionReport, DetectorConfig, DetectorScore};
use comet_frame::{Column, DataFrame, FrameError};
use comet_jenga::{ErrorType, GroundTruth, Provenance};
use comet_ml::{
    build_f32, scratch, Algorithm, FeatureCache, FeatureCacheStats, Featurizer, HyperParams,
    MatrixF32, Metric, RandomSearch,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex, PoisonError};

/// Errors from environment operations.
#[derive(Debug, Clone, PartialEq)]
pub enum EnvError {
    /// Underlying frame error.
    Frame(FrameError),
    /// Configuration / usage error.
    Invalid(String),
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvError::Frame(e) => write!(f, "frame error: {e}"),
            EnvError::Invalid(msg) => write!(f, "invalid: {msg}"),
        }
    }
}

impl std::error::Error for EnvError {}

impl From<FrameError> for EnvError {
    fn from(e: FrameError) -> Self {
        EnvError::Frame(e)
    }
}

/// The ML model under evaluation: algorithm plus the hyperparameters found
/// by the one-time random search (§4.4).
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// The algorithm.
    pub algorithm: Algorithm,
    /// Tuned hyperparameters.
    pub params: HyperParams,
}

/// A revertible snapshot of one feature column across both splits,
/// including its provenance — what the Recommender's cleaning buffer stores.
#[derive(Debug, Clone)]
pub struct StateSnapshot {
    /// Feature column index.
    pub col: usize,
    train_col: Column,
    test_col: Column,
    prov_train: Vec<Option<ErrorType>>,
    prov_test: Vec<Option<ErrorType>>,
}

/// Hit/miss/size counters of the evaluation cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Evaluations answered from the cache.
    pub hits: u64,
    /// Evaluations that had to train a model.
    pub misses: u64,
    /// Entries currently cached.
    pub entries: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Entries kept before the evaluation cache is cleared wholesale. Each
/// entry is two u64 keys + one f64, so the cap bounds memory at ~1.5 MiB.
const EVAL_CACHE_CAP: usize = 65_536;

/// Salt folded into the train-frame fingerprint of f32 probe evaluations.
/// Probe scores share the `(u64, u64) -> f64` cache (and its checkpoint
/// serialization) with full f64 evaluations, but the two precisions are
/// not interchangeable answers for the same frame pair, so their key
/// spaces must not collide.
const F32_PROBE_SALT: u64 = 0xF32C_A11E_D001_ABCD;

/// Memoized `(train, test) -> score` evaluations, keyed by frame content
/// fingerprints. Interior-mutable so `evaluate_frames` can stay `&self`
/// (and therefore usable from worker threads); `Mutex` rather than
/// `RefCell` keeps [`CleaningEnvironment`] `Sync`. The `Arc` makes the
/// cache *shared between clones* of an environment: the bench grid clones
/// one prepared base per strategy and repetition, and every clone trains
/// the identical model, so evaluations of content-identical states are
/// interchangeable across the whole family.
#[derive(Debug, Default)]
struct EvalCache {
    inner: Arc<Mutex<EvalCacheInner>>,
}

#[derive(Debug, Default)]
struct EvalCacheInner {
    // comet-lint: allow(D1) — lookup-only memo keyed by content hash; `export` sorts before emitting
    map: HashMap<(u64, u64), f64>,
    hits: u64,
    misses: u64,
}

impl EvalCache {
    fn lookup(&self, key: (u64, u64)) -> Option<f64> {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match inner.map.get(&key).copied() {
            Some(score) => {
                inner.hits += 1;
                comet_obs::counter_add("eval_cache.hits", 1);
                Some(score)
            }
            None => {
                inner.misses += 1;
                comet_obs::counter_add("eval_cache.misses", 1);
                None
            }
        }
    }

    fn insert(&self, key: (u64, u64), score: f64) {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if inner.map.len() >= EVAL_CACHE_CAP {
            inner.map.clear();
        }
        inner.map.insert(key, score);
        comet_obs::gauge_set("eval_cache.entries", inner.map.len() as f64);
    }

    fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        CacheStats { hits: inner.hits, misses: inner.misses, entries: inner.map.len() }
    }

    fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.map.clear();
        inner.hits = 0;
        inner.misses = 0;
        comet_obs::gauge_set("eval_cache.entries", 0.0);
    }

    fn export(&self) -> Vec<(u64, u64, f64)> {
        let inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut entries: Vec<(u64, u64, f64)> =
            inner.map.iter().map(|(&(a, b), &score)| (a, b, score)).collect();
        entries.sort_by_key(|&(a, b, _)| (a, b));
        entries
    }

    fn preload(&self, entries: &[(u64, u64, f64)]) {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for &(a, b, score) in entries {
            inner.map.insert((a, b), score);
        }
        comet_obs::gauge_set("eval_cache.entries", inner.map.len() as f64);
    }
}

impl Clone for EvalCache {
    /// Clones share one cache: entries are keyed by frame *content* and
    /// the clone trains the identical model, so a score computed by any
    /// member of the clone family answers the same lookup in all of them.
    fn clone(&self) -> Self {
        EvalCache { inner: Arc::clone(&self.inner) }
    }
}

/// Memoized detection reports for the environment's *current* frames.
/// Detection is pure in the frame contents and the detector config, so the
/// entry is keyed by both and shared between clones like [`EvalCache`].
#[derive(Debug, Default)]
struct DetectMemo {
    inner: Arc<Mutex<Option<DetectMemoEntry>>>,
}

#[derive(Debug, Clone)]
struct DetectMemoEntry {
    key: (u64, u64),
    config: DetectorConfig,
    train: DetectionReport,
    test: DetectionReport,
}

impl Clone for DetectMemo {
    fn clone(&self) -> Self {
        DetectMemo { inner: Arc::clone(&self.inner) }
    }
}

/// The simulated world: dirty data + hidden ground truth + a fixed model.
#[derive(Debug, Clone)]
pub struct CleaningEnvironment {
    train: DataFrame,
    test: DataFrame,
    gt_train: GroundTruth,
    gt_test: GroundTruth,
    prov_train: Provenance,
    prov_test: Provenance,
    model: ModelSpec,
    metric: Metric,
    n_classes: usize,
    step_train: usize,
    step_test: usize,
    eval_seed: u64,
    eval_cache: EvalCache,
    /// Column-block featurization cache, shared between clones exactly like
    /// the evaluation cache (its `Clone` shares the backing `Arc`). Keyed by
    /// (transform params, column content fingerprint), so only the column a
    /// candidate pollution actually touched is re-featurized.
    feat_cache: FeatureCache,
    /// When false, `evaluate_frames` featurizes from scratch (the pre-cache
    /// path, kept for cold/warm benchmarking and as a kill switch).
    feat_caching: bool,
    /// When true, `evaluate_frames_probe` trains the model's f32 twin
    /// (where one exists) instead of the full f64 model. Per-handle like
    /// `feat_caching`; the caches stay shared (probe entries are salted).
    f32_probes: bool,
    /// Detection-seeded mode (DESIGN.md §13): when set, candidate pairs
    /// come from the detector ensemble scanning the dirty frames and
    /// cleaning steps target ground-truth dirt regardless of the (noisy)
    /// family attribution. `None` = oracle mode, the paper's setup.
    detect: Option<DetectorConfig>,
    /// Memoized detection reports for the current frame contents.
    detect_memo: DetectMemo,
    /// `(col, err)` pairs detection keeps proposing but whose columns hold
    /// no ground-truth dirt any more — permanent false positives (a natural
    /// outlier stays an outlier after cleaning). Marked when a cleaning
    /// step restores zero cells; monotone, never reverted (a revert of the
    /// column restores dirt state, not the Cleaner's learned futility), so
    /// detection-seeded sessions terminate. Cloned by value: a clone
    /// starts from the parent's knowledge and evolves independently.
    detect_exhausted: BTreeSet<(usize, ErrorType)>,
}

impl CleaningEnvironment {
    /// Build the environment. `gt_*` must be the clean versions of the
    /// supplied dirty splits; `prov_*` the per-cell error provenance.
    /// Hyperparameters are tuned once on the dirty training data (§4.4:
    /// "users working with dirty data aim for the highest prediction
    /// accuracy given the dataset's current state").
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng>(
        train: DataFrame,
        test: DataFrame,
        gt_train: GroundTruth,
        gt_test: GroundTruth,
        prov_train: Provenance,
        prov_test: Provenance,
        algorithm: Algorithm,
        metric: Metric,
        step_frac: f64,
        search: RandomSearch,
        eval_seed: u64,
        rng: &mut R,
    ) -> Result<Self, EnvError> {
        if !(step_frac > 0.0 && step_frac <= 1.0) {
            return Err(EnvError::Invalid(format!("step_frac {step_frac} out of (0,1]")));
        }
        if train.schema() != test.schema() {
            return Err(EnvError::Invalid("train/test schema mismatch".into()));
        }
        let n_classes = train.n_classes()?;
        let step_train = ((step_frac * train.nrows() as f64).round() as usize).max(1);
        let step_test = ((step_frac * test.nrows() as f64).round() as usize).max(1);

        // One-time hyperparameter search on the dirty data. Runs through
        // the feature cache so the session's first evaluation already hits
        // the training split's column blocks.
        let feat_cache = FeatureCache::new();
        let featurizer = Featurizer::fit_cached(&train, &feat_cache)?;
        let xtr = featurizer.transform_with(&train, Some(&feat_cache), Vec::new())?;
        let ytr = train.label_codes()?;
        let tuned = search.tune(algorithm, &xtr, &ytr, n_classes, rng);

        Ok(CleaningEnvironment {
            train,
            test,
            gt_train,
            gt_test,
            prov_train,
            prov_test,
            model: ModelSpec { algorithm, params: tuned.params },
            metric,
            n_classes,
            step_train,
            step_test,
            eval_seed,
            eval_cache: EvalCache::default(),
            feat_cache,
            feat_caching: true,
            f32_probes: false,
            detect: None,
            detect_memo: DetectMemo::default(),
            detect_exhausted: BTreeSet::new(),
        })
    }

    /// The current (dirty) training split.
    pub fn train(&self) -> &DataFrame {
        &self.train
    }

    /// The current (dirty) test split.
    pub fn test(&self) -> &DataFrame {
        &self.test
    }

    /// The model specification in use.
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    /// The optimization metric.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Number of label classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Cells per cleaning/pollution step on the training split.
    pub fn step_train(&self) -> usize {
        self.step_train
    }

    /// Cells per cleaning/pollution step on the test split.
    pub fn step_test(&self) -> usize {
        self.step_test
    }

    /// Feature column indices.
    pub fn feature_cols(&self) -> Vec<usize> {
        self.train.feature_indices()
    }

    /// Train and evaluate the model on arbitrary frames (used by the
    /// Polluter's what-if variants). Deterministic given the data, which
    /// makes the result memoizable: repeat evaluations of content-identical
    /// frame pairs are answered from a fingerprint-keyed cache. Takes
    /// `&self`, so worker threads can evaluate candidates concurrently.
    pub fn evaluate_frames(&self, train: &DataFrame, test: &DataFrame) -> Result<f64, EnvError> {
        self.check_frame_shapes(train, test)?;
        let key = (train.fingerprint(), test.fingerprint());
        if let Some(score) = self.eval_cache.lookup(key) {
            return Ok(score);
        }
        // Candidate pollutions mutate one column, so with the block cache
        // warm, fit + transform reduce to one column's stats scan and two
        // column-block computations; everything else is splices of cached
        // blocks into pooled buffers.
        let cache = if self.feat_caching { Some(&self.feat_cache) } else { None };
        let featurizer = match cache {
            Some(cache) => Featurizer::fit_cached(train, cache)?,
            None => Featurizer::fit(train)?,
        };
        let dim = featurizer.dim();
        let xtr = featurizer.transform_with(train, cache, scratch::take(train.nrows() * dim))?;
        let xte = featurizer.transform_with(test, cache, scratch::take(test.nrows() * dim))?;
        let ytr = train.label_codes()?;
        let yte = test.label_codes()?;
        let mut model = self.model.params.build();
        let mut rng = StdRng::seed_from_u64(self.eval_seed);
        model.fit(&xtr, &ytr, self.n_classes, &mut rng);
        let score = self.metric.eval(&yte, &model.predict(&xte), self.n_classes);
        scratch::put_matrix(xtr);
        scratch::put_matrix(xte);
        self.eval_cache.insert(key, score);
        Ok(score)
    }

    /// `evaluate_frames` and its probe variant accept arbitrary caller
    /// frames — the one public entry point where user-shaped row lengths
    /// can reach the kernels' equal-dimensionality contract (`sq_dist`,
    /// `dot` only `debug_assert` it). Mismatches become a typed error here
    /// instead of silent garbage in release builds.
    fn check_frame_shapes(&self, train: &DataFrame, test: &DataFrame) -> Result<(), EnvError> {
        if train.schema() != test.schema() {
            return Err(EnvError::Invalid(
                "evaluate_frames requires train/test frames with identical schemas \
                 (kernel reductions require equal row dimensionality)"
                    .into(),
            ));
        }
        Ok(())
    }

    /// [`evaluate_frames`](Self::evaluate_frames) for the Estimator's
    /// what-if pollution probes. With `f32_probes` enabled and an f32 twin
    /// available for the session's model, the fit and forward pass run in
    /// single precision (DESIGN.md §12); the result crosses the f32 → f64
    /// promotion boundary as integer class predictions, so the metric —
    /// and everything downstream: the Bayesian fit and the final ranking —
    /// is computed in f64. Falls back to the full f64 path when the flag
    /// is off or the model has no f32 twin (trees, forests, naive Bayes).
    pub fn evaluate_frames_probe(
        &self,
        train: &DataFrame,
        test: &DataFrame,
    ) -> Result<f64, EnvError> {
        if !self.f32_probes {
            return self.evaluate_frames(train, test);
        }
        let Some(mut model) = build_f32(&self.model.params) else {
            return self.evaluate_frames(train, test);
        };
        self.check_frame_shapes(train, test)?;
        let key = (train.fingerprint() ^ F32_PROBE_SALT, test.fingerprint());
        if let Some(score) = self.eval_cache.lookup(key) {
            return Ok(score);
        }
        let cache = if self.feat_caching { Some(&self.feat_cache) } else { None };
        let featurizer = match cache {
            Some(cache) => Featurizer::fit_cached(train, cache)?,
            None => Featurizer::fit(train)?,
        };
        let dim = featurizer.dim();
        let xtr = featurizer.transform_with(train, cache, scratch::take(train.nrows() * dim))?;
        let xte = featurizer.transform_with(test, cache, scratch::take(test.nrows() * dim))?;
        let ytr = train.label_codes()?;
        let yte = test.label_codes()?;
        // Featurization stays f64 (and cached); only the training matrices
        // narrow. The f64 buffers return to the scratch pool immediately.
        let xtr32 = MatrixF32::from_matrix(&xtr);
        let xte32 = MatrixF32::from_matrix(&xte);
        scratch::put_matrix(xtr);
        scratch::put_matrix(xte);
        let mut rng = StdRng::seed_from_u64(self.eval_seed);
        model.fit(&xtr32, &ytr, self.n_classes, &mut rng);
        let score = self.metric.eval(&yte, &model.predict(&xte32), self.n_classes);
        self.eval_cache.insert(key, score);
        Ok(score)
    }

    /// Enable or disable f32 probe evaluations for this handle (clones
    /// keep their own flag, exactly like `set_feature_caching`).
    pub fn set_f32_probes(&mut self, enabled: bool) {
        self.f32_probes = enabled;
    }

    /// Whether probe evaluations run in the f32 tier.
    pub fn f32_probes(&self) -> bool {
        self.f32_probes
    }

    /// Evaluation-cache counters (hits, misses, live entries).
    pub fn cache_stats(&self) -> CacheStats {
        self.eval_cache.stats()
    }

    /// Drop all cached evaluations and reset the counters (benchmarks use
    /// this to compare cold against warm runs). The cache is shared with
    /// every clone of this environment, so clearing affects all of them.
    pub fn clear_eval_cache(&self) {
        self.eval_cache.clear();
    }

    /// All cached `(train fingerprint, test fingerprint, score)` entries,
    /// sorted by key — the stable form checkpoints persist.
    pub fn export_cache_entries(&self) -> Vec<(u64, u64, f64)> {
        self.eval_cache.export()
    }

    /// Seed the evaluation cache with previously exported entries
    /// (checkpoint resume: replayed iterations answer from cache instead of
    /// retraining, which is what makes resume cheap *and* bit-identical —
    /// the warm-cache determinism property).
    pub fn preload_cache(&self, entries: &[(u64, u64, f64)]) {
        self.eval_cache.preload(entries);
    }

    /// Feature-block-cache counters (entries, hits, misses).
    pub fn feature_cache_stats(&self) -> FeatureCacheStats {
        self.feat_cache.stats()
    }

    /// Drop every cached column block and fitted statistic (shared with all
    /// clones of this environment).
    pub fn clear_feature_cache(&self) {
        self.feat_cache.clear();
    }

    /// Enable or disable the featurization block cache for this handle
    /// (clones keep their own flag; the underlying cache stays shared).
    /// Benchmarks disable it to measure the pre-cache cold path.
    pub fn set_feature_caching(&mut self, enabled: bool) {
        self.feat_caching = enabled;
    }

    /// Cap the feature-block cache's byte footprint (shared with all
    /// clones). Cold blocks are dropped, not spilled — they are derived
    /// data, cheaper to recompute from the (possibly spilled) segments
    /// than to round-trip through disk.
    pub fn set_feature_cache_budget(&self, bytes: usize) {
        self.feat_cache.set_block_byte_budget(bytes);
    }

    /// Whether the featurization block cache is in use.
    pub fn feature_caching(&self) -> bool {
        self.feat_caching
    }

    /// Evaluate the model on the current state.
    pub fn evaluate(&self) -> Result<f64, EnvError> {
        self.evaluate_frames(&self.train, &self.test)
    }

    /// Rows of feature `col` currently dirty with `err` on the train split.
    pub fn dirty_train_rows(&self, col: usize, err: ErrorType) -> Vec<usize> {
        self.prov_train.rows_with(col, Some(err))
    }

    /// Rows of feature `col` currently dirty with `err` on the test split.
    pub fn dirty_test_rows(&self, col: usize, err: ErrorType) -> Vec<usize> {
        self.prov_test.rows_with(col, Some(err))
    }

    /// True while feature `col` still carries `err`-type dirt in either
    /// split — the simulated Cleaner's "not yet marked clean" signal.
    pub fn pair_dirty(&self, col: usize, err: ErrorType) -> bool {
        !self.dirty_train_rows(col, err).is_empty() || !self.dirty_test_rows(col, err).is_empty()
    }

    /// All `(feature, error type)` candidate pairs, restricted to the given
    /// error types (single-error scenario passes one; multi-error all).
    ///
    /// Oracle mode (the paper's setup) reads the JENGA provenance: a pair
    /// is a candidate while its column still carries `err`-type dirt.
    /// Detection mode derives the pairs from the detector ensemble's flags
    /// on the current dirty frames — COMET never touches ground truth —
    /// minus the pairs the Cleaner has learned are pure false positives.
    pub fn candidate_pairs(&self, errors: &[ErrorType]) -> Vec<(usize, ErrorType)> {
        if self.detect.is_some() {
            return self.detected_candidate_pairs(errors);
        }
        let mut out = Vec::new();
        for &col in &self.feature_cols() {
            for &err in errors {
                if self.pair_dirty(col, err) {
                    out.push((col, err));
                }
            }
        }
        out
    }

    fn detected_candidate_pairs(&self, errors: &[ErrorType]) -> Vec<(usize, ErrorType)> {
        let Ok((train, test)) = self.detect_reports() else {
            // Unreachable with a validated config; surfaced as a counter
            // rather than silently dropped.
            comet_obs::counter_add("detect.errors", 1);
            return Vec::new();
        };
        let mut pairs = train.candidate_pairs();
        pairs.extend(test.candidate_pairs());
        pairs.sort_unstable();
        pairs.dedup();
        pairs.retain(|&(col, err)| {
            errors.contains(&err) && !self.detect_exhausted.contains(&(col, err))
        });
        pairs
    }

    /// Enable detection-seeded mode: from now on, candidate pairs come
    /// from the detector ensemble instead of the provenance oracle, and
    /// cleaning steps target any ground-truth dirt in the chosen column
    /// (the family attribution is a noisy hint, not a filter).
    pub fn enable_detection(&mut self, config: DetectorConfig) {
        self.detect = Some(config);
    }

    /// The active detector configuration, if detection mode is on.
    pub fn detection(&self) -> Option<DetectorConfig> {
        self.detect
    }

    /// Detection reports for the current train/test frames (memoized by
    /// content fingerprint, shared with clones). Errors when detection
    /// mode is off.
    pub fn detect_reports(&self) -> Result<(DetectionReport, DetectionReport), EnvError> {
        let Some(config) = self.detect else {
            return Err(EnvError::Invalid("detection mode is not enabled".into()));
        };
        let key = (self.train.fingerprint(), self.test.fingerprint());
        {
            let memo = self.detect_memo.inner.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(entry) = memo.as_ref() {
                if entry.key == key && entry.config == config {
                    return Ok((entry.train.clone(), entry.test.clone()));
                }
            }
        }
        let train = comet_detect::detect(&self.train, &config)?;
        let test = comet_detect::detect(&self.test, &config)?;
        comet_obs::counter_add(
            "detect.flagged_cells",
            (train.flagged_cell_count() + test.flagged_cell_count()) as u64,
        );
        let false_positives = comet_detect::false_positive_cells(&train, &self.prov_train)
            + comet_detect::false_positive_cells(&test, &self.prov_test);
        comet_obs::counter_add("detect.false_positives", false_positives as u64);
        let mut memo = self.detect_memo.inner.lock().unwrap_or_else(PoisonError::into_inner);
        *memo = Some(DetectMemoEntry { key, config, train: train.clone(), test: test.clone() });
        Ok((train, test))
    }

    /// Per-detector precision/recall on the *train* split, scored against
    /// the hidden provenance (harness-side diagnostics; COMET never sees
    /// these numbers). Errors when detection mode is off.
    pub fn detector_scores(&self) -> Result<Vec<DetectorScore>, EnvError> {
        let (train, _) = self.detect_reports()?;
        Ok(comet_detect::score_detectors(&train, &self.prov_train, &self.train))
    }

    /// Total dirty cells across both splits (ground-truth diff).
    pub fn total_dirty(&self) -> Result<usize, EnvError> {
        Ok(self.gt_train.total_dirty(&self.train)? + self.gt_test.total_dirty(&self.test)?)
    }

    /// True when both splits match ground truth exactly.
    pub fn is_fully_clean(&self) -> Result<bool, EnvError> {
        Ok(self.total_dirty()? == 0)
    }

    /// Snapshot feature `col` (both splits + provenance) for later revert.
    pub fn snapshot(&self, col: usize) -> Result<StateSnapshot, EnvError> {
        Ok(StateSnapshot {
            col,
            train_col: self.train.column(col)?.clone(),
            test_col: self.test.column(col)?.clone(),
            prov_train: self.prov_train.column(col).to_vec(),
            prov_test: self.prov_test.column(col).to_vec(),
        })
    }

    /// Restore a snapshot (the Recommender's revert).
    pub fn restore(&mut self, snapshot: &StateSnapshot) -> Result<(), EnvError> {
        self.train.replace_column(snapshot.col, snapshot.train_col.clone())?;
        self.test.replace_column(snapshot.col, snapshot.test_col.clone())?;
        self.prov_train.set_column(snapshot.col, snapshot.prov_train.clone());
        self.prov_test.set_column(snapshot.col, snapshot.prov_test.clone());
        Ok(())
    }

    /// Simulate one cleaning step of `(col, err)`: restore up to one step's
    /// worth of `err`-polluted cells per split (preferring the rows the
    /// Polluter flagged, §3.3), clearing their provenance. Returns
    /// `(train_cells, test_cells)` actually cleaned.
    ///
    /// In detection mode the human cleaner inspects the *column*, not the
    /// detector's (noisy) family attribution: any ground-truth dirt found
    /// there is eligible, with the detector-flagged rows tried first. A
    /// step that restores zero cells marks `(col, err)` as exhausted — a
    /// pure false positive the Cleaner will not revisit. That set is
    /// monotone (a revert restores dirt state, not the Cleaner's learned
    /// futility), which is what guarantees termination without an oracle.
    pub fn clean_step<R: Rng>(
        &mut self,
        col: usize,
        err: ErrorType,
        preferred_train: &[usize],
        preferred_test: &[usize],
        rng: &mut R,
    ) -> Result<(usize, usize), EnvError> {
        if self.detect.is_some() {
            return self.detect_clean_step(col, err, preferred_train, preferred_test, rng);
        }
        let cleaned_train = clean_split(
            &mut self.train,
            &self.gt_train,
            &mut self.prov_train,
            col,
            err,
            self.step_train,
            preferred_train,
            rng,
        )?;
        let cleaned_test = clean_split(
            &mut self.test,
            &self.gt_test,
            &mut self.prov_test,
            col,
            err,
            self.step_test,
            preferred_test,
            rng,
        )?;
        Ok((cleaned_train, cleaned_test))
    }

    fn detect_clean_step<R: Rng>(
        &mut self,
        col: usize,
        err: ErrorType,
        preferred_train: &[usize],
        preferred_test: &[usize],
        rng: &mut R,
    ) -> Result<(usize, usize), EnvError> {
        // Detector-flagged rows extend the session's preference list; the
        // reports are cloned out so the memo borrow ends before `&mut self`.
        let (train_rep, test_rep) = self.detect_reports()?;
        let mut pref_train = preferred_train.to_vec();
        pref_train.extend(train_rep.flagged_rows_any(col));
        let mut pref_test = preferred_test.to_vec();
        pref_test.extend(test_rep.flagged_rows_any(col));
        let cleaned_train = clean_split_any(
            &mut self.train,
            &self.gt_train,
            &mut self.prov_train,
            col,
            self.step_train,
            &pref_train,
            rng,
        )?;
        let cleaned_test = clean_split_any(
            &mut self.test,
            &self.gt_test,
            &mut self.prov_test,
            col,
            self.step_test,
            &pref_test,
            rng,
        )?;
        if cleaned_train + cleaned_test == 0 {
            self.detect_exhausted.insert((col, err));
        }
        Ok((cleaned_train, cleaned_test))
    }

    /// Clean *everything* (diagnostics: the paper's "cleaned" horizontal
    /// line in Figure 7). Returns the fully-clean F1.
    pub fn fully_cleaned_f1(&self) -> Result<f64, EnvError> {
        self.evaluate_frames(self.gt_train.clean(), self.gt_test.clean())
    }

    /// Direct mutable access for strategies that clean record-wise
    /// (ActiveClean): restore the given rows across *all* feature columns.
    /// Returns the number of cells changed.
    pub fn clean_records<R: Rng>(
        &mut self,
        train_rows: &[usize],
        test_rows: &[usize],
        _rng: &mut R,
    ) -> Result<usize, EnvError> {
        let mut changed = 0;
        for &col in &self.feature_cols() {
            let restored = self.gt_train.restore(&mut self.train, col, train_rows)?;
            for &r in &restored {
                self.prov_train.clear(col, r);
            }
            changed += restored.len();
            let restored = self.gt_test.restore(&mut self.test, col, test_rows)?;
            for &r in &restored {
                self.prov_test.clear(col, r);
            }
            changed += restored.len();
        }
        Ok(changed)
    }

    /// Ground-truth dirty rows per split for a column, regardless of error
    /// type (used by the Oracle and by record-wise strategies).
    pub fn gt_dirty_rows(&self, col: usize) -> Result<(Vec<usize>, Vec<usize>), EnvError> {
        Ok((self.gt_train.dirty_rows(&self.train, col)?, self.gt_test.dirty_rows(&self.test, col)?))
    }
}

/// Clean up to `k` `err`-provenance cells of `col` in one split.
#[allow(clippy::too_many_arguments)]
fn clean_split<R: Rng>(
    df: &mut DataFrame,
    gt: &GroundTruth,
    prov: &mut Provenance,
    col: usize,
    err: ErrorType,
    k: usize,
    preferred: &[usize],
    rng: &mut R,
) -> Result<usize, EnvError> {
    let dirty = prov.rows_with(col, Some(err));
    if dirty.is_empty() {
        return Ok(0);
    }
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    for &p in preferred {
        if chosen.len() == k {
            break;
        }
        if dirty.binary_search(&p).is_ok() && !chosen.contains(&p) {
            chosen.push(p);
        }
    }
    if chosen.len() < k {
        let mut rest: Vec<usize> = dirty.iter().copied().filter(|r| !chosen.contains(r)).collect();
        let need = (k - chosen.len()).min(rest.len());
        for i in 0..need {
            let j = rng.gen_range(i..rest.len());
            rest.swap(i, j);
            chosen.push(rest[i]);
        }
    }
    let restored = gt.restore(df, col, &chosen)?;
    // Clear provenance for every chosen row: restoring may be a no-op for a
    // cell whose polluted value coincides with ground truth, but the cell is
    // clean either way.
    for &r in &chosen {
        prov.clear(col, r);
    }
    Ok(restored.len().max(chosen.len()))
}

/// Clean up to `k` ground-truth-dirty cells of `col` in one split,
/// regardless of which family polluted them (detection mode: the cleaner
/// sees a suspicious column, not a provenance label).
fn clean_split_any<R: Rng>(
    df: &mut DataFrame,
    gt: &GroundTruth,
    prov: &mut Provenance,
    col: usize,
    k: usize,
    preferred: &[usize],
    rng: &mut R,
) -> Result<usize, EnvError> {
    let dirty = gt.dirty_rows(df, col)?;
    if dirty.is_empty() {
        return Ok(0);
    }
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    for &p in preferred {
        if chosen.len() == k {
            break;
        }
        if dirty.binary_search(&p).is_ok() && !chosen.contains(&p) {
            chosen.push(p);
        }
    }
    if chosen.len() < k {
        let mut rest: Vec<usize> = dirty.iter().copied().filter(|r| !chosen.contains(r)).collect();
        let need = (k - chosen.len()).min(rest.len());
        for i in 0..need {
            let j = rng.gen_range(i..rest.len());
            rest.swap(i, j);
            chosen.push(rest[i]);
        }
    }
    let restored = gt.restore(df, col, &chosen)?;
    for &r in &chosen {
        prov.clear(col, r);
    }
    Ok(restored.len().max(chosen.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_frame::{train_test_split, SplitOptions};
    use comet_jenga::{PrePollutionPlan, Scenario};

    fn make_env(seed: u64) -> CleaningEnvironment {
        let mut rng = StdRng::seed_from_u64(seed);
        let df = comet_datasets::Dataset::Eeg.generate(Some(300), &mut rng);
        let tt = train_test_split(&df, SplitOptions::default(), &mut rng).unwrap();
        let gt_train = GroundTruth::new(tt.train.clone());
        let gt_test = GroundTruth::new(tt.test.clone());
        let mut train = tt.train;
        let mut test = tt.test;
        let mut prov_train = Provenance::for_frame(&train);
        let mut prov_test = Provenance::for_frame(&test);
        let plan = PrePollutionPlan::explicit(
            Scenario::SingleError(ErrorType::MissingValues),
            vec![(0, 0.3), (1, 0.2), (2, 0.1)],
        );
        plan.apply(&mut train, 0.01, &mut prov_train, &mut rng).unwrap();
        plan.apply(&mut test, 0.01, &mut prov_test, &mut rng).unwrap();
        CleaningEnvironment::new(
            train,
            test,
            gt_train,
            gt_test,
            prov_train,
            prov_test,
            Algorithm::Knn,
            Metric::F1,
            0.01,
            RandomSearch { n_samples: 2, ..RandomSearch::default() },
            7,
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let env = make_env(1);
        assert_eq!(env.n_classes(), 2);
        assert_eq!(env.feature_cols().len(), 14);
        assert!(env.step_train() >= 1);
        assert!(env.step_test() >= 1);
        assert_eq!(env.model().algorithm, Algorithm::Knn);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let env = make_env(2);
        let a = env.evaluate().unwrap();
        let b = env.evaluate().unwrap();
        assert_eq!(a, b);
        assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn repeat_evaluation_hits_cache() {
        let env = make_env(2);
        assert_eq!(env.cache_stats(), CacheStats::default());
        let a = env.evaluate().unwrap();
        let stats = env.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 1, 1));
        let b = env.evaluate().unwrap();
        assert_eq!(a, b);
        let stats = env.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cache_invalidated_by_data_change() {
        let mut env = make_env(4);
        let mut rng = StdRng::seed_from_u64(0);
        env.evaluate().unwrap();
        env.clean_step(0, ErrorType::MissingValues, &[], &[], &mut rng).unwrap();
        env.evaluate().unwrap();
        // Different content fingerprint, so the second evaluation must miss.
        let stats = env.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 2, 2));
    }

    #[test]
    fn cloned_environment_shares_warm_cache() {
        let env = make_env(2);
        let a = env.evaluate().unwrap();
        let clone = env.clone();
        let b = clone.evaluate().unwrap();
        assert_eq!(a, b);
        assert_eq!(clone.cache_stats().hits, 1);
        // The cache is shared both ways: entries computed by the clone are
        // visible to the original, and clearing clears the whole family.
        let original_stats = env.cache_stats();
        assert_eq!(original_stats.hits, 1);
        env.clear_eval_cache();
        assert_eq!(env.cache_stats(), CacheStats::default());
        assert_eq!(clone.cache_stats().entries, 0);
    }

    #[test]
    fn cache_export_preload_roundtrip() {
        let env = make_env(3);
        env.evaluate().unwrap();
        let exported = env.export_cache_entries();
        assert_eq!(exported.len(), 1);
        let sorted = {
            let mut s = exported.clone();
            s.sort_by_key(|&(a, b, _)| (a, b));
            s
        };
        assert_eq!(exported, sorted, "export must be key-sorted");

        // A fresh environment preloaded with the export answers the same
        // evaluation from cache — no new miss.
        let fresh = make_env(3);
        fresh.preload_cache(&exported);
        let before = fresh.cache_stats();
        assert_eq!((before.hits, before.misses, before.entries), (0, 0, 1));
        assert_eq!(fresh.evaluate().unwrap(), env.evaluate().unwrap());
        let after = fresh.cache_stats();
        assert_eq!((after.hits, after.misses), (1, 0));
    }

    #[test]
    fn feature_cache_recomputes_only_mutated_columns() {
        let mut env = make_env(10);
        let mut rng = StdRng::seed_from_u64(0);
        env.evaluate().unwrap();
        let warm = env.feature_cache_stats();
        assert!(warm.block_entries > 0);
        env.clean_step(0, ErrorType::MissingValues, &[], &[], &mut rng).unwrap();
        env.evaluate().unwrap();
        let after = env.feature_cache_stats();
        // One cleaning step touches column 0 of each split; every other
        // column's block is answered from cache (the train column's new
        // stats also re-key the test column's block, hence exactly two).
        assert_eq!(after.block_misses - warm.block_misses, 2);
        assert!(after.block_hits > warm.block_hits);
    }

    #[test]
    fn feature_caching_disabled_matches_cached_path() {
        let mut env = make_env(11);
        env.clear_feature_cache();
        env.set_feature_caching(false);
        assert!(!env.feature_caching());
        let before = env.feature_cache_stats();
        let a = env.evaluate().unwrap();
        let stats = env.feature_cache_stats();
        // Counters describe the whole process run (construction warms the
        // cache), so the disabled path is visible as a zero delta.
        assert_eq!(stats.block_hits, before.block_hits);
        assert_eq!(stats.block_misses, before.block_misses);
        assert_eq!(stats.block_entries, 0);
        // Re-enabling produces the identical score through the cached path.
        env.set_feature_caching(true);
        env.clear_eval_cache();
        let b = env.evaluate().unwrap();
        assert_eq!(a, b);
        assert!(env.feature_cache_stats().block_misses > 0);
    }

    #[test]
    fn cloned_environment_shares_feature_cache() {
        let env = make_env(12);
        env.evaluate().unwrap();
        let clone = env.clone();
        clone.clear_eval_cache(); // force the clone to re-featurize
        let before = env.feature_cache_stats();
        clone.evaluate().unwrap();
        let after = env.feature_cache_stats();
        // All blocks come from the shared cache: hits move, misses do not.
        assert!(after.block_hits > before.block_hits);
        assert_eq!(after.block_misses, before.block_misses);
    }

    #[test]
    fn candidate_pairs_track_dirt() {
        let env = make_env(3);
        let pairs = env.candidate_pairs(&[ErrorType::MissingValues]);
        let cols: Vec<usize> = pairs.iter().map(|&(c, _)| c).collect();
        assert_eq!(cols, vec![0, 1, 2]);
        assert!(env.pair_dirty(0, ErrorType::MissingValues));
        assert!(!env.pair_dirty(5, ErrorType::MissingValues));
        assert!(!env.pair_dirty(0, ErrorType::GaussianNoise));
    }

    #[test]
    fn clean_step_reduces_dirt_and_terminates() {
        let mut env = make_env(4);
        let mut rng = StdRng::seed_from_u64(0);
        let before = env.total_dirty().unwrap();
        let (ctr, cte) = env.clean_step(0, ErrorType::MissingValues, &[], &[], &mut rng).unwrap();
        assert!(ctr > 0 && ctr <= env.step_train());
        assert!(cte <= env.step_test());
        let after = env.total_dirty().unwrap();
        assert_eq!(before - after, ctr + cte);

        // Keep cleaning column 0 until its pair is clean.
        let mut guard = 0;
        while env.pair_dirty(0, ErrorType::MissingValues) {
            env.clean_step(0, ErrorType::MissingValues, &[], &[], &mut rng).unwrap();
            guard += 1;
            assert!(guard < 200, "cleaning must terminate");
        }
        assert_eq!(env.dirty_train_rows(0, ErrorType::MissingValues).len(), 0);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut env = make_env(5);
        let mut rng = StdRng::seed_from_u64(1);
        let snap = env.snapshot(0).unwrap();
        let dirty_before = env.dirty_train_rows(0, ErrorType::MissingValues);
        env.clean_step(0, ErrorType::MissingValues, &[], &[], &mut rng).unwrap();
        assert_ne!(env.dirty_train_rows(0, ErrorType::MissingValues), dirty_before);
        env.restore(&snap).unwrap();
        assert_eq!(env.dirty_train_rows(0, ErrorType::MissingValues), dirty_before);
    }

    #[test]
    fn preferred_rows_cleaned_first() {
        let mut env = make_env(6);
        let mut rng = StdRng::seed_from_u64(2);
        let dirty = env.dirty_train_rows(0, ErrorType::MissingValues);
        let preferred = vec![dirty[0]];
        env.clean_step(0, ErrorType::MissingValues, &preferred, &[], &mut rng).unwrap();
        assert!(!env.dirty_train_rows(0, ErrorType::MissingValues).contains(&dirty[0]));
    }

    #[test]
    fn fully_cleaned_f1_at_least_plausible() {
        let env = make_env(7);
        let clean_f1 = env.fully_cleaned_f1().unwrap();
        assert!((0.0..=1.0).contains(&clean_f1));
        assert!(!env.is_fully_clean().unwrap());
    }

    #[test]
    fn clean_records_clears_across_features() {
        let mut env = make_env(8);
        let mut rng = StdRng::seed_from_u64(3);
        let (rows0, _) = env.gt_dirty_rows(0).unwrap();
        let changed = env.clean_records(&rows0, &[], &mut rng).unwrap();
        assert!(changed >= rows0.len());
        assert!(env.dirty_train_rows(0, ErrorType::MissingValues).is_empty());
    }

    #[test]
    fn mismatched_frame_schemas_are_a_typed_error() {
        // The public evaluation entry points are where caller-shaped row
        // lengths could reach the kernels' equal-dimensionality contract;
        // they must surface as `EnvError::Invalid`, not debug-only UB.
        let env = make_env(13);
        let mut rng = StdRng::seed_from_u64(0);
        let other = comet_datasets::Dataset::Cmc.generate(Some(50), &mut rng);
        let err = env.evaluate_frames(env.train(), &other).unwrap_err();
        assert!(matches!(&err, EnvError::Invalid(msg) if msg.contains("schema")));
        let err = env.evaluate_frames_probe(env.train(), &other).unwrap_err();
        assert!(matches!(&err, EnvError::Invalid(msg) if msg.contains("schema")));
    }

    #[test]
    fn f32_probes_use_a_distinct_cache_key_and_stay_deterministic() {
        let mut env = make_env(14);
        assert!(!env.f32_probes());
        // Flag off: the probe path is the f64 path, same cache entry.
        let f64_score = env.evaluate_frames_probe(env.train(), env.test()).unwrap();
        assert_eq!(f64_score, env.evaluate().unwrap());
        assert_eq!(env.cache_stats().entries, 1);

        env.set_f32_probes(true);
        assert!(env.f32_probes());
        let a = env.evaluate_frames_probe(env.train(), env.test()).unwrap();
        let b = env.evaluate_frames_probe(env.train(), env.test()).unwrap();
        assert_eq!(a, b, "f32 probes must be deterministic");
        assert!((0.0..=1.0).contains(&a));
        // The salted key keeps probe scores from answering f64 lookups.
        let stats = env.cache_stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(env.evaluate().unwrap(), f64_score);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = comet_datasets::Dataset::Eeg.generate(Some(50), &mut rng);
        let b = comet_datasets::Dataset::Cmc.generate(Some(50), &mut rng);
        let res = CleaningEnvironment::new(
            a.clone(),
            b.clone(),
            GroundTruth::new(a.clone()),
            GroundTruth::new(b.clone()),
            Provenance::for_frame(&a),
            Provenance::for_frame(&b),
            Algorithm::Knn,
            Metric::F1,
            0.01,
            RandomSearch::default(),
            0,
            &mut rng,
        );
        assert!(res.is_err());
    }

    #[test]
    fn detect_reports_require_detection_mode() {
        let env = make_env(20);
        assert!(env.detection().is_none());
        assert!(matches!(env.detect_reports(), Err(EnvError::Invalid(_))));
        assert!(matches!(env.detector_scores(), Err(EnvError::Invalid(_))));
    }

    #[test]
    fn detection_mode_candidates_come_from_detectors_not_provenance() {
        let mut env = make_env(21);
        let oracle_pairs = env.candidate_pairs(&[ErrorType::MissingValues]);
        env.enable_detection(DetectorConfig::default());
        assert!(env.detection().is_some());
        let detect_pairs = env.candidate_pairs(&[ErrorType::MissingValues]);
        // Missing sentinels are trivially detectable, so every column the
        // oracle lists must also be flagged by the ensemble.
        let detect_cols: BTreeSet<usize> = detect_pairs.iter().map(|&(c, _)| c).collect();
        for &(col, _) in &oracle_pairs {
            assert!(detect_cols.contains(&col), "oracle col {col} missing from detection");
        }
        // And the family filter still applies.
        assert!(env.candidate_pairs(&[ErrorType::CategoricalShift]).is_empty());
    }

    #[test]
    fn detect_reports_are_memoized_and_invalidated_by_cleaning() {
        let mut env = make_env(22);
        env.enable_detection(DetectorConfig::default());
        let (a_train, _) = env.detect_reports().unwrap();
        let (b_train, _) = env.detect_reports().unwrap();
        assert_eq!(a_train, b_train, "repeat detection must be memoized/deterministic");
        // The memo is shared with clones, like the eval cache.
        let clone = env.clone();
        let (c_train, _) = clone.detect_reports().unwrap();
        assert_eq!(a_train, c_train);
        // Cleaning changes the frame fingerprint: flags must not grow.
        let mut rng = StdRng::seed_from_u64(0);
        let before = a_train.flagged_cell_count();
        env.clean_step(0, ErrorType::MissingValues, &[], &[], &mut rng).unwrap();
        let (after_train, _) = env.detect_reports().unwrap();
        assert!(after_train.flagged_cell_count() < before);
    }

    #[test]
    fn detect_clean_step_cleans_any_dirt_and_learns_false_positives() {
        let mut env = make_env(23);
        env.enable_detection(DetectorConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let before = env.total_dirty().unwrap();
        // The detector attributes sentinel cells to MissingValues; cleaning
        // through the detect path restores real ground-truth dirt.
        let (ctr, cte) = env.clean_step(0, ErrorType::MissingValues, &[], &[], &mut rng).unwrap();
        assert!(ctr + cte > 0);
        assert_eq!(before - env.total_dirty().unwrap(), ctr + cte);

        // Drain column 0 completely, then one more step on the now-clean
        // column: zero cells cleaned marks the pair exhausted and it leaves
        // the candidate list even if a detector still (falsely) flags it.
        let mut guard = 0;
        while !env.gt_dirty_rows(0).map(|(a, b)| a.is_empty() && b.is_empty()).unwrap() {
            env.clean_step(0, ErrorType::MissingValues, &[], &[], &mut rng).unwrap();
            guard += 1;
            assert!(guard < 300, "detect-mode cleaning must terminate");
        }
        env.clean_step(0, ErrorType::MissingValues, &[], &[], &mut rng).unwrap();
        let pairs = env.candidate_pairs(&[ErrorType::MissingValues]);
        assert!(
            !pairs.iter().any(|&(c, e)| c == 0 && e == ErrorType::MissingValues),
            "exhausted pair must not be re-offered: {pairs:?}"
        );
    }

    #[test]
    fn detector_scores_track_planted_missing_values() {
        let mut env = make_env(24);
        env.enable_detection(DetectorConfig::default());
        let scores = env.detector_scores().unwrap();
        let ms = scores
            .iter()
            .find(|s| s.detector == comet_detect::DetectorKind::MissingSentinel)
            .unwrap();
        // Every planted MissingValues cell is an invalid cell, so the
        // sentinel detector has perfect recall here (precision can dip if
        // the generator produced natural missings, which Eeg does not).
        assert!(ms.true_dirty > 0);
        assert!((ms.recall - 1.0).abs() < 1e-12, "recall {}", ms.recall);
        assert!(ms.precision > 0.99, "precision {}", ms.precision);
    }
}
