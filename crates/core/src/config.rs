//! COMET configuration.

use crate::cost::CostPolicy;
use comet_detect::DetectorConfig;
use comet_ml::kernels::KernelTier;
use comet_ml::{Metric, RandomSearch};

/// All knobs of a COMET run. Defaults follow the paper's experimental setup
/// (§4); the ablation benchmarks flip individual switches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CometConfig {
    /// Cleaning/pollution step as a fraction of the split size (§4.1: 1 %).
    pub step_frac: f64,
    /// How many *additional* pollution steps the Polluter probes (§3.1: 2).
    pub pollution_steps: usize,
    /// Random cell combinations per pollution level (§3.1: "multiple").
    pub n_combinations: usize,
    /// Prediction-accuracy metric (paper: F1).
    pub metric: Metric,
    /// Total cleaning budget in cost units (§4.2: 50).
    pub budget: f64,
    /// Cost policy.
    pub costs: CostPolicy,
    /// Credible-interval level for the Estimator's uncertainty.
    pub interval: f64,
    /// Polynomial degree of the Bayesian regression basis.
    pub blr_degree: usize,
    /// Hyperparameter search executed once per configuration (§4.4).
    pub search: RandomSearch,
    /// Seed for deterministic model evaluations.
    pub eval_seed: u64,
    /// Ablation: subtract the uncertainty in the score (paper: true).
    pub use_uncertainty: bool,
    /// Ablation: per-feature bias correction of predictions (paper: true).
    pub bias_correction: bool,
    /// Ablation: revert-and-buffer on F1 decrease (paper: true).
    pub revert_on_decrease: bool,
    /// Ablation: fallback strategy when no candidate is positive (paper: true).
    pub fallback: bool,
    /// Recommend and clean up to this many features per iteration (the
    /// paper's future-work extension, §6; 1 = the paper's step-by-step
    /// behaviour). Batches are accepted or reverted as a unit.
    pub batch_size: usize,
    /// How many times a failed candidate evaluation (panic, NaN loss,
    /// estimator error) is retried before the candidate is recorded as
    /// failed and skipped for the iteration.
    pub max_retries: usize,
    /// Kernel tier for all linear-algebra reductions (DESIGN.md §12).
    /// Each tier has one fixed reduction order, so the tier is part of the
    /// session's determinism contract: it is fingerprinted, recorded in
    /// checkpoint headers, and a resume under a different tier is refused.
    /// Defaults to the `COMET_KERNELS` environment variable, else scalar.
    pub kernels: KernelTier,
    /// Run the Estimator's inner pollution-probe evaluations with f32
    /// model training (SGD/MLP/KNN forward passes). The Bayesian fit,
    /// ranking, and every accepted-step evaluation stay f64; only the
    /// what-if probes drop precision. Off by default.
    pub f32_probes: bool,
    /// Detection-seeded mode: when set, candidate `(feature, error)` pairs
    /// come from a deterministic detector ensemble scanning the dirty
    /// frames instead of the JENGA provenance oracle (DESIGN.md §13). The
    /// detector configuration is part of the session identity: it is
    /// fingerprinted into checkpoint headers and a resume under a
    /// different configuration is refused. `None` = oracle mode (the
    /// paper's setup).
    pub detect: Option<DetectorConfig>,
    /// Rows per column segment (DESIGN.md §15). `0` = whole-column (one
    /// segment per column). Traces are bit-identical across segment sizes,
    /// but spill files, feature-block cache keys, and pollution clone
    /// granularity are per-segment, so the value is fingerprinted into
    /// checkpoint headers and a cross-segment-size resume is refused.
    pub segment_rows: usize,
}

impl Default for CometConfig {
    fn default() -> Self {
        CometConfig {
            step_frac: 0.01,
            pollution_steps: 2,
            n_combinations: 2,
            metric: Metric::F1,
            budget: 50.0,
            costs: CostPolicy::constant(),
            interval: 0.95,
            blr_degree: 1,
            search: RandomSearch::default(),
            eval_seed: 0x5EED,
            use_uncertainty: true,
            bias_correction: true,
            revert_on_decrease: true,
            fallback: true,
            batch_size: 1,
            max_retries: 1,
            kernels: KernelTier::from_env_or_scalar(),
            f32_probes: false,
            detect: None,
            segment_rows: comet_frame::DEFAULT_SEGMENT_ROWS,
        }
    }
}

impl CometConfig {
    /// Validate invariant-critical fields.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.step_frac > 0.0 && self.step_frac <= 1.0) {
            return Err(format!("step_frac must be in (0,1], got {}", self.step_frac));
        }
        if self.pollution_steps == 0 {
            return Err("pollution_steps must be at least 1".into());
        }
        if self.n_combinations == 0 {
            return Err("n_combinations must be at least 1".into());
        }
        if !(self.interval > 0.0 && self.interval < 1.0) {
            return Err(format!("interval must be in (0,1), got {}", self.interval));
        }
        if self.budget < 0.0 {
            return Err("budget must be non-negative".into());
        }
        if self.batch_size == 0 {
            return Err("batch_size must be at least 1".into());
        }
        if let Some(detect) = &self.detect {
            detect.validate().map_err(|e| format!("detect: {e}"))?;
        }
        Ok(())
    }

    /// Paper multi-error setup: multi-error cost policy, everything else
    /// default.
    pub fn multi_error() -> Self {
        CometConfig { costs: CostPolicy::paper_multi(), ..CometConfig::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CometConfig::default();
        assert_eq!(c.step_frac, 0.01);
        assert_eq!(c.pollution_steps, 2);
        assert_eq!(c.budget, 50.0);
        assert_eq!(c.search.n_samples, 10);
        assert_eq!(c.max_retries, 1);
        assert!(c.use_uncertainty && c.bias_correction && c.revert_on_decrease && c.fallback);
        // The paper's numbers were produced with full-precision probes;
        // the kernel tier only follows an explicit opt-in.
        assert_eq!(c.kernels, KernelTier::from_env_or_scalar());
        assert!(!c.f32_probes);
        assert!(c.detect.is_none(), "the paper's setup is oracle mode");
        assert_eq!(c.segment_rows, comet_frame::DEFAULT_SEGMENT_ROWS);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_fields() {
        let bad = [
            CometConfig { step_frac: 0.0, ..CometConfig::default() },
            CometConfig { pollution_steps: 0, ..CometConfig::default() },
            CometConfig { n_combinations: 0, ..CometConfig::default() },
            CometConfig { interval: 1.0, ..CometConfig::default() },
            CometConfig { budget: -1.0, ..CometConfig::default() },
            CometConfig { batch_size: 0, ..CometConfig::default() },
            CometConfig {
                detect: Some(comet_detect::DetectorConfig {
                    knn_k: 0,
                    ..comet_detect::DetectorConfig::default()
                }),
                ..CometConfig::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err(), "{c:?} should be invalid");
        }
    }

    #[test]
    fn multi_error_uses_paper_costs() {
        let c = CometConfig::multi_error();
        assert_eq!(c.costs, CostPolicy::paper_multi());
    }
}
