//! Session checkpoint/resume.
//!
//! While a session runs with a [`CheckpointSpec`], it appends one JSONL
//! record per outer-loop iteration (flushed per line, so a killed process
//! loses at most the line it was writing). A resumed session replays from
//! iteration 0 with the evaluation cache preloaded from the checkpoint —
//! replayed iterations answer every model evaluation from cache, and the
//! warm-cache determinism property makes the replay bit-identical to the
//! interrupted run. Each replayed iteration is verified against its stored
//! record (trace fingerprint, budget, rng draw count); any divergence is a
//! [`CometError::Checkpoint`], never a silently different result.
//!
//! All `u64` identities (seeds, fingerprints) are serialized as 16-digit
//! hex *strings*: the journal's JSON parser reads numbers as `f64`, which
//! only carries 53 bits.

use crate::config::CometConfig;
use crate::error::CometError;
use crate::trace::CleaningTrace;
use comet_detect::DetectorConfig;
use comet_jenga::ErrorType;
use comet_ml::kernels::KernelTier;
use comet_obs::json::{self, JsonObject, JsonValue};
use rand::RngCore;
use std::collections::BTreeSet;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};

/// Where a session persists its progress, and whether to resume from an
/// existing file first.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Checkpoint file (JSONL, rewritten on every run).
    pub path: PathBuf,
    /// Load the file and resume the interrupted run it records.
    pub resume: bool,
}

fn mix(h: u64, w: u64) -> u64 {
    const M: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    (h.rotate_left(5) ^ w).wrapping_mul(M)
}

fn mix_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = mix(h, b as u64);
    }
    h
}

/// Fingerprint of everything that must match for a checkpoint to be
/// resumable: the full config and the candidate error set.
pub(crate) fn config_fingerprint(config: &CometConfig, errors: &[ErrorType]) -> u64 {
    mix_bytes(0xC0_FF_EE, format!("{config:?}|{errors:?}").as_bytes())
}

/// Fingerprint of the detection setup, `None` included. Detection decides
/// which candidate pairs the session even sees, so a checkpoint taken
/// under one detector configuration (or under oracle mode) must refuse
/// silent resume under another. Debug-derived like [`config_fingerprint`]:
/// any future `DetectorConfig` field is covered automatically.
pub(crate) fn detect_fingerprint(detect: &Option<DetectorConfig>) -> u64 {
    mix_bytes(0xDE_7E_C7, format!("{detect:?}").as_bytes())
}

/// Fingerprint of every decision the trace has accumulated so far —
/// records, failures, and the F1 curve, bit-exact (f64s hashed by their
/// bit patterns). Divergence detection during resume replay. Seeded with
/// the kernel tier, its lane count, and the f32-probe flag: each tier has
/// its own fixed reduction order, so traces produced under different
/// tiers are distinct even when their decisions happen to coincide.
pub(crate) fn trace_fingerprint(trace: &CleaningTrace, tier: KernelTier, f32_probes: bool) -> u64 {
    let mut h = mix_bytes(0x7_2A_CEu64, tier.name().as_bytes());
    h = mix(h, tier.lanes() as u64);
    h = mix(h, f32_probes as u64);
    for r in &trace.records {
        h = mix(h, r.iteration as u64);
        h = mix(h, r.col as u64);
        h = mix(h, r.err as u64);
        h = mix_bytes(h, format!("{:?}", r.action).as_bytes());
        h = mix(h, r.cost.to_bits());
        h = mix(h, r.budget_spent.to_bits());
        h = mix(h, r.predicted_f1.map_or(u64::MAX, f64::to_bits));
        h = mix(h, r.raw_predicted_f1.map_or(u64::MAX, f64::to_bits));
        h = mix(h, r.actual_f1.to_bits());
        h = mix(h, r.cleaned_cells as u64);
    }
    for f in &trace.failures {
        h = mix(h, f.iteration as u64);
        h = mix(h, f.col as u64);
        h = mix(h, f.err as u64);
        h = mix_bytes(h, f.reason.as_bytes());
        h = mix(h, f.retries as u64);
    }
    for &(spent, f1) in &trace.f1_curve {
        h = mix(h, spent.to_bits());
        h = mix(h, f1.to_bits());
    }
    h
}

pub(crate) fn hex_u64(v: u64) -> String {
    format!("{v:016x}")
}

pub(crate) fn parse_hex(s: &str) -> Result<u64, CometError> {
    u64::from_str_radix(s, 16)
        .map_err(|e| CometError::Checkpoint(format!("bad hex value {s:?}: {e}")))
}

/// An rng adapter that counts draws. The per-iteration draw count goes
/// into the checkpoint, giving resume verification a cheap view of the
/// session's sequential randomness consumption.
pub(crate) struct CountingRng<'a, R: RngCore> {
    inner: &'a mut R,
    draws: u64,
}

impl<'a, R: RngCore> CountingRng<'a, R> {
    pub fn new(inner: &'a mut R) -> Self {
        CountingRng { inner, draws: 0 }
    }

    /// Draws consumed so far (each `next_u32`/`next_u64`/`fill_bytes`
    /// call counts as one).
    pub fn draws(&self) -> u64 {
        self.draws
    }
}

impl<R: RngCore> RngCore for CountingRng<'_, R> {
    fn next_u32(&mut self) -> u32 {
        self.draws += 1;
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.draws += 1;
        self.inner.fill_bytes(dest);
    }
}

/// One iteration's stored verification record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct IterationCheckpoint {
    pub iteration: usize,
    /// Cumulative budget spent after this iteration.
    pub budget_spent: f64,
    /// Cumulative sequential rng draws after this iteration.
    pub rng_draws: u64,
    /// Total trace records after this iteration.
    pub records: usize,
    /// [`trace_fingerprint`] after this iteration.
    pub trace_fp: u64,
}

/// Everything a checkpoint file holds.
#[derive(Debug, Clone)]
pub(crate) struct CheckpointData {
    pub session_seed: u64,
    pub config_fp: u64,
    pub budget_total: f64,
    /// Kernel tier the run was recorded under. Headers predating the
    /// tiered kernels default to scalar — the only tier that existed.
    pub kernel_tier: KernelTier,
    /// Reduction lane count of that tier (redundant with the tier name,
    /// persisted so a mismatch error can state both sides' orders).
    pub lane_count: u64,
    /// Whether probe evaluations ran in the f32 tier.
    pub f32_probes: bool,
    /// [`detect_fingerprint`] of the run's detection setup. Headers
    /// predating detection mode default to the fingerprint of `None` —
    /// oracle mode was the only mode that existed.
    pub detect_fp: u64,
    /// Column segment size the run was recorded under (`0` = whole
    /// column). Spill files and feature-block cache keys are per-segment,
    /// so a resume under a different segmentation is refused even though
    /// traces are bit-identical across sizes. Headers predating segmented
    /// frames default to the default segment size — the layout every
    /// earlier run used implicitly.
    pub segment_rows: u64,
    /// Union of all persisted evaluation-cache entries, in file order.
    pub cache: Vec<(u64, u64, f64)>,
    pub iterations: Vec<IterationCheckpoint>,
}

impl Default for CheckpointData {
    fn default() -> Self {
        CheckpointData {
            session_seed: 0,
            config_fp: 0,
            budget_total: 0.0,
            kernel_tier: KernelTier::Scalar,
            lane_count: KernelTier::Scalar.lanes() as u64,
            f32_probes: false,
            detect_fp: detect_fingerprint(&None),
            segment_rows: comet_frame::DEFAULT_SEGMENT_ROWS as u64,
            cache: Vec::new(),
            iterations: Vec::new(),
        }
    }
}

fn cache_array(entries: &[(u64, u64, f64)]) -> String {
    let items: Vec<String> = entries
        .iter()
        .map(|&(a, b, score)| format!("[\"{}\",\"{}\",{score}]", hex_u64(a), hex_u64(b)))
        .collect();
    format!("[{}]", items.join(","))
}

/// Appends checkpoint records, one flushed JSONL line each. Tracks which
/// cache entries are already persisted so every entry is written once.
pub(crate) struct CheckpointWriter {
    out: BufWriter<File>,
    seen: BTreeSet<(u64, u64)>,
    faults: Option<std::sync::Arc<crate::faults::FaultPlan>>,
}

impl CheckpointWriter {
    /// Create (truncate) the checkpoint file and write its header. The
    /// kernel tier, its lane count, and the f32-probe flag are part of the
    /// header because a checkpoint taken under one reduction order must
    /// refuse silent resume under another.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        path: &Path,
        session_seed: u64,
        config_fp: u64,
        budget_total: f64,
        kernel_tier: KernelTier,
        f32_probes: bool,
        detect_fp: u64,
        segment_rows: usize,
    ) -> Result<Self, CometError> {
        let file = File::create(path).map_err(|e| {
            CometError::Checkpoint(format!("cannot create {}: {e}", path.display()))
        })?;
        let mut writer =
            CheckpointWriter { out: BufWriter::new(file), seen: BTreeSet::new(), faults: None };
        let mut obj = JsonObject::new();
        obj.field_str("kind", "checkpoint_header")
            .field_u64("version", 1)
            .field_str("session_seed", &hex_u64(session_seed))
            .field_str("config_fp", &hex_u64(config_fp))
            .field_f64("budget_total", budget_total)
            .field_str("kernel_tier", kernel_tier.name())
            .field_u64("lane_count", kernel_tier.lanes() as u64)
            .field_u64("f32_probes", f32_probes as u64)
            .field_str("detect_fp", &hex_u64(detect_fp))
            .field_u64("segment_rows", segment_rows as u64);
        writer.write_line(&obj.finish())?;
        Ok(writer)
    }

    fn write_line(&mut self, line: &str) -> Result<(), CometError> {
        self.out
            .write_all(line.as_bytes())
            .and_then(|_| self.out.write_all(b"\n"))
            .and_then(|_| self.out.flush())
            .map_err(|e| CometError::Checkpoint(format!("write failed: {e}")))
    }

    /// Entries not yet persisted. `seen` is only updated by [`Self::commit`]
    /// *after* a successful write, so a failed write (real or injected) can
    /// be retried without dropping entries from the file.
    fn fresh(&self, entries: &[(u64, u64, f64)]) -> Vec<(u64, u64, f64)> {
        entries.iter().copied().filter(|&(a, b, _)| !self.seen.contains(&(a, b))).collect()
    }

    fn commit(&mut self, fresh: &[(u64, u64, f64)]) {
        for &(a, b, _) in fresh {
            self.seen.insert((a, b));
        }
    }

    /// Persist cache entries outside any iteration (resume writes the
    /// preloaded entries up front so the rewritten file stays
    /// self-contained).
    pub fn write_cache(&mut self, entries: &[(u64, u64, f64)]) -> Result<(), CometError> {
        let fresh = self.fresh(entries);
        let mut obj = JsonObject::new();
        obj.field_str("kind", "checkpoint_cache").field_raw("entries", &cache_array(&fresh));
        self.write_line(&obj.finish())?;
        self.commit(&fresh);
        Ok(())
    }

    /// Arm deterministic I/O fault injection: a
    /// [`crate::faults::FaultKind::CheckpointWriteError`] spec in `plan`
    /// makes [`Self::write_iteration`] fail at that iteration as if the
    /// disk did.
    pub fn with_faults(mut self, plan: std::sync::Arc<crate::faults::FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Persist one completed iteration plus the cache entries it added.
    pub fn write_iteration(
        &mut self,
        record: &IterationCheckpoint,
        cache_entries: &[(u64, u64, f64)],
    ) -> Result<(), CometError> {
        // Injection happens before `seen` is updated, so a retried write
        // after a transient fault still persists every fresh cache entry.
        if let Some(plan) = &self.faults {
            if plan.arm_checkpoint(record.iteration) {
                return Err(CometError::Checkpoint(format!(
                    "injected checkpoint write failure at iteration {}",
                    record.iteration
                )));
            }
        }
        let fresh = self.fresh(cache_entries);
        let mut obj = JsonObject::new();
        obj.field_str("kind", "checkpoint_iteration")
            .field_u64("iteration", record.iteration as u64)
            .field_f64("budget_spent", record.budget_spent)
            .field_u64("rng_draws", record.rng_draws)
            .field_u64("records", record.records as u64)
            .field_str("trace_fp", &hex_u64(record.trace_fp))
            .field_raw("cache", &cache_array(&fresh));
        self.write_line(&obj.finish())?;
        self.commit(&fresh);
        Ok(())
    }
}

fn get_f64(value: &JsonValue, key: &str) -> Result<f64, CometError> {
    value
        .get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| CometError::Checkpoint(format!("missing numeric field {key:?}")))
}

fn get_hex(value: &JsonValue, key: &str) -> Result<u64, CometError> {
    let s = value
        .get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| CometError::Checkpoint(format!("missing hex field {key:?}")))?;
    parse_hex(s)
}

fn parse_cache(value: &JsonValue) -> Result<Vec<(u64, u64, f64)>, CometError> {
    let JsonValue::Arr(items) = value else {
        return Err(CometError::Checkpoint("cache field is not an array".into()));
    };
    let mut entries = Vec::with_capacity(items.len());
    for item in items {
        let JsonValue::Arr(triple) = item else {
            return Err(CometError::Checkpoint("cache entry is not an array".into()));
        };
        let [a, b, score] = triple.as_slice() else {
            return Err(CometError::Checkpoint("cache entry is not a triple".into()));
        };
        let bad = || CometError::Checkpoint("malformed cache entry".into());
        entries.push((
            parse_hex(a.as_str().ok_or_else(bad)?)?,
            parse_hex(b.as_str().ok_or_else(bad)?)?,
            score.as_f64().ok_or_else(bad)?,
        ));
    }
    Ok(entries)
}

/// Load a checkpoint file. An unparseable line — the tail a killed writer
/// left behind — ends the load at everything before it; a missing or
/// malformed header is an error.
pub(crate) fn load(path: &Path) -> Result<CheckpointData, CometError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CometError::Checkpoint(format!("cannot read {}: {e}", path.display())))?;
    let mut data = CheckpointData::default();
    let mut has_header = false;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(value) = json::parse(line) else {
            break; // truncated tail of a killed run
        };
        match value.get("kind").and_then(JsonValue::as_str) {
            Some("checkpoint_header") => {
                data.session_seed = get_hex(&value, "session_seed")?;
                data.config_fp = get_hex(&value, "config_fp")?;
                data.budget_total = get_f64(&value, "budget_total")?;
                // Tier fields default (scalar / 4 lanes / f64 probes) when
                // absent: headers written before the kernel tiers existed
                // could only have come from the scalar-tier code path.
                let tier_name =
                    value.get("kernel_tier").and_then(JsonValue::as_str).unwrap_or("scalar");
                data.kernel_tier = KernelTier::parse(tier_name).ok_or_else(|| {
                    CometError::Checkpoint(format!(
                        "unknown kernel tier {tier_name:?} in checkpoint header"
                    ))
                })?;
                data.lane_count = value
                    .get("lane_count")
                    .and_then(JsonValue::as_f64)
                    .map_or(data.kernel_tier.lanes() as u64, |v| v as u64);
                data.f32_probes =
                    value.get("f32_probes").and_then(JsonValue::as_f64).is_some_and(|v| v != 0.0);
                // Absent detect_fp = header from before detection mode;
                // only oracle mode existed then.
                data.detect_fp = match value.get("detect_fp").and_then(JsonValue::as_str) {
                    Some(s) => parse_hex(s)?,
                    None => detect_fingerprint(&None),
                };
                // Absent segment_rows = header from before segmented
                // frames; every run then used the default layout.
                data.segment_rows = value
                    .get("segment_rows")
                    .and_then(JsonValue::as_f64)
                    .map_or(comet_frame::DEFAULT_SEGMENT_ROWS as u64, |v| v as u64);
                has_header = true;
            }
            Some("checkpoint_cache") => {
                let entries = value
                    .get("entries")
                    .ok_or_else(|| CometError::Checkpoint("cache record without entries".into()))?;
                data.cache.extend(parse_cache(entries)?);
            }
            Some("checkpoint_iteration") => {
                data.iterations.push(IterationCheckpoint {
                    iteration: get_f64(&value, "iteration")? as usize,
                    budget_spent: get_f64(&value, "budget_spent")?,
                    rng_draws: get_f64(&value, "rng_draws")? as u64,
                    records: get_f64(&value, "records")? as usize,
                    trace_fp: get_hex(&value, "trace_fp")?,
                });
                if let Some(cache) = value.get("cache") {
                    data.cache.extend(parse_cache(cache)?);
                }
            }
            other => {
                return Err(CometError::Checkpoint(format!("unknown record kind {other:?}")));
            }
        }
    }
    if !has_header {
        return Err(CometError::Checkpoint(format!("{} has no checkpoint header", path.display())));
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{FailureRecord, StepAction, StepRecord};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("comet_checkpoint_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn writer_loader_roundtrip() {
        let path = temp_path("roundtrip.jsonl");
        let mut w = CheckpointWriter::create(
            &path,
            0xDEAD_BEEF_CAFE_F00D,
            0xFFFF_0000_1234_5678,
            50.0,
            KernelTier::Simd,
            true,
            0x1111_2222_3333_4444,
            1024,
        )
        .unwrap();
        w.write_cache(&[(1, 2, 0.5)]).unwrap();
        w.write_iteration(
            &IterationCheckpoint {
                iteration: 0,
                budget_spent: 1.5,
                rng_draws: 3,
                records: 1,
                trace_fp: 0xABCD,
            },
            &[(1, 2, 0.5), (u64::MAX, 3, 0.7125)], // (1,2) already persisted
        )
        .unwrap();
        let data = load(&path).unwrap();
        assert_eq!(data.session_seed, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(data.config_fp, 0xFFFF_0000_1234_5678);
        assert_eq!(data.budget_total, 50.0);
        assert_eq!(data.kernel_tier, KernelTier::Simd);
        assert_eq!(data.lane_count, 8);
        assert!(data.f32_probes);
        assert_eq!(data.detect_fp, 0x1111_2222_3333_4444);
        assert_eq!(data.segment_rows, 1024);
        assert_eq!(data.cache, vec![(1, 2, 0.5), (u64::MAX, 3, 0.7125)]);
        assert_eq!(data.iterations.len(), 1);
        assert_eq!(
            data.iterations[0],
            IterationCheckpoint {
                iteration: 0,
                budget_spent: 1.5,
                rng_draws: 3,
                records: 1,
                trace_fp: 0xABCD,
            }
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_tail_is_tolerated_missing_header_is_not() {
        let path = temp_path("truncated.jsonl");
        let mut w =
            CheckpointWriter::create(&path, 7, 8, 10.0, KernelTier::Scalar, false, 0, 64).unwrap();
        w.write_iteration(
            &IterationCheckpoint {
                iteration: 0,
                budget_spent: 1.0,
                rng_draws: 1,
                records: 1,
                trace_fp: 9,
            },
            &[],
        )
        .unwrap();
        drop(w);
        // Simulate a kill mid-write: append half a record.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"kind\":\"checkpoint_iter");
        std::fs::write(&path, &text).unwrap();
        let data = load(&path).unwrap();
        assert_eq!(data.iterations.len(), 1);

        let headerless = temp_path("headerless.jsonl");
        std::fs::write(&headerless, "{\"kind\":\"checkpoint_cache\",\"entries\":[]}\n").unwrap();
        assert!(matches!(load(&headerless), Err(CometError::Checkpoint(_))));
        std::fs::remove_file(path).ok();
        std::fs::remove_file(headerless).ok();
    }

    #[test]
    fn hex_roundtrips_full_u64_range() {
        for v in [0u64, 1, u64::MAX, 0x8000_0000_0000_0000, (1 << 53) + 1] {
            assert_eq!(parse_hex(&hex_u64(v)).unwrap(), v);
        }
        assert!(parse_hex("not-hex").is_err());
    }

    #[test]
    fn counting_rng_counts_and_passes_through() {
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        let mut counted = CountingRng::new(&mut b);
        assert_eq!(counted.draws(), 0);
        let xs: Vec<u64> = (0..5).map(|_| counted.next_u64()).collect();
        let _ = counted.gen_range(0..100usize);
        assert_eq!(counted.draws(), 6);
        let expect: Vec<u64> = (0..5).map(|_| a.next_u64()).collect();
        assert_eq!(xs, expect, "counting must not perturb the stream");
    }

    #[test]
    fn trace_fingerprint_sees_every_decision_field() {
        let base = CleaningTrace {
            records: vec![StepRecord {
                iteration: 0,
                col: 1,
                err: ErrorType::MissingValues,
                action: StepAction::Accepted,
                cost: 1.0,
                budget_spent: 1.0,
                predicted_f1: Some(0.8),
                raw_predicted_f1: Some(0.79),
                actual_f1: 0.81,
                cleaned_cells: 3,
            }],
            f1_curve: vec![(1.0, 0.81)],
            initial_f1: 0.7,
            final_f1: 0.81,
            fully_clean_f1: Some(0.9),
            ..CleaningTrace::default()
        };
        let fp = |t: &CleaningTrace| trace_fingerprint(t, KernelTier::Scalar, false);
        let base_fp = fp(&base);
        assert_eq!(base_fp, fp(&base.clone()));

        let mut action = base.clone();
        action.records[0].action = StepAction::Reverted;
        assert_ne!(base_fp, fp(&action));

        let mut failed = base.clone();
        failed.failures.push(FailureRecord {
            iteration: 0,
            col: 2,
            err: ErrorType::Scaling,
            reason: "panic: injected".into(),
            retries: 1,
        });
        assert_ne!(base_fp, fp(&failed));

        let mut curve = base.clone();
        curve.f1_curve[0].1 = 0.82;
        assert_ne!(base_fp, fp(&curve));

        // Runtimes are measurement, not decisions.
        let mut timed = base.clone();
        timed.iteration_runtimes.push(std::time::Duration::from_millis(1));
        assert_eq!(base_fp, fp(&timed));

        // The kernel tier and probe precision seed the fingerprint: the
        // same decisions under a different reduction order are a
        // different trace identity.
        assert_ne!(base_fp, trace_fingerprint(&base, KernelTier::Simd, false));
        assert_ne!(base_fp, trace_fingerprint(&base, KernelTier::Scalar, true));
    }

    #[test]
    fn pre_tier_headers_default_to_scalar_f64() {
        // Checkpoints written before the kernel tiers existed carry no
        // tier fields; they could only have come from the scalar/f64 code
        // path and must load as such instead of erroring.
        let path = temp_path("pre_tier.jsonl");
        std::fs::write(
            &path,
            "{\"kind\":\"checkpoint_header\",\"version\":1,\
             \"session_seed\":\"0000000000000007\",\
             \"config_fp\":\"0000000000000008\",\"budget_total\":10}\n",
        )
        .unwrap();
        let data = load(&path).unwrap();
        assert_eq!(data.kernel_tier, KernelTier::Scalar);
        assert_eq!(data.lane_count, 4);
        assert!(!data.f32_probes);
        // Pre-detection headers resume only against oracle mode.
        assert_eq!(data.detect_fp, detect_fingerprint(&None));
        // Pre-segmentation headers recorded the default layout.
        assert_eq!(data.segment_rows, comet_frame::DEFAULT_SEGMENT_ROWS as u64);

        // An unparseable tier name is corruption, not a default.
        std::fs::write(
            &path,
            "{\"kind\":\"checkpoint_header\",\"version\":1,\
             \"session_seed\":\"0000000000000007\",\
             \"config_fp\":\"0000000000000008\",\"budget_total\":10,\
             \"kernel_tier\":\"avx512\"}\n",
        )
        .unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.to_string().contains("avx512"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn config_fingerprint_tracks_config_and_errors() {
        let c = CometConfig::default();
        let errs = vec![ErrorType::MissingValues];
        let fp = config_fingerprint(&c, &errs);
        assert_eq!(fp, config_fingerprint(&c, &errs));
        let other = CometConfig { budget: 49.0, ..c };
        assert_ne!(fp, config_fingerprint(&other, &errs));
        assert_ne!(fp, config_fingerprint(&c, &[ErrorType::MissingValues, ErrorType::Scaling]));
        // The kernel tier and probe precision ride on the Debug format,
        // so they are covered without explicit field handling.
        let tiered = CometConfig { kernels: KernelTier::Simd, ..c };
        assert_ne!(fp, config_fingerprint(&tiered, &errs));
        let probed = CometConfig { f32_probes: true, ..c };
        assert_ne!(fp, config_fingerprint(&probed, &errs));
        // segment_rows rides on the Debug format too: a cross-segment-size
        // resume is refused even before the explicit header check.
        let resized = CometConfig { segment_rows: 1024, ..c };
        assert_ne!(fp, config_fingerprint(&resized, &errs));
    }

    #[test]
    fn detect_fingerprint_separates_modes_and_configs() {
        let none = detect_fingerprint(&None);
        assert_eq!(none, detect_fingerprint(&None));
        let defaults = Some(DetectorConfig::default());
        assert_ne!(none, detect_fingerprint(&defaults));
        // Every knob is covered through the Debug format: thresholds...
        let loose = Some(DetectorConfig { z_threshold: 6.0, ..DetectorConfig::default() });
        assert_ne!(detect_fingerprint(&defaults), detect_fingerprint(&loose));
        // ...and the enabled-detector set (name-based Debug, so this holds
        // even if the bitset representation ever changes).
        let fewer = Some(DetectorConfig {
            enabled: comet_detect::DetectorSet::none()
                .with(comet_detect::DetectorKind::MissingSentinel),
            ..DetectorConfig::default()
        });
        assert_ne!(detect_fingerprint(&defaults), detect_fingerprint(&fewer));
    }
}
