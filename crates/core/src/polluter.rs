//! The Polluter module (paper §3.1): incremental what-if pollution.

use crate::config::CometConfig;
use crate::env::{CleaningEnvironment, EnvError};
use comet_frame::DataFrame;
use comet_jenga::{inject, sample_rows, ErrorType};
use rand::Rng;

/// One additionally-polluted data state `d'_{f,ρ,c}`: the current data with
/// `steps` extra pollution steps applied to feature `col` in combination
/// `combination`.
#[derive(Debug, Clone)]
pub struct PollutedVariant {
    /// Feature polluted.
    pub col: usize,
    /// Error type injected.
    pub err: ErrorType,
    /// Number of additional pollution steps (1-based).
    pub steps: usize,
    /// Which random cell combination this variant belongs to.
    pub combination: usize,
    /// The polluted training split.
    pub train: DataFrame,
    /// The polluted test split.
    pub test: DataFrame,
    /// Training rows polluted in the *first* step of this combination —
    /// the entries handed to the Cleaner as a hint (§3.3).
    pub flagged_train: Vec<usize>,
    /// Test rows polluted in the first step.
    pub flagged_test: Vec<usize>,
}

/// Generates the incrementally polluted variants for one candidate
/// `(feature, error type)` pair.
///
/// The Polluter never consults ground truth: pollution rows are sampled
/// uniformly over *all* rows, so it may overwrite already-dirty cells —
/// exactly the §3.1 behaviour whose impact the paper bounds with the
/// hypergeometric argument.
#[derive(Debug, Clone, Copy)]
pub struct Polluter {
    steps: usize,
    combinations: usize,
}

impl Polluter {
    /// Build from a config (`pollution_steps`, `n_combinations`).
    pub fn from_config(config: &CometConfig) -> Self {
        Polluter { steps: config.pollution_steps, combinations: config.n_combinations }
    }

    /// Explicit constructor.
    pub fn new(steps: usize, combinations: usize) -> Self {
        assert!(steps >= 1, "need at least one pollution step");
        assert!(combinations >= 1, "need at least one combination");
        Polluter { steps, combinations }
    }

    /// Produce all variants for `(col, err)` starting from the environment's
    /// current state: `combinations × steps` frames, where combination `c`
    /// step `s` contains the first `s` pollution steps of combination `c`.
    pub fn variants<R: Rng>(
        &self,
        env: &CleaningEnvironment,
        col: usize,
        err: ErrorType,
        rng: &mut R,
    ) -> Result<Vec<PollutedVariant>, EnvError> {
        let mut out = Vec::with_capacity(self.steps * self.combinations);
        for combination in 0..self.combinations {
            let mut train = env.train().clone();
            let mut test = env.test().clone();
            let mut flagged_train = Vec::new();
            let mut flagged_test = Vec::new();
            for step in 1..=self.steps {
                // Pollution is applied separately to train and test to
                // prevent information leakage (§3.1).
                let rows_tr = sample_rows(train.nrows(), env.step_train(), rng);
                let rec_tr = inject(&mut train, col, &rows_tr, err, rng)?;
                let rows_te = sample_rows(test.nrows(), env.step_test(), rng);
                let rec_te = inject(&mut test, col, &rows_te, err, rng)?;
                if step == 1 {
                    flagged_train = rec_tr.rows();
                    flagged_test = rec_te.rows();
                }
                out.push(PollutedVariant {
                    col,
                    err,
                    steps: step,
                    combination,
                    train: train.clone(),
                    test: test.clone(),
                    flagged_train: flagged_train.clone(),
                    flagged_test: flagged_test.clone(),
                });
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_frame::{train_test_split, SplitOptions};
    use comet_jenga::{GroundTruth, Provenance};
    use comet_ml::{Algorithm, Metric, RandomSearch};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn env() -> CleaningEnvironment {
        let mut rng = StdRng::seed_from_u64(42);
        let df = comet_datasets::Dataset::Eeg.generate(Some(200), &mut rng);
        let tt = train_test_split(&df, SplitOptions::default(), &mut rng).unwrap();
        CleaningEnvironment::new(
            tt.train.clone(),
            tt.test.clone(),
            GroundTruth::new(tt.train.clone()),
            GroundTruth::new(tt.test.clone()),
            Provenance::for_frame(&tt.train),
            Provenance::for_frame(&tt.test),
            Algorithm::Knn,
            Metric::F1,
            0.02,
            RandomSearch { n_samples: 1, ..RandomSearch::default() },
            1,
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn produces_steps_times_combinations_variants() {
        let env = env();
        let polluter = Polluter::new(2, 3);
        let mut rng = StdRng::seed_from_u64(0);
        let variants = polluter.variants(&env, 0, ErrorType::GaussianNoise, &mut rng).unwrap();
        assert_eq!(variants.len(), 6);
        for v in &variants {
            assert_eq!(v.col, 0);
            assert!(v.steps >= 1 && v.steps <= 2);
            assert!(v.combination < 3);
        }
    }

    #[test]
    fn pollution_is_incremental_within_combination() {
        let env = env();
        let gt = GroundTruth::new(env.train().clone());
        let polluter = Polluter::new(2, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let variants = polluter.variants(&env, 0, ErrorType::MissingValues, &mut rng).unwrap();
        let d1 = gt.dirty_count(&variants[0].train, 0).unwrap();
        let d2 = gt.dirty_count(&variants[1].train, 0).unwrap();
        assert_eq!(d1, env.step_train());
        // Step 2 adds another step's worth (minus possible overlap, which
        // MissingValues avoids by skipping already-missing cells... it skips
        // changing them, so overlap reduces the count).
        assert!(d2 > d1 && d2 <= 2 * env.step_train());
        // Step-1 dirt is contained in step-2 dirt.
        let rows1 = gt.dirty_rows(&variants[0].train, 0).unwrap();
        let rows2 = gt.dirty_rows(&variants[1].train, 0).unwrap();
        for r in rows1 {
            assert!(rows2.contains(&r));
        }
    }

    #[test]
    fn only_target_column_is_touched() {
        let env = env();
        let polluter = Polluter::new(2, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let variants = polluter.variants(&env, 3, ErrorType::GaussianNoise, &mut rng).unwrap();
        for v in &variants {
            for col in env.feature_cols() {
                if col == 3 {
                    continue;
                }
                assert_eq!(
                    v.train.column(col).unwrap(),
                    env.train().column(col).unwrap(),
                    "column {col} must be untouched"
                );
            }
            // Labels untouched.
            assert_eq!(v.train.label_codes().unwrap(), env.train().label_codes().unwrap());
        }
    }

    #[test]
    fn environment_state_is_never_mutated() {
        let env = env();
        let before_train = env.train().clone();
        let polluter = Polluter::new(2, 2);
        let mut rng = StdRng::seed_from_u64(3);
        polluter.variants(&env, 0, ErrorType::Scaling, &mut rng).unwrap();
        assert_eq!(env.train(), &before_train);
    }

    #[test]
    fn flagged_rows_are_step_one_rows() {
        let env = env();
        let gt = GroundTruth::new(env.train().clone());
        let polluter = Polluter::new(2, 1);
        let mut rng = StdRng::seed_from_u64(4);
        let variants = polluter.variants(&env, 0, ErrorType::MissingValues, &mut rng).unwrap();
        let mut step1_rows = gt.dirty_rows(&variants[0].train, 0).unwrap();
        step1_rows.sort_unstable();
        let mut flagged = variants[0].flagged_train.clone();
        flagged.sort_unstable();
        assert_eq!(flagged, step1_rows);
        // Step-2 variant carries the same flag (the Cleaner hint is the
        // first step's rows).
        assert_eq!(variants[0].flagged_train.len(), variants[1].flagged_train.len());
    }

    #[test]
    fn combinations_differ() {
        let env = env();
        let polluter = Polluter::new(1, 2);
        let mut rng = StdRng::seed_from_u64(5);
        let variants = polluter.variants(&env, 0, ErrorType::MissingValues, &mut rng).unwrap();
        assert_ne!(
            variants[0].flagged_train, variants[1].flagged_train,
            "different combinations should pollute different cells"
        );
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_steps_rejected() {
        Polluter::new(0, 1);
    }
}
