//! Deterministic fault injection for the session loop.
//!
//! A [`FaultPlan`] forces specific candidate evaluations to fail —
//! panicking mid-training, emitting a NaN loss, or erroring out of the
//! estimator — at chosen `(iteration, col, err)` coordinates. The plan is
//! consulted from inside the candidate closure, so injected faults travel
//! the exact production failure paths (`par_map_catch`, retry, failure
//! records) rather than a test-only shortcut. Injection is deterministic:
//! a coordinate is evaluated by exactly one worker per attempt, and the
//! per-coordinate attempt counter makes transient faults (recover on
//! retry) as reproducible as permanent ones.

use comet_jenga::ErrorType;
use rand::Rng;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// What kind of failure to force on a candidate evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the candidate's training/estimation closure (caught by
    /// `par_map_catch`, never unwinding the session).
    TrainingPanic,
    /// Poison the candidate's predicted F1 with NaN (exercises the
    /// session's finiteness validation).
    NanLoss,
    /// Make the estimator return an error for this candidate.
    EstimatorFailure,
    /// Fail the checkpoint write at the end of the spec's iteration (an
    /// I/O fault: full disk, yanked volume). Unlike the candidate faults
    /// above, this fires from inside `CheckpointWriter::write_iteration`
    /// via [`FaultPlan::arm_checkpoint`] — the spec's `col`/`err` are
    /// ignored. The session retries the write (seed-identical: retries
    /// consume no randomness) and surfaces a typed
    /// [`crate::CometError::Checkpoint`] when retries exhaust.
    CheckpointWriteError,
}

/// One planned fault at a specific candidate coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Outer-loop iteration the fault fires in.
    pub iteration: usize,
    /// Feature column of the targeted candidate.
    pub col: usize,
    /// Error type of the targeted candidate.
    pub err: ErrorType,
    /// Failure mode.
    pub kind: FaultKind,
    /// How many evaluation attempts (first try + retries) the fault
    /// poisons before the candidate recovers; `u32::MAX` is permanent.
    pub attempts: u32,
}

/// A deterministic set of injected faults plus per-coordinate attempt
/// counters. Shared read-mostly across worker threads.
#[derive(Debug, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
    hits: Mutex<BTreeMap<(usize, usize, ErrorType), u32>>,
}

impl FaultPlan {
    /// Build a plan from explicit fault specs.
    pub fn new(specs: Vec<FaultSpec>) -> Self {
        FaultPlan { specs, hits: Mutex::new(BTreeMap::new()) }
    }

    /// Sample `n` transient faults (one poisoned attempt each) over the
    /// given candidate coordinates, deterministically from `rng` — the
    /// session-seeded entry point the fault-injection suite uses.
    pub fn sample<R: Rng>(
        n: usize,
        iterations: usize,
        cols: &[usize],
        errors: &[ErrorType],
        rng: &mut R,
    ) -> Self {
        assert!(!cols.is_empty() && !errors.is_empty(), "need candidate coordinates");
        assert!(iterations > 0, "need at least one iteration");
        const KINDS: [FaultKind; 3] =
            [FaultKind::TrainingPanic, FaultKind::NanLoss, FaultKind::EstimatorFailure];
        let specs = (0..n)
            .map(|_| FaultSpec {
                iteration: rng.gen_range(0..iterations),
                col: cols[rng.gen_range(0..cols.len())],
                err: errors[rng.gen_range(0..errors.len())],
                kind: KINDS[rng.gen_range(0..KINDS.len())],
                attempts: 1,
            })
            .collect();
        FaultPlan::new(specs)
    }

    /// The planned faults.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Check whether a fault fires for this evaluation attempt of
    /// `(iteration, col, err)`. Every call counts as one attempt at that
    /// coordinate; the fault fires while the attempt count is below the
    /// spec's `attempts`, so a transient fault clears after its quota and
    /// the retry succeeds. Fired faults bump the `fault.injected` counter.
    pub fn arm(&self, iteration: usize, col: usize, err: ErrorType) -> Option<FaultKind> {
        // Checkpoint faults have their own injection point
        // ([`Self::arm_checkpoint`]); candidate evaluation never sees them.
        let spec = self.specs.iter().find(|s| {
            s.kind != FaultKind::CheckpointWriteError
                && s.iteration == iteration
                && s.col == col
                && s.err == err
        })?;
        let mut hits = self.hits.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let count = hits.entry((iteration, col, err)).or_insert(0);
        *count += 1;
        if *count <= spec.attempts {
            comet_obs::counter_add("fault.injected", 1);
            Some(spec.kind)
        } else {
            None
        }
    }

    /// Check whether a [`FaultKind::CheckpointWriteError`] fires for this
    /// write attempt of `iteration`'s checkpoint record. Same attempt
    /// semantics as [`Self::arm`]: every call counts as one attempt, the
    /// fault fires while the count is within the spec's `attempts`, so a
    /// transient I/O fault clears and the session's retry succeeds.
    /// Checkpoint specs are keyed by iteration only; attempts are tracked
    /// under a `col` of `usize::MAX`, which no candidate coordinate uses.
    pub fn arm_checkpoint(&self, iteration: usize) -> bool {
        let Some(spec) = self
            .specs
            .iter()
            .find(|s| s.kind == FaultKind::CheckpointWriteError && s.iteration == iteration)
        else {
            return false;
        };
        let mut hits = self.hits.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let count = hits.entry((iteration, usize::MAX, spec.err)).or_insert(0);
        *count += 1;
        if *count <= spec.attempts {
            comet_obs::counter_add("fault.injected", 1);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn transient_fault_clears_after_its_attempt_quota() {
        let plan = FaultPlan::new(vec![FaultSpec {
            iteration: 2,
            col: 1,
            err: ErrorType::MissingValues,
            kind: FaultKind::NanLoss,
            attempts: 2,
        }]);
        // Wrong coordinates never fire (and don't consume attempts).
        assert_eq!(plan.arm(0, 1, ErrorType::MissingValues), None);
        assert_eq!(plan.arm(2, 0, ErrorType::MissingValues), None);
        assert_eq!(plan.arm(2, 1, ErrorType::GaussianNoise), None);
        // First two attempts poisoned, third recovers.
        assert_eq!(plan.arm(2, 1, ErrorType::MissingValues), Some(FaultKind::NanLoss));
        assert_eq!(plan.arm(2, 1, ErrorType::MissingValues), Some(FaultKind::NanLoss));
        assert_eq!(plan.arm(2, 1, ErrorType::MissingValues), None);
    }

    #[test]
    fn permanent_fault_never_clears() {
        let plan = FaultPlan::new(vec![FaultSpec {
            iteration: 0,
            col: 0,
            err: ErrorType::Scaling,
            kind: FaultKind::TrainingPanic,
            attempts: u32::MAX,
        }]);
        for _ in 0..100 {
            assert_eq!(plan.arm(0, 0, ErrorType::Scaling), Some(FaultKind::TrainingPanic));
        }
    }

    #[test]
    fn checkpoint_faults_fire_from_their_own_injection_point() {
        let plan = FaultPlan::new(vec![FaultSpec {
            iteration: 1,
            col: 0,
            err: ErrorType::MissingValues,
            kind: FaultKind::CheckpointWriteError,
            attempts: 2,
        }]);
        // Candidate evaluation never sees a checkpoint spec — even at the
        // spec's own coordinates.
        assert_eq!(plan.arm(1, 0, ErrorType::MissingValues), None);
        // The checkpoint injection point counts attempts independently.
        assert!(!plan.arm_checkpoint(0), "wrong iteration never fires");
        assert!(plan.arm_checkpoint(1));
        assert!(plan.arm_checkpoint(1));
        assert!(!plan.arm_checkpoint(1), "transient fault clears after its quota");
    }

    #[test]
    fn sampled_plan_is_seed_deterministic() {
        let draw = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            FaultPlan::sample(5, 4, &[0, 1, 2], &ErrorType::ALL, &mut rng).specs().to_vec()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10), "different seeds should differ");
        for spec in draw(9) {
            assert!(spec.iteration < 4);
            assert!(spec.col < 3);
            assert_eq!(spec.attempts, 1);
        }
    }
}
