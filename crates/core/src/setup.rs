//! Shared session setup: turn a (dirty, clean) frame pair into a ready
//! [`CleaningEnvironment`].
//!
//! This is the one place that knows how to derive a provenance oracle from
//! a dirty/clean diff and how to split/assemble the environment, so every
//! front end — the `comet recommend` CLI and the `comet-serve` daemon —
//! builds sessions identically. Identical construction order matters: the
//! split and the environment consume the caller's rng sequentially, and
//! any divergence between front ends would silently produce different
//! traces for the same seed.

use crate::env::{CleaningEnvironment, EnvError};
use crate::error::CometError;
use comet_frame::{train_test_split, Cell, DataFrame, SplitOptions};
use comet_jenga::{ErrorType, GroundTruth, Provenance};
use comet_ml::{Algorithm, Metric, RandomSearch};
use rand::Rng;

/// Classify each dirty cell's apparent error type from the dirty/clean
/// diff: empty cells are missing values; changed categoricals are shifts;
/// changed numerics with a power-of-ten ratio are scaling, otherwise
/// noise. This is the oracle-mode candidate source (detection-seeded
/// sessions ignore it).
pub fn derive_provenance(dirty: &DataFrame, gt: &GroundTruth) -> Result<Provenance, CometError> {
    let mut prov = Provenance::for_frame(dirty);
    for col in dirty.feature_indices() {
        let rows = gt.dirty_rows(dirty, col).map_err(EnvError::from)?;
        for row in rows {
            let dirty_cell = dirty.get(row, col)?;
            let clean_cell = gt.clean().get(row, col)?;
            let err = match (dirty_cell, clean_cell) {
                (Cell::Missing, _) => ErrorType::MissingValues,
                (Cell::Cat(_), _) => ErrorType::CategoricalShift,
                (Cell::Num(d), Cell::Num(c)) if c != 0.0 => {
                    let ratio = d / c;
                    let is_pow10 = [10.0, 100.0, 1000.0, 0.1, 0.01, 0.001]
                        .iter()
                        .any(|f| (ratio - f).abs() < 1e-9);
                    if is_pow10 {
                        ErrorType::Scaling
                    } else {
                        ErrorType::GaussianNoise
                    }
                }
                _ => ErrorType::GaussianNoise,
            };
            prov.record(col, row, err);
        }
    }
    Ok(prov)
}

/// Assemble a [`CleaningEnvironment`] from a dirty frame and its clean
/// reference (the simulated Cleaner's ground truth). One split — drawn
/// from `rng` on the *clean* frame — drives both versions, and the
/// provenance oracle is derived from the per-split diffs.
///
/// With `clean == None` the data is treated as its own ground truth
/// (evaluate-only use; no dirt, no candidates).
///
/// `segment_rows` sets the column segment size for both frames (`0` =
/// whole-column); the re-segmentation happens before the split so the
/// train/test frames, their ground truths, and every pollution clone in
/// the session inherit it. Traces are bit-identical across segment sizes.
#[allow(clippy::too_many_arguments)]
pub fn build_paired_env<R: Rng>(
    dirty: DataFrame,
    clean: Option<DataFrame>,
    algorithm: Algorithm,
    step_frac: f64,
    search: RandomSearch,
    eval_seed: u64,
    segment_rows: usize,
    rng: &mut R,
) -> Result<CleaningEnvironment, CometError> {
    let dirty = dirty.resegment(segment_rows).map_err(EnvError::from)?;
    let clean = match clean {
        Some(clean) => {
            if dirty.nrows() != clean.nrows() || dirty.ncols() != clean.ncols() {
                return Err(CometError::Invalid(format!(
                    "dirty and clean frames must have identical shapes \
                     (dirty {}x{}, clean {}x{})",
                    dirty.nrows(),
                    dirty.ncols(),
                    clean.nrows(),
                    clean.ncols()
                )));
            }
            clean.resegment(segment_rows).map_err(EnvError::from)?
        }
        None => dirty.clone(),
    };
    // One split drives both versions.
    let tt = train_test_split(&clean, SplitOptions::default(), rng).map_err(EnvError::from)?;
    let dirty_train = dirty.take(&tt.train_rows)?;
    let dirty_test = dirty.take(&tt.test_rows)?;
    let gt_train = GroundTruth::new(tt.train);
    let gt_test = GroundTruth::new(tt.test);
    let prov_train = derive_provenance(&dirty_train, &gt_train)?;
    let prov_test = derive_provenance(&dirty_test, &gt_test)?;
    Ok(CleaningEnvironment::new(
        dirty_train,
        dirty_test,
        gt_train,
        gt_test,
        prov_train,
        prov_test,
        algorithm,
        Metric::F1,
        step_frac,
        search,
        eval_seed,
        rng,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_frame::Column;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_pair() -> (DataFrame, DataFrame) {
        let n = 40;
        let x: Vec<f64> =
            (0..n).map(|i| if i % 2 == 0 { -2.0 } else { 2.0 } + i as f64 * 0.01).collect();
        let z: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
        let labels: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let clean = DataFrame::new(
            vec![
                Column::numeric("x", x),
                Column::numeric("z", z),
                Column::categorical("y", labels, vec!["no".into(), "yes".into()]).unwrap(),
            ],
            Some("y"),
        )
        .unwrap();
        let mut dirty = clean.clone();
        dirty.set(0, 0, Cell::Missing).unwrap();
        dirty.set(1, 0, Cell::Num(dirty_num(&clean, 1, 0) * 100.0)).unwrap();
        dirty.set(2, 1, Cell::Num(dirty_num(&clean, 2, 1) + 0.37)).unwrap();
        (dirty, clean)
    }

    fn dirty_num(df: &DataFrame, row: usize, col: usize) -> f64 {
        match df.get(row, col).unwrap() {
            Cell::Num(v) => v,
            other => panic!("expected numeric cell, got {other:?}"),
        }
    }

    #[test]
    fn provenance_derivation_classifies_errors() {
        let (dirty, clean) = toy_pair();
        let gt = GroundTruth::new(clean);
        let prov = derive_provenance(&dirty, &gt).unwrap();
        assert_eq!(prov.get(0, 0), Some(ErrorType::MissingValues));
        assert_eq!(prov.get(0, 1), Some(ErrorType::Scaling));
        assert_eq!(prov.get(1, 2), Some(ErrorType::GaussianNoise));
        assert_eq!(prov.get(1, 0), None);
    }

    #[test]
    fn paired_env_builds_and_rejects_shape_mismatch() {
        let (dirty, clean) = toy_pair();
        let mut rng = StdRng::seed_from_u64(3);
        let env = build_paired_env(
            dirty.clone(),
            Some(clean.clone()),
            Algorithm::Knn,
            0.05,
            RandomSearch { n_samples: 1, ..RandomSearch::default() },
            7,
            comet_frame::DEFAULT_SEGMENT_ROWS,
            &mut rng,
        )
        .unwrap();
        assert_eq!(env.train().nrows() + env.test().nrows(), clean.nrows());

        let truncated = clean.take(&(0..clean.nrows() - 1).collect::<Vec<_>>()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let err = build_paired_env(
            dirty,
            Some(truncated),
            Algorithm::Knn,
            0.05,
            RandomSearch { n_samples: 1, ..RandomSearch::default() },
            7,
            comet_frame::DEFAULT_SEGMENT_ROWS,
            &mut rng,
        )
        .unwrap_err();
        assert!(
            matches!(err, CometError::Invalid(ref m) if m.contains("identical shapes")),
            "{err}"
        );
    }

    #[test]
    fn self_ground_truth_env_has_no_candidates() {
        let (_, clean) = toy_pair();
        let mut rng = StdRng::seed_from_u64(9);
        let env = build_paired_env(
            clean,
            None,
            Algorithm::Knn,
            0.05,
            RandomSearch { n_samples: 1, ..RandomSearch::default() },
            7,
            comet_frame::DEFAULT_SEGMENT_ROWS,
            &mut rng,
        )
        .unwrap();
        assert!(env.candidate_pairs(&ErrorType::ALL).is_empty());
    }
}
