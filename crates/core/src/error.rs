//! The workspace-wide error taxonomy for session-level operations.
//!
//! Module-local errors stay where they are ([`EnvError`] for environment
//! operations, `FrameError` for frames, `BayesError` for regression fits);
//! `CometError` is the umbrella the session loop and its callers (CLI,
//! bench runners) speak, so one `?` chain carries every failure mode with
//! its context intact instead of panicking mid-run.

use crate::env::EnvError;
use comet_frame::FrameError;
use comet_ml::MatrixShapeError;
use std::fmt;

/// Any failure a COMET session (or its driver) can surface.
#[derive(Debug, Clone, PartialEq)]
pub enum CometError {
    /// A cleaning-environment operation failed (evaluation, snapshot,
    /// cleaning step).
    Env(EnvError),
    /// A frame operation outside the environment failed (I/O, CSV).
    Frame(FrameError),
    /// A checkpoint file could not be read, written, or reconciled with
    /// the current run (divergent replay, incompatible config).
    Checkpoint(String),
    /// Invalid input or configuration.
    Invalid(String),
}

impl fmt::Display for CometError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CometError::Env(e) => write!(f, "environment error: {e}"),
            CometError::Frame(e) => write!(f, "frame error: {e}"),
            CometError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            CometError::Invalid(msg) => write!(f, "invalid: {msg}"),
        }
    }
}

impl std::error::Error for CometError {}

impl From<EnvError> for CometError {
    fn from(e: EnvError) -> Self {
        CometError::Env(e)
    }
}

impl From<FrameError> for CometError {
    fn from(e: FrameError) -> Self {
        CometError::Frame(e)
    }
}

impl From<MatrixShapeError> for CometError {
    /// Malformed design-matrix input (`Matrix::try_from_vecs`) is a caller
    /// mistake, so it lands in `Invalid` rather than growing a variant.
    fn from(e: MatrixShapeError) -> Self {
        CometError::Invalid(format!("matrix shape: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let env: CometError = EnvError::Invalid("bad step".into()).into();
        assert!(env.to_string().contains("bad step"));
        let frame: CometError = FrameError::Empty.into();
        assert!(frame.to_string().contains("non-empty"));
        let ckpt = CometError::Checkpoint("diverged at iteration 3".into());
        assert!(ckpt.to_string().contains("iteration 3"));
        assert!(CometError::Invalid("nope".into()).to_string().contains("nope"));
    }

    #[test]
    fn matrix_shape_errors_become_typed_invalid() {
        let build = |rows: &[Vec<f64>]| -> Result<comet_ml::Matrix, CometError> {
            Ok(comet_ml::Matrix::try_from_vecs(rows)?)
        };
        let empty = build(&[]).unwrap_err();
        assert!(matches!(&empty, CometError::Invalid(msg) if msg.contains("empty")));
        let ragged = build(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(&ragged, CometError::Invalid(msg) if msg.contains("row 1")));
        assert!(build(&[vec![1.0], vec![2.0]]).is_ok());
    }

    #[test]
    fn frame_errors_convert_through_env_and_directly() {
        let via_env: CometError = EnvError::from(FrameError::NoLabel).into();
        assert!(matches!(via_env, CometError::Env(EnvError::Frame(FrameError::NoLabel))));
        let direct: CometError = FrameError::NoLabel.into();
        assert!(matches!(direct, CometError::Frame(FrameError::NoLabel)));
    }
}
