//! The Estimator module (paper §3.2): measure pollution effects, fit a
//! Bayesian regression, extrapolate the effect of *cleaning* one step.

use crate::env::{CleaningEnvironment, EnvError};
use crate::polluter::PollutedVariant;
use comet_bayes::{BayesianLinearRegression, BlrConfig, Ols, RunningStats};
use comet_jenga::ErrorType;
use std::collections::BTreeMap;

/// The Estimator's output for one `(feature, error type)` candidate.
#[derive(Debug, Clone)]
pub struct Estimate {
    /// Feature column.
    pub col: usize,
    /// Error type.
    pub err: ErrorType,
    /// F1 in the current data state (pollution step 0).
    pub current_f1: f64,
    /// Raw regression prediction at −1 steps (one cleaning step).
    pub raw_predicted_f1: f64,
    /// Bias-corrected prediction (§3.3: mean of observed discrepancies).
    pub predicted_f1: f64,
    /// Credible-interval width `U(f)` of the prediction.
    pub uncertainty: f64,
    /// `(pollution steps, measured F1)` points the regression was fitted on.
    pub points: Vec<(f64, f64)>,
    /// Training rows the Polluter flagged (Cleaner hint).
    pub flagged_train: Vec<usize>,
    /// Test rows the Polluter flagged.
    pub flagged_test: Vec<usize>,
}

impl Estimate {
    /// Predicted F1 gain of one cleaning step.
    pub fn gain(&self) -> f64 {
        self.predicted_f1 - self.current_f1
    }
}

/// The Estimator: owns the per-candidate bias-correction state that
/// accumulates as the Recommender compares predictions with outcomes.
#[derive(Debug, Clone)]
pub struct Estimator {
    blr_config: BlrConfig,
    bias_correction: bool,
    /// Observed (actual − raw predicted) discrepancies per candidate pair.
    discrepancies: BTreeMap<(usize, ErrorType), RunningStats>,
}

impl Estimator {
    /// Create an Estimator. `degree`/`interval` configure the Bayesian
    /// regression; `bias_correction` enables the §3.3 adjustment.
    pub fn new(degree: usize, interval: f64, bias_correction: bool) -> Self {
        Estimator {
            blr_config: BlrConfig { degree, interval, ..BlrConfig::default() },
            bias_correction,
            discrepancies: BTreeMap::new(),
        }
    }

    /// Step 1 + Step 2 (Eqs. 2–3): evaluate every polluted variant, regress
    /// F1 on pollution steps, and predict the F1 one *cleaning* step away
    /// (x = −1) with uncertainty. Variant evaluations are independent model
    /// fits, so they fan out across worker threads; results are collected
    /// in variant order, keeping the regression points deterministic.
    pub fn estimate(
        &self,
        env: &CleaningEnvironment,
        col: usize,
        err: ErrorType,
        current_f1: f64,
        variants: &[PollutedVariant],
    ) -> Result<Estimate, EnvError> {
        assert!(!variants.is_empty(), "need at least one polluted variant");
        // Per-worker state batches the variant-evaluation tally: one
        // registry update when the worker's batch drops, not one per item.
        struct EvalTally(u64);
        impl Drop for EvalTally {
            fn drop(&mut self) {
                if self.0 > 0 {
                    comet_obs::counter_add("estimator.variant_evals", self.0);
                }
            }
        }
        let scores: Vec<Result<f64, EnvError>> = comet_par::par_map_with(
            (0..variants.len()).collect(),
            || EvalTally(0),
            |tally, i| {
                tally.0 += 1;
                // Probe evaluations may run in the opt-in f32 tier; the
                // step-0 point (current_f1) and every accepted-step
                // evaluation stay full f64.
                env.evaluate_frames_probe(&variants[i].train, &variants[i].test)
            },
        );
        let mut points: Vec<(f64, f64)> = Vec::with_capacity(variants.len() + 1);
        points.push((0.0, current_f1));
        let mut flagged_train = Vec::new();
        let mut flagged_test = Vec::new();
        for (v, score) in variants.iter().zip(scores) {
            debug_assert_eq!((v.col, v.err), (col, err));
            let f1 = score?;
            points.push((v.steps as f64, f1));
            if v.steps == 1 {
                // Union of first-step rows across combinations = the set of
                // entries whose pollution informed this estimate.
                for &r in &v.flagged_train {
                    if !flagged_train.contains(&r) {
                        flagged_train.push(r);
                    }
                }
                for &r in &v.flagged_test {
                    if !flagged_test.contains(&r) {
                        flagged_test.push(r);
                    }
                }
            }
        }

        let xs: Vec<f64> = points.iter().map(|&(x, _)| x).collect();
        let ys: Vec<f64> = points.iter().map(|&(_, y)| y).collect();
        let (mean, uncertainty) = self.backward_prediction(&xs, &ys)?;
        // F1 lives in [0, 1]; the linear extrapolation may leave it.
        let raw = mean.clamp(0.0, 1.0);
        let corrected =
            if self.bias_correction { (raw + self.bias(col, err)).clamp(0.0, 1.0) } else { raw };
        Ok(Estimate {
            col,
            err,
            current_f1,
            raw_predicted_f1: raw,
            predicted_f1: corrected,
            uncertainty,
            points,
            flagged_train,
            flagged_test,
        })
    }

    /// Predict F1 one cleaning step away (x = −1): Bayesian regression when
    /// the fit is well-conditioned, otherwise a degraded-mode ridge OLS
    /// fallback (point estimate, uncertainty from the observed F1 spread)
    /// so a near-singular design degrades the estimate instead of failing
    /// the candidate. Degraded fits bump `fault.degraded_estimates`.
    fn backward_prediction(&self, xs: &[f64], ys: &[f64]) -> Result<(f64, f64), EnvError> {
        let mut blr = BayesianLinearRegression::new(self.blr_config);
        let fitted = blr.fit(xs, ys).map(|_| ());
        let blr_err = match fitted.and_then(|()| blr.predict(-1.0)) {
            Ok(pred) => return Ok((pred.mean, pred.uncertainty())),
            Err(e) => e,
        };
        comet_obs::counter_add("fault.degraded_estimates", 1);
        let mut ols = Ols::new(self.blr_config.degree);
        let fitted = ols.fit(xs, ys).map(|_| ());
        let mean = fitted.and_then(|()| ols.predict(-1.0)).map_err(|ols_err| {
            EnvError::Invalid(format!(
                "Bayesian regression failed ({blr_err}) and OLS fallback failed ({ols_err})"
            ))
        })?;
        // OLS carries no posterior; use the observed response spread as a
        // conservative stand-in (floored so the score penalty stays real).
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &y in ys {
            lo = lo.min(y);
            hi = hi.max(y);
        }
        // comet-lint: allow(D2) — epsilon floor on an interval width scanned from finite samples
        Ok((mean, (hi - lo).max(1e-6)))
    }

    /// Mean observed discrepancy (actual − raw prediction) for a candidate.
    pub fn bias(&self, col: usize, err: ErrorType) -> f64 {
        self.discrepancies.get(&(col, err)).map_or(0.0, RunningStats::mean)
    }

    /// Record an observed outcome so future predictions for this candidate
    /// are corrected (§3.3: the Estimator adjusts even when the Recommender
    /// reverts the step).
    pub fn record_outcome(&mut self, col: usize, err: ErrorType, raw_predicted: f64, actual: f64) {
        self.discrepancies.entry((col, err)).or_default().push(actual - raw_predicted);
    }

    /// Number of recorded outcomes (diagnostics).
    pub fn n_outcomes(&self) -> usize {
        self.discrepancies.values().map(|s| s.count() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polluter::Polluter;
    use comet_frame::{train_test_split, SplitOptions};
    use comet_jenga::{GroundTruth, PrePollutionPlan, Provenance, Scenario};
    use comet_ml::{Algorithm, Metric, RandomSearch};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn env(polluted: bool) -> CleaningEnvironment {
        let mut rng = StdRng::seed_from_u64(99);
        let df = comet_datasets::Dataset::Eeg.generate(Some(300), &mut rng);
        let tt = train_test_split(&df, SplitOptions::default(), &mut rng).unwrap();
        let gt_train = GroundTruth::new(tt.train.clone());
        let gt_test = GroundTruth::new(tt.test.clone());
        let mut train = tt.train;
        let mut test = tt.test;
        let mut prov_train = Provenance::for_frame(&train);
        let mut prov_test = Provenance::for_frame(&test);
        if polluted {
            let plan = PrePollutionPlan::explicit(
                Scenario::SingleError(ErrorType::MissingValues),
                vec![(0, 0.4)],
            );
            plan.apply(&mut train, 0.01, &mut prov_train, &mut rng).unwrap();
            plan.apply(&mut test, 0.01, &mut prov_test, &mut rng).unwrap();
        }
        CleaningEnvironment::new(
            train,
            test,
            gt_train,
            gt_test,
            prov_train,
            prov_test,
            Algorithm::Knn,
            Metric::F1,
            0.02,
            RandomSearch { n_samples: 1, ..RandomSearch::default() },
            3,
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn estimate_has_sane_shape() {
        let env = env(true);
        let current = env.evaluate().unwrap();
        let polluter = Polluter::new(2, 2);
        let mut rng = StdRng::seed_from_u64(0);
        let variants = polluter.variants(&env, 0, ErrorType::MissingValues, &mut rng).unwrap();
        let est = Estimator::new(1, 0.95, true);
        let e = est.estimate(&env, 0, ErrorType::MissingValues, current, &variants).unwrap();
        assert_eq!(e.points.len(), 5); // 1 current + 2 steps × 2 combos
        assert!((0.0..=1.0).contains(&e.predicted_f1));
        assert!(e.uncertainty >= 0.0);
        assert!(!e.flagged_train.is_empty());
        assert!((e.gain() - (e.predicted_f1 - e.current_f1)).abs() < 1e-15);
    }

    #[test]
    fn bias_correction_learns_from_outcomes() {
        let mut est = Estimator::new(1, 0.95, true);
        assert_eq!(est.bias(0, ErrorType::MissingValues), 0.0);
        est.record_outcome(0, ErrorType::MissingValues, 0.8, 0.9);
        est.record_outcome(0, ErrorType::MissingValues, 0.8, 0.7);
        assert!(est.bias(0, ErrorType::MissingValues).abs() < 1e-12);
        est.record_outcome(0, ErrorType::MissingValues, 0.5, 0.8);
        assert!(est.bias(0, ErrorType::MissingValues) > 0.0);
        // Other candidates unaffected.
        assert_eq!(est.bias(1, ErrorType::MissingValues), 0.0);
        assert_eq!(est.n_outcomes(), 3);
    }

    #[test]
    fn correction_applied_to_prediction() {
        let env = env(true);
        let current = env.evaluate().unwrap();
        let polluter = Polluter::new(2, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let variants = polluter.variants(&env, 0, ErrorType::MissingValues, &mut rng).unwrap();

        let mut est = Estimator::new(1, 0.95, true);
        let before = est.estimate(&env, 0, ErrorType::MissingValues, current, &variants).unwrap();
        // Teach a constant +0.05 bias.
        est.record_outcome(0, ErrorType::MissingValues, 0.0, 0.05);
        let after = est.estimate(&env, 0, ErrorType::MissingValues, current, &variants).unwrap();
        assert!((after.predicted_f1 - (before.raw_predicted_f1 + 0.05)).abs() < 1e-9);
    }

    #[test]
    fn disabled_correction_is_identity() {
        let mut est = Estimator::new(1, 0.95, false);
        est.record_outcome(0, ErrorType::Scaling, 0.0, 0.3);
        let env = env(true);
        let current = env.evaluate().unwrap();
        let polluter = Polluter::new(1, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let variants = polluter.variants(&env, 0, ErrorType::MissingValues, &mut rng).unwrap();
        let e = est.estimate(&env, 0, ErrorType::MissingValues, current, &variants).unwrap();
        assert_eq!(e.predicted_f1, e.raw_predicted_f1);
    }

    #[test]
    fn degenerate_design_falls_back_to_ols() {
        use comet_bayes::BlrConfig;
        // A flat prior over a constant-x design makes the BLR precision
        // near-singular; the degraded path must still produce a finite
        // point estimate with a spread-based uncertainty.
        let est = Estimator {
            blr_config: BlrConfig { degree: 1, prior_scale: 1e12, ..BlrConfig::default() },
            bias_correction: false,
            discrepancies: BTreeMap::new(),
        };
        let xs = [2.0; 8];
        let ys = [0.50, 0.55, 0.60, 0.52, 0.58, 0.54, 0.56, 0.53];
        let (mean, uncertainty) = est.backward_prediction(&xs, &ys).unwrap();
        assert!(mean.is_finite());
        assert!((uncertainty - 0.10).abs() < 1e-12, "spread-based uncertainty, got {uncertainty}");

        // A well-conditioned design still takes the Bayesian path and
        // reports a posterior (not spread-based) uncertainty.
        let healthy = Estimator::new(1, 0.95, false);
        let xs2 = [0.0, 1.0, 2.0, 3.0];
        let ys2 = [0.9, 0.8, 0.7, 0.6];
        let (mean2, unc2) = healthy.backward_prediction(&xs2, &ys2).unwrap();
        assert!((mean2 - 1.0).abs() < 0.05, "x=-1 extrapolation of a clean line, got {mean2}");
        assert!(unc2 > 0.0);
    }

    /// One environment for the thread-invariance proptest: construction
    /// (tuning included) costs more than every case combined.
    fn shared_env() -> &'static CleaningEnvironment {
        static ENV: std::sync::OnceLock<CleaningEnvironment> = std::sync::OnceLock::new();
        ENV.get_or_init(|| env(true))
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(6))]
        #[test]
        fn estimates_are_thread_count_invariant(seed in 0u64..1_000) {
            // The full hot path — polluted variants, cached featurization,
            // blocked kernels, model fits fanned out over workers — must
            // give bit-identical regression points at 1, 2, and 8 threads.
            // Caches are wiped per run so every score is recomputed, not
            // replayed.
            let env = shared_env();
            let polluter = Polluter::new(2, 1);
            let mut rng = StdRng::seed_from_u64(seed);
            let variants =
                polluter.variants(env, 0, ErrorType::MissingValues, &mut rng).unwrap();
            let est = Estimator::new(1, 0.95, false);
            let current = env.evaluate().unwrap();
            let run = |threads: usize| {
                env.clear_eval_cache();
                env.clear_feature_cache();
                comet_par::with_threads(threads, || {
                    est.estimate(env, 0, ErrorType::MissingValues, current, &variants)
                        .unwrap()
                        .points
                })
            };
            let p1 = run(1);
            let p2 = run(2);
            let p8 = run(8);
            proptest::prop_assert_eq!(p1.len(), p2.len());
            proptest::prop_assert_eq!(p1.len(), p8.len());
            for ((a, b), c) in p1.iter().zip(&p2).zip(&p8) {
                proptest::prop_assert_eq!(a.0.to_bits(), b.0.to_bits());
                proptest::prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
                proptest::prop_assert_eq!(a.0.to_bits(), c.0.to_bits());
                proptest::prop_assert_eq!(a.1.to_bits(), c.1.to_bits());
            }
        }
    }

    #[test]
    fn predictions_stay_in_unit_interval() {
        // Extreme synthetic points would extrapolate out of [0,1]; the
        // estimate must clamp.
        let env = env(false);
        let polluter = Polluter::new(2, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let variants = polluter.variants(&env, 0, ErrorType::GaussianNoise, &mut rng).unwrap();
        let mut est = Estimator::new(1, 0.95, true);
        est.record_outcome(0, ErrorType::GaussianNoise, 0.0, 1.0); // +1 bias
        let current = env.evaluate().unwrap();
        let e = est.estimate(&env, 0, ErrorType::GaussianNoise, current, &variants).unwrap();
        assert!(e.predicted_f1 <= 1.0);
    }
}
