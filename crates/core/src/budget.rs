//! Cleaning-budget accounting (paper §4.2: 50 units total).

/// A finite cleaning budget measured in cost units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Budget {
    total: f64,
    spent: f64,
}

impl Budget {
    /// A budget of `total` units.
    pub fn new(total: f64) -> Self {
        assert!(total >= 0.0 && total.is_finite(), "budget must be non-negative");
        Budget { total, spent: 0.0 }
    }

    /// Total units.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Units spent so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Units remaining.
    pub fn remaining(&self) -> f64 {
        // comet-lint: allow(D2) — clamp-to-zero on a finite budget difference, not a score comparison
        (self.total - self.spent).max(0.0)
    }

    /// True if at least `cost` units remain.
    pub fn can_afford(&self, cost: f64) -> bool {
        cost <= self.remaining() + 1e-9
    }

    /// Spend `cost` units; returns `false` (and spends nothing) if the
    /// budget cannot afford it.
    pub fn try_spend(&mut self, cost: f64) -> bool {
        assert!(cost >= 0.0, "cost must be non-negative");
        if !self.can_afford(cost) {
            return false;
        }
        self.spent += cost;
        true
    }

    /// True once no budget remains.
    pub fn exhausted(&self) -> bool {
        self.remaining() <= 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spend_and_remaining() {
        let mut b = Budget::new(50.0);
        assert_eq!(b.total(), 50.0);
        assert!(b.try_spend(10.0));
        assert_eq!(b.spent(), 10.0);
        assert_eq!(b.remaining(), 40.0);
        assert!(!b.exhausted());
    }

    #[test]
    fn cannot_overspend() {
        let mut b = Budget::new(5.0);
        assert!(!b.try_spend(6.0));
        assert_eq!(b.spent(), 0.0);
        assert!(b.try_spend(5.0));
        assert!(b.exhausted());
        assert!(!b.try_spend(0.1));
    }

    #[test]
    fn zero_cost_always_affordable() {
        let mut b = Budget::new(0.0);
        assert!(b.try_spend(0.0));
        assert!(b.exhausted());
    }

    #[test]
    fn float_tolerance() {
        let mut b = Budget::new(1.0);
        for _ in 0..10 {
            assert!(b.try_spend(0.1));
        }
        assert!(b.exhausted());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_budget_rejected() {
        Budget::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_cost_rejected() {
        Budget::new(1.0).try_spend(-0.5);
    }
}
