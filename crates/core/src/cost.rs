//! Cleaning cost models (paper §4.2).

use comet_jenga::ErrorType;

/// How much one cleaning step of some error type costs, as a function of how
/// many steps of that error type have already been performed on the feature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostModel {
    /// Every step costs the same (paper: categorical shift, scaling — 1 unit).
    Constant(f64),
    /// High first step (set-up: detection + configuring imputation), cheap
    /// afterwards (paper: missing values — 2 units then 0).
    OneShot {
        /// Cost of the first step.
        first: f64,
        /// Cost of each subsequent step.
        rest: f64,
    },
    /// Each step costs more than the previous (paper: Gaussian noise —
    /// subtler outliers are harder to find; 1 unit initial, +1 per step).
    Linear {
        /// Cost of the first step.
        initial: f64,
        /// Increment per performed step.
        increment: f64,
    },
}

impl CostModel {
    /// Cost of the next step given `steps_done` prior steps.
    pub fn next_cost(&self, steps_done: usize) -> f64 {
        match *self {
            CostModel::Constant(c) => c,
            CostModel::OneShot { first, rest } => {
                if steps_done == 0 {
                    first
                } else {
                    rest
                }
            }
            CostModel::Linear { initial, increment } => initial + increment * steps_done as f64,
        }
    }

    /// Total cost of the first `steps` steps.
    pub fn cumulative(&self, steps: usize) -> f64 {
        (0..steps).map(|s| self.next_cost(s)).sum()
    }
}

/// Maps error types to cost models — one policy per experiment scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostPolicy {
    missing_values: CostModel,
    gaussian_noise: CostModel,
    categorical_shift: CostModel,
    scaling: CostModel,
}

impl CostPolicy {
    /// Single-error scenario (§5.2/§5.3): constant cost of one unit for
    /// everything, "to maintain comparability".
    pub fn constant() -> Self {
        let one = CostModel::Constant(1.0);
        CostPolicy {
            missing_values: one,
            gaussian_noise: one,
            categorical_shift: one,
            scaling: one,
        }
    }

    /// Multi-error scenario (§4.2/§5.1): constant for categorical shift and
    /// scaling, one-shot (2, then 0) for missing values, linear (1, +1) for
    /// Gaussian noise.
    pub fn paper_multi() -> Self {
        CostPolicy {
            missing_values: CostModel::OneShot { first: 2.0, rest: 0.0 },
            gaussian_noise: CostModel::Linear { initial: 1.0, increment: 1.0 },
            categorical_shift: CostModel::Constant(1.0),
            scaling: CostModel::Constant(1.0),
        }
    }

    /// Custom policy.
    pub fn new(
        missing_values: CostModel,
        gaussian_noise: CostModel,
        categorical_shift: CostModel,
        scaling: CostModel,
    ) -> Self {
        CostPolicy { missing_values, gaussian_noise, categorical_shift, scaling }
    }

    /// The model for one error type.
    pub fn model(&self, err: ErrorType) -> CostModel {
        match err {
            ErrorType::MissingValues => self.missing_values,
            ErrorType::GaussianNoise => self.gaussian_noise,
            ErrorType::CategoricalShift => self.categorical_shift,
            ErrorType::Scaling => self.scaling,
        }
    }

    /// Cost of the next step of `err` after `steps_done` prior steps.
    pub fn next_cost(&self, err: ErrorType, steps_done: usize) -> f64 {
        self.model(err).next_cost(steps_done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_model() {
        let m = CostModel::Constant(1.0);
        assert_eq!(m.next_cost(0), 1.0);
        assert_eq!(m.next_cost(99), 1.0);
        assert_eq!(m.cumulative(5), 5.0);
    }

    #[test]
    fn one_shot_model() {
        let m = CostModel::OneShot { first: 2.0, rest: 0.0 };
        assert_eq!(m.next_cost(0), 2.0);
        assert_eq!(m.next_cost(1), 0.0);
        assert_eq!(m.next_cost(7), 0.0);
        assert_eq!(m.cumulative(4), 2.0);
    }

    #[test]
    fn linear_model() {
        let m = CostModel::Linear { initial: 1.0, increment: 1.0 };
        assert_eq!(m.next_cost(0), 1.0);
        assert_eq!(m.next_cost(1), 2.0);
        assert_eq!(m.next_cost(4), 5.0);
        // 1+2+3 = 6.
        assert_eq!(m.cumulative(3), 6.0);
    }

    #[test]
    fn constant_policy_charges_one_everywhere() {
        let p = CostPolicy::constant();
        for err in ErrorType::ALL {
            assert_eq!(p.next_cost(err, 0), 1.0);
            assert_eq!(p.next_cost(err, 10), 1.0);
        }
    }

    #[test]
    fn paper_multi_matches_section_4_2() {
        let p = CostPolicy::paper_multi();
        assert_eq!(p.next_cost(ErrorType::MissingValues, 0), 2.0);
        assert_eq!(p.next_cost(ErrorType::MissingValues, 1), 0.0);
        assert_eq!(p.next_cost(ErrorType::GaussianNoise, 0), 1.0);
        assert_eq!(p.next_cost(ErrorType::GaussianNoise, 3), 4.0);
        assert_eq!(p.next_cost(ErrorType::CategoricalShift, 5), 1.0);
        assert_eq!(p.next_cost(ErrorType::Scaling, 5), 1.0);
    }

    #[test]
    fn custom_policy_routes_by_error() {
        let p = CostPolicy::new(
            CostModel::Constant(3.0),
            CostModel::Constant(4.0),
            CostModel::Constant(5.0),
            CostModel::Constant(6.0),
        );
        assert_eq!(p.next_cost(ErrorType::MissingValues, 0), 3.0);
        assert_eq!(p.next_cost(ErrorType::GaussianNoise, 0), 4.0);
        assert_eq!(p.next_cost(ErrorType::CategoricalShift, 0), 5.0);
        assert_eq!(p.next_cost(ErrorType::Scaling, 0), 6.0);
    }
}
