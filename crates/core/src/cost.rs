//! Cleaning cost models (paper §4.2).

use comet_jenga::ErrorType;

/// How much one cleaning step of some error type costs, as a function of how
/// many steps of that error type have already been performed on the feature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostModel {
    /// Every step costs the same (paper: categorical shift, scaling — 1 unit).
    Constant(f64),
    /// High first step (set-up: detection + configuring imputation), cheap
    /// afterwards (paper: missing values — 2 units then 0).
    OneShot {
        /// Cost of the first step.
        first: f64,
        /// Cost of each subsequent step.
        rest: f64,
    },
    /// Each step costs more than the previous (paper: Gaussian noise —
    /// subtler outliers are harder to find; 1 unit initial, +1 per step).
    Linear {
        /// Cost of the first step.
        initial: f64,
        /// Increment per performed step.
        increment: f64,
    },
}

impl CostModel {
    /// Cost of the next step given `steps_done` prior steps.
    pub fn next_cost(&self, steps_done: usize) -> f64 {
        match *self {
            CostModel::Constant(c) => c,
            CostModel::OneShot { first, rest } => {
                if steps_done == 0 {
                    first
                } else {
                    rest
                }
            }
            CostModel::Linear { initial, increment } => initial + increment * steps_done as f64,
        }
    }

    /// Total cost of the first `steps` steps.
    pub fn cumulative(&self, steps: usize) -> f64 {
        (0..steps).map(|s| self.next_cost(s)).sum()
    }
}

/// Maps error types to cost models — one policy per experiment scenario.
/// Covers the paper's four families plus the REIN extension families used
/// by detection-seeded sessions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostPolicy {
    missing_values: CostModel,
    gaussian_noise: CostModel,
    categorical_shift: CostModel,
    scaling: CostModel,
    outliers: CostModel,
    swapped_fields: CostModel,
    near_duplicate_rows: CostModel,
    label_noise: CostModel,
}

impl CostPolicy {
    /// Single-error scenario (§5.2/§5.3): constant cost of one unit for
    /// everything, "to maintain comparability".
    pub fn constant() -> Self {
        let one = CostModel::Constant(1.0);
        CostPolicy {
            missing_values: one,
            gaussian_noise: one,
            categorical_shift: one,
            scaling: one,
            outliers: one,
            swapped_fields: one,
            near_duplicate_rows: one,
            label_noise: one,
        }
    }

    /// Multi-error scenario (§4.2/§5.1): constant for categorical shift and
    /// scaling, one-shot (2, then 0) for missing values, linear (1, +1) for
    /// Gaussian noise. The extension families follow the same reasoning:
    /// outliers grow linearly (subtler points are harder to spot, like
    /// Gaussian noise), near-duplicate removal is one-shot (blocking/dedup
    /// set-up, then cheap), swapped fields and label fixes are constant.
    pub fn paper_multi() -> Self {
        CostPolicy {
            missing_values: CostModel::OneShot { first: 2.0, rest: 0.0 },
            gaussian_noise: CostModel::Linear { initial: 1.0, increment: 1.0 },
            categorical_shift: CostModel::Constant(1.0),
            scaling: CostModel::Constant(1.0),
            outliers: CostModel::Linear { initial: 1.0, increment: 1.0 },
            swapped_fields: CostModel::Constant(1.0),
            near_duplicate_rows: CostModel::OneShot { first: 2.0, rest: 0.0 },
            label_noise: CostModel::Constant(1.0),
        }
    }

    /// Custom policy over the paper's four families; the extension families
    /// start at constant one unit — override with [`CostPolicy::with_model`].
    pub fn new(
        missing_values: CostModel,
        gaussian_noise: CostModel,
        categorical_shift: CostModel,
        scaling: CostModel,
    ) -> Self {
        CostPolicy {
            missing_values,
            gaussian_noise,
            categorical_shift,
            scaling,
            ..CostPolicy::constant()
        }
    }

    /// Replace the model for one error type (builder-style).
    pub fn with_model(mut self, err: ErrorType, model: CostModel) -> Self {
        match err {
            ErrorType::MissingValues => self.missing_values = model,
            ErrorType::GaussianNoise => self.gaussian_noise = model,
            ErrorType::CategoricalShift => self.categorical_shift = model,
            ErrorType::Scaling => self.scaling = model,
            ErrorType::Outliers => self.outliers = model,
            ErrorType::SwappedFields => self.swapped_fields = model,
            ErrorType::NearDuplicateRows => self.near_duplicate_rows = model,
            ErrorType::LabelNoise => self.label_noise = model,
        }
        self
    }

    /// The model for one error type.
    pub fn model(&self, err: ErrorType) -> CostModel {
        match err {
            ErrorType::MissingValues => self.missing_values,
            ErrorType::GaussianNoise => self.gaussian_noise,
            ErrorType::CategoricalShift => self.categorical_shift,
            ErrorType::Scaling => self.scaling,
            ErrorType::Outliers => self.outliers,
            ErrorType::SwappedFields => self.swapped_fields,
            ErrorType::NearDuplicateRows => self.near_duplicate_rows,
            ErrorType::LabelNoise => self.label_noise,
        }
    }

    /// Cost of the next step of `err` after `steps_done` prior steps.
    pub fn next_cost(&self, err: ErrorType, steps_done: usize) -> f64 {
        self.model(err).next_cost(steps_done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_model() {
        let m = CostModel::Constant(1.0);
        assert_eq!(m.next_cost(0), 1.0);
        assert_eq!(m.next_cost(99), 1.0);
        assert_eq!(m.cumulative(5), 5.0);
    }

    #[test]
    fn one_shot_model() {
        let m = CostModel::OneShot { first: 2.0, rest: 0.0 };
        assert_eq!(m.next_cost(0), 2.0);
        assert_eq!(m.next_cost(1), 0.0);
        assert_eq!(m.next_cost(7), 0.0);
        assert_eq!(m.cumulative(4), 2.0);
    }

    #[test]
    fn linear_model() {
        let m = CostModel::Linear { initial: 1.0, increment: 1.0 };
        assert_eq!(m.next_cost(0), 1.0);
        assert_eq!(m.next_cost(1), 2.0);
        assert_eq!(m.next_cost(4), 5.0);
        // 1+2+3 = 6.
        assert_eq!(m.cumulative(3), 6.0);
    }

    #[test]
    fn constant_policy_charges_one_everywhere() {
        let p = CostPolicy::constant();
        for err in ErrorType::EXTENDED {
            assert_eq!(p.next_cost(err, 0), 1.0);
            assert_eq!(p.next_cost(err, 10), 1.0);
        }
    }

    #[test]
    fn paper_multi_matches_section_4_2() {
        let p = CostPolicy::paper_multi();
        assert_eq!(p.next_cost(ErrorType::MissingValues, 0), 2.0);
        assert_eq!(p.next_cost(ErrorType::MissingValues, 1), 0.0);
        assert_eq!(p.next_cost(ErrorType::GaussianNoise, 0), 1.0);
        assert_eq!(p.next_cost(ErrorType::GaussianNoise, 3), 4.0);
        assert_eq!(p.next_cost(ErrorType::CategoricalShift, 5), 1.0);
        assert_eq!(p.next_cost(ErrorType::Scaling, 5), 1.0);
        assert_eq!(p.next_cost(ErrorType::Outliers, 2), 3.0);
        assert_eq!(p.next_cost(ErrorType::NearDuplicateRows, 0), 2.0);
        assert_eq!(p.next_cost(ErrorType::NearDuplicateRows, 1), 0.0);
        assert_eq!(p.next_cost(ErrorType::SwappedFields, 3), 1.0);
        assert_eq!(p.next_cost(ErrorType::LabelNoise, 3), 1.0);
    }

    #[test]
    fn custom_policy_routes_by_error() {
        let p = CostPolicy::new(
            CostModel::Constant(3.0),
            CostModel::Constant(4.0),
            CostModel::Constant(5.0),
            CostModel::Constant(6.0),
        );
        assert_eq!(p.next_cost(ErrorType::MissingValues, 0), 3.0);
        assert_eq!(p.next_cost(ErrorType::GaussianNoise, 0), 4.0);
        assert_eq!(p.next_cost(ErrorType::CategoricalShift, 0), 5.0);
        assert_eq!(p.next_cost(ErrorType::Scaling, 0), 6.0);
        // Extension families default to one unit until overridden.
        assert_eq!(p.next_cost(ErrorType::LabelNoise, 0), 1.0);
        let p = p.with_model(ErrorType::LabelNoise, CostModel::Constant(7.0));
        assert_eq!(p.next_cost(ErrorType::LabelNoise, 0), 7.0);
    }
}
