//! The Recommender module (paper §3.3): score, rank, buffer, fall back.

use crate::env::StateSnapshot;
use crate::estimator::Estimate;
use comet_jenga::ErrorType;
use std::collections::BTreeMap;

/// A scored cleaning candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The Estimator's output.
    pub estimate: Estimate,
    /// Cost of the next cleaning step for this candidate.
    pub cost: f64,
    /// The Eq. 4 score `(gain − U) / C`.
    pub score: f64,
}

/// The Recommender: ranking plus the stateful parts of §3.3 — the cleaning
/// buffer of reverted-but-paid cleaning steps and the post-cleaning F1
/// history that drives the fallback strategy.
#[derive(Debug, Default)]
pub struct Recommender {
    use_uncertainty: bool,
    /// Reverted cleaning results, keyed by candidate; re-applying is free
    /// because the cleaning work was already paid for.
    buffer: BTreeMap<(usize, ErrorType), StateSnapshot>,
    /// Best F1 ever observed right after cleaning a candidate.
    post_clean_f1: BTreeMap<(usize, ErrorType), f64>,
}

impl Recommender {
    /// `use_uncertainty = false` is the score ablation (gain / cost only).
    pub fn new(use_uncertainty: bool) -> Self {
        Recommender { use_uncertainty, ..Recommender::default() }
    }

    /// Score one estimate (Eq. 4). Cost must be positive; a zero-cost step
    /// (one-shot follow-ups) is scored against a tiny epsilon so free
    /// cleaning of a positive-gain feature ranks very high.
    pub fn score(&self, estimate: &Estimate, cost: f64) -> f64 {
        let penalty = if self.use_uncertainty { estimate.uncertainty } else { 0.0 };
        // comet-lint: allow(D2) — epsilon clamp on a validated positive cost, not a score comparison
        (estimate.gain() - penalty) / cost.max(1e-6)
    }

    /// (A) Select positives, (B) score & rank. Returns candidates with
    /// positive predicted gain, best score first.
    pub fn rank(&self, estimates: Vec<Estimate>, costs: &[f64]) -> Vec<Candidate> {
        assert_eq!(estimates.len(), costs.len(), "one cost per estimate");
        let mut out: Vec<Candidate> = estimates
            .into_iter()
            .zip(costs)
            .filter(|(e, _)| e.gain() > 0.0)
            .map(|(estimate, &cost)| {
                let score = self.score(&estimate, cost);
                Candidate { estimate, cost, score }
            })
            .collect();
        // `total_cmp` over a NaN-sanitized key, not `partial_cmp(..)
        // .expect(..)`: a degenerate regression (e.g. zero-variance points)
        // can produce a NaN score, and ranking must not panic mid-session.
        // NaN maps to -∞ so such candidates sink to the end of the list
        // (in `total_cmp`'s raw order +NaN would rank *above* +∞).
        let sort_key = |c: &Candidate| if c.score.is_nan() { f64::NEG_INFINITY } else { c.score };
        out.sort_by(|a, b| {
            sort_key(b).total_cmp(&sort_key(a)).then_with(|| {
                (a.estimate.col, a.estimate.err).cmp(&(b.estimate.col, b.estimate.err))
            })
        });
        out
    }

    /// Store a reverted cleaning result in the cleaning buffer (step D).
    pub fn buffer_store(&mut self, col: usize, err: ErrorType, cleaned_state: StateSnapshot) {
        self.buffer.insert((col, err), cleaned_state);
    }

    /// Take a buffered cleaned state for a candidate, if present.
    pub fn buffer_take(&mut self, col: usize, err: ErrorType) -> Option<StateSnapshot> {
        self.buffer.remove(&(col, err))
    }

    /// Whether the buffer holds a state for this candidate.
    pub fn buffer_contains(&self, col: usize, err: ErrorType) -> bool {
        self.buffer.contains_key(&(col, err))
    }

    /// Number of buffered states.
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    /// Record the F1 observed right after cleaning a candidate (fuel for
    /// the fallback strategy).
    pub fn record_post_clean_f1(&mut self, col: usize, err: ErrorType, f1: f64) {
        let entry = self.post_clean_f1.entry((col, err)).or_insert(f1);
        if f1 > *entry {
            *entry = f1;
        }
    }

    /// (E) Fallback selection: among the still-dirty candidates, the one
    /// with the historically highest post-cleaning F1; with no history, the
    /// first dirty candidate (deterministic order).
    pub fn fallback(&self, dirty: &[(usize, ErrorType)]) -> Option<(usize, ErrorType)> {
        if dirty.is_empty() {
            return None;
        }
        dirty
            .iter()
            .copied()
            .filter(|key| self.post_clean_f1.contains_key(key))
            .max_by(|a, b| self.post_clean_f1[a].total_cmp(&self.post_clean_f1[b]))
            .or_else(|| dirty.first().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimate(col: usize, gain: f64, uncertainty: f64) -> Estimate {
        Estimate {
            col,
            err: ErrorType::MissingValues,
            current_f1: 0.5,
            raw_predicted_f1: 0.5 + gain,
            predicted_f1: 0.5 + gain,
            uncertainty,
            points: vec![],
            flagged_train: vec![],
            flagged_test: vec![],
        }
    }

    #[test]
    fn scoring_matches_eq4() {
        let r = Recommender::new(true);
        let e = estimate(0, 0.10, 0.02);
        assert!((r.score(&e, 2.0) - (0.10 - 0.02) / 2.0).abs() < 1e-12);
        // Ablation: uncertainty ignored.
        let r2 = Recommender::new(false);
        assert!((r2.score(&e, 2.0) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn zero_cost_scores_high_but_finite() {
        let r = Recommender::new(true);
        let e = estimate(0, 0.1, 0.0);
        let s = r.score(&e, 0.0);
        assert!(s > 1e4 && s.is_finite());
    }

    #[test]
    fn rank_filters_non_positive_gains() {
        let r = Recommender::new(true);
        let ests = vec![estimate(0, 0.1, 0.0), estimate(1, -0.05, 0.0), estimate(2, 0.0, 0.0)];
        let ranked = r.rank(ests, &[1.0, 1.0, 1.0]);
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].estimate.col, 0);
    }

    #[test]
    fn rank_orders_by_score_with_cost() {
        let r = Recommender::new(true);
        // Same gain, different costs: cheaper wins.
        let ests = vec![estimate(0, 0.1, 0.0), estimate(1, 0.1, 0.0)];
        let ranked = r.rank(ests, &[2.0, 1.0]);
        assert_eq!(ranked[0].estimate.col, 1);
        // Uncertainty penalizes.
        let ests = vec![estimate(0, 0.1, 0.09), estimate(1, 0.08, 0.0)];
        let ranked = r.rank(ests, &[1.0, 1.0]);
        assert_eq!(ranked[0].estimate.col, 1);
    }

    #[test]
    fn rank_survives_nan_scores_and_sinks_them() {
        // Regression: a NaN score (degenerate regression output) used to
        // panic the `partial_cmp(..).expect(..)` comparator mid-session.
        let r = Recommender::new(true);
        let mut poisoned = estimate(0, 0.1, 0.0);
        poisoned.predicted_f1 = f64::NAN; // gain() = NaN > 0.0 is false…
        let ests = vec![poisoned, estimate(1, 0.05, 0.0), estimate(2, 0.2, 0.0)];
        let ranked = r.rank(ests, &[1.0, 1.0, 1.0]);
        // …so the NaN-gain candidate is filtered; the rest rank normally.
        let cols: Vec<usize> = ranked.iter().map(|c| c.estimate.col).collect();
        assert_eq!(cols, vec![2, 1]);

        // A NaN *uncertainty* passes the gain filter but must sort last,
        // never first, and never panic.
        let mut nan_unc = estimate(3, 0.9, 0.0);
        nan_unc.uncertainty = f64::NAN;
        let ests = vec![nan_unc, estimate(1, 0.05, 0.0), estimate(2, 0.2, 0.0)];
        let ranked = r.rank(ests, &[1.0, 1.0, 1.0]);
        let cols: Vec<usize> = ranked.iter().map(|c| c.estimate.col).collect();
        assert_eq!(cols, vec![2, 1, 3]);
        assert!(ranked[2].score.is_nan());
    }

    #[test]
    fn fallback_survives_nan_history() {
        let mut r = Recommender::new(true);
        let dirty = vec![(0, ErrorType::MissingValues), (1, ErrorType::MissingValues)];
        r.record_post_clean_f1(0, ErrorType::MissingValues, f64::NAN);
        r.record_post_clean_f1(1, ErrorType::MissingValues, 0.4);
        // Must not panic; NaN history ranks above finite in total order is
        // acceptable — the invariant is a deterministic, panic-free pick.
        let pick = r.fallback(&dirty);
        assert!(pick.is_some());
        assert_eq!(r.fallback(&dirty), pick);
    }

    #[test]
    fn rank_ties_break_deterministically() {
        let r = Recommender::new(true);
        let ests = vec![estimate(2, 0.1, 0.0), estimate(1, 0.1, 0.0)];
        let ranked = r.rank(ests, &[1.0, 1.0]);
        assert_eq!(ranked[0].estimate.col, 1);
    }

    #[test]
    fn fallback_prefers_best_history() {
        let mut r = Recommender::new(true);
        let dirty = vec![(0, ErrorType::MissingValues), (1, ErrorType::MissingValues)];
        // No history → first dirty.
        assert_eq!(r.fallback(&dirty), Some((0, ErrorType::MissingValues)));
        r.record_post_clean_f1(1, ErrorType::MissingValues, 0.9);
        r.record_post_clean_f1(0, ErrorType::MissingValues, 0.7);
        assert_eq!(r.fallback(&dirty), Some((1, ErrorType::MissingValues)));
        // History keeps the max.
        r.record_post_clean_f1(1, ErrorType::MissingValues, 0.2);
        assert_eq!(r.fallback(&dirty), Some((1, ErrorType::MissingValues)));
        // A candidate with history that is no longer dirty is skipped.
        let only0 = vec![(0, ErrorType::MissingValues)];
        assert_eq!(r.fallback(&only0), Some((0, ErrorType::MissingValues)));
        assert_eq!(r.fallback(&[]), None);
    }
}
