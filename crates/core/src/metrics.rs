//! Run-level metrics for a [`CleaningSession`](crate::CleaningSession):
//! per-phase timings, one record per outer-loop iteration, and an
//! end-of-run summary carrying the global [`comet_obs`] registry snapshot.
//!
//! The session only *collects* while `comet_obs::enabled()` is on; with
//! metrics off (the default) nothing here is constructed and the hot path
//! pays one relaxed atomic load per instrumentation site. Collection never
//! influences control flow, which is what keeps instrumented traces
//! bit-identical to bare runs.

use comet_obs::json::JsonObject;
use comet_obs::Snapshot;

/// The six phases of one outer-loop iteration, in execution order.
pub const PHASES: [&str; 6] = ["pollute", "estimate", "rank", "clean_step", "evaluate", "fallback"];

/// Nanoseconds spent per phase. `pollute` and `estimate` run fused inside
/// the parallel candidate fan-out, so those two are *aggregate worker
/// time* (they can exceed the iteration's wall clock on multi-threaded
/// runs); the remaining four are sequential wall time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseNanos {
    /// What-if pollution of candidate variants (aggregate worker time).
    pub pollute: u64,
    /// BLR fit + backward extrapolation (aggregate worker time).
    pub estimate: u64,
    /// Candidate ranking (Eq. 4).
    pub rank: u64,
    /// Simulated cleaning steps (batch + step-by-step paths).
    pub clean_step: u64,
    /// Model evaluations outside the fan-out (batch + step-by-step paths).
    pub evaluate: u64,
    /// The whole fallback block, including its cleaning and evaluation.
    pub fallback: u64,
}

impl PhaseNanos {
    /// Sum across all phases.
    pub fn total(&self) -> u64 {
        self.pollute + self.estimate + self.rank + self.clean_step + self.evaluate + self.fallback
    }

    /// Add another reading phase-wise.
    pub fn accumulate(&mut self, other: &PhaseNanos) {
        self.pollute += other.pollute;
        self.estimate += other.estimate;
        self.rank += other.rank;
        self.clean_step += other.clean_step;
        self.evaluate += other.evaluate;
        self.fallback += other.fallback;
    }

    /// `(name, nanos)` pairs in [`PHASES`] order.
    pub fn named(&self) -> [(&'static str, u64); 6] {
        [
            ("pollute", self.pollute),
            ("estimate", self.estimate),
            ("rank", self.rank),
            ("clean_step", self.clean_step),
            ("evaluate", self.evaluate),
            ("fallback", self.fallback),
        ]
    }

    /// Encode as a JSON object of seconds keyed by phase name.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        for (name, nanos) in self.named() {
            obj.field_f64(name, nanos as f64 / 1e9);
        }
        obj.finish()
    }
}

/// One outer-loop iteration's worth of metrics — one journal line.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IterationMetrics {
    /// Outer-loop iteration index.
    pub iteration: usize,
    /// Dirty `(feature, error)` pairs ranked this iteration.
    pub candidates: usize,
    /// Step records appended to the trace this iteration.
    pub records: usize,
    /// Evaluation-cache hits during this iteration.
    pub cache_hits: u64,
    /// Evaluation-cache misses during this iteration.
    pub cache_misses: u64,
    /// Cumulative budget spent after this iteration.
    pub budget_spent: f64,
    /// Current (accepted) F1 after this iteration.
    pub f1: f64,
    /// Candidate evaluations that failed out (after retries) this
    /// iteration and were skipped.
    pub failures: usize,
    /// Per-phase timings.
    pub phases: PhaseNanos,
}

impl IterationMetrics {
    /// Encode as one JSONL journal record (`"kind": "iteration"`).
    pub fn to_json_line(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_str("kind", "iteration");
        obj.field_u64("iteration", self.iteration as u64);
        obj.field_u64("candidates", self.candidates as u64);
        obj.field_u64("records", self.records as u64);
        obj.field_u64("cache_hits", self.cache_hits);
        obj.field_u64("cache_misses", self.cache_misses);
        obj.field_f64("budget_spent", self.budget_spent);
        obj.field_f64("f1", self.f1);
        obj.field_u64("failures", self.failures as u64);
        obj.field_raw("phases", &self.phases.to_json());
        obj.finish()
    }
}

/// Everything a metrics-enabled run collected: the per-iteration series
/// plus a final copy of the global registry (cache counters, worker
/// utilization, tuner trials, span histograms).
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// One entry per outer-loop iteration, in order.
    pub iterations: Vec<IterationMetrics>,
    /// F1 before any cleaning.
    pub initial_f1: f64,
    /// F1 at session end.
    pub final_f1: f64,
    /// Total budget spent.
    pub budget_spent: f64,
    /// Global `comet_obs` registry at session end.
    pub registry: Snapshot,
}

impl RunMetrics {
    /// Phase-wise totals over all iterations.
    pub fn phase_totals(&self) -> PhaseNanos {
        let mut total = PhaseNanos::default();
        for it in &self.iterations {
            total.accumulate(&it.phases);
        }
        total
    }

    /// Cache hits and misses summed over all iterations.
    pub fn cache_totals(&self) -> (u64, u64) {
        let hits = self.iterations.iter().map(|i| i.cache_hits).sum();
        let misses = self.iterations.iter().map(|i| i.cache_misses).sum();
        (hits, misses)
    }

    /// Encode the end-of-run summary as one JSONL record
    /// (`"kind": "summary"`), closing a journal of iteration records.
    pub fn summary_json(&self) -> String {
        let (hits, misses) = self.cache_totals();
        let mut obj = JsonObject::new();
        obj.field_str("kind", "summary");
        obj.field_u64("iterations", self.iterations.len() as u64);
        obj.field_f64("initial_f1", self.initial_f1);
        obj.field_f64("final_f1", self.final_f1);
        obj.field_f64("budget_spent", self.budget_spent);
        obj.field_u64("cache_hits", hits);
        obj.field_u64("cache_misses", misses);
        obj.field_raw("phase_totals", &self.phase_totals().to_json());
        obj.field_raw("registry", &self.registry.to_json());
        obj.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_obs::json;

    fn sample() -> RunMetrics {
        RunMetrics {
            iterations: vec![
                IterationMetrics {
                    iteration: 0,
                    candidates: 3,
                    records: 1,
                    cache_hits: 2,
                    cache_misses: 5,
                    budget_spent: 1.0,
                    f1: 0.8,
                    failures: 1,
                    phases: PhaseNanos {
                        pollute: 1_000,
                        estimate: 2_000,
                        rank: 10,
                        clean_step: 300,
                        evaluate: 4_000,
                        fallback: 0,
                    },
                },
                IterationMetrics {
                    iteration: 1,
                    candidates: 2,
                    records: 1,
                    cache_hits: 4,
                    cache_misses: 1,
                    budget_spent: 2.0,
                    f1: 0.82,
                    failures: 0,
                    phases: PhaseNanos { fallback: 7_000, ..PhaseNanos::default() },
                },
            ],
            initial_f1: 0.75,
            final_f1: 0.82,
            budget_spent: 2.0,
            registry: Snapshot::default(),
        }
    }

    #[test]
    fn phase_totals_accumulate() {
        let m = sample();
        let totals = m.phase_totals();
        assert_eq!(totals.pollute, 1_000);
        assert_eq!(totals.fallback, 7_000);
        assert_eq!(totals.total(), 14_310);
        assert_eq!(m.cache_totals(), (6, 6));
    }

    #[test]
    fn iteration_line_has_all_phase_keys() {
        let line = sample().iterations[0].to_json_line();
        let value = json::parse(&line).expect("journal line must parse");
        assert_eq!(value.get("kind").and_then(|v| v.as_str()), Some("iteration"));
        assert_eq!(value.get("candidates").and_then(|v| v.as_f64()), Some(3.0));
        assert_eq!(value.get("failures").and_then(|v| v.as_f64()), Some(1.0));
        let phases = value.get("phases").expect("phases object");
        for name in PHASES {
            assert!(phases.get(name).is_some(), "missing phase key {name}");
        }
        assert_eq!(phases.get("estimate").and_then(|v| v.as_f64()), Some(2e-6));
    }

    #[test]
    fn summary_line_parses_and_totals() {
        let text = sample().summary_json();
        let value = json::parse(&text).expect("summary must parse");
        assert_eq!(value.get("kind").and_then(|v| v.as_str()), Some("summary"));
        assert_eq!(value.get("iterations").and_then(|v| v.as_f64()), Some(2.0));
        assert_eq!(value.get("cache_hits").and_then(|v| v.as_f64()), Some(6.0));
        let totals = value.get("phase_totals").expect("phase_totals object");
        assert_eq!(totals.get("fallback").and_then(|v| v.as_f64()), Some(7e-6));
        assert!(value.get("registry").and_then(|r| r.get("counters")).is_some());
    }
}
