//! The COMET outer loop: iterate Polluter → Estimator → Recommender →
//! (simulated) Cleaner until the budget is spent or the data is clean.

use crate::budget::Budget;
use crate::checkpoint::{self, CheckpointSpec, CheckpointWriter, CountingRng, IterationCheckpoint};
use crate::config::CometConfig;
use crate::control::{SessionControl, SessionProgress, StopReason};
use crate::env::{CleaningEnvironment, EnvError};
use crate::error::CometError;
use crate::estimator::{Estimate, Estimator};
use crate::faults::{FaultKind, FaultPlan};
use crate::metrics::{IterationMetrics, PhaseNanos, RunMetrics};
use crate::polluter::Polluter;
use crate::recommender::Recommender;
use crate::trace::{CleaningTrace, FailureRecord, StepAction, StepRecord};
use comet_jenga::ErrorType;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Derive the private rng seed of one candidate's what-if pollution from
/// the session seed and the candidate's identity (FxHash-style mixing).
/// Giving every `(col, err, iteration)` its own stream — instead of letting
/// candidates share the session rng — is what makes the parallel candidate
/// fan-out produce traces bit-identical to a sequential run.
/// Fault injection's `TrainingPanic` arm: a *real* panic, thrown on purpose
/// so tests prove `par_map_catch` contains worker unwinds.
#[allow(clippy::panic)]
fn injected_training_panic(iteration: usize, col: usize, err: ErrorType) -> ! {
    // comet-lint: allow(D4) — deliberate: fault injection must produce a real panic for par_map_catch to contain
    panic!("injected fault: training panic at iteration {iteration} candidate ({col}, {err:?})");
}

fn candidate_seed(session_seed: u64, col: usize, err: ErrorType, iteration: usize) -> u64 {
    const M: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut h = session_seed;
    for w in [col as u64, err as u64, iteration as u64] {
        h = (h.rotate_left(5) ^ w).wrapping_mul(M);
    }
    h
}

/// Run `f`, adding its elapsed nanoseconds to `acc` when `on`. The
/// accumulators are per-iteration `AtomicU64`s so the same helper serves
/// the sequential phases and the pollute/estimate work inside the
/// parallel candidate fan-out (where workers add concurrently).
fn timed<T>(on: bool, acc: &AtomicU64, f: impl FnOnce() -> T) -> T {
    if !on {
        return f();
    }
    // comet-lint: allow(D3) — observability: metrics phase timing; never feeds a trace decision
    let started = Instant::now();
    let out = f();
    // comet-lint: allow(D9) — monotonic metrics accumulator; only read at report time, no ordering needed
    acc.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
    out
}

/// A configured COMET run over a fixed set of candidate error types
/// (single-error scenario: one type; multi-error: all four).
#[derive(Debug, Clone)]
pub struct CleaningSession {
    config: CometConfig,
    errors: Vec<ErrorType>,
    faults: Option<Arc<FaultPlan>>,
    checkpoint: Option<CheckpointSpec>,
    control: Option<SessionControl>,
}

/// How one candidate evaluation attempt ended: a usable estimate, or a
/// failure reason (panic message, estimator error, non-finite output).
fn classify(outcome: Result<Result<Estimate, EnvError>, String>) -> Result<Estimate, String> {
    match outcome {
        Ok(Ok(est)) => {
            if est.raw_predicted_f1.is_finite()
                && est.predicted_f1.is_finite()
                && est.uncertainty.is_finite()
            {
                Ok(est)
            } else {
                Err("non-finite estimate (NaN loss)".to_string())
            }
        }
        Ok(Err(e)) => Err(format!("estimator failure: {e}")),
        Err(panic) => Err(format!("panic: {panic}")),
    }
}

/// The result of a session.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// The full step-by-step trace.
    pub trace: CleaningTrace,
    /// Per-iteration phase timings and counters, collected only while
    /// `comet_obs` recording is enabled; `None` on bare runs.
    pub metrics: Option<RunMetrics>,
    /// Why the session stopped early, if a supervisor requested it through
    /// a [`SessionControl`]; `None` for a natural finish (budget spent,
    /// data clean, or no affordable action). An early-stopped session
    /// still carries its full partial trace — graceful degradation, not
    /// an error.
    pub stop: Option<StopReason>,
}

impl CleaningSession {
    /// Build a session. Panics on an invalid config or empty error set.
    pub fn new(config: CometConfig, errors: Vec<ErrorType>) -> Self {
        #[allow(clippy::expect_used)]
        // comet-lint: allow(D4) — documented constructor contract: invalid config is a caller bug, not a runtime failure
        config.validate().expect("valid config");
        assert!(!errors.is_empty(), "need at least one candidate error type");
        CleaningSession { config, errors, faults: None, checkpoint: None, control: None }
    }

    /// Inject a deterministic [`FaultPlan`] into candidate evaluations
    /// (testing and chaos drills; production sessions carry none).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(Arc::new(plan));
        self
    }

    /// Persist (and optionally resume from) a checkpoint file.
    pub fn with_checkpoint(mut self, spec: CheckpointSpec) -> Self {
        self.checkpoint = Some(spec);
        self
    }

    /// Attach a cooperative [`SessionControl`]: a supervisor can cancel the
    /// run or expire its deadline at any iteration boundary, and read
    /// best-so-far progress while the session is still running.
    pub fn with_control(mut self, control: SessionControl) -> Self {
        self.control = Some(control);
        self
    }

    /// The configuration.
    pub fn config(&self) -> &CometConfig {
        &self.config
    }

    /// Run COMET against the environment until the budget is exhausted, the
    /// data is fully clean, or no affordable action remains.
    ///
    /// Candidate evaluations are failure-isolated: a panicking, erroring,
    /// or NaN-producing candidate is retried up to `config.max_retries`
    /// times and then recorded in `trace.failures` and skipped — one bad
    /// candidate never kills the session.
    pub fn run<R: Rng>(
        &self,
        env: &mut CleaningEnvironment,
        rng: &mut R,
    ) -> Result<SessionOutcome, CometError> {
        // Pin the process-global kernel tier to this session's config
        // before the first evaluation: every reduction in the run (and in
        // the worker threads it fans out to) must use one fixed lane
        // order. The f32-probe flag is per-environment.
        comet_ml::kernels::set_tier(self.config.kernels);
        env.set_f32_probes(self.config.f32_probes);
        // Detection-seeded mode: candidate pairs come from the detector
        // ensemble from here on, never from the provenance oracle.
        if let Some(detect) = self.config.detect {
            env.enable_detection(detect);
        }

        // Count sequential rng draws so checkpoints can verify a resumed
        // replay consumes randomness identically.
        let rng = &mut CountingRng::new(rng);
        let mut budget = Budget::new(self.config.budget);
        let polluter = Polluter::from_config(&self.config);
        let mut estimator = Estimator::new(
            self.config.blr_degree,
            self.config.interval,
            self.config.bias_correction,
        );
        let mut recommender = Recommender::new(self.config.use_uncertainty);
        let mut steps_done: BTreeMap<(usize, ErrorType), usize> = BTreeMap::new();

        // All candidate randomness derives from this one draw (see
        // [`candidate_seed`]); the caller's rng is then only consumed by the
        // strictly sequential cleaning steps. Drawn before the first model
        // evaluation so a resume can verify seed identity up front.
        let session_seed: u64 = rng.next_u64();

        // Checkpointing: on resume, load the interrupted run's cache and
        // per-iteration records first — the preloaded cache is what makes
        // the replay below both cheap and bit-identical (the warm-cache
        // determinism property) — then rewrite the file from scratch.
        let config_fp = checkpoint::config_fingerprint(&self.config, &self.errors);
        let detect_fp = checkpoint::detect_fingerprint(&self.config.detect);
        let mut resume_data = None;
        let writer = match &self.checkpoint {
            Some(spec) => {
                if spec.resume {
                    let data = checkpoint::load(&spec.path)?;
                    // Tier checks come before the config fingerprint: a
                    // mismatched reduction order gets its own loud error
                    // naming both sides, not a generic config complaint.
                    if data.kernel_tier != self.config.kernels
                        || data.lane_count != self.config.kernels.lanes() as u64
                    {
                        return Err(CometError::Checkpoint(format!(
                            "checkpoint was recorded under kernel tier {} ({} lanes); this \
                             session runs {} ({} lanes) — evaluation scores are not comparable \
                             across reduction orders, refusing to resume",
                            data.kernel_tier,
                            data.lane_count,
                            self.config.kernels,
                            self.config.kernels.lanes(),
                        )));
                    }
                    if data.f32_probes != self.config.f32_probes {
                        return Err(CometError::Checkpoint(format!(
                            "checkpoint was recorded with f32_probes={}, resumed with \
                             f32_probes={} — probe precision changes cached scores, refusing \
                             to resume",
                            data.f32_probes, self.config.f32_probes
                        )));
                    }
                    if data.detect_fp != detect_fp {
                        // Typed as Invalid, not Checkpoint: the file is
                        // fine, the caller's detector configuration is what
                        // contradicts the recorded session identity.
                        return Err(CometError::Invalid(format!(
                            "checkpoint was recorded under detection setup {:016x}, this session \
                             runs {:016x} — the detector configuration decides which candidate \
                             pairs exist, refusing to resume",
                            data.detect_fp, detect_fp
                        )));
                    }
                    if data.segment_rows != self.config.segment_rows as u64 {
                        return Err(CometError::Checkpoint(format!(
                            "checkpoint was recorded with segment_rows={}, resumed with \
                             segment_rows={} — spill files and feature blocks are addressed \
                             per segment, refusing to resume",
                            data.segment_rows, self.config.segment_rows
                        )));
                    }
                    if data.session_seed != session_seed {
                        return Err(CometError::Checkpoint(format!(
                            "checkpoint was recorded under session seed {:016x}, resumed with {:016x}",
                            data.session_seed, session_seed
                        )));
                    }
                    if data.config_fp != config_fp {
                        return Err(CometError::Checkpoint(
                            "checkpoint config does not match this session".into(),
                        ));
                    }
                    env.preload_cache(&data.cache);
                    let mut w = CheckpointWriter::create(
                        &spec.path,
                        session_seed,
                        config_fp,
                        self.config.budget,
                        self.config.kernels,
                        self.config.f32_probes,
                        detect_fp,
                        self.config.segment_rows,
                    )?;
                    w.write_cache(&data.cache)?;
                    resume_data = Some(data);
                    Some(w)
                } else {
                    Some(CheckpointWriter::create(
                        &spec.path,
                        session_seed,
                        config_fp,
                        self.config.budget,
                        self.config.kernels,
                        self.config.f32_probes,
                        detect_fp,
                        self.config.segment_rows,
                    )?)
                }
            }
            None => None,
        };
        // A planned CheckpointWriteError fires from inside the writer, so
        // the injected failure travels the exact production I/O error path.
        let writer = writer.map(|w| match &self.faults {
            Some(plan) => w.with_faults(Arc::clone(plan)),
            None => w,
        });
        let mut writer = writer;

        let mut trace = CleaningTrace {
            initial_f1: env.evaluate()?,
            fully_clean_f1: Some(env.fully_cleaned_f1()?),
            ..CleaningTrace::default()
        };
        let mut current_f1 = trace.initial_f1;

        // Metrics are collected only while `comet_obs` recording is on;
        // nothing below may branch on collected values, so instrumented
        // runs stay bit-identical to bare ones.
        let metrics_on = comet_obs::enabled();
        let mut run_metrics = if metrics_on { Some(RunMetrics::default()) } else { None };

        // The initial publish makes the dirty baseline visible to status
        // polls before the first iteration lands.
        if let Some(control) = &self.control {
            control.publish(SessionProgress {
                iterations: 0,
                initial_f1: trace.initial_f1,
                best_f1: trace.initial_f1,
                budget_spent: 0.0,
                steps: Vec::new(),
            });
        }

        let mut stopped: Option<StopReason> = None;
        for iteration in 0..10_000usize {
            // Cooperative stop: a cancel or an expired deadline raised by
            // the supervisor takes effect here, between iterations. All
            // completed iterations are already checkpointed, so stopping
            // loses nothing — the partial trace below is a normal outcome.
            if let Some(reason) = self.control.as_ref().and_then(SessionControl::stop_requested) {
                comet_obs::counter_add("session.stopped_early", 1);
                stopped = Some(reason);
                break;
            }
            // An exhausted budget still admits zero-cost productive
            // actions: buffered re-applications and free follow-up steps
            // under `OneShot { rest: 0.0 }` cost models. Breaking outright
            // here starved those (the free-step starvation bug).
            if budget.exhausted() && !self.free_action_available(env, &recommender, &steps_done) {
                break;
            }
            let dirty_pairs = env.candidate_pairs(&self.errors);
            if dirty_pairs.is_empty() {
                break;
            }
            let cache_before = env.cache_stats();
            let records_before = trace.records.len();
            let candidates = dirty_pairs.len();
            let pollute_nanos = AtomicU64::new(0);
            let estimate_nanos = AtomicU64::new(0);
            let rank_nanos = AtomicU64::new(0);
            let clean_step_nanos = AtomicU64::new(0);
            let evaluate_nanos = AtomicU64::new(0);
            let fallback_nanos = AtomicU64::new(0);

            // --- Produce the recommendation (the RQ6-timed phase). ---
            // Candidates are independent given their derived seeds, so the
            // pollute → estimate pipeline fans out across worker threads.
            // `par_map` returns results in `dirty_pairs` order, making the
            // ranking input — and hence the whole trace — independent of
            // the thread count.
            // comet-lint: allow(D3) — observability: iteration runtime for reports; never feeds a trace decision
            let started = Instant::now();
            let (estimates, iteration_failures): (Vec<Estimate>, Vec<FailureRecord>) = {
                let env_ref: &CleaningEnvironment = env;
                let estimator_ref = &estimator;
                let pollute_acc = &pollute_nanos;
                let estimate_acc = &estimate_nanos;
                let faults = self.faults.as_deref();
                let eval_candidate =
                    |(col, err): (usize, ErrorType)| -> Result<Estimate, EnvError> {
                        let fault = faults.and_then(|p| p.arm(iteration, col, err));
                        if fault == Some(FaultKind::EstimatorFailure) {
                            return Err(EnvError::Invalid(format!(
                                "injected fault: estimator failure at candidate ({col}, {err:?})"
                            )));
                        }
                        if fault == Some(FaultKind::TrainingPanic) {
                            injected_training_panic(iteration, col, err);
                        }
                        let seed = candidate_seed(session_seed, col, err, iteration);
                        let mut cand_rng = StdRng::seed_from_u64(seed);
                        // Workers add into shared accumulators, so these two
                        // phases measure aggregate worker time (they can
                        // exceed the iteration's wall clock).
                        let variants = timed(metrics_on, pollute_acc, || {
                            polluter.variants(env_ref, col, err, &mut cand_rng)
                        })?;
                        let mut est = timed(metrics_on, estimate_acc, || {
                            estimator_ref.estimate(env_ref, col, err, current_f1, &variants)
                        })?;
                        if fault == Some(FaultKind::NanLoss) {
                            est.raw_predicted_f1 = f64::NAN;
                            est.predicted_f1 = f64::NAN;
                        }
                        Ok(est)
                    };
                // Panics are caught per candidate inside the fan-out
                // (`par_map_catch`): a failed candidate becomes an `Err`
                // slot in input order instead of killing the session.
                let attempts = comet_par::par_map_catch(dirty_pairs.clone(), eval_candidate);
                let mut estimates = Vec::with_capacity(dirty_pairs.len());
                let mut failures = Vec::new();
                for (outcome, &(col, err)) in attempts.into_iter().zip(dirty_pairs.iter()) {
                    let mut result = classify(outcome);
                    let mut retries = 0u32;
                    // Failed candidates retry sequentially, in input order,
                    // re-deriving the same candidate seed — retries stay
                    // deterministic and thread-count independent.
                    while result.is_err() && (retries as usize) < self.config.max_retries {
                        retries += 1;
                        comet_obs::counter_add("fault.retries", 1);
                        #[allow(clippy::expect_used)]
                        let attempt = comet_par::par_map_catch(vec![(col, err)], eval_candidate)
                            .pop()
                            // comet-lint: allow(D4) — par_map_catch's one-in/one-out contract is proptested in comet-par
                            .expect("one item in, one result out");
                        result = classify(attempt);
                        if result.is_ok() {
                            comet_obs::counter_add("fault.recovered", 1);
                        }
                    }
                    match result {
                        Ok(est) => estimates.push(est),
                        Err(reason) => {
                            comet_obs::counter_add("fault.candidate_failures", 1);
                            failures.push(FailureRecord { iteration, col, err, reason, retries });
                        }
                    }
                }
                (estimates, failures)
            };
            let failures_this_iteration = iteration_failures.len();
            trace.failures.extend(iteration_failures);
            // Costs pair with `estimates` by index in `rank`, so they are
            // built from the surviving estimates, not from `dirty_pairs`
            // (failed candidates are absent).
            let costs: Vec<f64> = estimates
                .iter()
                .map(|est| {
                    let done = steps_done.get(&(est.col, est.err)).copied().unwrap_or(0);
                    self.config.costs.next_cost(est.err, done)
                })
                .collect();
            let ranked = timed(metrics_on, &rank_nanos, || recommender.rank(estimates, &costs));
            trace.iteration_runtimes.push(started.elapsed());

            // --- Execute recommendations until one sticks. ---
            let mut progressed = false;

            // Batched mode (future-work extension, §6): clean the top-k
            // candidates together, evaluate once, accept or revert the
            // whole batch. Falls through to the step-by-step path when
            // fewer than two fresh candidates are available.
            if self.config.batch_size > 1 {
                let mut selected: Vec<&crate::recommender::Candidate> = Vec::new();
                let mut planned_cost = 0.0;
                for cand in &ranked {
                    if selected.len() == self.config.batch_size {
                        break;
                    }
                    let (col, err) = (cand.estimate.col, cand.estimate.err);
                    if recommender.buffer_contains(col, err) {
                        continue; // buffered states are handled one by one
                    }
                    if budget.can_afford(planned_cost + cand.cost) {
                        planned_cost += cand.cost;
                        selected.push(cand);
                    }
                }
                if selected.len() > 1 {
                    let mut pre_snaps = Vec::with_capacity(selected.len());
                    for cand in &selected {
                        pre_snaps.push(env.snapshot(cand.estimate.col)?);
                    }
                    let mut cleaned_counts = Vec::with_capacity(selected.len());
                    let mut any_cleaned = false;
                    for cand in &selected {
                        let (col, err) = (cand.estimate.col, cand.estimate.err);
                        let (ctr, cte) = timed(metrics_on, &clean_step_nanos, || {
                            env.clean_step(
                                col,
                                err,
                                &cand.estimate.flagged_train,
                                &cand.estimate.flagged_test,
                                rng,
                            )
                        })?;
                        cleaned_counts.push(ctr + cte);
                        any_cleaned |= ctr + cte > 0;
                    }
                    if any_cleaned {
                        // Charge, count, and learn from only the members
                        // that actually cleaned cells — parity with the
                        // step-by-step path's zero-cell skip. A member
                        // whose pair was already clean did no work and
                        // must not consume budget or produce a record.
                        for (i, cand) in selected.iter().enumerate() {
                            if cleaned_counts[i] == 0 {
                                continue;
                            }
                            budget.try_spend(cand.cost);
                            *steps_done
                                .entry((cand.estimate.col, cand.estimate.err))
                                .or_default() += 1;
                        }
                        let f1 = timed(metrics_on, &evaluate_nanos, || env.evaluate())?;
                        for (i, cand) in selected.iter().enumerate() {
                            if cleaned_counts[i] == 0 {
                                continue;
                            }
                            estimator.record_outcome(
                                cand.estimate.col,
                                cand.estimate.err,
                                cand.estimate.raw_predicted_f1,
                                f1,
                            );
                            recommender.record_post_clean_f1(
                                cand.estimate.col,
                                cand.estimate.err,
                                f1,
                            );
                        }
                        let keep = f1 >= current_f1 - 1e-12 || !self.config.revert_on_decrease;
                        if keep {
                            current_f1 = f1;
                        } else {
                            // Buffer each cleaned column (zero-cell
                            // members have nothing to buffer), then
                            // revert all.
                            for (i, cand) in selected.iter().enumerate() {
                                if cleaned_counts[i] == 0 {
                                    continue;
                                }
                                let cleaned_state = env.snapshot(cand.estimate.col)?;
                                recommender.buffer_store(
                                    cand.estimate.col,
                                    cand.estimate.err,
                                    cleaned_state,
                                );
                            }
                            for pre in &pre_snaps {
                                env.restore(pre)?;
                            }
                        }
                        for (i, cand) in selected.iter().enumerate() {
                            if cleaned_counts[i] == 0 {
                                continue;
                            }
                            trace.records.push(StepRecord {
                                iteration,
                                col: cand.estimate.col,
                                err: cand.estimate.err,
                                action: if keep {
                                    StepAction::Accepted
                                } else {
                                    StepAction::Reverted
                                },
                                cost: cand.cost,
                                budget_spent: budget.spent(),
                                predicted_f1: Some(cand.estimate.predicted_f1),
                                raw_predicted_f1: Some(cand.estimate.raw_predicted_f1),
                                actual_f1: f1,
                                cleaned_cells: cleaned_counts[i],
                            });
                        }
                        trace.f1_curve.push((budget.spent(), current_f1));
                        if keep {
                            progressed = true;
                        }
                    }
                }
            }

            for cand in &ranked {
                if progressed {
                    break;
                }
                let (col, err) = (cand.estimate.col, cand.estimate.err);

                // A buffered cleaned state re-applies for free (§3.3).
                // (`buffer_take` is its own existence check — no unwrap.)
                if let Some(buffered) = recommender.buffer_take(col, err) {
                    let pre = env.snapshot(col)?;
                    env.restore(&buffered)?;
                    let f1 = timed(metrics_on, &evaluate_nanos, || env.evaluate())?;
                    if f1 >= current_f1 - 1e-12 {
                        current_f1 = f1;
                        recommender.record_post_clean_f1(col, err, f1);
                        trace.records.push(StepRecord {
                            iteration,
                            col,
                            err,
                            action: StepAction::BufferApplied,
                            cost: 0.0,
                            budget_spent: budget.spent(),
                            predicted_f1: Some(cand.estimate.predicted_f1),
                            raw_predicted_f1: Some(cand.estimate.raw_predicted_f1),
                            actual_f1: f1,
                            cleaned_cells: 0,
                        });
                        trace.f1_curve.push((budget.spent(), f1));
                        progressed = true;
                        break;
                    }
                    env.restore(&pre)?;
                    recommender.buffer_store(col, err, buffered);
                    continue;
                }

                if !budget.can_afford(cand.cost) {
                    continue;
                }
                let pre = env.snapshot(col)?;
                let (ctr, cte) = timed(metrics_on, &clean_step_nanos, || {
                    env.clean_step(
                        col,
                        err,
                        &cand.estimate.flagged_train,
                        &cand.estimate.flagged_test,
                        rng,
                    )
                })?;
                if ctr + cte == 0 {
                    continue;
                }
                budget.try_spend(cand.cost);
                *steps_done.entry((col, err)).or_default() += 1;
                let f1 = timed(metrics_on, &evaluate_nanos, || env.evaluate())?;
                estimator.record_outcome(col, err, cand.estimate.raw_predicted_f1, f1);
                recommender.record_post_clean_f1(col, err, f1);

                if f1 >= current_f1 - 1e-12 || !self.config.revert_on_decrease {
                    current_f1 = f1;
                    trace.records.push(StepRecord {
                        iteration,
                        col,
                        err,
                        action: StepAction::Accepted,
                        cost: cand.cost,
                        budget_spent: budget.spent(),
                        predicted_f1: Some(cand.estimate.predicted_f1),
                        raw_predicted_f1: Some(cand.estimate.raw_predicted_f1),
                        actual_f1: f1,
                        cleaned_cells: ctr + cte,
                    });
                    trace.f1_curve.push((budget.spent(), f1));
                    progressed = true;
                    break;
                }

                // Revert, but keep the paid work in the cleaning buffer.
                let cleaned_state = env.snapshot(col)?;
                env.restore(&pre)?;
                recommender.buffer_store(col, err, cleaned_state);
                trace.records.push(StepRecord {
                    iteration,
                    col,
                    err,
                    action: StepAction::Reverted,
                    cost: cand.cost,
                    budget_spent: budget.spent(),
                    predicted_f1: Some(cand.estimate.predicted_f1),
                    raw_predicted_f1: Some(cand.estimate.raw_predicted_f1),
                    actual_f1: f1,
                    cleaned_cells: ctr + cte,
                });
                trace.f1_curve.push((budget.spent(), current_f1));
            }

            // --- Fallback (§3.3, step E). ---
            // When no candidate is predicted to improve (or all ranked ones
            // were reverted), the fallback commits to cleaning the candidate
            // with the historically best post-cleaning F1 and *keeps* the
            // result even if F1 temporarily dips — the paper's own Figure 7
            // shows COMET's trajectory fluctuating exactly this way. This
            // also guarantees progress: every fallback step reduces dirt.
            if !progressed && self.config.fallback {
                // Timed as one block (including its cleaning and
                // evaluation) so the inner calls are not double-counted
                // into the clean_step/evaluate phases.
                // comet-lint: allow(D3) — observability: metrics phase timing; never feeds a trace decision
                let fallback_started = if metrics_on { Some(Instant::now()) } else { None };
                let dirty_now = env.candidate_pairs(&self.errors);
                if let Some((col, err)) = recommender.fallback(&dirty_now) {
                    if let Some(buffered) = recommender.buffer_take(col, err) {
                        env.restore(&buffered)?;
                        let f1 = env.evaluate()?;
                        current_f1 = f1;
                        recommender.record_post_clean_f1(col, err, f1);
                        trace.records.push(StepRecord {
                            iteration,
                            col,
                            err,
                            action: StepAction::Fallback,
                            cost: 0.0,
                            budget_spent: budget.spent(),
                            predicted_f1: None,
                            raw_predicted_f1: None,
                            actual_f1: f1,
                            cleaned_cells: 0,
                        });
                        trace.f1_curve.push((budget.spent(), f1));
                        progressed = true;
                    } else {
                        let done = steps_done.get(&(col, err)).copied().unwrap_or(0);
                        let cost = self.config.costs.next_cost(err, done);
                        if budget.can_afford(cost) {
                            let (ctr, cte) = env.clean_step(col, err, &[], &[], rng)?;
                            if ctr + cte > 0 {
                                budget.try_spend(cost);
                                *steps_done.entry((col, err)).or_default() += 1;
                                let f1 = env.evaluate()?;
                                current_f1 = f1;
                                recommender.record_post_clean_f1(col, err, f1);
                                trace.records.push(StepRecord {
                                    iteration,
                                    col,
                                    err,
                                    action: StepAction::Fallback,
                                    cost,
                                    budget_spent: budget.spent(),
                                    predicted_f1: None,
                                    raw_predicted_f1: None,
                                    actual_f1: f1,
                                    cleaned_cells: ctr + cte,
                                });
                                trace.f1_curve.push((budget.spent(), f1));
                                progressed = true;
                            }
                        }
                    }
                }
                if let Some(t) = fallback_started {
                    // comet-lint: allow(D9) — metrics accumulator for fallback timing; report-only
                    fallback_nanos.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
            }

            // Spill-tier health check at the iteration boundary: a failed
            // segment write or reload mid-iteration degraded the affected
            // cells to missing (libraries never panic on I/O), which would
            // silently corrupt every later decision. Surface the sticky
            // error and fail the session loudly instead.
            if comet_frame::spill_is_configured() {
                if let Some(cause) = comet_frame::spill_take_error() {
                    return Err(CometError::Invalid(format!(
                        "segment spill tier failed during iteration {iteration}: {cause}"
                    )));
                }
                comet_frame::spill_publish_resident_gauge();
            }

            if let Some(rm) = run_metrics.as_mut() {
                let phases = PhaseNanos {
                    pollute: pollute_nanos.into_inner(),
                    estimate: estimate_nanos.into_inner(),
                    rank: rank_nanos.into_inner(),
                    clean_step: clean_step_nanos.into_inner(),
                    evaluate: evaluate_nanos.into_inner(),
                    fallback: fallback_nanos.into_inner(),
                };
                comet_obs::counter_add("session.iterations", 1);
                comet_obs::observe_duration(
                    "session.phase.pollute",
                    Duration::from_nanos(phases.pollute),
                );
                comet_obs::observe_duration(
                    "session.phase.estimate",
                    Duration::from_nanos(phases.estimate),
                );
                comet_obs::observe_duration(
                    "session.phase.rank",
                    Duration::from_nanos(phases.rank),
                );
                comet_obs::observe_duration(
                    "session.phase.clean_step",
                    Duration::from_nanos(phases.clean_step),
                );
                comet_obs::observe_duration(
                    "session.phase.evaluate",
                    Duration::from_nanos(phases.evaluate),
                );
                comet_obs::observe_duration(
                    "session.phase.fallback",
                    Duration::from_nanos(phases.fallback),
                );
                let cache_now = env.cache_stats();
                let it = IterationMetrics {
                    iteration,
                    candidates,
                    records: trace.records.len() - records_before,
                    cache_hits: cache_now.hits - cache_before.hits,
                    cache_misses: cache_now.misses - cache_before.misses,
                    budget_spent: budget.spent(),
                    f1: current_f1,
                    failures: failures_this_iteration,
                    phases,
                };
                if comet_obs::journal::has_sink() {
                    comet_obs::journal::emit(&it.to_json_line());
                }
                rm.iterations.push(it);
            }

            // Checkpoint the completed iteration; on resume, first verify
            // the replay reproduced the stored run exactly.
            if writer.is_some() {
                let record = IterationCheckpoint {
                    iteration,
                    budget_spent: budget.spent(),
                    rng_draws: rng.draws(),
                    records: trace.records.len(),
                    trace_fp: checkpoint::trace_fingerprint(
                        &trace,
                        self.config.kernels,
                        self.config.f32_probes,
                    ),
                };
                if let Some(stored) = resume_data.as_ref().and_then(|d| d.iterations.get(iteration))
                {
                    if *stored != record {
                        return Err(CometError::Checkpoint(format!(
                            "resume diverged at iteration {iteration}: \
                             checkpoint {stored:?}, replay {record:?}"
                        )));
                    }
                }
                if let Some(w) = writer.as_mut() {
                    // Checkpoint I/O faults are often transient (full disk
                    // freed, volume reattached); retry in place. Retries
                    // consume no randomness, so a recovered write leaves
                    // the trace bit-identical to an undisturbed run.
                    let entries = env.export_cache_entries();
                    let mut attempt = 0usize;
                    loop {
                        match w.write_iteration(&record, &entries) {
                            Ok(()) => break,
                            Err(e) => {
                                comet_obs::counter_add("fault.checkpoint_write_errors", 1);
                                if attempt >= self.config.max_retries {
                                    return Err(e);
                                }
                                attempt += 1;
                                comet_obs::counter_add("fault.checkpoint_write_retries", 1);
                            }
                        }
                    }
                }
            }

            // Publish best-so-far progress for status polls and result
            // streams. Reading `control` never feeds back into the trace.
            if let Some(control) = &self.control {
                control.publish(SessionProgress {
                    iterations: iteration + 1,
                    initial_f1: trace.initial_f1,
                    best_f1: current_f1,
                    budget_spent: budget.spent(),
                    steps: trace.records.clone(),
                });
            }

            if !progressed {
                break;
            }
        }

        trace.final_f1 = current_f1;
        let metrics = run_metrics.map(|mut rm| {
            rm.initial_f1 = trace.initial_f1;
            rm.final_f1 = trace.final_f1;
            rm.budget_spent = budget.spent();
            rm.registry = comet_obs::snapshot();
            rm
        });
        Ok(SessionOutcome { trace, metrics, stop: stopped })
    }

    /// True while an exhausted budget still leaves a zero-cost productive
    /// action on the table: a buffered cleaned state waiting to re-apply,
    /// or a dirty pair whose next step is free under the cost policy
    /// (`OneShot { rest: 0.0 }` follow-ups in `CostPolicy::paper_multi`).
    fn free_action_available(
        &self,
        env: &CleaningEnvironment,
        recommender: &Recommender,
        steps_done: &BTreeMap<(usize, ErrorType), usize>,
    ) -> bool {
        if recommender.buffer_len() > 0 {
            return true;
        }
        env.candidate_pairs(&self.errors).into_iter().any(|(col, err)| {
            let done = steps_done.get(&(col, err)).copied().unwrap_or(0);
            self.config.costs.next_cost(err, done) == 0.0
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_frame::{train_test_split, SplitOptions};
    use comet_jenga::{GroundTruth, PrePollutionPlan, Provenance, Scenario};
    use comet_ml::{Algorithm, Metric, RandomSearch};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build_env(
        seed: u64,
        rows: usize,
        levels: Vec<(usize, f64)>,
        algorithm: Algorithm,
    ) -> CleaningEnvironment {
        let mut rng = StdRng::seed_from_u64(seed);
        let df = comet_datasets::Dataset::Eeg.generate(Some(rows), &mut rng);
        let tt = train_test_split(&df, SplitOptions::default(), &mut rng).unwrap();
        let gt_train = GroundTruth::new(tt.train.clone());
        let gt_test = GroundTruth::new(tt.test.clone());
        let mut train = tt.train;
        let mut test = tt.test;
        let mut prov_train = Provenance::for_frame(&train);
        let mut prov_test = Provenance::for_frame(&test);
        let plan =
            PrePollutionPlan::explicit(Scenario::SingleError(ErrorType::MissingValues), levels);
        plan.apply(&mut train, 0.01, &mut prov_train, &mut rng).unwrap();
        plan.apply(&mut test, 0.01, &mut prov_test, &mut rng).unwrap();
        CleaningEnvironment::new(
            train,
            test,
            gt_train,
            gt_test,
            prov_train,
            prov_test,
            algorithm,
            Metric::F1,
            0.02,
            RandomSearch { n_samples: 1, ..RandomSearch::default() },
            11,
            &mut rng,
        )
        .unwrap()
    }

    fn quick_config(budget: f64) -> CometConfig {
        CometConfig {
            budget,
            n_combinations: 1,
            search: RandomSearch { n_samples: 1, ..RandomSearch::default() },
            ..CometConfig::default()
        }
    }

    #[test]
    fn session_runs_and_respects_budget() {
        let mut env = build_env(1, 240, vec![(0, 0.3), (1, 0.2)], Algorithm::Knn);
        let session = CleaningSession::new(quick_config(6.0), vec![ErrorType::MissingValues]);
        let mut rng = StdRng::seed_from_u64(0);
        let outcome = session.run(&mut env, &mut rng).unwrap();
        let trace = &outcome.trace;
        assert!(trace.total_spent() <= 6.0 + 1e-9);
        assert!(!trace.records.is_empty());
        // Budget spent is non-decreasing across records.
        let mut prev = 0.0;
        for r in &trace.records {
            assert!(r.budget_spent >= prev - 1e-12);
            prev = r.budget_spent;
        }
        assert!((0.0..=1.0).contains(&trace.final_f1));
        assert!(!trace.iteration_runtimes.is_empty());
    }

    #[test]
    fn ample_budget_fully_cleans() {
        let mut env = build_env(2, 200, vec![(0, 0.25)], Algorithm::Knn);
        let session = CleaningSession::new(quick_config(1_000.0), vec![ErrorType::MissingValues]);
        let mut rng = StdRng::seed_from_u64(1);
        session.run(&mut env, &mut rng).unwrap();
        // With an effectively unlimited budget the fallback keeps cleaning
        // until no candidate pair remains (the dataset is marked clean).
        assert!(env.candidate_pairs(&[ErrorType::MissingValues]).is_empty());
        assert!(env.is_fully_clean().unwrap());
    }

    #[test]
    fn cleaning_improves_f1_on_average() {
        // Across a few seeds, COMET cleaning should help on heavily polluted
        // data. Individual runs may dip slightly (Figure 7 in the paper shows
        // exactly such fluctuations); the mean must improve.
        let mut total = 0.0;
        let mut worst = f64::INFINITY;
        for seed in 0..3 {
            // Pollute every feature: cleaning must then matter regardless of
            // which features carry the planted signal.
            let levels: Vec<(usize, f64)> = (0..14).map(|c| (c, 0.35)).collect();
            let mut env = build_env(seed, 300, levels, Algorithm::Knn);
            let session = CleaningSession::new(quick_config(30.0), vec![ErrorType::MissingValues]);
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = session.run(&mut env, &mut rng).unwrap();
            let delta = outcome.trace.final_f1 - outcome.trace.initial_f1;
            total += delta;
            worst = worst.min(delta);
        }
        assert!(total > 0.0, "mean improvement {total}");
        assert!(worst > -0.05, "worst-case regression {worst} too large");
    }

    #[test]
    fn trace_actions_are_consistent() {
        let mut env = build_env(3, 240, vec![(0, 0.3), (5, 0.3)], Algorithm::Knn);
        let session = CleaningSession::new(quick_config(15.0), vec![ErrorType::MissingValues]);
        let mut rng = StdRng::seed_from_u64(2);
        let outcome = session.run(&mut env, &mut rng).unwrap();
        for r in &outcome.trace.records {
            match r.action {
                StepAction::Accepted => {
                    assert!(r.predicted_f1.is_some());
                    assert!(r.cleaned_cells > 0);
                }
                StepAction::Reverted => {
                    assert!(r.cleaned_cells > 0);
                }
                StepAction::BufferApplied => {
                    assert_eq!(r.cost, 0.0);
                }
                StepAction::Fallback => {}
            }
        }
        // The curve is keyed by non-decreasing budget.
        let mut prev = 0.0;
        for &(b, f1) in &outcome.trace.f1_curve {
            assert!(b >= prev - 1e-12);
            assert!((0.0..=1.0).contains(&f1));
            prev = b;
        }
    }

    #[test]
    fn ablations_run() {
        for (unc, bias, revert, fallback) in
            [(false, true, true, true), (true, false, true, true), (true, true, false, false)]
        {
            let mut env = build_env(4, 200, vec![(0, 0.3)], Algorithm::Knn);
            let config = CometConfig {
                use_uncertainty: unc,
                bias_correction: bias,
                revert_on_decrease: revert,
                fallback,
                ..quick_config(8.0)
            };
            let session = CleaningSession::new(config, vec![ErrorType::MissingValues]);
            let mut rng = StdRng::seed_from_u64(3);
            let outcome = session.run(&mut env, &mut rng).unwrap();
            assert!(outcome.trace.total_spent() <= 8.0 + 1e-9);
            if !revert {
                assert_eq!(outcome.trace.count_action(StepAction::Reverted), 0);
            }
        }
    }

    #[test]
    fn multi_error_scenario_runs_with_paper_costs() {
        let mut rng = StdRng::seed_from_u64(7);
        let df = comet_datasets::Dataset::Cmc.generate(Some(240), &mut rng);
        let tt = train_test_split(&df, SplitOptions::default(), &mut rng).unwrap();
        let gt_train = GroundTruth::new(tt.train.clone());
        let gt_test = GroundTruth::new(tt.test.clone());
        let mut train = tt.train;
        let mut test = tt.test;
        let mut prov_train = Provenance::for_frame(&train);
        let mut prov_test = Provenance::for_frame(&test);
        let plan =
            PrePollutionPlan::sample(&train, Scenario::MultiError, 0.15, 0.4, &mut rng).unwrap();
        plan.apply(&mut train, 0.01, &mut prov_train, &mut rng).unwrap();
        plan.apply(&mut test, 0.01, &mut prov_test, &mut rng).unwrap();
        let mut env = CleaningEnvironment::new(
            train,
            test,
            gt_train,
            gt_test,
            prov_train,
            prov_test,
            Algorithm::Knn,
            Metric::F1,
            0.02,
            RandomSearch { n_samples: 1, ..RandomSearch::default() },
            5,
            &mut rng,
        )
        .unwrap();
        let config = CometConfig {
            costs: crate::cost::CostPolicy::paper_multi(),
            budget: 10.0,
            n_combinations: 1,
            ..CometConfig::default()
        };
        let session = CleaningSession::new(config, ErrorType::ALL.to_vec());
        let outcome = session.run(&mut env, &mut rng).unwrap();
        assert!(outcome.trace.total_spent() <= 10.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one candidate error type")]
    fn empty_error_set_rejected() {
        CleaningSession::new(CometConfig::default(), vec![]);
    }

    fn build_env_with_step(
        seed: u64,
        rows: usize,
        levels: Vec<(usize, f64)>,
        algorithm: Algorithm,
        step_frac: f64,
    ) -> CleaningEnvironment {
        let mut rng = StdRng::seed_from_u64(seed);
        let df = comet_datasets::Dataset::Eeg.generate(Some(rows), &mut rng);
        let tt = train_test_split(&df, SplitOptions::default(), &mut rng).unwrap();
        let gt_train = GroundTruth::new(tt.train.clone());
        let gt_test = GroundTruth::new(tt.test.clone());
        let mut train = tt.train;
        let mut test = tt.test;
        let mut prov_train = Provenance::for_frame(&train);
        let mut prov_test = Provenance::for_frame(&test);
        let plan =
            PrePollutionPlan::explicit(Scenario::SingleError(ErrorType::MissingValues), levels);
        plan.apply(&mut train, 0.01, &mut prov_train, &mut rng).unwrap();
        plan.apply(&mut test, 0.01, &mut prov_test, &mut rng).unwrap();
        CleaningEnvironment::new(
            train,
            test,
            gt_train,
            gt_test,
            prov_train,
            prov_test,
            algorithm,
            Metric::F1,
            step_frac,
            RandomSearch { n_samples: 1, ..RandomSearch::default() },
            11,
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn batched_recommendations_clean_multiple_features_per_iteration() {
        // Heavy pollution + large cleaning steps so several candidates have
        // clearly positive predicted gains at once.
        let levels: Vec<(usize, f64)> = (0..14).map(|c| (c, 0.5)).collect();
        let mut env = build_env_with_step(21, 300, levels, Algorithm::Knn, 0.08);
        let config = CometConfig { batch_size: 3, ..quick_config(12.0) };
        let session = CleaningSession::new(config, vec![ErrorType::MissingValues]);
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = session.run(&mut env, &mut rng).unwrap();
        let trace = &outcome.trace;
        assert!(trace.total_spent() <= 12.0 + 1e-9);
        // At least one iteration should have produced several records with
        // the same iteration index and identical post-batch F1.
        let mut by_iteration: std::collections::HashMap<usize, Vec<&StepRecord>> =
            std::collections::HashMap::new();
        for r in &trace.records {
            by_iteration.entry(r.iteration).or_default().push(r);
        }
        let batched = by_iteration
            .values()
            .any(|rs| rs.len() > 1 && rs.iter().all(|r| r.actual_f1 == rs[0].actual_f1));
        assert!(batched, "expected at least one multi-feature batch");
    }

    #[test]
    fn batch_size_zero_rejected() {
        let config = CometConfig { batch_size: 0, ..CometConfig::default() };
        assert!(config.validate().is_err());
    }

    /// The batch accounting invariant: the budget actually spent must equal
    /// the summed cost of the records that cleaned at least one cell.
    fn assert_budget_matches_cleaning_records(trace: &CleaningTrace) {
        let cleaned_cost: f64 =
            trace.records.iter().filter(|r| r.cleaned_cells > 0).map(|r| r.cost).sum();
        assert!(
            (trace.total_spent() - cleaned_cost).abs() < 1e-9,
            "spent {} != {} = sum of costs over cleaning records",
            trace.total_spent(),
            cleaned_cost,
        );
        for r in &trace.records {
            if r.cleaned_cells == 0 {
                assert_eq!(r.cost, 0.0, "zero-cell record must not carry a cost: {r:?}");
            }
        }
    }

    #[test]
    fn batch_budget_equals_cost_of_cleaning_records() {
        let levels: Vec<(usize, f64)> = (0..14).map(|c| (c, 0.5)).collect();
        let mut env = build_env_with_step(21, 300, levels, Algorithm::Knn, 0.08);
        let config = CometConfig { batch_size: 3, ..quick_config(12.0) };
        let session = CleaningSession::new(config, vec![ErrorType::MissingValues]);
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = session.run(&mut env, &mut rng).unwrap();
        assert!(!outcome.trace.records.is_empty());
        assert_budget_matches_cleaning_records(&outcome.trace);
    }

    #[test]
    fn batch_member_cleaning_zero_cells_is_not_charged() {
        // Unit-level proof of the zero-cell rule the batch path now shares
        // with the step-by-step path: cleaning an already-clean pair does
        // no work, so it must report zero cells (and hence never be
        // charged by the session).
        let mut env = build_env(4, 200, vec![(0, 0.3)], Algorithm::Knn);
        let mut rng = StdRng::seed_from_u64(0);
        let mut guard = 0;
        while env.pair_dirty(0, ErrorType::MissingValues) {
            env.clean_step(0, ErrorType::MissingValues, &[], &[], &mut rng).unwrap();
            guard += 1;
            assert!(guard < 500, "cleaning must terminate");
        }
        let (ctr, cte) = env.clean_step(0, ErrorType::MissingValues, &[], &[], &mut rng).unwrap();
        assert_eq!((ctr, cte), (0, 0));
    }

    #[test]
    fn multi_error_batch_with_shared_column_keeps_budget_invariant() {
        // The same column dirty under two error types: batch mode may
        // select both pairs in one batch (snapshot/buffer interaction) and
        // the accounting invariant must survive it, under the paper's
        // multi-error cost policy.
        let mut rng = StdRng::seed_from_u64(19);
        let df = comet_datasets::Dataset::Eeg.generate(Some(300), &mut rng);
        let tt = train_test_split(&df, SplitOptions::default(), &mut rng).unwrap();
        let gt_train = GroundTruth::new(tt.train.clone());
        let gt_test = GroundTruth::new(tt.test.clone());
        let mut train = tt.train;
        let mut test = tt.test;
        let mut prov_train = Provenance::for_frame(&train);
        let mut prov_test = Provenance::for_frame(&test);
        for (scenario, levels) in [
            (Scenario::SingleError(ErrorType::MissingValues), vec![(0, 0.3), (1, 0.25)]),
            (Scenario::SingleError(ErrorType::GaussianNoise), vec![(0, 0.25), (2, 0.2)]),
        ] {
            let plan = PrePollutionPlan::explicit(scenario, levels);
            plan.apply(&mut train, 0.01, &mut prov_train, &mut rng).unwrap();
            plan.apply(&mut test, 0.01, &mut prov_test, &mut rng).unwrap();
        }
        let mut env = CleaningEnvironment::new(
            train,
            test,
            gt_train,
            gt_test,
            prov_train,
            prov_test,
            Algorithm::Knn,
            Metric::F1,
            0.05,
            RandomSearch { n_samples: 1, ..RandomSearch::default() },
            5,
            &mut rng,
        )
        .unwrap();
        // Column 0 must really carry both error types.
        assert!(env.pair_dirty(0, ErrorType::MissingValues));
        assert!(env.pair_dirty(0, ErrorType::GaussianNoise));
        let config = CometConfig {
            costs: crate::cost::CostPolicy::paper_multi(),
            batch_size: 3,
            ..quick_config(10.0)
        };
        let session = CleaningSession::new(config, ErrorType::ALL.to_vec());
        let outcome = session.run(&mut env, &mut rng).unwrap();
        assert!(outcome.trace.total_spent() <= 10.0 + 1e-9);
        assert!(!outcome.trace.records.is_empty());
        assert_budget_matches_cleaning_records(&outcome.trace);
    }

    #[test]
    fn free_steps_continue_after_budget_exhaustion() {
        // paper-multi missing values cost 2 for the first step and 0 after:
        // with a budget of exactly 2, the first step exhausts the budget but
        // every follow-up is free, so the session must keep cleaning until
        // the column is spotless instead of stopping after one step.
        let mut env = build_env(2, 200, vec![(0, 0.25)], Algorithm::Knn);
        let config = CometConfig {
            costs: crate::cost::CostPolicy::new(
                crate::cost::CostModel::OneShot { first: 2.0, rest: 0.0 },
                crate::cost::CostModel::Linear { initial: 1.0, increment: 1.0 },
                crate::cost::CostModel::Constant(1.0),
                crate::cost::CostModel::Constant(1.0),
            ),
            ..quick_config(2.0)
        };
        let session = CleaningSession::new(config, vec![ErrorType::MissingValues]);
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = session.run(&mut env, &mut rng).unwrap();
        let trace = &outcome.trace;
        assert!(trace.total_spent() <= 2.0 + 1e-9);
        let free_after_exhaustion =
            trace.records.iter().filter(|r| r.cost == 0.0 && r.budget_spent >= 2.0 - 1e-9).count();
        assert!(
            free_after_exhaustion > 0,
            "free follow-up steps must run after the budget is spent: {:?}",
            trace.records,
        );
        assert!(env.is_fully_clean().unwrap(), "free steps should finish the column");
        assert_budget_matches_cleaning_records(trace);
    }

    #[test]
    fn parallel_trace_bit_identical_to_sequential() {
        // The determinism contract of the parallel engine: one thread and
        // four threads must produce content-identical traces from the same
        // seed. Candidate rng streams derive from the session seed, and
        // par_map returns results in input order, so nothing the session
        // records may depend on scheduling.
        let env0 = build_env(31, 240, vec![(0, 0.3), (1, 0.25), (2, 0.2)], Algorithm::Knn);
        let session = CleaningSession::new(quick_config(10.0), vec![ErrorType::MissingValues]);
        let run_with = |threads: usize| {
            let mut env = env0.clone();
            env.clear_eval_cache();
            let mut rng = StdRng::seed_from_u64(77);
            comet_par::with_threads(threads, || session.run(&mut env, &mut rng).unwrap())
        };
        let sequential = run_with(1);
        let parallel = run_with(4);
        assert!(
            sequential.trace.content_eq(&parallel.trace),
            "threads must not change the trace:\nseq: {:?}\npar: {:?}",
            sequential.trace.records,
            parallel.trace.records,
        );
        assert!(!sequential.trace.records.is_empty(), "trivial traces prove nothing");
    }

    /// The `comet_obs` enable flag is process-global; tests that flip it
    /// serialize here so concurrent test threads cannot observe each
    /// other's windows.
    static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn metrics_enabled_does_not_change_the_trace() {
        let _guard = OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let env0 = build_env(31, 240, vec![(0, 0.3), (1, 0.25)], Algorithm::Knn);
        let session = CleaningSession::new(quick_config(8.0), vec![ErrorType::MissingValues]);
        let run = |env0: &CleaningEnvironment| {
            let mut env = env0.clone();
            env.clear_eval_cache();
            let mut rng = StdRng::seed_from_u64(77);
            session.run(&mut env, &mut rng).unwrap()
        };

        comet_obs::set_enabled(false);
        let bare = run(&env0);
        assert!(bare.metrics.is_none(), "bare runs collect nothing");

        comet_obs::set_enabled(true);
        comet_obs::reset();
        let instrumented = run(&env0);
        comet_obs::set_enabled(false);

        assert!(
            bare.trace.content_eq(&instrumented.trace),
            "metrics may only observe, never change the trace",
        );
        let metrics = instrumented.metrics.expect("instrumented runs collect metrics");
        assert_eq!(metrics.iterations.len(), instrumented.trace.iteration_runtimes.len());
        assert!(metrics.phase_totals().total() > 0, "phases must register time");
        let (hits, misses) = metrics.cache_totals();
        assert!(hits + misses > 0, "evaluations must hit the cache counters");
        assert!(metrics.registry.counter("session.iterations") > 0);
        assert!(metrics.registry.counter("eval_cache.misses") > 0);
        assert_eq!(metrics.initial_f1, instrumented.trace.initial_f1);
        assert_eq!(metrics.final_f1, instrumented.trace.final_f1);
    }

    #[test]
    fn parallel_trace_bit_identical_with_metrics_enabled() {
        let _guard = OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        comet_obs::set_enabled(true);
        comet_obs::reset();
        let env0 = build_env(31, 240, vec![(0, 0.3), (1, 0.25), (2, 0.2)], Algorithm::Knn);
        let session = CleaningSession::new(quick_config(10.0), vec![ErrorType::MissingValues]);
        let run_with = |threads: usize| {
            let mut env = env0.clone();
            env.clear_eval_cache();
            let mut rng = StdRng::seed_from_u64(77);
            comet_par::with_threads(threads, || session.run(&mut env, &mut rng).unwrap())
        };
        let sequential = run_with(1);
        let parallel = run_with(4);
        comet_obs::set_enabled(false);
        assert!(
            sequential.trace.content_eq(&parallel.trace),
            "metrics-enabled runs must stay thread-count independent",
        );
        assert!(!sequential.trace.records.is_empty(), "trivial traces prove nothing");
        assert!(sequential.metrics.is_some() && parallel.metrics.is_some());
    }

    use crate::faults::{FaultKind, FaultSpec};

    /// Three permanent faults (panic, NaN loss, estimator error) plus one
    /// transient panic that recovers on retry — the fault-injection suite's
    /// standard plan over `build_env` column coordinates.
    fn standard_fault_plan() -> FaultPlan {
        let mv = ErrorType::MissingValues;
        FaultPlan::new(vec![
            FaultSpec {
                iteration: 0,
                col: 0,
                err: mv,
                kind: FaultKind::TrainingPanic,
                attempts: u32::MAX,
            },
            FaultSpec {
                iteration: 0,
                col: 1,
                err: mv,
                kind: FaultKind::NanLoss,
                attempts: u32::MAX,
            },
            FaultSpec {
                iteration: 0,
                col: 2,
                err: mv,
                kind: FaultKind::EstimatorFailure,
                attempts: u32::MAX,
            },
            FaultSpec {
                iteration: 1,
                col: 0,
                err: mv,
                kind: FaultKind::TrainingPanic,
                attempts: 1,
            },
        ])
    }

    #[test]
    fn session_survives_injected_faults_with_budget_invariant() {
        let _guard = OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        comet_obs::set_enabled(true);
        comet_obs::reset();
        let mut env = build_env(31, 240, vec![(0, 0.3), (1, 0.25), (2, 0.2)], Algorithm::Knn);
        let session = CleaningSession::new(quick_config(10.0), vec![ErrorType::MissingValues])
            .with_faults(standard_fault_plan());
        let mut rng = StdRng::seed_from_u64(77);
        let outcome = session.run(&mut env, &mut rng).unwrap();
        comet_obs::set_enabled(false);
        let trace = &outcome.trace;

        // The session completed despite three permanently failing
        // candidates, and the accounting invariant held throughout.
        assert!(!trace.records.is_empty(), "session must keep cleaning around failures");
        assert_budget_matches_cleaning_records(trace);

        // All three iteration-0 failures are on record with their reasons.
        let it0: Vec<&crate::trace::FailureRecord> =
            trace.failures.iter().filter(|f| f.iteration == 0).collect();
        assert_eq!(it0.len(), 3, "failures: {:?}", trace.failures);
        let reason_of = |col: usize| &it0.iter().find(|f| f.col == col).unwrap().reason;
        assert!(reason_of(0).contains("panic"), "{:?}", reason_of(0));
        assert!(reason_of(1).contains("non-finite"), "{:?}", reason_of(1));
        assert!(reason_of(2).contains("estimator failure"), "{:?}", reason_of(2));
        for f in &it0 {
            assert_eq!(f.retries, 1, "default max_retries spends one retry: {f:?}");
        }
        // The transient iteration-1 panic recovered and left no failure.
        assert!(trace.failures.iter().all(|f| f.iteration == 0), "{:?}", trace.failures);

        // fault.* counters saw it all.
        let metrics = outcome.metrics.expect("obs enabled");
        assert!(metrics.registry.counter("fault.injected") >= 7, "3 permanent × 2 + transient");
        assert_eq!(metrics.registry.counter("fault.candidate_failures"), 3);
        assert!(metrics.registry.counter("fault.retries") >= 4);
        assert!(metrics.registry.counter("fault.recovered") >= 1);
        let with_failures: usize = metrics.iterations.iter().map(|i| i.failures).sum();
        assert_eq!(with_failures, 3);
    }

    #[test]
    fn faulted_trace_is_thread_count_invariant() {
        let env0 = build_env(31, 240, vec![(0, 0.3), (1, 0.25), (2, 0.2)], Algorithm::Knn);
        let run_with = |threads: usize| {
            let mut env = env0.clone();
            env.clear_eval_cache();
            let session = CleaningSession::new(quick_config(10.0), vec![ErrorType::MissingValues])
                .with_faults(standard_fault_plan());
            let mut rng = StdRng::seed_from_u64(77);
            comet_par::with_threads(threads, || session.run(&mut env, &mut rng).unwrap())
        };
        let sequential = run_with(1);
        let parallel = run_with(4);
        assert!(
            sequential.trace.content_eq(&parallel.trace),
            "fault handling must not depend on scheduling:\nseq: {:?}\npar: {:?}",
            sequential.trace.failures,
            parallel.trace.failures,
        );
        assert!(!sequential.trace.failures.is_empty());
        assert!(!sequential.trace.records.is_empty());
    }

    #[test]
    fn zero_retries_fails_transient_faults_immediately() {
        let mut env = build_env(31, 240, vec![(0, 0.3), (1, 0.25)], Algorithm::Knn);
        let plan = FaultPlan::new(vec![FaultSpec {
            iteration: 0,
            col: 0,
            err: ErrorType::MissingValues,
            kind: FaultKind::TrainingPanic,
            attempts: 1, // would recover on retry — but none are allowed
        }]);
        let config = CometConfig { max_retries: 0, ..quick_config(6.0) };
        let session =
            CleaningSession::new(config, vec![ErrorType::MissingValues]).with_faults(plan);
        let mut rng = StdRng::seed_from_u64(3);
        let outcome = session.run(&mut env, &mut rng).unwrap();
        let failure = outcome
            .trace
            .failures
            .iter()
            .find(|f| f.iteration == 0 && f.col == 0)
            .expect("transient fault must fail out without retries");
        assert_eq!(failure.retries, 0);
    }

    fn ckpt_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("comet_session_ckpt_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn transient_checkpoint_write_fault_recovers_seed_identically() {
        let _guard = OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        comet_obs::set_enabled(true);
        comet_obs::reset();
        let env0 = build_env(31, 240, vec![(0, 0.3), (1, 0.25)], Algorithm::Knn);
        let clean_path = ckpt_path("io_clean.jsonl");
        let faulted_path = ckpt_path("io_faulted.jsonl");
        let run = |path: &std::path::Path, faults: Option<FaultPlan>| {
            let mut env = env0.clone();
            env.clear_eval_cache();
            let mut session =
                CleaningSession::new(quick_config(6.0), vec![ErrorType::MissingValues])
                    .with_checkpoint(CheckpointSpec { path: path.to_path_buf(), resume: false });
            if let Some(plan) = faults {
                session = session.with_faults(plan);
            }
            let mut rng = StdRng::seed_from_u64(11);
            session.run(&mut env, &mut rng).unwrap()
        };
        let undisturbed = run(&clean_path, None);
        let plan = FaultPlan::new(vec![FaultSpec {
            iteration: 0,
            col: 0, // ignored by checkpoint faults
            err: ErrorType::MissingValues,
            kind: FaultKind::CheckpointWriteError,
            attempts: 1, // transient: the first retry succeeds
        }]);
        let recovered = run(&faulted_path, Some(plan));
        let reg = comet_obs::snapshot();
        comet_obs::set_enabled(false);
        assert!(
            undisturbed.trace.content_eq(&recovered.trace),
            "a recovered checkpoint write must not perturb the trace",
        );
        assert_eq!(reg.counter("fault.checkpoint_write_errors"), 1);
        assert_eq!(reg.counter("fault.checkpoint_write_retries"), 1);
        // The retried file carries the same verification records — no cache
        // entry was dropped by the failed attempt.
        let a = crate::checkpoint::load(&clean_path).unwrap();
        let b = crate::checkpoint::load(&faulted_path).unwrap();
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.cache, b.cache);
        std::fs::remove_file(clean_path).ok();
        std::fs::remove_file(faulted_path).ok();
    }

    #[test]
    fn exhausted_checkpoint_write_retries_surface_a_typed_error() {
        let mut env = build_env(31, 240, vec![(0, 0.3)], Algorithm::Knn);
        let path = ckpt_path("io_permanent.jsonl");
        let plan = FaultPlan::new(vec![FaultSpec {
            iteration: 0,
            col: 0,
            err: ErrorType::MissingValues,
            kind: FaultKind::CheckpointWriteError,
            attempts: u32::MAX,
        }]);
        let session = CleaningSession::new(quick_config(6.0), vec![ErrorType::MissingValues])
            .with_checkpoint(CheckpointSpec { path: path.clone(), resume: false })
            .with_faults(plan);
        let mut rng = StdRng::seed_from_u64(11);
        let err = session.run(&mut env, &mut rng).unwrap_err();
        assert!(
            matches!(err, CometError::Checkpoint(ref m)
                if m.contains("injected checkpoint write failure")),
            "{err}",
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn pre_cancelled_session_stops_gracefully_at_the_first_boundary() {
        let mut env = build_env(21, 300, vec![(0, 0.3)], Algorithm::Knn);
        let control = SessionControl::new();
        control.cancel();
        let session = CleaningSession::new(quick_config(8.0), vec![ErrorType::MissingValues])
            .with_control(control.clone());
        let mut rng = StdRng::seed_from_u64(7);
        let outcome = session.run(&mut env, &mut rng).unwrap();
        assert_eq!(outcome.stop, Some(StopReason::Cancelled));
        assert!(outcome.trace.records.is_empty(), "no iteration may run after the stop");
        let progress = control.progress();
        assert_eq!(progress.iterations, 0);
        assert_eq!(progress.best_f1, outcome.trace.initial_f1, "initial state still published");
    }

    #[test]
    fn attached_control_publishes_progress_and_leaves_the_trace_unchanged() {
        let env0 = build_env(21, 300, vec![(0, 0.3), (1, 0.25)], Algorithm::Knn);
        let run = |control: Option<SessionControl>| {
            let mut env = env0.clone();
            env.clear_eval_cache();
            let mut session =
                CleaningSession::new(quick_config(8.0), vec![ErrorType::MissingValues]);
            if let Some(c) = control {
                session = session.with_control(c);
            }
            let mut rng = StdRng::seed_from_u64(7);
            session.run(&mut env, &mut rng).unwrap()
        };
        let bare = run(None);
        let control = SessionControl::new();
        let supervised = run(Some(control.clone()));
        assert_eq!(supervised.stop, None, "an unsignalled control never stops a session");
        assert!(
            bare.trace.content_eq(&supervised.trace),
            "attaching a control must not perturb the trace",
        );
        let progress = control.progress();
        assert!(progress.iterations >= 1);
        assert_eq!(progress.steps, supervised.trace.records);
        assert_eq!(progress.best_f1, supervised.trace.final_f1);
        assert_eq!(progress.initial_f1, supervised.trace.initial_f1);
    }

    #[test]
    fn kill_and_resume_is_bit_identical_across_thread_counts() {
        let env0 = build_env(32, 200, vec![(0, 0.3), (1, 0.2)], Algorithm::Knn);
        let full_path = ckpt_path("full.jsonl");
        let cut_path = ckpt_path("cut.jsonl");

        // Uninterrupted run, checkpointing as it goes.
        let full = {
            let mut env = env0.clone();
            env.clear_eval_cache();
            let session = CleaningSession::new(quick_config(8.0), vec![ErrorType::MissingValues])
                .with_checkpoint(CheckpointSpec { path: full_path.clone(), resume: false });
            let mut rng = StdRng::seed_from_u64(5);
            comet_par::with_threads(1, || session.run(&mut env, &mut rng).unwrap())
        };
        assert!(full.trace.records.len() > 1, "need a multi-step run to cut in half");

        // Simulate a kill partway through: keep the header, the first
        // iteration record, and a truncated half-written line.
        let text = std::fs::read_to_string(&full_path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() > 2, "checkpoint must span several iterations: {text}");
        let mut cut = lines[..2].join("\n");
        cut.push_str("\n{\"kind\":\"checkpoint_itera");
        std::fs::write(&cut_path, &cut).unwrap();

        // Resume from the cut file at a different thread count.
        let resumed = {
            let mut env = env0.clone();
            env.clear_eval_cache();
            let session = CleaningSession::new(quick_config(8.0), vec![ErrorType::MissingValues])
                .with_checkpoint(CheckpointSpec { path: cut_path.clone(), resume: true });
            let mut rng = StdRng::seed_from_u64(5);
            let outcome = comet_par::with_threads(4, || session.run(&mut env, &mut rng).unwrap());
            assert!(env.cache_stats().hits > 0, "resume must replay from the preloaded cache");
            outcome
        };
        assert!(
            full.trace.content_eq(&resumed.trace),
            "resumed trace must be bit-identical:\nfull: {:?}\nresumed: {:?}",
            full.trace.records,
            resumed.trace.records,
        );

        // The rewritten checkpoint equals the uninterrupted one, byte for
        // byte, minus cache-entry bookkeeping order: compare the loaded
        // verification records instead of raw bytes.
        let a = crate::checkpoint::load(&full_path).unwrap();
        let b = crate::checkpoint::load(&cut_path).unwrap();
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.session_seed, b.session_seed);
        std::fs::remove_file(full_path).ok();
        std::fs::remove_file(cut_path).ok();
    }

    #[test]
    fn resume_rejects_mismatched_seed_and_config() {
        let env0 = build_env(32, 200, vec![(0, 0.3)], Algorithm::Knn);
        let path = ckpt_path("mismatch.jsonl");
        {
            let mut env = env0.clone();
            env.clear_eval_cache();
            let session = CleaningSession::new(quick_config(4.0), vec![ErrorType::MissingValues])
                .with_checkpoint(CheckpointSpec { path: path.clone(), resume: false });
            let mut rng = StdRng::seed_from_u64(5);
            session.run(&mut env, &mut rng).unwrap();
        }

        // Wrong rng seed → different session seed → refuse to resume.
        let mut env = env0.clone();
        env.clear_eval_cache();
        let session = CleaningSession::new(quick_config(4.0), vec![ErrorType::MissingValues])
            .with_checkpoint(CheckpointSpec { path: path.clone(), resume: true });
        let mut rng = StdRng::seed_from_u64(6);
        let err = session.run(&mut env, &mut rng).unwrap_err();
        assert!(matches!(err, CometError::Checkpoint(_)), "{err}");
        assert!(err.to_string().contains("session seed"), "{err}");

        // Wrong config → refuse to resume.
        let mut env = env0.clone();
        env.clear_eval_cache();
        let session = CleaningSession::new(quick_config(5.0), vec![ErrorType::MissingValues])
            .with_checkpoint(CheckpointSpec { path: path.clone(), resume: true });
        let mut rng = StdRng::seed_from_u64(5);
        let err = session.run(&mut env, &mut rng).unwrap_err();
        assert!(err.to_string().contains("config"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn resume_rejects_mismatched_kernel_tier_and_probe_precision() {
        let env0 = build_env(32, 200, vec![(0, 0.3)], Algorithm::Knn);
        let path = ckpt_path("tier_mismatch.jsonl");
        {
            let mut env = env0.clone();
            env.clear_eval_cache();
            let session = CleaningSession::new(quick_config(4.0), vec![ErrorType::MissingValues])
                .with_checkpoint(CheckpointSpec { path: path.clone(), resume: false });
            let mut rng = StdRng::seed_from_u64(5);
            session.run(&mut env, &mut rng).unwrap();
        }
        let resume = |path: &std::path::Path| {
            let mut env = env0.clone();
            env.clear_eval_cache();
            let session = CleaningSession::new(quick_config(4.0), vec![ErrorType::MissingValues])
                .with_checkpoint(CheckpointSpec { path: path.to_path_buf(), resume: true });
            let mut rng = StdRng::seed_from_u64(5);
            session.run(&mut env, &mut rng).map(|_| ())
        };

        // Rewrite the header to claim the SIMD tier: a checkpoint taken
        // under one reduction order must refuse silent resume under
        // another, loudly, before any replay work happens.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"kernel_tier\":\"scalar\""), "header must record the tier");
        let tampered = text
            .replace("\"kernel_tier\":\"scalar\"", "\"kernel_tier\":\"simd\"")
            .replace("\"lane_count\":4", "\"lane_count\":8");
        std::fs::write(&path, &tampered).unwrap();
        let err = resume(&path).unwrap_err();
        assert!(matches!(err, CometError::Checkpoint(_)), "{err}");
        assert!(err.to_string().contains("kernel tier"), "{err}");
        assert!(
            err.to_string().contains("8 lanes") && err.to_string().contains("4 lanes"),
            "{err}"
        );

        // Same for probe precision: f32-probe scores are cached under
        // salted keys, but the header flag is what guards the replay.
        let tampered = text.replace("\"f32_probes\":0", "\"f32_probes\":1");
        assert_ne!(tampered, text, "header must record the probe flag");
        std::fs::write(&path, &tampered).unwrap();
        let err = resume(&path).unwrap_err();
        assert!(matches!(err, CometError::Checkpoint(_)), "{err}");
        assert!(err.to_string().contains("f32_probes"), "{err}");

        // The untampered header still resumes cleanly.
        std::fs::write(&path, &text).unwrap();
        resume(&path).unwrap();
        std::fs::remove_file(path).ok();
    }

    fn detect_config(budget: f64) -> CometConfig {
        CometConfig {
            detect: Some(comet_detect::DetectorConfig::default()),
            ..quick_config(budget)
        }
    }

    #[test]
    fn detection_seeded_session_cleans_without_the_oracle() {
        let mut env = build_env(41, 240, vec![(0, 0.3), (1, 0.2)], Algorithm::Knn);
        let session = CleaningSession::new(detect_config(1_000.0), vec![ErrorType::MissingValues]);
        let mut rng = StdRng::seed_from_u64(9);
        let before = env.total_dirty().unwrap();
        let outcome = session.run(&mut env, &mut rng).unwrap();
        assert!(!outcome.trace.records.is_empty());
        // With ample budget the detection-seeded session drains every pair
        // it can see; missing sentinels are fully detectable, so the frames
        // end up genuinely clean — no oracle was consulted to get there.
        assert!(env.total_dirty().unwrap() < before / 10, "dirt must mostly vanish");
        assert!(env.candidate_pairs(&[ErrorType::MissingValues]).is_empty());
    }

    #[test]
    fn detection_trace_bit_identical_across_thread_counts() {
        let env0 = build_env(42, 240, vec![(0, 0.3), (1, 0.25), (2, 0.2)], Algorithm::Knn);
        let session = CleaningSession::new(detect_config(10.0), vec![ErrorType::MissingValues]);
        let run_with = |threads: usize| {
            let mut env = env0.clone();
            env.clear_eval_cache();
            let mut rng = StdRng::seed_from_u64(77);
            comet_par::with_threads(threads, || session.run(&mut env, &mut rng).unwrap())
        };
        let one = run_with(1);
        for threads in [2, 8] {
            let other = run_with(threads);
            assert!(
                one.trace.content_eq(&other.trace),
                "detection must not break thread-count determinism ({threads} threads):\
                 \n1: {:?}\n{threads}: {:?}",
                one.trace.records,
                other.trace.records,
            );
        }
        assert!(!one.trace.records.is_empty(), "trivial traces prove nothing");
    }

    #[test]
    fn detect_kill_and_resume_is_bit_identical() {
        let env0 = build_env(43, 200, vec![(0, 0.3), (1, 0.2)], Algorithm::Knn);
        let full_path = ckpt_path("detect_full.jsonl");
        let cut_path = ckpt_path("detect_cut.jsonl");
        let full = {
            let mut env = env0.clone();
            env.clear_eval_cache();
            let session = CleaningSession::new(detect_config(8.0), vec![ErrorType::MissingValues])
                .with_checkpoint(CheckpointSpec { path: full_path.clone(), resume: false });
            let mut rng = StdRng::seed_from_u64(5);
            session.run(&mut env, &mut rng).unwrap()
        };
        assert!(full.trace.records.len() > 1, "need a multi-step run to cut in half");

        let text = std::fs::read_to_string(&full_path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() > 2, "checkpoint must span several iterations: {text}");
        let mut cut = lines[..2].join("\n");
        cut.push_str("\n{\"kind\":\"checkpoint_itera");
        std::fs::write(&cut_path, &cut).unwrap();

        let resumed = {
            let mut env = env0.clone();
            env.clear_eval_cache();
            let session = CleaningSession::new(detect_config(8.0), vec![ErrorType::MissingValues])
                .with_checkpoint(CheckpointSpec { path: cut_path.clone(), resume: true });
            let mut rng = StdRng::seed_from_u64(5);
            session.run(&mut env, &mut rng).unwrap()
        };
        assert!(
            full.trace.content_eq(&resumed.trace),
            "detect-mode resume must be bit-identical:\nfull: {:?}\nresumed: {:?}",
            full.trace.records,
            resumed.trace.records,
        );
        std::fs::remove_file(full_path).ok();
        std::fs::remove_file(cut_path).ok();
    }

    #[test]
    fn resume_rejects_changed_detector_config() {
        let env0 = build_env(43, 200, vec![(0, 0.3)], Algorithm::Knn);
        let path = ckpt_path("detect_mismatch.jsonl");
        {
            let mut env = env0.clone();
            env.clear_eval_cache();
            let session = CleaningSession::new(detect_config(4.0), vec![ErrorType::MissingValues])
                .with_checkpoint(CheckpointSpec { path: path.clone(), resume: false });
            let mut rng = StdRng::seed_from_u64(5);
            session.run(&mut env, &mut rng).unwrap();
        }
        let resume = |config: CometConfig| {
            let mut env = env0.clone();
            env.clear_eval_cache();
            let session = CleaningSession::new(config, vec![ErrorType::MissingValues])
                .with_checkpoint(CheckpointSpec { path: path.clone(), resume: true });
            let mut rng = StdRng::seed_from_u64(5);
            session.run(&mut env, &mut rng).map(|_| ())
        };

        // A different detector threshold is a different session identity:
        // the candidate pairs it would offer are not the recorded ones.
        let loosened = CometConfig {
            detect: Some(comet_detect::DetectorConfig {
                z_threshold: 6.0,
                ..comet_detect::DetectorConfig::default()
            }),
            ..quick_config(4.0)
        };
        let err = resume(loosened).unwrap_err();
        assert!(matches!(err, CometError::Invalid(_)), "{err}");
        assert!(err.to_string().contains("detect"), "{err}");

        // So is switching back to oracle mode entirely.
        let err = resume(quick_config(4.0)).unwrap_err();
        assert!(matches!(err, CometError::Invalid(_)), "{err}");

        // The unchanged detector configuration still resumes.
        resume(detect_config(4.0)).unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn f32_probes_leave_final_f64_ranking_unchanged() {
        // The Figure-3/4 workload shape (EEG + KNN): probe evaluations in
        // f32 may move individual regression points by float noise, but
        // the recommended action sequence — and therefore every accepted
        // step's full-precision F1 — must come out identical.
        let env0 = build_env(31, 240, vec![(0, 0.3), (1, 0.25), (2, 0.2)], Algorithm::Knn);
        let run_with = |f32_probes: bool| {
            let mut env = env0.clone();
            env.clear_eval_cache();
            let config = CometConfig { f32_probes, ..quick_config(10.0) };
            let session = CleaningSession::new(config, vec![ErrorType::MissingValues]);
            let mut rng = StdRng::seed_from_u64(77);
            session.run(&mut env, &mut rng).unwrap()
        };
        let full = run_with(false);
        let probed = run_with(true);
        assert!(!full.trace.records.is_empty(), "trivial traces prove nothing");
        assert_eq!(full.trace.records.len(), probed.trace.records.len());
        for (a, b) in full.trace.records.iter().zip(&probed.trace.records) {
            assert_eq!(
                (a.iteration, a.col, a.err, a.action),
                (b.iteration, b.col, b.err, b.action),
                "probe precision must not reorder recommendations",
            );
            // Accepted-step evaluations stay f64 in both runs.
            assert_eq!(a.actual_f1.to_bits(), b.actual_f1.to_bits());
        }
        assert_eq!(full.trace.final_f1.to_bits(), probed.trace.final_f1.to_bits());
    }

    #[test]
    fn warm_cache_does_not_change_the_trace() {
        // Cached evaluations are bit-identical to recomputed ones, so a
        // session starting with a pre-warmed cache must produce the same
        // trace as one starting cold.
        let env0 = build_env(32, 200, vec![(0, 0.3), (1, 0.2)], Algorithm::Knn);
        let session = CleaningSession::new(quick_config(8.0), vec![ErrorType::MissingValues]);

        let mut cold_env = env0.clone();
        cold_env.clear_eval_cache();
        let mut rng = StdRng::seed_from_u64(5);
        let cold = session.run(&mut cold_env, &mut rng).unwrap();

        // Warm env0's cache (evaluate is &self; clones share the entries —
        // the cold run above already contributed to the same shared cache).
        env0.evaluate().unwrap();
        env0.fully_cleaned_f1().unwrap();
        let mut warm_env = env0.clone();
        let mut rng = StdRng::seed_from_u64(5);
        let warm = session.run(&mut warm_env, &mut rng).unwrap();

        assert!(warm_env.cache_stats().hits > 0, "warm run must actually hit the cache");
        assert!(cold.trace.content_eq(&warm.trace));
    }
}
