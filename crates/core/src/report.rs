//! Trace export and human-readable session summaries.

use crate::metrics::RunMetrics;
use crate::trace::{CleaningTrace, StepAction};
use comet_frame::DataFrame;

impl StepAction {
    /// Stable label for CSV/reporting.
    pub fn label(self) -> &'static str {
        match self {
            StepAction::Accepted => "accepted",
            StepAction::Reverted => "reverted",
            StepAction::BufferApplied => "buffer_applied",
            StepAction::Fallback => "fallback",
        }
    }
}

impl CleaningTrace {
    /// Render the trace as CSV (one row per attempted step). `frame`
    /// resolves feature indices to column names where possible.
    pub fn to_csv(&self, frame: Option<&DataFrame>) -> String {
        let mut out = String::from(
            "iteration,feature,error_type,action,cost,budget_spent,\
             predicted_f1,raw_predicted_f1,actual_f1,cleaned_cells\n",
        );
        for r in &self.records {
            let feature = frame
                .and_then(|df| df.column(r.col).ok().map(|c| c.name().to_string()))
                .unwrap_or_else(|| {
                    if r.col == usize::MAX {
                        "<records>".to_string() // record-wise strategies (AC)
                    } else {
                        format!("#{}", r.col)
                    }
                });
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{}\n",
                r.iteration,
                feature,
                r.err.abbrev(),
                r.action.label(),
                r.cost,
                r.budget_spent,
                r.predicted_f1.map(|p| p.to_string()).unwrap_or_default(),
                r.raw_predicted_f1.map(|p| p.to_string()).unwrap_or_default(),
                r.actual_f1,
                r.cleaned_cells,
            ));
        }
        out
    }

    /// Multi-line human-readable summary of the run.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "F1 {:.4} -> {:.4} ({:+.2} pt) over {:.1} budget units\n",
            self.initial_f1,
            self.final_f1,
            100.0 * (self.final_f1 - self.initial_f1),
            self.total_spent(),
        ));
        if let Some(clean) = self.fully_clean_f1 {
            out.push_str(&format!("fully clean reference: {clean:.4}\n"));
        }
        out.push_str(&format!(
            "steps: {} accepted, {} reverted, {} buffer re-applied, {} fallback\n",
            self.count_action(StepAction::Accepted),
            self.count_action(StepAction::Reverted),
            self.count_action(StepAction::BufferApplied),
            self.count_action(StepAction::Fallback),
        ));
        if let Some(mae) = self.prediction_mae() {
            out.push_str(&format!("prediction MAE: {mae:.4}\n"));
        }
        if let Some(rt) = self.mean_iteration_runtime() {
            out.push_str(&format!(
                "mean recommendation runtime: {:.1} ms over {} iterations\n",
                rt.as_secs_f64() * 1e3,
                self.iteration_runtimes.len(),
            ));
        }
        out
    }
}

impl RunMetrics {
    /// The "MetricsReport" section: a Figure-12-style per-module runtime
    /// breakdown plus cache and pool utilization, rendered from a
    /// metrics-enabled run.
    pub fn report(&self) -> String {
        let totals = self.phase_totals();
        let denom = totals.total().max(1) as f64;
        let mut out = String::from("== metrics report ==\n");
        out.push_str(&format!("iterations: {}\n", self.iterations.len()));
        out.push_str("phase breakdown (pollute/estimate are aggregate worker time):\n");
        for (name, nanos) in totals.named() {
            out.push_str(&format!(
                "  {name:<10} {:>9.3} s  ({:>5.1}%)\n",
                nanos as f64 / 1e9,
                100.0 * nanos as f64 / denom,
            ));
        }
        let (hits, misses) = self.cache_totals();
        let lookups = hits + misses;
        let rate = if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 };
        out.push_str(&format!(
            "eval cache: {hits} hits / {misses} misses ({:.1}% hit rate)\n",
            100.0 * rate,
        ));
        if let Some(peak) = self.registry.gauge("par.peak_workers") {
            out.push_str(&format!("peak extra workers: {peak:.0}\n"));
        }
        let fanouts = self.registry.counter("par.fanouts");
        if fanouts > 0 {
            out.push_str(&format!(
                "parallel fan-outs: {fanouts} ({} sequential)\n",
                self.registry.counter("par.sequential_fallbacks"),
            ));
        }
        let trials = self.registry.counter("tune.trials");
        if trials > 0 {
            out.push_str(&format!(
                "hyperparameter trials: {trials} over {} searches\n",
                self.registry.counter("tune.searches"),
            ));
        }
        // Segment spill tier: only reported when a memory budget was
        // configured (the counters stay zero otherwise).
        let spills = self.registry.counter("segment.spills");
        let reloads = self.registry.counter("segment.reloads");
        if spills > 0 || reloads > 0 {
            out.push_str(&format!("segment spills: {spills} ({reloads} reloads)\n"));
            if let Some(resident) = self.registry.gauge("segment.resident") {
                out.push_str(&format!(
                    "resident segments: {resident:.0} ({:.1} MiB resident, {:.1} MiB spilled)\n",
                    self.registry.gauge("segment.resident_bytes").unwrap_or(0.0)
                        / (1u64 << 20) as f64,
                    self.registry.gauge("segment.spill_bytes").unwrap_or(0.0) / (1u64 << 20) as f64,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{IterationMetrics, PhaseNanos};
    use crate::trace::StepRecord;
    use comet_jenga::ErrorType;
    use std::time::Duration;

    fn trace() -> CleaningTrace {
        CleaningTrace {
            records: vec![
                StepRecord {
                    iteration: 0,
                    col: 1,
                    err: ErrorType::MissingValues,
                    action: StepAction::Accepted,
                    cost: 1.0,
                    budget_spent: 1.0,
                    predicted_f1: Some(0.8),
                    raw_predicted_f1: Some(0.79),
                    actual_f1: 0.82,
                    cleaned_cells: 5,
                },
                StepRecord {
                    iteration: 1,
                    col: usize::MAX,
                    err: ErrorType::Scaling,
                    action: StepAction::Fallback,
                    cost: 1.0,
                    budget_spent: 2.0,
                    predicted_f1: None,
                    raw_predicted_f1: None,
                    actual_f1: 0.81,
                    cleaned_cells: 3,
                },
            ],
            failures: vec![],
            f1_curve: vec![(1.0, 0.82), (2.0, 0.81)],
            initial_f1: 0.8,
            final_f1: 0.81,
            fully_clean_f1: Some(0.85),
            iteration_runtimes: vec![Duration::from_millis(12)],
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = trace().to_csv(None);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("iteration,feature,error_type"));
        assert!(lines[1].contains("#1,MV,accepted,1,1,0.8,0.79,0.82,5"));
        assert!(lines[2].contains("<records>,S,fallback"));
    }

    #[test]
    fn csv_resolves_feature_names() {
        let x = comet_frame::Column::numeric("age", vec![1.0]);
        let income = comet_frame::Column::numeric("income", vec![2.0]);
        let df = comet_frame::DataFrame::new(vec![x, income], None).unwrap();
        let csv = trace().to_csv(Some(&df));
        assert!(csv.contains(",income,MV,"), "{csv}");
    }

    #[test]
    fn summary_mentions_key_numbers() {
        let s = trace().summary();
        assert!(s.contains("0.8000 -> 0.8100"));
        assert!(s.contains("1 accepted"));
        assert!(s.contains("1 fallback"));
        assert!(s.contains("prediction MAE"));
        assert!(s.contains("12.0 ms"));
        assert!(s.contains("fully clean reference: 0.8500"));
    }

    #[test]
    fn action_labels_are_stable() {
        assert_eq!(StepAction::Accepted.label(), "accepted");
        assert_eq!(StepAction::BufferApplied.label(), "buffer_applied");
    }

    #[test]
    fn metrics_report_mentions_phases_and_cache() {
        let metrics = RunMetrics {
            iterations: vec![IterationMetrics {
                iteration: 0,
                candidates: 2,
                records: 1,
                cache_hits: 3,
                cache_misses: 1,
                budget_spent: 1.0,
                f1: 0.8,
                failures: 0,
                phases: PhaseNanos {
                    pollute: 2_000_000_000,
                    estimate: 1_000_000_000,
                    rank: 500_000,
                    clean_step: 20_000_000,
                    evaluate: 900_000_000,
                    fallback: 0,
                },
            }],
            initial_f1: 0.7,
            final_f1: 0.8,
            budget_spent: 1.0,
            registry: comet_obs::Snapshot::default(),
        };
        let s = metrics.report();
        assert!(s.contains("metrics report"));
        assert!(s.contains("iterations: 1"));
        for phase in crate::metrics::PHASES {
            assert!(s.contains(phase), "missing {phase} in {s}");
        }
        assert!(s.contains("3 hits / 1 misses (75.0% hit rate)"));
        assert!(!s.contains("segment spills"), "no spill tier → no spill section: {s}");
    }

    #[test]
    fn metrics_report_includes_spill_tier_when_active() {
        let mut registry = comet_obs::Snapshot::default();
        registry.counters.insert("segment.spills".into(), 4);
        registry.counters.insert("segment.reloads".into(), 2);
        registry.gauges.insert("segment.resident".into(), 7.0);
        registry.gauges.insert("segment.resident_bytes".into(), (3u64 << 20) as f64);
        registry.gauges.insert("segment.spill_bytes".into(), (1u64 << 20) as f64);
        let metrics = RunMetrics {
            iterations: vec![],
            initial_f1: 0.7,
            final_f1: 0.8,
            budget_spent: 1.0,
            registry,
        };
        let s = metrics.report();
        assert!(s.contains("segment spills: 4 (2 reloads)"), "{s}");
        assert!(s.contains("resident segments: 7 (3.0 MiB resident, 1.0 MiB spilled)"), "{s}");
    }
}
