//! Trace export and human-readable session summaries.

use crate::trace::{CleaningTrace, StepAction};
use comet_frame::DataFrame;

impl StepAction {
    /// Stable label for CSV/reporting.
    pub fn label(self) -> &'static str {
        match self {
            StepAction::Accepted => "accepted",
            StepAction::Reverted => "reverted",
            StepAction::BufferApplied => "buffer_applied",
            StepAction::Fallback => "fallback",
        }
    }
}

impl CleaningTrace {
    /// Render the trace as CSV (one row per attempted step). `frame`
    /// resolves feature indices to column names where possible.
    pub fn to_csv(&self, frame: Option<&DataFrame>) -> String {
        let mut out = String::from(
            "iteration,feature,error_type,action,cost,budget_spent,\
             predicted_f1,raw_predicted_f1,actual_f1,cleaned_cells\n",
        );
        for r in &self.records {
            let feature = frame
                .and_then(|df| df.column(r.col).ok().map(|c| c.name().to_string()))
                .unwrap_or_else(|| {
                    if r.col == usize::MAX {
                        "<records>".to_string() // record-wise strategies (AC)
                    } else {
                        format!("#{}", r.col)
                    }
                });
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{}\n",
                r.iteration,
                feature,
                r.err.abbrev(),
                r.action.label(),
                r.cost,
                r.budget_spent,
                r.predicted_f1.map(|p| p.to_string()).unwrap_or_default(),
                r.raw_predicted_f1.map(|p| p.to_string()).unwrap_or_default(),
                r.actual_f1,
                r.cleaned_cells,
            ));
        }
        out
    }

    /// Multi-line human-readable summary of the run.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "F1 {:.4} -> {:.4} ({:+.2} pt) over {:.1} budget units\n",
            self.initial_f1,
            self.final_f1,
            100.0 * (self.final_f1 - self.initial_f1),
            self.total_spent(),
        ));
        if let Some(clean) = self.fully_clean_f1 {
            out.push_str(&format!("fully clean reference: {clean:.4}\n"));
        }
        out.push_str(&format!(
            "steps: {} accepted, {} reverted, {} buffer re-applied, {} fallback\n",
            self.count_action(StepAction::Accepted),
            self.count_action(StepAction::Reverted),
            self.count_action(StepAction::BufferApplied),
            self.count_action(StepAction::Fallback),
        ));
        if let Some(mae) = self.prediction_mae() {
            out.push_str(&format!("prediction MAE: {mae:.4}\n"));
        }
        if let Some(rt) = self.mean_iteration_runtime() {
            out.push_str(&format!(
                "mean recommendation runtime: {:.1} ms over {} iterations\n",
                rt.as_secs_f64() * 1e3,
                self.iteration_runtimes.len(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::StepRecord;
    use comet_jenga::ErrorType;
    use std::time::Duration;

    fn trace() -> CleaningTrace {
        CleaningTrace {
            records: vec![
                StepRecord {
                    iteration: 0,
                    col: 1,
                    err: ErrorType::MissingValues,
                    action: StepAction::Accepted,
                    cost: 1.0,
                    budget_spent: 1.0,
                    predicted_f1: Some(0.8),
                    raw_predicted_f1: Some(0.79),
                    actual_f1: 0.82,
                    cleaned_cells: 5,
                },
                StepRecord {
                    iteration: 1,
                    col: usize::MAX,
                    err: ErrorType::Scaling,
                    action: StepAction::Fallback,
                    cost: 1.0,
                    budget_spent: 2.0,
                    predicted_f1: None,
                    raw_predicted_f1: None,
                    actual_f1: 0.81,
                    cleaned_cells: 3,
                },
            ],
            f1_curve: vec![(1.0, 0.82), (2.0, 0.81)],
            initial_f1: 0.8,
            final_f1: 0.81,
            fully_clean_f1: Some(0.85),
            iteration_runtimes: vec![Duration::from_millis(12)],
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = trace().to_csv(None);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("iteration,feature,error_type"));
        assert!(lines[1].contains("#1,MV,accepted,1,1,0.8,0.79,0.82,5"));
        assert!(lines[2].contains("<records>,S,fallback"));
    }

    #[test]
    fn csv_resolves_feature_names() {
        let x = comet_frame::Column::numeric("age", vec![1.0]);
        let income = comet_frame::Column::numeric("income", vec![2.0]);
        let df = comet_frame::DataFrame::new(vec![x, income], None).unwrap();
        let csv = trace().to_csv(Some(&df));
        assert!(csv.contains(",income,MV,"), "{csv}");
    }

    #[test]
    fn summary_mentions_key_numbers() {
        let s = trace().summary();
        assert!(s.contains("0.8000 -> 0.8100"));
        assert!(s.contains("1 accepted"));
        assert!(s.contains("1 fallback"));
        assert!(s.contains("prediction MAE"));
        assert!(s.contains("12.0 ms"));
        assert!(s.contains("fully clean reference: 0.8500"));
    }

    #[test]
    fn action_labels_are_stable() {
        assert_eq!(StepAction::Accepted.label(), "accepted");
        assert_eq!(StepAction::BufferApplied.label(), "buffer_applied");
    }
}
