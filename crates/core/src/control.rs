//! Cooperative session control: cancellation, deadlines, and live
//! progress — the hooks a long-running host (the `comet-serve` daemon)
//! uses to bound a session without owning its thread.
//!
//! A [`SessionControl`] is a cheap clonable handle shared between the
//! thread running [`crate::CleaningSession::run`] and whoever supervises
//! it. The supervisor requests a stop ([`SessionControl::cancel`] /
//! [`SessionControl::expire_deadline`]); the session checks the flag at
//! every outer-loop iteration boundary and, when set, stops *gracefully*:
//! the completed iterations are already checkpointed, the partial trace is
//! returned as a normal [`crate::SessionOutcome`] (tagged with the
//! [`StopReason`]), and nothing is lost. Stopping is degradation, not an
//! error.
//!
//! The deadline itself lives with the supervisor: comet-core never reads a
//! wall clock (the determinism invariant, comet-lint D3), so "the deadline
//! passed" arrives as an externally raised flag, exactly like a cancel.
//!
//! Progress flows the other way: after every iteration the session
//! publishes its best-so-far state ([`SessionProgress`]) into the handle,
//! which is how a status/streaming endpoint reports anytime results while
//! the session is still running.

use crate::trace::StepRecord;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Why a session stopped before its natural end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The supervisor (or a client) cancelled the session.
    Cancelled,
    /// The session's wall-clock deadline passed.
    DeadlineExceeded,
}

impl StopReason {
    /// Stable wire/manifest name.
    pub fn name(self) -> &'static str {
        match self {
            StopReason::Cancelled => "cancelled",
            StopReason::DeadlineExceeded => "deadline-exceeded",
        }
    }
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Best-so-far state of a running session, published at every iteration
/// boundary. `steps` carries the full step records accumulated so far, so
/// a streaming endpoint can emit each recommendation the moment it lands.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionProgress {
    /// Completed outer-loop iterations.
    pub iterations: usize,
    /// F1 of the initial dirty state (available after the first publish).
    pub initial_f1: f64,
    /// F1 of the currently kept state — the anytime answer.
    pub best_f1: f64,
    /// Budget spent so far.
    pub budget_spent: f64,
    /// All step records so far, in trace order.
    pub steps: Vec<StepRecord>,
}

const RUN: u8 = 0;
const CANCEL: u8 = 1;
const DEADLINE: u8 = 2;

#[derive(Debug, Default)]
struct ControlInner {
    stop: AtomicU8,
    progress: Mutex<SessionProgress>,
}

/// Shared cancel/deadline flag + progress board for one session run.
#[derive(Debug, Clone, Default)]
pub struct SessionControl {
    inner: Arc<ControlInner>,
}

impl SessionControl {
    /// Fresh handle with no stop requested and empty progress.
    pub fn new() -> Self {
        SessionControl::default()
    }

    /// Request a cooperative cancel. Idempotent; a deadline already
    /// recorded wins (first stop reason sticks).
    pub fn cancel(&self) {
        let _ = self.inner.stop.compare_exchange(RUN, CANCEL, Ordering::SeqCst, Ordering::SeqCst);
    }

    /// Record that the session's wall-clock deadline passed. Idempotent;
    /// a cancel already recorded wins (first stop reason sticks).
    pub fn expire_deadline(&self) {
        let _ = self.inner.stop.compare_exchange(RUN, DEADLINE, Ordering::SeqCst, Ordering::SeqCst);
    }

    /// The stop requested so far, if any. The session polls this at every
    /// iteration boundary.
    pub fn stop_requested(&self) -> Option<StopReason> {
        match self.inner.stop.load(Ordering::SeqCst) {
            CANCEL => Some(StopReason::Cancelled),
            DEADLINE => Some(StopReason::DeadlineExceeded),
            _ => None,
        }
    }

    /// Snapshot of the session's published best-so-far progress.
    pub fn progress(&self) -> SessionProgress {
        self.inner.progress.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Publish the state after an iteration (or the initial state, with
    /// `iterations == 0`). Called by the session loop only.
    pub(crate) fn publish(&self, progress: SessionProgress) {
        *self.inner.progress.lock().unwrap_or_else(PoisonError::into_inner) = progress;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_stop_reason_sticks() {
        let c = SessionControl::new();
        assert_eq!(c.stop_requested(), None);
        c.cancel();
        c.expire_deadline();
        assert_eq!(c.stop_requested(), Some(StopReason::Cancelled));

        let d = SessionControl::new();
        d.expire_deadline();
        d.cancel();
        assert_eq!(d.stop_requested(), Some(StopReason::DeadlineExceeded));
    }

    #[test]
    fn clones_share_state() {
        let c = SessionControl::new();
        let view = c.clone();
        c.publish(SessionProgress {
            iterations: 3,
            initial_f1: 0.5,
            best_f1: 0.75,
            budget_spent: 2.0,
            steps: Vec::new(),
        });
        assert_eq!(view.progress().iterations, 3);
        assert_eq!(view.progress().best_f1, 0.75);
        view.cancel();
        assert_eq!(c.stop_requested(), Some(StopReason::Cancelled));
    }

    #[test]
    fn stop_reason_names_are_stable() {
        assert_eq!(StopReason::Cancelled.name(), "cancelled");
        assert_eq!(StopReason::DeadlineExceeded.to_string(), "deadline-exceeded");
    }
}
