//! Figure 12 — COMET's runtime to produce a recommendation, grouped by
//! error type and ML algorithm. As in the paper, the *first* iteration is
//! measured: all polluted features are candidates, so it is the most
//! expensive recommendation.
//!
//! Paper expectation (shape, not absolute seconds — different hardware and
//! data sizes): categorical shift / missing values cost more than Gaussian
//! noise / scaling (one-hot encoding inflates training), and runtime scales
//! with the number of candidate features.

use comet_bench::{
    applicable,
    figures::{comet_traces_for_cell, grid_datasets},
    ExperimentOpts, MatrixTable, Source,
};
use comet_core::CostPolicy;
use comet_jenga::{ErrorType, Scenario};
use comet_ml::Algorithm;

fn main() {
    let mut opts = ExperimentOpts::from_env();
    if opts.quick {
        opts.settings = 1;
    }
    // Only the first recommendation is timed: one budget unit suffices.
    opts.budget = opts.budget.min(2.0);
    let datasets = grid_datasets(&opts);
    let algorithms = [
        Algorithm::Gb,
        Algorithm::Knn,
        Algorithm::Mlp,
        Algorithm::Svm,
        Algorithm::LinReg,
        Algorithm::LogReg,
    ];
    let costs = CostPolicy::constant();

    println!("Figure 12: runtime (ms) of the first recommendation (error type × algorithm)\n");
    let mut table = MatrixTable::new(
        "figure12_recommendation_runtime_ms",
        algorithms.iter().map(|a| a.name().to_string()).collect(),
        ErrorType::ALL.iter().map(|e| e.abbrev().to_string()).collect(),
    );

    for &algorithm in &algorithms {
        for &err in &ErrorType::ALL {
            let mut millis: Vec<f64> = Vec::new();
            for &dataset in &datasets {
                if !applicable(dataset, err) {
                    continue;
                }
                let traces = comet_traces_for_cell(
                    &format!("fig12-{algorithm}-{dataset}-{err:?}"),
                    Source::Prepolluted(Scenario::SingleError(err)),
                    dataset,
                    algorithm,
                    costs,
                    &opts,
                )
                .unwrap_or_else(|e| panic!("{dataset}/{algorithm}/{err}: {e}"));
                millis.extend(
                    traces
                        .iter()
                        .filter_map(|t| t.iteration_runtimes.first())
                        .map(|d| d.as_secs_f64() * 1e3),
                );
            }
            if !millis.is_empty() {
                table.set(
                    algorithm.name(),
                    err.abbrev(),
                    millis.iter().sum::<f64>() / millis.len() as f64,
                );
            }
        }
        eprintln!("  [12] {algorithm} done");
    }
    table.emit(&opts.out_dir).expect("emit figure 12");
}
