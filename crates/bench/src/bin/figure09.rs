//! Figure 9 (and appendix Figures 25/27 via `--algo lir|lor`):
//! COMET vs ActiveClean on the **CleanML datasets**, AC-SVM by default.

use comet_bench::{dataset_advantage_table, ExperimentOpts, Source, Strategy};
use comet_core::CostPolicy;
use comet_datasets::Dataset;
use comet_ml::Algorithm;

fn main() {
    let opts = ExperimentOpts::from_env();
    let algorithm = opts.algorithm_or(Algorithm::Svm);
    assert!(algorithm.is_convex_linear(), "ActiveClean supports SVM/LOR/LIR only (paper §4.5)");
    println!("Figure 9: COMET vs AC on CleanML datasets, {algorithm}\n");
    for dataset in Dataset::CLEANML {
        let errors: Vec<String> =
            dataset.spec().cleanml_errors.iter().map(|e| e.abbrev().to_lowercase()).collect();
        let name = format!(
            "figure09_{}_{}_{}",
            algorithm.name().to_lowercase(),
            dataset.spec().name.to_lowercase(),
            errors.join("_")
        );
        let table = dataset_advantage_table(
            name,
            Source::CleanMl,
            dataset,
            algorithm,
            &[Strategy::Ac],
            CostPolicy::constant(),
            &opts,
        )
        .unwrap_or_else(|e| panic!("{dataset}: {e}"));
        table.emit(&opts.out_dir).expect("emit table");
        println!();
    }
}
