//! Figure 5 (and appendix Figures 18/20/22 via `--algo gb|knn|svm`):
//! COMET vs FIR/RR/CL per **single error type** on the pre-polluted
//! datasets, MLP by default (the paper's worst case for COMET), constant
//! costs.
//!
//! Paper expectation: positive advantage in most budget cells; strongest
//! for categorical shift and missing values, smaller for Gaussian noise
//! and scaling; occasional dips (e.g. CMC/GN) are normal.

use comet_bench::{applicable, dataset_advantage_table, ExperimentOpts, Source, Strategy};
use comet_core::CostPolicy;
use comet_datasets::Dataset;
use comet_jenga::{ErrorType, Scenario};
use comet_ml::Algorithm;

fn main() {
    let opts = ExperimentOpts::from_env();
    let algorithm = opts.algorithm_or(Algorithm::Mlp);
    let baselines = [Strategy::Fir, Strategy::Rr, Strategy::Cl];
    println!("Figure 5: COMET vs FIR/RR/CL per error type, {algorithm}\n");
    for err in ErrorType::ALL {
        for dataset in Dataset::PREPOLLUTED {
            if !applicable(dataset, err) {
                println!("-- {dataset} has no features for {err}; skipped (paper §4.3) --\n");
                continue;
            }
            let name = format!(
                "figure05_{}_{}_{}",
                algorithm.name().to_lowercase(),
                err.abbrev().to_lowercase(),
                dataset.spec().name.to_lowercase().replace('-', "")
            );
            let table = dataset_advantage_table(
                name,
                Source::Prepolluted(Scenario::SingleError(err)),
                dataset,
                algorithm,
                &baselines,
                CostPolicy::constant(),
                &opts,
            )
            .unwrap_or_else(|e| panic!("{dataset}/{err}: {e}"));
            table.emit(&opts.out_dir).expect("emit table");
            println!();
        }
    }
}
