//! Detection-noise benchmark: COMET vs RR/FIR **without the oracle**.
//!
//! Every other experiment binary hands the strategies the JENGA provenance
//! — they always know exactly which `(feature, error)` pairs are dirty.
//! This bin removes that assumption: the environment runs in
//! detection-seeded mode, so candidates come from the `comet-detect`
//! ensemble applied to the dirty frames (noisy: false positives waste
//! budget, false negatives hide dirt), and the simulated cleaner treats
//! the detector's family attribution as a hint, not a filter.
//!
//! **Workload.** Four REIN-style error families, each planted into a
//! dataset whose schema exercises it (EEG is purely numeric, CMC mostly
//! categorical with a 3-class label):
//!
//! * `O`  — outliers (EEG)
//! * `SF` — swapped fields (EEG)
//! * `ND` — near-duplicate rows (EEG)
//! * `LN` — label noise (CMC)
//!
//! Strategies receive the full `ErrorType::EXTENDED` palette — none of
//! them is told which family was planted. Per family and pre-pollution
//! setting, COMET / RR / FIR run on clones of the same environment with
//! the same budget; the headline quantity is the mean F1 per budget unit
//! (the area under the budget curve, same series the paper's figures
//! plot). Per-detector precision/recall against the hidden provenance is
//! reported alongside, so the JSON shows *how noisy* the candidate source
//! was while COMET still won.
//!
//! Output: a text table on stdout plus `BENCH_detect.json` under `--out`
//! (CI smoke asserts COMET beats both baselines on at least 3 of the 4
//! families).

use comet_bench::{build_rein_env, f1_series, run_strategy, ExperimentOpts, Strategy};
use comet_core::CostPolicy;
use comet_datasets::Dataset;
use comet_detect::DetectorConfig;
use comet_jenga::ErrorType;
use comet_ml::Algorithm;

/// One benchmark cell: a planted family and the dataset that carries it.
const FAMILIES: [(ErrorType, Dataset); 4] = [
    (ErrorType::Outliers, Dataset::Eeg),
    (ErrorType::SwappedFields, Dataset::Eeg),
    (ErrorType::NearDuplicateRows, Dataset::Eeg),
    (ErrorType::LabelNoise, Dataset::Cmc),
];

struct Row {
    family: ErrorType,
    dataset: Dataset,
    flagged: usize,
    detector_precision: f64,
    detector_recall: f64,
    comet_auc: f64,
    rr_auc: f64,
    fir_auc: f64,
    comet_final: f64,
    rr_final: f64,
    fir_final: f64,
}

impl Row {
    fn comet_beats_both(&self) -> bool {
        self.comet_auc > self.rr_auc && self.comet_auc > self.fir_auc
    }
}

/// Mean of an F1-per-budget-unit series: the area under the budget curve,
/// normalised to the budget span.
fn auc(series: &[f64]) -> f64 {
    series.iter().sum::<f64>() / series.len() as f64
}

/// Micro-averaged flagged/precision/recall over the ensemble: pools every
/// detector's (flagged ∩ target-dirty) counts so one number summarises how
/// noisy the candidate source was.
fn ensemble_quality(scores: &[comet_detect::DetectorScore]) -> (usize, f64, f64) {
    let flagged: usize = scores.iter().map(|s| s.flagged).sum();
    let hits: f64 = scores.iter().map(|s| s.precision * s.flagged as f64).sum();
    let dirty: f64 = scores.iter().map(|s| s.recall * s.true_dirty as f64).sum();
    let true_dirty: usize = scores.iter().map(|s| s.true_dirty).sum();
    let precision = if flagged == 0 { 0.0 } else { hits / flagged as f64 };
    let recall = if true_dirty == 0 { 0.0 } else { dirty / true_dirty as f64 };
    (flagged, precision, recall)
}

fn json_row(r: &Row) -> String {
    format!(
        "    {{\"family\": \"{}\", \"dataset\": \"{}\", \"flagged_cells\": {}, \
         \"detector_precision\": {:.3}, \"detector_recall\": {:.3}, \
         \"comet_auc\": {:.4}, \"rr_auc\": {:.4}, \"fir_auc\": {:.4}, \
         \"comet_final\": {:.4}, \"rr_final\": {:.4}, \"fir_final\": {:.4}, \
         \"comet_beats_both\": {}}}",
        r.family.abbrev(),
        r.dataset,
        r.flagged,
        r.detector_precision,
        r.detector_recall,
        r.comet_auc,
        r.rr_auc,
        r.fir_auc,
        r.comet_final,
        r.rr_final,
        r.fir_final,
        r.comet_beats_both(),
    )
}

fn main() {
    let opts = ExperimentOpts::from_env();
    let algorithm = opts.algorithm_or(Algorithm::Knn);
    let errors = ErrorType::EXTENDED.to_vec();
    let max_budget = opts.budget as usize;
    println!(
        "Detection-noise: COMET vs RR/FIR, candidates from comet-detect (no oracle), \
         {algorithm}, budget {}, {} setting(s)\n",
        opts.budget, opts.settings
    );
    println!(
        "{:<4} {:>8} {:>8} {:>7} {:>7}  {:>9} {:>9} {:>9}  winner",
        "fam", "dataset", "flagged", "det-P", "det-R", "COMET", "RR", "FIR"
    );

    let mut rows: Vec<Row> = Vec::new();
    for (family, dataset) in FAMILIES {
        let mut comet_series: Vec<Vec<f64>> = Vec::new();
        let mut rr_series: Vec<Vec<f64>> = Vec::new();
        let mut fir_series: Vec<Vec<f64>> = Vec::new();
        let mut flagged = 0usize;
        let mut det_p = 0.0;
        let mut det_r = 0.0;
        for setting in 0..opts.settings {
            let setup = build_rein_env(
                dataset,
                algorithm,
                &[family],
                DetectorConfig::default(),
                setting,
                &opts,
            )
            .unwrap_or_else(|e| panic!("{dataset}/{family}: {e}"));
            let scores = setup.env.detector_scores().expect("detector scores");
            let (f, p, r) = ensemble_quality(&scores);
            flagged += f;
            det_p += p / opts.settings as f64;
            det_r += r / opts.settings as f64;
            for (strategy, bucket) in [
                (Strategy::Comet, &mut comet_series),
                (Strategy::Rr, &mut rr_series),
                (Strategy::Fir, &mut fir_series),
            ] {
                let seed = opts.child_seed("detectnoise-run", setting as u64);
                let traces = run_strategy(
                    strategy,
                    &setup.env,
                    &errors,
                    CostPolicy::constant(),
                    &opts,
                    seed,
                )
                .unwrap_or_else(|e| panic!("{dataset}/{family}/{strategy:?}: {e}"));
                bucket.push(f1_series(&traces, max_budget));
            }
        }
        let mean = |series: &[Vec<f64>]| {
            let len = series[0].len();
            let mut out = vec![0.0; len];
            for s in series {
                for (o, v) in out.iter_mut().zip(s) {
                    *o += v / series.len() as f64;
                }
            }
            out
        };
        let (comet, rr, fir) = (mean(&comet_series), mean(&rr_series), mean(&fir_series));
        let row = Row {
            family,
            dataset,
            flagged,
            detector_precision: det_p,
            detector_recall: det_r,
            comet_auc: auc(&comet),
            rr_auc: auc(&rr),
            fir_auc: auc(&fir),
            comet_final: *comet.last().expect("non-empty series"),
            rr_final: *rr.last().expect("non-empty series"),
            fir_final: *fir.last().expect("non-empty series"),
        };
        println!(
            "{:<4} {:>8} {:>8} {:>7.3} {:>7.3}  {:>9.4} {:>9.4} {:>9.4}  {}",
            row.family.abbrev(),
            row.dataset.to_string(),
            row.flagged,
            row.detector_precision,
            row.detector_recall,
            row.comet_auc,
            row.rr_auc,
            row.fir_auc,
            if row.comet_beats_both() { "COMET" } else { "baseline" }
        );
        rows.push(row);
    }

    let wins = rows.iter().filter(|r| r.comet_beats_both()).count();
    println!("\nCOMET beats both baselines on {wins}/{} families (acceptance: >= 3)", rows.len());

    let json = format!(
        "{{\n  \"bench\": \"detection_noise\",\n  \"workload\": \"COMET vs RR/FIR with \
         candidates from the comet-detect ensemble instead of the provenance oracle; four \
         planted REIN error families, strategies receive the full EXTENDED error palette\",\n  \
         \"algorithm\": \"{}\",\n  \"rows\": {},\n  \"budget\": {},\n  \"settings\": {},\n  \
         \"seed\": {},\n  \"results\": [\n{}\n  ],\n  \"summary\": {{\"families\": {}, \
         \"comet_wins\": {}, \"acceptance_met\": {}}}\n}}\n",
        algorithm.name(),
        opts.rows.map_or("null".into(), |r| r.to_string()),
        opts.budget,
        opts.settings,
        opts.seed,
        rows.iter().map(json_row).collect::<Vec<_>>().join(",\n"),
        rows.len(),
        wins,
        wins >= 3,
    );
    std::fs::create_dir_all(&opts.out_dir).expect("create out dir");
    let path = format!("{}/BENCH_detect.json", opts.out_dir);
    std::fs::write(&path, &json).expect("write BENCH_detect.json");
    println!("wrote {path}");
    if wins < 3 {
        eprintln!("warning: COMET won only {wins}/4 families under detection noise");
        std::process::exit(1);
    }
}
