//! Figure 4 (and appendix Figures 16–17 via `--algo lor|acsvm`):
//! COMET vs ActiveClean across **multiple error types and diverse cost
//! functions**, LIR by default.
//!
//! Paper expectation: COMET consistently ahead, often by ≥ 20 %pt — AC's
//! record-wise gradient selection optimizes the loss, not the F1, and pays
//! mixed per-error costs.

use comet_bench::{dataset_advantage_table, ExperimentOpts, Source, Strategy};
use comet_core::CostPolicy;
use comet_datasets::Dataset;
use comet_jenga::Scenario;
use comet_ml::Algorithm;

fn main() {
    let opts = ExperimentOpts::from_env();
    let algorithm = opts.algorithm_or(Algorithm::LinReg);
    assert!(algorithm.is_convex_linear(), "ActiveClean supports SVM/LOR/LIR only (paper §4.5)");
    println!("Figure 4: COMET vs AC, multi-error + diverse cost functions, {algorithm}\n");
    for dataset in Dataset::PREPOLLUTED {
        let name = format!(
            "figure04_{}_{}",
            algorithm.name().to_lowercase(),
            dataset.spec().name.to_lowercase().replace('-', "")
        );
        let table = dataset_advantage_table(
            name,
            Source::Prepolluted(Scenario::MultiError),
            dataset,
            algorithm,
            &[Strategy::Ac],
            CostPolicy::paper_multi(),
            &opts,
        )
        .unwrap_or_else(|e| panic!("{dataset}: {e}"));
        table.emit(&opts.out_dir).expect("emit table");
        println!();
    }
}
