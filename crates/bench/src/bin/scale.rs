//! Out-of-core scale benchmark: million-row sessions with bounded RSS,
//! emitting `BENCH_scale.json` (DESIGN.md §15).
//!
//! **Workload.** For each row count in the grid (default 65 536 and
//! 1 048 576; override with `COMET_SCALE_ROWS=a,b,c`), an EEG REIN pair is
//! generated (streamed into 64Ki-row segments), a cleaning session runs
//! over it, and the trace CSV is fingerprinted. Every row count runs
//! twice:
//!
//! * `in_memory` — no spill pool, the pre-PR resident behaviour;
//! * `spill` — the pool armed with a budget of ~¼ of one frame's payload,
//!   so most segments must page to disk, plus a matching feature-block
//!   byte budget.
//!
//! **Isolation.** Each leg runs in its own subprocess (the bin re-execs
//! itself with `COMET_SCALE_LEG=rows:budget`), because `VmHWM` is a
//! process-lifetime high-water mark: measuring both legs in one process
//! would let the in-memory peak mask the spill leg's.
//!
//! **Gates** (exit 1 on violation):
//! * traces are bit-identical between the in-memory and spill legs at
//!   every scale — spilling is a storage decision, never a semantic one;
//! * every spill leg actually spilled, and ended with pool-resident bytes
//!   within its budget (the "RSS of segments exceeds budget" check is the
//!   pool's own invariant, asserted from the outside);
//! * peak RSS of the spill leg never exceeds the in-memory leg's by more
//!   than measurement slack, and at the largest scale is strictly below
//!   it — out-of-core must actually save memory where it matters;
//! * throughput degrades sub-linearly: between consecutive grid sizes,
//!   per-row generation cost (best of three repeats — the phase is short
//!   enough for scheduler jitter to dominate a single timing) and
//!   per-row-per-evaluation session cost may each grow by at most a
//!   constant 3.0×. The constant absorbs the one-time transition from
//!   LLC-resident to DRAM-streaming matrices (~2.3× per unit measured
//!   between 64Ki and 1M rows), reload I/O on spill legs, and ±10%
//!   shared-machine timing noise, while still failing on anything
//!   super-linear in the algorithmic sense: an O(n²) stage doubles its
//!   per-row cost at every doubling, which compounds far past the
//!   constant across the 16× default grid. Session cost is normalized
//!   per variant evaluation because the estimator's eval count varies a
//!   little with the data draw, not with scale.

use comet_core::{build_paired_env, CleaningSession, CometConfig};
use comet_datasets::Dataset;
use comet_jenga::ErrorType;
use comet_ml::{Algorithm, RandomSearch};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// EEG: 14 numeric features, ~9 payload bytes per cell (8 value + 1
/// validity). The spill budget is a quarter of one frame's payload.
fn spill_budget(rows: usize) -> u64 {
    (rows as u64) * 14 * 9 / 4
}

/// `VmHWM`/`VmRSS` in KiB from /proc/self/status; 0 when unavailable
/// (non-Linux), which downgrades the parent's RSS gates to report-only.
fn proc_status_kb(key: &str) -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    status
        .lines()
        .find(|l| l.starts_with(key))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// One measured leg, as reported by the subprocess and parsed back.
#[derive(Debug, Clone, Default)]
struct Leg {
    rows: usize,
    budget: u64,
    baseline_kb: u64,
    gen_s: f64,
    session_s: f64,
    iterations: u64,
    trace_fp: u64,
    vm_hwm_kb: u64,
    spills: u64,
    reloads: u64,
    resident_bytes: u64,
    spill_bytes: u64,
    block_hits: u64,
    block_misses: u64,
    eval_hits: u64,
    eval_misses: u64,
    variant_evals: u64,
}

impl Leg {
    fn mode(&self) -> &'static str {
        if self.budget == 0 {
            "in_memory"
        } else {
            "spill"
        }
    }
}

/// Child mode: run exactly one leg and print one parseable result line.
/// The rng stream is identical for every leg of a row count — the budget
/// never enters it — so traces must come out bit-identical.
fn run_leg(rows: usize, budget: u64) {
    comet_obs::reset();
    comet_obs::set_enabled(true);
    let spill_dir = std::env::temp_dir().join(format!("comet-scale-spill-{}", std::process::id()));
    if budget > 0 {
        comet_frame::spill_configure(&spill_dir, budget).expect("configure spill pool");
    }
    let baseline_kb = proc_status_kb("VmRSS:");

    // Generation is ~1 s even at 10⁶ rows — short enough that one timing
    // is hostage to page-zeroing and scheduler jitter (an 8× spread was
    // observed across identical runs on a shared VM), so take the best of
    // three. The rng is re-seeded per repeat: every repeat builds the
    // identical pair and leaves the identical stream state, so the
    // session (and its trace) match a single-generation run exactly.
    const GEN_REPEATS: usize = 3;
    let mut gen_s = f64::INFINITY;
    let mut generated = None;
    for _ in 0..GEN_REPEATS {
        drop(generated.take()); // free the previous pair before timing the next
        let t0 = Instant::now();
        let mut rng = StdRng::seed_from_u64(42);
        let pair =
            Dataset::Eeg.generate_rein_pair(Some(rows), &[ErrorType::MissingValues], &mut rng);
        gen_s = gen_s.min(t0.elapsed().as_secs_f64());
        generated = Some((pair, rng));
    }
    let (pair, mut rng) = generated.expect("at least one generation repeat");

    let mut env = build_paired_env(
        pair.dirty,
        Some(pair.clean),
        Algorithm::Svm,
        0.02,
        RandomSearch { n_samples: 1, ..RandomSearch::default() },
        7,
        comet_frame::DEFAULT_SEGMENT_ROWS,
        &mut rng,
    )
    .expect("paired environment");
    if budget > 0 {
        env.set_feature_cache_budget(((budget / 4).max(1)) as usize);
    }

    let session = CleaningSession::new(
        CometConfig { budget: 1.0, n_combinations: 1, ..CometConfig::default() },
        vec![ErrorType::MissingValues],
    );
    let t1 = Instant::now();
    let outcome = session.run(&mut env, &mut rng).expect("session run");
    let session_s = t1.elapsed().as_secs_f64();

    let csv = outcome.trace.to_csv(Some(env.train()));
    let trace_fp = comet_frame::fingerprint_bytes(0x5ca1e, csv.as_bytes());
    let stats = comet_frame::spill_stats().unwrap_or_default();
    let snap = comet_obs::snapshot();
    let vm_hwm_kb = proc_status_kb("VmHWM:");
    if budget > 0 {
        comet_frame::spill_deconfigure();
        std::fs::remove_dir_all(&spill_dir).ok();
    }
    println!(
        "SCALE_LEG rows={rows} budget={budget} baseline_kb={baseline_kb} gen_s={gen_s:.3} \
         session_s={session_s:.3} iterations={} trace_fp={trace_fp} vm_hwm_kb={vm_hwm_kb} \
         spills={} reloads={} resident_bytes={} spill_bytes={} block_hits={} block_misses={} \
         eval_hits={} eval_misses={} variant_evals={}",
        outcome.trace.records.len(),
        stats.spills,
        stats.reloads,
        stats.resident_bytes,
        stats.spill_bytes,
        snap.counter("featurize.block_hits"),
        snap.counter("featurize.block_misses"),
        snap.counter("eval_cache.hits"),
        snap.counter("eval_cache.misses"),
        snap.counter("estimator.variant_evals"),
    );
}

/// Re-exec this binary for one leg and parse its result line.
fn spawn_leg(rows: usize, budget: u64) -> Leg {
    let exe = std::env::current_exe().expect("own executable path");
    let output = std::process::Command::new(exe)
        .env("COMET_SCALE_LEG", format!("{rows}:{budget}"))
        .output()
        .expect("spawn scale leg");
    let stdout = String::from_utf8_lossy(&output.stdout);
    if !output.status.success() {
        eprintln!("{}", String::from_utf8_lossy(&output.stderr));
        panic!("leg rows={rows} budget={budget} failed: {}", output.status);
    }
    let line = stdout
        .lines()
        .find(|l| l.starts_with("SCALE_LEG "))
        .unwrap_or_else(|| panic!("leg rows={rows} budget={budget} printed no result: {stdout}"));
    let mut leg = Leg::default();
    for field in line.split_whitespace().skip(1) {
        let Some((key, value)) = field.split_once('=') else { continue };
        match key {
            "rows" => leg.rows = value.parse().expect("rows"),
            "budget" => leg.budget = value.parse().expect("budget"),
            "baseline_kb" => leg.baseline_kb = value.parse().expect("baseline_kb"),
            "gen_s" => leg.gen_s = value.parse().expect("gen_s"),
            "session_s" => leg.session_s = value.parse().expect("session_s"),
            "iterations" => leg.iterations = value.parse().expect("iterations"),
            "trace_fp" => leg.trace_fp = value.parse().expect("trace_fp"),
            "vm_hwm_kb" => leg.vm_hwm_kb = value.parse().expect("vm_hwm_kb"),
            "spills" => leg.spills = value.parse().expect("spills"),
            "reloads" => leg.reloads = value.parse().expect("reloads"),
            "resident_bytes" => leg.resident_bytes = value.parse().expect("resident_bytes"),
            "spill_bytes" => leg.spill_bytes = value.parse().expect("spill_bytes"),
            "block_hits" => leg.block_hits = value.parse().expect("block_hits"),
            "block_misses" => leg.block_misses = value.parse().expect("block_misses"),
            "eval_hits" => leg.eval_hits = value.parse().expect("eval_hits"),
            "eval_misses" => leg.eval_misses = value.parse().expect("eval_misses"),
            "variant_evals" => leg.variant_evals = value.parse().expect("variant_evals"),
            _ => {}
        }
    }
    leg
}

fn json_leg(leg: &Leg) -> String {
    format!(
        "    {{\"rows\": {}, \"mode\": \"{}\", \"budget_bytes\": {}, \"gen_s\": {:.3}, \
         \"session_s\": {:.3}, \"iterations\": {}, \"vm_hwm_kb\": {}, \"baseline_kb\": {}, \
         \"spills\": {}, \"reloads\": {}, \"resident_bytes\": {}, \"spill_bytes\": {}, \
         \"block_hits\": {}, \"block_misses\": {}, \"eval_hits\": {}, \"eval_misses\": {}, \
         \"variant_evals\": {}, \"trace_fp\": \"{:016x}\"}}",
        leg.rows,
        leg.mode(),
        leg.budget,
        leg.gen_s,
        leg.session_s,
        leg.iterations,
        leg.vm_hwm_kb,
        leg.baseline_kb,
        leg.spills,
        leg.reloads,
        leg.resident_bytes,
        leg.spill_bytes,
        leg.block_hits,
        leg.block_misses,
        leg.eval_hits,
        leg.eval_misses,
        leg.variant_evals,
        leg.trace_fp,
    )
}

fn main() {
    if let Ok(spec) = std::env::var("COMET_SCALE_LEG") {
        let (rows, budget) = spec
            .split_once(':')
            .and_then(|(r, b)| Some((r.parse().ok()?, b.parse().ok()?)))
            .unwrap_or_else(|| panic!("bad COMET_SCALE_LEG {spec:?}"));
        run_leg(rows, budget);
        return;
    }

    let opts = comet_bench::ExperimentOpts::from_env();
    let grid: Vec<usize> = match std::env::var("COMET_SCALE_ROWS") {
        Ok(spec) => spec
            .split(',')
            .map(|s| s.trim().parse().unwrap_or_else(|e| panic!("COMET_SCALE_ROWS: {e}")))
            .collect(),
        Err(_) => vec![65_536, 1_048_576],
    };
    assert!(!grid.is_empty(), "empty row grid");
    let max_rows = *grid.iter().max().unwrap_or(&0);
    println!(
        "scale: EEG REIN session at rows {:?}, in-memory vs spill (budget ≈ ¼ frame payload), \
         one subprocess per leg\n",
        grid
    );

    let mut legs: Vec<Leg> = Vec::new();
    for &rows in &grid {
        for budget in [0, spill_budget(rows)] {
            let leg = spawn_leg(rows, budget);
            println!(
                "{:>9} rows [{:>9}]: gen {:>7.2}s  session {:>7.2}s  peak RSS {:>8} KiB  \
                 spills {:>5}  reloads {:>5}  trace {:016x}",
                leg.rows,
                leg.mode(),
                leg.gen_s,
                leg.session_s,
                leg.vm_hwm_kb,
                leg.spills,
                leg.reloads,
                leg.trace_fp,
            );
            legs.push(leg);
        }
    }

    // ---- Gates ----------------------------------------------------------
    let mut failures: Vec<String> = Vec::new();
    let rss_known = legs.iter().all(|l| l.vm_hwm_kb > 0);

    for &rows in &grid {
        let group: Vec<&Leg> = legs.iter().filter(|l| l.rows == rows).collect();
        let fp = group[0].trace_fp;
        if group.iter().any(|l| l.trace_fp != fp) {
            failures.push(format!("rows={rows}: traces diverged between in-memory and spill"));
        }
        let inmem = group.iter().find(|l| l.budget == 0).expect("in-memory leg");
        let spill = group.iter().find(|l| l.budget > 0).expect("spill leg");
        if spill.spills == 0 {
            failures.push(format!("rows={rows}: spill leg never spilled (budget too generous?)"));
        }
        if spill.resident_bytes > spill.budget {
            failures.push(format!(
                "rows={rows}: pool ended with {} resident bytes over its {} budget",
                spill.resident_bytes, spill.budget
            ));
        }
        if rss_known {
            if spill.vm_hwm_kb as f64 > inmem.vm_hwm_kb as f64 * 1.10 {
                failures.push(format!(
                    "rows={rows}: spill peak RSS {} KiB exceeds in-memory {} KiB",
                    spill.vm_hwm_kb, inmem.vm_hwm_kb
                ));
            }
            if rows == max_rows && spill.vm_hwm_kb >= inmem.vm_hwm_kb {
                failures.push(format!(
                    "rows={rows}: out-of-core saved no memory ({} vs {} KiB)",
                    spill.vm_hwm_kb, inmem.vm_hwm_kb
                ));
            }
        }
    }

    // Sub-linear throughput between consecutive grid points, per mode:
    // per-row unit costs may grow by at most a constant factor, however
    // far apart the grid points are. Anything algorithmically super-linear
    // compounds past the constant; the constant itself absorbs the
    // one-time LLC→DRAM working-set transition and machine noise.
    let mut sorted = grid.clone();
    sorted.sort_unstable();
    for mode_budget in [false, true] {
        let slack = 3.0;
        let mode = if mode_budget { "spill" } else { "in_memory" };
        for pair in sorted.windows(2) {
            let leg =
                |rows: usize| legs.iter().find(|l| l.rows == rows && (l.budget > 0) == mode_budget);
            let (Some(small), Some(big)) = (leg(pair[0]), leg(pair[1])) else { continue };
            let gen_per_row =
                |l: &Leg| if l.rows > 0 { l.gen_s / l.rows as f64 } else { f64::INFINITY };
            if gen_per_row(small) > 0.0 && gen_per_row(big) / gen_per_row(small) > slack {
                failures.push(format!(
                    "{mode}: super-linear generation: {:.1} -> {:.1} us/row across {}x rows \
                     (limit {slack:.1}x)",
                    gen_per_row(small) * 1e6,
                    gen_per_row(big) * 1e6,
                    pair[1] / pair[0],
                ));
            }
            let eval_per_row = |l: &Leg| {
                let evals = l.variant_evals.max(1) as f64;
                if l.rows > 0 {
                    l.session_s / evals / l.rows as f64
                } else {
                    f64::INFINITY
                }
            };
            if eval_per_row(small) > 0.0 && eval_per_row(big) / eval_per_row(small) > slack {
                failures.push(format!(
                    "{mode}: super-linear evaluation: {:.2} -> {:.2} us/(row*eval) across {}x \
                     rows (limit {slack:.1}x)",
                    eval_per_row(small) * 1e6,
                    eval_per_row(big) * 1e6,
                    pair[1] / pair[0],
                ));
            }
        }
    }

    // ---- Report ---------------------------------------------------------
    let rows_json = legs.iter().map(json_leg).collect::<Vec<_>>().join(",\n");
    let max_inmem = legs.iter().find(|l| l.rows == max_rows && l.budget == 0);
    let max_spill = legs.iter().find(|l| l.rows == max_rows && l.budget > 0);
    let rss_ratio = match (max_inmem, max_spill) {
        (Some(a), Some(b)) if a.vm_hwm_kb > 0 => b.vm_hwm_kb as f64 / a.vm_hwm_kb as f64,
        _ => 0.0,
    };
    let json = format!(
        "{{\n  \"bench\": \"scale\",\n  \"workload\": \"EEG REIN pair generation + cleaning \
         session (SVM, missing values), in-memory vs spill tier at ~quarter-frame budget, one \
         subprocess per leg\",\n  \"segment_rows\": {seg},\n  \"results\": [\n{rows_json}\n  ],\n  \
         \"summary\": {{\"max_rows\": {max_rows}, \"spill_vs_inmem_rss_at_max\": {rss_ratio:.3}, \
         \"trace_bit_identical\": {identical}, \"gates_passed\": {passed}, \"failures\": \
         [{failure_list}]}}\n}}\n",
        seg = comet_frame::DEFAULT_SEGMENT_ROWS,
        identical = !failures.iter().any(|f| f.contains("diverged")),
        passed = failures.is_empty(),
        failure_list = failures
            .iter()
            .map(|f| format!("\"{}\"", f.replace('"', "'")))
            .collect::<Vec<_>>()
            .join(", "),
    );
    std::fs::create_dir_all(&opts.out_dir).expect("create output directory");
    let path = format!("{}/BENCH_scale.json", opts.out_dir);
    std::fs::write(&path, &json).expect("write BENCH_scale.json");
    println!("\nwrote {path}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("ERROR: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "all gates passed: traces bit-identical, spill resident bytes within budget, peak RSS \
         bounded ({:.0}% of in-memory at {} rows), per-row throughput sub-linear",
        rss_ratio * 100.0,
        max_rows,
    );
}
