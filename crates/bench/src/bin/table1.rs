//! Table 1 — overview of the evaluation datasets.
//!
//! Prints the paper's dataset characteristics (rows, categorical/numeric
//! feature counts, classes) and verifies the generated synthetic analog
//! matches the spec.

use comet_bench::ExperimentOpts;
use comet_datasets::Dataset;
use comet_frame::ColumnKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = ExperimentOpts::from_env();
    let mut rng = StdRng::seed_from_u64(opts.seed);

    println!("== Table 1: Overview of our used datasets ==");
    println!(
        "{:<12}{:>9}{:>8}{:>8}{:>9}{:>12}",
        "Name", "# Rows", "# Cat.", "# Num.", "# Class", "errors"
    );
    let mut csv = String::from("name,rows,categorical,numeric,classes,cleanml_errors\n");
    for dataset in Dataset::ALL {
        let spec = dataset.spec();
        // Generate a sample and verify the analog honours the schema.
        let df = dataset.generate(Some(spec.rows.min(opts.rows.unwrap_or(spec.rows))), &mut rng);
        let features = df.feature_indices();
        let n_cat = features
            .iter()
            .filter(|&&c| df.column(c).unwrap().kind() == ColumnKind::Categorical)
            .count();
        let n_num = features.len() - n_cat;
        assert_eq!(n_cat, spec.n_categorical, "{dataset}: categorical count mismatch");
        assert_eq!(n_num, spec.n_numeric, "{dataset}: numeric count mismatch");
        assert_eq!(df.n_classes().unwrap(), spec.n_classes, "{dataset}: class count mismatch");

        let errors: Vec<&str> = spec.cleanml_errors.iter().map(|e| e.abbrev()).collect();
        let errors = if errors.is_empty() { "-".to_string() } else { errors.join("+") };
        println!(
            "{:<12}{:>9}{:>8}{:>8}{:>9}{:>12}",
            spec.name, spec.rows, spec.n_categorical, spec.n_numeric, spec.n_classes, errors
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{}\n",
            spec.name, spec.rows, spec.n_categorical, spec.n_numeric, spec.n_classes, errors
        ));
    }
    std::fs::create_dir_all(&opts.out_dir).expect("create output dir");
    std::fs::write(format!("{}/table1.csv", opts.out_dir), csv).expect("write csv");
    println!("\n(schema of every generated analog verified against Table 1)");
}
