//! Figure 3 (and appendix Figures 13–15 via `--algo mlp|knn|gb`):
//! COMET vs FIR/RR/CL across **multiple error types and diverse cost
//! functions** on the four pre-polluted datasets.
//!
//! Paper expectation: the `adv_vs_*` series are predominantly positive —
//! COMET outperforms all three baselines, with the diverse cost functions
//! (one-shot MV, linear GN) punishing the baselines' suboptimal choices.

use comet_bench::{dataset_advantage_table, ExperimentOpts, Source, Strategy};
use comet_core::CostPolicy;
use comet_datasets::Dataset;
use comet_jenga::Scenario;
use comet_ml::Algorithm;

fn main() {
    let opts = ExperimentOpts::from_env();
    let algorithm = opts.algorithm_or(Algorithm::Svm);
    let baselines = [Strategy::Fir, Strategy::Rr, Strategy::Cl];
    println!("Figure 3: COMET vs FIR/RR/CL, multi-error + diverse cost functions, {algorithm}\n");
    for dataset in Dataset::PREPOLLUTED {
        let name = format!(
            "figure03_{}_{}",
            algorithm.name().to_lowercase(),
            dataset.spec().name.to_lowercase().replace('-', "")
        );
        let table = dataset_advantage_table(
            name,
            Source::Prepolluted(Scenario::MultiError),
            dataset,
            algorithm,
            &baselines,
            CostPolicy::paper_multi(),
            &opts,
        )
        .unwrap_or_else(|e| panic!("{dataset}: {e}"));
        table.emit(&opts.out_dir).expect("emit table");
        println!();
    }
}
