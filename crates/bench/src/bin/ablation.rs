//! Ablation study — the design choices DESIGN.md calls out, each switched
//! off individually against full COMET (single-error missing values,
//! constant costs):
//!
//! * `no_uncertainty`  — Score = gain/cost (drops the `−U(f)` term of Eq. 4),
//! * `no_bias_corr`    — no per-feature discrepancy correction (§3.3),
//! * `no_revert`       — keep every cleaning step, never buffer,
//! * `no_fallback`     — stop when no candidate is predicted positive,
//! * `one_combination` — a single Polluter cell combination per level,
//! * `four_steps`      — four instead of two probe pollution steps.
//!
//! Reported: mean final F1 per dataset (higher is better), full COMET first.

use comet_bench::{build_prepolluted_env, ExperimentOpts, MatrixTable};
use comet_core::{CleaningSession, CometConfig, CostPolicy};
use comet_jenga::{ErrorType, Scenario};
use comet_ml::Algorithm;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn variants(base: CometConfig) -> Vec<(&'static str, CometConfig)> {
    vec![
        ("full", base),
        ("no_uncertainty", CometConfig { use_uncertainty: false, ..base }),
        ("no_bias_corr", CometConfig { bias_correction: false, ..base }),
        ("no_revert", CometConfig { revert_on_decrease: false, ..base }),
        ("no_fallback", CometConfig { fallback: false, ..base }),
        ("one_combination", CometConfig { n_combinations: 1, ..base }),
        ("four_steps", CometConfig { pollution_steps: 4, ..base }),
    ]
}

fn main() {
    let mut opts = ExperimentOpts::from_env();
    if opts.quick {
        opts.settings = opts.settings.min(2);
    }
    let algorithm = opts.algorithm_or(Algorithm::Knn);
    let datasets = [comet_datasets::Dataset::Eeg, comet_datasets::Dataset::Cmc];
    let err = ErrorType::MissingValues;
    let base = CometConfig {
        budget: opts.budget,
        costs: CostPolicy::constant(),
        n_combinations: opts.combos,
        ..CometConfig::default()
    };
    let names: Vec<String> = variants(base).iter().map(|(n, _)| n.to_string()).collect();

    println!("Ablation: COMET design choices, {algorithm}, missing values\n");
    let mut table = MatrixTable::new(
        "ablation_final_f1",
        names.clone(),
        datasets.iter().map(|d| d.to_string()).collect(),
    );

    for &dataset in &datasets {
        for (variant_name, config) in variants(base) {
            let mut finals: Vec<f64> = Vec::new();
            for setting in 0..opts.settings {
                let setup = build_prepolluted_env(
                    dataset,
                    algorithm,
                    Scenario::SingleError(err),
                    setting,
                    &opts,
                )
                .unwrap_or_else(|e| panic!("{dataset}: {e}"));
                let session = CleaningSession::new(config, vec![err]);
                let mut env = setup.env.clone();
                let mut rng = StdRng::seed_from_u64(
                    opts.child_seed(&format!("ablation-{variant_name}"), setting as u64),
                );
                let outcome = session.run(&mut env, &mut rng).expect("session");
                finals.push(outcome.trace.final_f1);
            }
            let mean = finals.iter().sum::<f64>() / finals.len() as f64;
            table.set(variant_name, &dataset.to_string(), mean);
        }
        eprintln!("  [ablation] {dataset} done");
    }
    table.emit(&opts.out_dir).expect("emit ablation");
}
