//! Hot-path benchmark: cold vs warm per-candidate evaluation, emitting
//! `BENCH_hotpath.json` plus a JSONL metrics journal so CI can smoke-test
//! both the speedup and the journal format.
//!
//! **Workload.** The PR 1 speedup workload (Eeg + Churn, KNN, pre-polluted
//! missing values): every dirty `(feature, error)` pair is expanded by the
//! Polluter into its candidate variants, and the bin times
//! `evaluate_frames` over all of them — the exact call the Estimator's
//! inner loop makes hundreds of times per session.
//!
//! **Modes**, timed over the identical candidate list:
//!
//! * `cold` — the pre-PR path: feature caching disabled, evaluation cache
//!   wiped before every call, scratch pool emptied. Every evaluation pays
//!   full featurizer fit + transform + model training.
//! * `warm` — the shipped steady state: both caches primed by one
//!   untimed pass, so repeat evaluations of content-identical states are
//!   answered from the evaluation cache.
//! * `warm_novel` — the evaluation cache is wiped but the column-block
//!   featurization cache stays warm: what a *new* candidate costs, i.e.
//!   model training plus one column's re-featurization.
//!
//! All three modes must produce bit-identical score vectors (the block
//! cache and kernels change where numbers are computed, never the
//! numbers); a seeded session is also replayed at 1/2/8 threads and
//! re-run to confirm traces stay content-identical.

use comet_bench::{build_prepolluted_env, comet_config, ExperimentOpts};
use comet_core::{CleaningEnvironment, CleaningSession, CostPolicy, Polluter};
use comet_datasets::Dataset;
use comet_jenga::{ErrorType, Scenario};
use comet_ml::Algorithm;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Pollution steps × combinations per candidate pair (the session default).
const POLLUTER: (usize, usize) = (2, 2);

struct Cell {
    dataset: String,
    setting: usize,
    candidates: usize,
    cold_ms: f64,
    warm_ms: f64,
    warm_novel_ms: f64,
    warm_speedup: f64,
    novel_speedup: f64,
    block_hits: u64,
    block_misses: u64,
    scratch_reuse: u64,
    identical_scores: bool,
    deterministic_traces: bool,
}

/// The candidate frame pairs one Estimator sweep evaluates.
fn candidate_frames(
    env: &CleaningEnvironment,
    errors: &[ErrorType],
    seed: u64,
) -> Vec<(comet_frame::DataFrame, comet_frame::DataFrame)> {
    let polluter = Polluter::new(POLLUTER.0, POLLUTER.1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for (col, err) in env.candidate_pairs(errors) {
        let variants = polluter.variants(env, col, err, &mut rng).expect("polluter variants");
        out.extend(variants.into_iter().map(|v| (v.train, v.test)));
    }
    out
}

/// Time one pass over every candidate. `cold` wipes both caches and the
/// scratch pool before *each* evaluation, reproducing the pre-PR per-call
/// cost; otherwise caches persist across calls.
fn pass(
    env: &CleaningEnvironment,
    candidates: &[(comet_frame::DataFrame, comet_frame::DataFrame)],
    cold: bool,
) -> (f64, Vec<f64>) {
    let start = Instant::now();
    let scores = candidates
        .iter()
        .map(|(train, test)| {
            if cold {
                env.clear_eval_cache();
                env.clear_feature_cache();
                comet_ml::scratch::clear();
            }
            env.evaluate_frames(train, test).expect("candidate evaluation")
        })
        .collect();
    (start.elapsed().as_secs_f64() * 1e3, scores)
}

/// Replay a seeded session at several thread counts plus one repeat;
/// true when every trace is content-identical.
fn traces_deterministic(base: &CleaningEnvironment, session: &CleaningSession, seed: u64) -> bool {
    let run = |threads: usize| {
        comet_par::with_threads(threads, || {
            let mut env = base.clone();
            let mut rng = StdRng::seed_from_u64(seed);
            session.run(&mut env, &mut rng).expect("session run").trace
        })
    };
    let reference = run(1);
    [run(2), run(8), run(1)].iter().all(|t| t.content_eq(&reference))
}

fn json_cell(c: &Cell) -> String {
    format!(
        "    {{\"dataset\": \"{}\", \"setting\": {}, \"candidates\": {}, \"cold_ms\": {:.1}, \
         \"warm_ms\": {:.1}, \"warm_novel_ms\": {:.1}, \"warm_speedup\": {:.2}, \
         \"novel_speedup\": {:.2}, \"block_hits\": {}, \"block_misses\": {}, \
         \"scratch_reuse\": {}, \"identical_scores\": {}, \"deterministic_traces\": {}}}",
        c.dataset,
        c.setting,
        c.candidates,
        c.cold_ms,
        c.warm_ms,
        c.warm_novel_ms,
        c.warm_speedup,
        c.novel_speedup,
        c.block_hits,
        c.block_misses,
        c.scratch_reuse,
        c.identical_scores,
        c.deterministic_traces,
    )
}

fn main() {
    let opts = ExperimentOpts::from_env();
    let algorithm = opts.algorithm_or(Algorithm::Knn);
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    comet_obs::reset();
    comet_obs::set_enabled(true);
    println!(
        "hotpath: per-candidate evaluate, cold (no caches) vs warm (both caches) vs warm_novel \
         (block cache only), host parallelism {host}\n"
    );

    let mut cells: Vec<Cell> = Vec::new();
    let mut journal_lines: Vec<String> = Vec::new();
    for dataset in [Dataset::Eeg, Dataset::Churn] {
        for setting in 0..opts.settings {
            let setup = build_prepolluted_env(
                dataset,
                algorithm,
                Scenario::SingleError(ErrorType::MissingValues),
                setting,
                &opts,
            )
            .unwrap_or_else(|e| panic!("{dataset}: {e}"));
            let seed = opts.child_seed("hotpath", setting as u64);
            let candidates = candidate_frames(&setup.env, &setup.errors, seed);
            assert!(!candidates.is_empty(), "workload produced no candidates");

            // Cold: pre-PR path on a handle with feature caching off.
            let mut cold_env = setup.env.clone();
            cold_env.set_feature_caching(false);
            let (cold_ms, cold_scores) = pass(&cold_env, &candidates, true);

            // Prime, then measure warm (eval-cache steady state).
            setup.env.clear_eval_cache();
            setup.env.clear_feature_cache();
            pass(&setup.env, &candidates, false);
            let (warm_ms, warm_scores) = pass(&setup.env, &candidates, false);

            // Novel candidates: eval cache cold, block cache warm.
            setup.env.clear_eval_cache();
            let before = comet_obs::snapshot();
            let (warm_novel_ms, novel_scores) = pass(&setup.env, &candidates, false);
            let after = comet_obs::snapshot();

            let identical_scores = cold_scores
                .iter()
                .zip(&warm_scores)
                .zip(&novel_scores)
                .all(|((c, w), n)| c.to_bits() == w.to_bits() && c.to_bits() == n.to_bits());
            let session = CleaningSession::new(
                comet_config(&opts, CostPolicy::constant()),
                setup.errors.clone(),
            );
            let deterministic_traces = traces_deterministic(&setup.env, &session, seed);

            let cell = Cell {
                dataset: dataset.spec().name.to_lowercase().replace('-', ""),
                setting,
                candidates: candidates.len(),
                cold_ms,
                warm_ms,
                warm_novel_ms,
                warm_speedup: cold_ms / warm_ms,
                novel_speedup: cold_ms / warm_novel_ms,
                block_hits: after.counter("featurize.block_hits")
                    - before.counter("featurize.block_hits"),
                block_misses: after.counter("featurize.block_misses")
                    - before.counter("featurize.block_misses"),
                scratch_reuse: after.counter("alloc.scratch_reuse")
                    - before.counter("alloc.scratch_reuse"),
                identical_scores,
                deterministic_traces,
            };
            println!(
                "{:>8} setting {}: {:>3} candidates  cold {:>8.1} ms  warm {:>7.1} ms \
                 ({:.1}x)  novel {:>8.1} ms ({:.1}x)  identical {}  deterministic {}",
                cell.dataset,
                setting,
                cell.candidates,
                cell.cold_ms,
                cell.warm_ms,
                cell.warm_speedup,
                cell.warm_novel_ms,
                cell.novel_speedup,
                cell.identical_scores,
                cell.deterministic_traces,
            );
            journal_lines.push(format!(
                "{{\"record\": \"hotpath_cell\", {}}}",
                json_cell(&cell).trim_start().trim_start_matches('{').trim_end_matches('}')
            ));
            cells.push(cell);
        }
    }
    comet_obs::set_enabled(false);

    let mean = |f: fn(&Cell) -> f64| cells.iter().map(f).sum::<f64>() / cells.len() as f64;
    let mean_warm = mean(|c| c.warm_speedup);
    let min_warm = cells.iter().map(|c| c.warm_speedup).fold(f64::INFINITY, f64::min);
    let mean_novel = mean(|c| c.novel_speedup);
    let all_identical = cells.iter().all(|c| c.identical_scores);
    let all_deterministic = cells.iter().all(|c| c.deterministic_traces);

    let rows = cells.iter().map(json_cell).collect::<Vec<_>>().join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"evaluation_hot_path\",\n  \"workload\": \"per-candidate \
         evaluate_frames over Polluter variants ({algorithm}; cold = no caches + full refit, \
         warm = eval + block caches primed, warm_novel = block cache only)\",\n  \
         \"host_parallelism\": {host},\n  \"rows\": {rows_opt},\n  \"budget\": {budget},\n  \
         \"results\": [\n{rows}\n  ],\n  \"summary\": {{\"mean_warm_speedup\": {mean_warm:.2}, \
         \"min_warm_speedup\": {min_warm:.2}, \"mean_novel_speedup\": {mean_novel:.2}, \
         \"all_scores_identical\": {all_identical}, \"all_traces_deterministic\": \
         {all_deterministic}}}\n}}\n",
        rows_opt = opts.rows.map_or("null".into(), |r| r.to_string()),
        budget = opts.budget,
    );
    std::fs::create_dir_all(&opts.out_dir).expect("create output directory");
    let path = format!("{}/BENCH_hotpath.json", opts.out_dir);
    std::fs::write(&path, &json).expect("write BENCH_hotpath.json");

    journal_lines.push(format!(
        "{{\"record\": \"hotpath_summary\", \"mean_warm_speedup\": {mean_warm:.2}, \
         \"min_warm_speedup\": {min_warm:.2}, \"mean_novel_speedup\": {mean_novel:.2}, \
         \"all_scores_identical\": {all_identical}, \"all_traces_deterministic\": \
         {all_deterministic}}}"
    ));
    let journal_path = format!("{}/hotpath_metrics.jsonl", opts.out_dir);
    std::fs::write(&journal_path, journal_lines.join("\n") + "\n")
        .expect("write hotpath metrics journal");

    println!(
        "\nmean warm speedup {mean_warm:.2}x (min {min_warm:.2}x), mean novel speedup \
         {mean_novel:.2}x, scores identical: {all_identical}, traces deterministic: \
         {all_deterministic}\nwrote {path} and {journal_path}",
    );
    if !all_identical {
        eprintln!("ERROR: cached evaluation scores diverged from the cold path");
        std::process::exit(1);
    }
    if !all_deterministic {
        eprintln!("ERROR: session traces diverged across thread counts or re-runs");
        std::process::exit(1);
    }
}
