//! Hot-path benchmark: cold vs warm per-candidate evaluation across the
//! kernel tiers, emitting `BENCH_hotpath.json` plus a JSONL metrics
//! journal so CI can smoke-test both the speedup and the journal format.
//!
//! **Workload.** The PR 1 speedup workload (Eeg + Churn, KNN, pre-polluted
//! missing values): every dirty `(feature, error)` pair is expanded by the
//! Polluter into its candidate variants, and the bin times
//! `evaluate_frames_probe` over all of them — the exact call the
//! Estimator's inner loop makes hundreds of times per session.
//!
//! **Variants.** Each `(dataset, setting)` cell is measured once per
//! kernel variant: `scalar` (the PR 4 baseline 4-lane tier), `simd`
//! (the 8-lane tier, f64), and `simd_f32` (8-lane tier with the opt-in
//! f32 probe precision, DESIGN.md §12). With `COMET_KERNELS` set, only
//! that tier's f64 variant runs — that is what the CI smoke does, once
//! per tier. Scores are bit-compared *within* a variant only: tiers
//! define different (both fixed) reduction orders, so cross-tier scores
//! legitimately differ in the last ulps.
//!
//! **Modes**, timed over the identical candidate list:
//!
//! * `cold` — the pre-PR path: feature caching disabled, evaluation cache
//!   wiped before every call, scratch pool emptied. Every evaluation pays
//!   full featurizer fit + transform + model training.
//! * `warm` — the shipped steady state: both caches primed by one
//!   untimed pass, so repeat evaluations of content-identical states are
//!   answered from the evaluation cache.
//! * `warm_novel` — the evaluation cache is wiped but the column-block
//!   featurization cache stays warm: what a *new* candidate costs, i.e.
//!   model training plus one column's re-featurization.
//!
//! A cell where `warm_novel` is *slower* than cold is a regression, not a
//! data point: it is flagged (`novel_regression: true`), warned about on
//! stderr, and excluded from `mean_novel_speedup` rather than silently
//! averaged in. All three modes must produce bit-identical score vectors
//! per variant; a seeded session is also replayed at 1/2/8 threads and
//! re-run to confirm traces stay content-identical.

use comet_bench::{build_prepolluted_env, comet_config, ExperimentOpts};
use comet_core::{CleaningEnvironment, CleaningSession, CostPolicy, Polluter};
use comet_datasets::Dataset;
use comet_jenga::{ErrorType, Scenario};
use comet_ml::kernels::KernelTier;
use comet_ml::Algorithm;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Pollution steps × combinations per candidate pair (the session default).
const POLLUTER: (usize, usize) = (2, 2);

/// One kernel configuration to measure: a reduction-order tier plus the
/// probe-precision flag.
struct Variant {
    label: &'static str,
    tier: KernelTier,
    f32_probes: bool,
}

const ALL_VARIANTS: [Variant; 3] = [
    Variant { label: "scalar", tier: KernelTier::Scalar, f32_probes: false },
    Variant { label: "simd", tier: KernelTier::Simd, f32_probes: false },
    Variant { label: "simd_f32", tier: KernelTier::Simd, f32_probes: true },
];

struct Cell {
    dataset: String,
    setting: usize,
    tier: &'static str,
    f32_probes: bool,
    candidates: usize,
    cold_ms: f64,
    warm_ms: f64,
    warm_novel_ms: f64,
    warm_speedup: f64,
    novel_speedup: f64,
    novel_regression: bool,
    block_hits: u64,
    block_misses: u64,
    scratch_reuse: u64,
    identical_scores: bool,
    deterministic_traces: bool,
}

/// The candidate frame pairs one Estimator sweep evaluates.
fn candidate_frames(
    env: &CleaningEnvironment,
    errors: &[ErrorType],
    seed: u64,
) -> Vec<(comet_frame::DataFrame, comet_frame::DataFrame)> {
    let polluter = Polluter::new(POLLUTER.0, POLLUTER.1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for (col, err) in env.candidate_pairs(errors) {
        let variants = polluter.variants(env, col, err, &mut rng).expect("polluter variants");
        out.extend(variants.into_iter().map(|v| (v.train, v.test)));
    }
    out
}

/// Time one pass over every candidate. `cold` wipes both caches and the
/// scratch pool before *each* evaluation, reproducing the pre-PR per-call
/// cost; otherwise caches persist across calls. Goes through
/// `evaluate_frames_probe` — the Estimator's actual inner call — which
/// delegates to the plain f64 path unless the env opts into f32 probes.
fn pass(
    env: &CleaningEnvironment,
    candidates: &[(comet_frame::DataFrame, comet_frame::DataFrame)],
    cold: bool,
) -> (f64, Vec<f64>) {
    let start = Instant::now();
    let scores = candidates
        .iter()
        .map(|(train, test)| {
            if cold {
                env.clear_eval_cache();
                env.clear_feature_cache();
                comet_ml::scratch::clear();
            }
            env.evaluate_frames_probe(train, test).expect("candidate evaluation")
        })
        .collect();
    (start.elapsed().as_secs_f64() * 1e3, scores)
}

/// Replay a seeded session at several thread counts plus one repeat;
/// true when every trace is content-identical.
fn traces_deterministic(base: &CleaningEnvironment, session: &CleaningSession, seed: u64) -> bool {
    let run = |threads: usize| {
        comet_par::with_threads(threads, || {
            let mut env = base.clone();
            let mut rng = StdRng::seed_from_u64(seed);
            session.run(&mut env, &mut rng).expect("session run").trace
        })
    };
    let reference = run(1);
    [run(2), run(8), run(1)].iter().all(|t| t.content_eq(&reference))
}

fn json_cell(c: &Cell) -> String {
    format!(
        "    {{\"dataset\": \"{}\", \"setting\": {}, \"tier\": \"{}\", \"f32_probes\": {}, \
         \"candidates\": {}, \"cold_ms\": {:.1}, \"warm_ms\": {:.1}, \"warm_novel_ms\": {:.1}, \
         \"warm_speedup\": {:.2}, \"novel_speedup\": {:.2}, \"novel_regression\": {}, \
         \"block_hits\": {}, \"block_misses\": {}, \"scratch_reuse\": {}, \
         \"identical_scores\": {}, \"deterministic_traces\": {}}}",
        c.dataset,
        c.setting,
        c.tier,
        c.f32_probes,
        c.candidates,
        c.cold_ms,
        c.warm_ms,
        c.warm_novel_ms,
        c.warm_speedup,
        c.novel_speedup,
        c.novel_regression,
        c.block_hits,
        c.block_misses,
        c.scratch_reuse,
        c.identical_scores,
        c.deterministic_traces,
    )
}

fn main() {
    let opts = ExperimentOpts::from_env();
    let algorithm = opts.algorithm_or(Algorithm::Knn);
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    // COMET_KERNELS pins the run to one tier's f64 variant (the CI smoke
    // runs once per tier); unset, all variants run and the summary gains
    // the cross-tier speedups.
    let forced = std::env::var("COMET_KERNELS").ok();
    let variants: Vec<&Variant> = match forced.as_deref() {
        Some(name) => {
            let tier = KernelTier::parse(name)
                .unwrap_or_else(|| panic!("unknown COMET_KERNELS tier {name:?}"));
            ALL_VARIANTS.iter().filter(|v| v.tier == tier && !v.f32_probes).collect()
        }
        None => ALL_VARIANTS.iter().collect(),
    };
    comet_obs::reset();
    comet_obs::set_enabled(true);
    println!(
        "hotpath: per-candidate evaluate, cold (no caches) vs warm (both caches) vs warm_novel \
         (block cache only), variants [{}], host parallelism {host}\n",
        variants.iter().map(|v| v.label).collect::<Vec<_>>().join(", "),
    );

    let mut cells: Vec<Cell> = Vec::new();
    let mut journal_lines: Vec<String> = Vec::new();
    for dataset in [Dataset::Eeg, Dataset::Churn] {
        for setting in 0..opts.settings {
            let setup = build_prepolluted_env(
                dataset,
                algorithm,
                Scenario::SingleError(ErrorType::MissingValues),
                setting,
                &opts,
            )
            .unwrap_or_else(|e| panic!("{dataset}: {e}"));
            let seed = opts.child_seed("hotpath", setting as u64);
            let candidates = candidate_frames(&setup.env, &setup.errors, seed);
            assert!(!candidates.is_empty(), "workload produced no candidates");

            for v in &variants {
                comet_ml::kernels::set_tier(v.tier);

                // Cold: pre-PR path on a handle with feature caching off.
                let mut cold_env = setup.env.clone();
                cold_env.set_feature_caching(false);
                cold_env.set_f32_probes(v.f32_probes);
                let (cold_ms, cold_scores) = pass(&cold_env, &candidates, true);

                // Prime, then measure warm (eval-cache steady state).
                let mut warm_env = setup.env.clone();
                warm_env.set_f32_probes(v.f32_probes);
                warm_env.clear_eval_cache();
                warm_env.clear_feature_cache();
                pass(&warm_env, &candidates, false);
                let (warm_ms, warm_scores) = pass(&warm_env, &candidates, false);

                // Novel candidates: eval cache cold, block cache warm.
                warm_env.clear_eval_cache();
                let before = comet_obs::snapshot();
                let (warm_novel_ms, novel_scores) = pass(&warm_env, &candidates, false);
                let after = comet_obs::snapshot();

                let identical_scores =
                    cold_scores.iter().zip(&warm_scores).zip(&novel_scores).all(|((c, w), n)| {
                        c.to_bits() == w.to_bits() && c.to_bits() == n.to_bits()
                    });
                let mut config = comet_config(&opts, CostPolicy::constant());
                config.kernels = v.tier;
                config.f32_probes = v.f32_probes;
                let session = CleaningSession::new(config, setup.errors.clone());
                let deterministic_traces = traces_deterministic(&setup.env, &session, seed);

                let novel_speedup = cold_ms / warm_novel_ms;
                let novel_regression = novel_speedup < 1.0;
                let cell = Cell {
                    dataset: dataset.spec().name.to_lowercase().replace('-', ""),
                    setting,
                    tier: v.label,
                    f32_probes: v.f32_probes,
                    candidates: candidates.len(),
                    cold_ms,
                    warm_ms,
                    warm_novel_ms,
                    warm_speedup: cold_ms / warm_ms,
                    novel_speedup,
                    novel_regression,
                    block_hits: after.counter("featurize.block_hits")
                        - before.counter("featurize.block_hits"),
                    block_misses: after.counter("featurize.block_misses")
                        - before.counter("featurize.block_misses"),
                    scratch_reuse: after.counter("alloc.scratch_reuse")
                        - before.counter("alloc.scratch_reuse"),
                    identical_scores,
                    deterministic_traces,
                };
                println!(
                    "{:>8} setting {} [{:>8}]: {:>3} candidates  cold {:>8.1} ms  warm \
                     {:>7.1} ms ({:.1}x)  novel {:>8.1} ms ({:.1}x)  identical {}  \
                     deterministic {}",
                    cell.dataset,
                    setting,
                    cell.tier,
                    cell.candidates,
                    cell.cold_ms,
                    cell.warm_ms,
                    cell.warm_speedup,
                    cell.warm_novel_ms,
                    cell.novel_speedup,
                    cell.identical_scores,
                    cell.deterministic_traces,
                );
                if novel_regression {
                    eprintln!(
                        "WARNING: {} setting {} [{}]: warm_novel ({:.1} ms) is slower than cold \
                         ({:.1} ms); flagged and excluded from mean_novel_speedup",
                        cell.dataset, setting, cell.tier, warm_novel_ms, cold_ms,
                    );
                }
                journal_lines.push(format!(
                    "{{\"record\": \"hotpath_cell\", {}}}",
                    json_cell(&cell).trim_start().trim_start_matches('{').trim_end_matches('}')
                ));
                cells.push(cell);
            }
        }
    }
    comet_obs::set_enabled(false);

    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let warm = cells.iter().map(|c| c.warm_speedup).collect::<Vec<_>>();
    let mean_warm = mean(&warm);
    let min_warm = warm.iter().copied().fold(f64::INFINITY, f64::min);
    // Regressed cells are flagged above, not averaged into the mean.
    let novel_ok =
        cells.iter().filter(|c| !c.novel_regression).map(|c| c.novel_speedup).collect::<Vec<_>>();
    let mean_novel = if novel_ok.is_empty() { 0.0 } else { mean(&novel_ok) };
    let novel_regressions = cells.iter().filter(|c| c.novel_regression).count();
    let all_identical = cells.iter().all(|c| c.identical_scores);
    let all_deterministic = cells.iter().all(|c| c.deterministic_traces);

    // Cross-tier speedups: per (dataset, setting), this variant's cost
    // against the scalar baseline's, averaged. Null in single-tier runs.
    let vs_scalar = |label: &str, cost: fn(&Cell) -> f64| -> Option<f64> {
        let ratios = cells
            .iter()
            .filter(|c| c.tier == label)
            .filter_map(|c| {
                cells
                    .iter()
                    .find(|b| {
                        b.tier == "scalar" && b.dataset == c.dataset && b.setting == c.setting
                    })
                    .map(|b| cost(b) / cost(c))
            })
            .collect::<Vec<_>>();
        if ratios.is_empty() {
            None
        } else {
            Some(mean(&ratios))
        }
    };
    let fmt_vs = |label: &str| -> String {
        match (vs_scalar(label, |c| c.cold_ms), vs_scalar(label, |c| c.warm_novel_ms)) {
            (Some(cold), Some(novel)) => {
                format!("{{\"cold_speedup\": {cold:.2}, \"novel_speedup\": {novel:.2}}}")
            }
            _ => "null".into(),
        }
    };
    let simd_vs = fmt_vs("simd");
    let simd_f32_vs = fmt_vs("simd_f32");

    let rows = cells.iter().map(json_cell).collect::<Vec<_>>().join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"evaluation_hot_path\",\n  \"workload\": \"per-candidate \
         evaluate_frames_probe over Polluter variants ({algorithm}; cold = no caches + full \
         refit, warm = eval + block caches primed, warm_novel = block cache only; one row per \
         kernel variant)\",\n  \"host_parallelism\": {host},\n  \"rows\": {rows_opt},\n  \
         \"budget\": {budget},\n  \"results\": [\n{rows}\n  ],\n  \"summary\": \
         {{\"mean_warm_speedup\": {mean_warm:.2}, \"min_warm_speedup\": {min_warm:.2}, \
         \"mean_novel_speedup\": {mean_novel:.2}, \"novel_regressions\": {novel_regressions}, \
         \"simd_vs_scalar\": {simd_vs}, \"simd_f32_vs_scalar\": {simd_f32_vs}, \
         \"all_scores_identical\": {all_identical}, \"all_traces_deterministic\": \
         {all_deterministic}}}\n}}\n",
        rows_opt = opts.rows.map_or("null".into(), |r| r.to_string()),
        budget = opts.budget,
    );
    std::fs::create_dir_all(&opts.out_dir).expect("create output directory");
    let path = format!("{}/BENCH_hotpath.json", opts.out_dir);
    std::fs::write(&path, &json).expect("write BENCH_hotpath.json");

    journal_lines.push(format!(
        "{{\"record\": \"hotpath_summary\", \"mean_warm_speedup\": {mean_warm:.2}, \
         \"min_warm_speedup\": {min_warm:.2}, \"mean_novel_speedup\": {mean_novel:.2}, \
         \"novel_regressions\": {novel_regressions}, \"simd_vs_scalar\": {simd_vs}, \
         \"simd_f32_vs_scalar\": {simd_f32_vs}, \"all_scores_identical\": {all_identical}, \
         \"all_traces_deterministic\": {all_deterministic}}}"
    ));
    let journal_path = format!("{}/hotpath_metrics.jsonl", opts.out_dir);
    std::fs::write(&journal_path, journal_lines.join("\n") + "\n")
        .expect("write hotpath metrics journal");

    println!(
        "\nmean warm speedup {mean_warm:.2}x (min {min_warm:.2}x), mean novel speedup \
         {mean_novel:.2}x ({novel_regressions} regression(s) excluded), simd vs scalar \
         {simd_vs}, simd_f32 vs scalar {simd_f32_vs}, scores identical: {all_identical}, \
         traces deterministic: {all_deterministic}\nwrote {path} and {journal_path}",
    );
    if !all_identical {
        eprintln!("ERROR: cached evaluation scores diverged from the cold path");
        std::process::exit(1);
    }
    if !all_deterministic {
        eprintln!("ERROR: session traces diverged across thread counts or re-runs");
        std::process::exit(1);
    }
}
