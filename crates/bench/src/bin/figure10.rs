//! Figure 10 — overall performance of COMET:
//! (a) mean F1 advantage grouped by **ML algorithm** (COMET vs FIR/RR/CL
//!     for SVM/KNN/MLP/GB; COMET vs AC for LIR/LOR/AC-SVM),
//! (b) mean F1 advantage grouped by **error type**, aggregated across the
//!     COMET-suite algorithms (single-error scenario).
//!
//! Paper expectation: every mean positive; the advantage over AC (12–24 %pt)
//! far exceeds the advantage over FIR/RR/CL (1–3 %pt); by error type,
//! categorical shift > missing values > Gaussian noise ≈ scaling.
//!
//! Note: in `--quick` mode the grid uses one pre-pollution setting and two
//! representative datasets to keep the runtime reasonable.

use comet_bench::{
    advantage, applicable, f1_series, figures::build_setup, figures::grid_datasets, mean_series,
    run_strategy, ExperimentOpts, MatrixTable, Source, Strategy,
};
use comet_core::CostPolicy;
use comet_jenga::{ErrorType, Scenario};
use comet_ml::Algorithm;

fn main() {
    let mut opts = ExperimentOpts::from_env();
    if opts.quick {
        opts.settings = 1;
    }
    let datasets = grid_datasets(&opts);
    let costs = CostPolicy::constant();
    let max_budget = opts.budget.round() as usize;

    println!("Figure 10a: mean F1 advantage grouped by ML algorithm\n");
    let comet_suite = Algorithm::COMET_SUITE;
    let ac_suite = Algorithm::ACTIVECLEAN_SUITE;
    let mut by_algorithm = MatrixTable::new(
        "figure10a_by_algorithm",
        comet_suite
            .iter()
            .map(|a| a.name().to_string())
            .chain(ac_suite.iter().map(|a| format!("AC-{}", a.name())))
            .collect(),
        vec!["FIR".into(), "RR".into(), "CL".into(), "AC".into()],
    );

    // COMET-suite algorithms vs FIR/RR/CL.
    for &algorithm in &comet_suite {
        for &baseline in &[Strategy::Fir, Strategy::Rr, Strategy::Cl] {
            let mut advantages: Vec<f64> = Vec::new();
            collect_advantages(
                &mut advantages,
                algorithm,
                baseline,
                &datasets,
                costs,
                max_budget,
                &opts,
            );
            if !advantages.is_empty() {
                let mean = advantages.iter().sum::<f64>() / advantages.len() as f64;
                by_algorithm.set(algorithm.name(), baseline.label(), mean);
            }
        }
        eprintln!("  [10a] {algorithm} done");
    }
    // AC-suite algorithms vs AC.
    for &algorithm in &ac_suite {
        let mut advantages: Vec<f64> = Vec::new();
        collect_advantages(
            &mut advantages,
            algorithm,
            Strategy::Ac,
            &datasets,
            costs,
            max_budget,
            &opts,
        );
        if !advantages.is_empty() {
            let mean = advantages.iter().sum::<f64>() / advantages.len() as f64;
            by_algorithm.set(&format!("AC-{}", algorithm.name()), "AC", mean);
        }
        eprintln!("  [10a] AC-{algorithm} done");
    }
    by_algorithm.emit(&opts.out_dir).expect("emit 10a");

    println!("\nFigure 10b: mean F1 advantage grouped by error type\n");
    let mut by_error = MatrixTable::new(
        "figure10b_by_error_type",
        ErrorType::ALL.iter().map(|e| e.abbrev().to_string()).collect(),
        vec!["FIR".into(), "RR".into(), "CL".into()],
    );
    for &err in &ErrorType::ALL {
        for &baseline in &[Strategy::Fir, Strategy::Rr, Strategy::Cl] {
            let mut advantages: Vec<f64> = Vec::new();
            for &algorithm in &comet_suite {
                collect_single_error_advantages(
                    &mut advantages,
                    algorithm,
                    baseline,
                    err,
                    &datasets,
                    costs,
                    max_budget,
                    &opts,
                );
            }
            if !advantages.is_empty() {
                let mean = advantages.iter().sum::<f64>() / advantages.len() as f64;
                by_error.set(err.abbrev(), baseline.label(), mean);
            }
        }
        eprintln!("  [10b] {err} done");
    }
    by_error.emit(&opts.out_dir).expect("emit 10b");
}

/// Mean advantage of COMET over `baseline` for `algorithm`, pooled across
/// datasets, applicable single error types, settings, and budget units.
fn collect_advantages(
    sink: &mut Vec<f64>,
    algorithm: Algorithm,
    baseline: Strategy,
    datasets: &[comet_datasets::Dataset],
    costs: CostPolicy,
    max_budget: usize,
    opts: &ExperimentOpts,
) {
    for &err in &ErrorType::ALL {
        collect_single_error_advantages(
            sink, algorithm, baseline, err, datasets, costs, max_budget, opts,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn collect_single_error_advantages(
    sink: &mut Vec<f64>,
    algorithm: Algorithm,
    baseline: Strategy,
    err: ErrorType,
    datasets: &[comet_datasets::Dataset],
    costs: CostPolicy,
    max_budget: usize,
    opts: &ExperimentOpts,
) {
    for &dataset in datasets {
        if !applicable(dataset, err) {
            continue;
        }
        for setting in 0..opts.settings {
            let tag = format!("fig10-{algorithm}-{dataset}-{err:?}-{}", baseline.label());
            let source = Source::Prepolluted(Scenario::SingleError(err));
            let setup = match build_setup(source, dataset, algorithm, setting, opts) {
                Ok(s) => s,
                Err(e) => panic!("{dataset}/{algorithm}/{err}: {e}"),
            };
            let comet = run_strategy(
                Strategy::Comet,
                &setup.env,
                &setup.errors,
                costs,
                opts,
                opts.child_seed(&format!("{tag}-comet"), setting as u64),
            )
            .expect("COMET run");
            let base = run_strategy(
                baseline,
                &setup.env,
                &setup.errors,
                costs,
                opts,
                opts.child_seed(&format!("{tag}-base"), setting as u64),
            )
            .expect("baseline run");
            let adv = advantage(
                &f1_series(&comet, max_budget),
                &mean_series(&[f1_series(&base, max_budget)]),
            );
            sink.extend(adv.into_iter().skip(1)); // budget 0 is identical by construction
        }
    }
}
