//! Figure 7 — a single cleaning trajectory: S-Credit with categorical
//! shift errors and MLP, one pre-pollution setting. Plots the absolute F1
//! of COMET, FIR, RR, and the Oracle per budget unit, plus the horizontal
//! "cleaned" line (F1 of the fully clean dataset).
//!
//! Paper expectation: COMET tracks or beats the baselines, fluctuates
//! (temporary dips are normal), and — like the Oracle — can exceed the
//! fully-cleaned F1 at intermediate budgets.

use comet_bench::{
    build_prepolluted_env, f1_series, run_strategy, ExperimentOpts, SeriesTable, Strategy,
};
use comet_core::CostPolicy;
use comet_datasets::Dataset;
use comet_jenga::{ErrorType, Scenario};
use comet_ml::Algorithm;

fn main() {
    let opts = ExperimentOpts::from_env();
    let algorithm = opts.algorithm_or(Algorithm::Mlp);
    let dataset = Dataset::SCredit;
    let err = ErrorType::CategoricalShift;
    let costs = CostPolicy::constant();
    let max_budget = opts.budget.round() as usize;

    println!("Figure 7: cleaning trajectory, {dataset} / {err} / {algorithm}\n");
    let setup = build_prepolluted_env(dataset, algorithm, Scenario::SingleError(err), 0, &opts)
        .expect("environment");

    let mut table = SeriesTable::over_budget(
        format!("figure07_{}", algorithm.name().to_lowercase()),
        max_budget,
    );
    let mut cleaned_line = f64::NAN;
    for strategy in [Strategy::Comet, Strategy::Fir, Strategy::Rr, Strategy::Oracle] {
        let traces = run_strategy(
            strategy,
            &setup.env,
            &setup.errors,
            costs,
            &opts,
            opts.child_seed(&format!("figure07-{}", strategy.label()), 0),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", strategy.label()));
        if let Some(f1) = traces[0].fully_clean_f1 {
            cleaned_line = f1;
        }
        table.push(strategy.label(), f1_series(&traces, max_budget));
    }
    table.push("cleaned", vec![cleaned_line; max_budget + 1]);
    table.emit(&opts.out_dir).expect("emit table");
}
