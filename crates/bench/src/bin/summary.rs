//! Aggregate every CSV in the results directory into a compact report:
//! per advantage figure, the mean/min/max of each `adv_vs_*` series; matrix
//! figures are echoed as-is. This is the quick way to see whether the
//! reproduction preserves the paper's *shape* after regenerating figures.
//!
//! ```text
//! cargo run --release -p comet-bench --bin summary [-- --out bench_results]
//! ```

use comet_bench::ExperimentOpts;
use std::collections::BTreeMap;
use std::fs;

fn main() {
    let opts = ExperimentOpts::from_env();
    let dir = &opts.out_dir;
    let mut entries: Vec<String> = match fs::read_dir(dir) {
        Ok(read) => read
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".csv"))
            .collect(),
        Err(e) => {
            eprintln!("cannot read {dir}: {e}");
            std::process::exit(1);
        }
    };
    entries.sort();

    println!("== Summary of {dir}/ ==\n");
    // Group advantage figures: figure name -> (column -> stats).
    let mut advantage_rows: Vec<(String, String, Stats)> = Vec::new();
    for name in &entries {
        let path = format!("{dir}/{name}");
        let Ok(text) = fs::read_to_string(&path) else { continue };
        let mut lines = text.lines();
        let Some(header) = lines.next() else { continue };
        let cols: Vec<&str> = header.split(',').collect();
        if cols.first() == Some(&"budget") {
            // Advantage/series figure.
            let mut series: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
            for line in lines {
                for (i, field) in line.split(',').enumerate().skip(1) {
                    if let Ok(v) = field.parse::<f64>() {
                        series.entry(i).or_default().push(v);
                    }
                }
            }
            for (i, col) in cols.iter().enumerate().skip(1) {
                if !col.starts_with("adv_vs_") {
                    continue;
                }
                if let Some(values) = series.get(&i) {
                    // Skip budget 0 (identical starting states).
                    let tail = &values[1.min(values.len())..];
                    if !tail.is_empty() {
                        advantage_rows.push((
                            name.trim_end_matches(".csv").to_string(),
                            col.to_string(),
                            Stats::of(tail),
                        ));
                    }
                }
            }
        } else if cols.first() == Some(&"row") {
            // Matrix figure: echo verbatim.
            println!("-- {name} --");
            println!("{text}");
        }
    }

    if !advantage_rows.is_empty() {
        println!("-- F1 advantage of COMET (percentage points, over budgets ≥ 1) --");
        println!("{:<44}{:>10}{:>9}{:>9}{:>9}", "experiment", "baseline", "mean", "min", "max");
        let mut grand: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for (name, col, stats) in &advantage_rows {
            let baseline = col.trim_start_matches("adv_vs_");
            println!(
                "{name:<44}{baseline:>10}{:>9.2}{:>9.2}{:>9.2}",
                100.0 * stats.mean,
                100.0 * stats.min,
                100.0 * stats.max
            );
            grand.entry(baseline.to_string()).or_default().push(stats.mean);
        }
        println!("\n-- grand means per baseline --");
        for (baseline, means) in grand {
            let m = means.iter().sum::<f64>() / means.len() as f64;
            println!(
                "  COMET vs {baseline:<6} {:+.2} pt on average across {} experiments",
                100.0 * m,
                means.len()
            );
        }
    }
}

struct Stats {
    mean: f64,
    min: f64,
    max: f64,
}

impl Stats {
    fn of(values: &[f64]) -> Stats {
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Stats { mean, min, max }
    }
}
