//! Speedup benchmark of the parallel estimation engine (threads + shared
//! evaluation cache), emitting `BENCH_parallel.json` so the perf trajectory
//! is tracked from PR to PR.
//!
//! **Workload.** For each `(dataset, seed)` cell the bin executes the same
//! seeded multi-candidate cleaning session `RERUNS` times on clones of one
//! prepared environment — the shape of every real consumer of the engine:
//! the figure binaries re-run identical seeded sessions when regenerated,
//! the strategy grid clones one base per strategy and repetition, and the
//! determinism tests replay sessions verbatim.
//!
//! **Modes.** `sequential` replays the pre-PR engine: one worker thread and
//! a cache cleared before every run, so each re-run pays the full
//! O(candidates × variants) retraining bill. `parallel` is the shipped
//! engine: `--threads` workers (default 4) fanning out candidates and
//! variants, plus the content-keyed evaluation cache left warm across
//! re-runs, so repeat evaluations of identical states skip retraining.
//! Wall-clock is measured over all re-runs per mode; both modes must
//! produce content-identical traces (checked and recorded).

use comet_bench::{build_prepolluted_env, comet_config, ExperimentOpts};
use comet_core::{CleaningEnvironment, CleaningSession, CleaningTrace, CostPolicy};
use comet_datasets::Dataset;
use comet_jenga::Scenario;
use comet_ml::Algorithm;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Re-runs of the identical seeded session per mode.
const RERUNS: usize = 3;

struct Cell {
    dataset: String,
    setting: usize,
    seq_ms: f64,
    par_ms: f64,
    speedup: f64,
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
    deterministic: bool,
}

fn run_once(base: &CleaningEnvironment, session: &CleaningSession, seed: u64) -> CleaningTrace {
    let mut env = base.clone();
    let mut rng = StdRng::seed_from_u64(seed);
    session.run(&mut env, &mut rng).expect("session run").trace
}

/// Time `RERUNS` replays of the session at a given thread count. With
/// `warm_cache` the shared evaluation cache persists across re-runs (the
/// engine's behavior); without it the cache is wiped before every run
/// (the pre-PR cost model).
fn measure(
    base: &CleaningEnvironment,
    session: &CleaningSession,
    seed: u64,
    threads: usize,
    warm_cache: bool,
) -> (f64, Vec<CleaningTrace>) {
    base.clear_eval_cache();
    comet_par::with_threads(threads, || {
        let start = Instant::now();
        let traces = (0..RERUNS)
            .map(|_| {
                if !warm_cache {
                    base.clear_eval_cache();
                }
                run_once(base, session, seed)
            })
            .collect();
        (start.elapsed().as_secs_f64() * 1e3, traces)
    })
}

fn json_cell(c: &Cell) -> String {
    format!(
        "    {{\"dataset\": \"{}\", \"setting\": {}, \"seq_ms\": {:.1}, \"par_ms\": {:.1}, \
         \"speedup\": {:.2}, \"cache_hits\": {}, \"cache_misses\": {}, \
         \"cache_hit_rate\": {:.3}, \"deterministic\": {}}}",
        c.dataset,
        c.setting,
        c.seq_ms,
        c.par_ms,
        c.speedup,
        c.cache_hits,
        c.cache_misses,
        c.cache_hit_rate,
        c.deterministic,
    )
}

fn main() {
    let opts = ExperimentOpts::from_env();
    let par_threads = opts.threads.unwrap_or(4);
    let n_seeds = opts.settings;
    let algorithm = opts.algorithm_or(Algorithm::Knn);
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "speedup: sequential (1 thread, cold cache) vs parallel ({par_threads} threads, warm \
         cache), {RERUNS} re-runs per mode, host parallelism {host}\n"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for dataset in [Dataset::Eeg, Dataset::Churn] {
        for setting in 0..n_seeds {
            let setup = build_prepolluted_env(
                dataset,
                algorithm,
                Scenario::SingleError(comet_jenga::ErrorType::MissingValues),
                setting,
                &opts,
            )
            .unwrap_or_else(|e| panic!("{dataset}: {e}"));
            let session = CleaningSession::new(
                comet_config(&opts, CostPolicy::constant()),
                setup.errors.clone(),
            );
            let seed = opts.child_seed("speedup", setting as u64);

            let (seq_ms, seq_traces) = measure(&setup.env, &session, seed, 1, false);
            let (par_ms, par_traces) = measure(&setup.env, &session, seed, par_threads, true);
            let stats = setup.env.cache_stats();
            let deterministic =
                seq_traces.iter().chain(&par_traces).all(|t| t.content_eq(&seq_traces[0]));

            let cell = Cell {
                dataset: dataset.spec().name.to_lowercase().replace('-', ""),
                setting,
                seq_ms,
                par_ms,
                speedup: seq_ms / par_ms,
                cache_hits: stats.hits,
                cache_misses: stats.misses,
                cache_hit_rate: stats.hit_rate(),
                deterministic,
            };
            println!(
                "{:>8} setting {}: seq {:>8.1} ms  par {:>8.1} ms  speedup {:.2}x  hit rate \
                 {:.1}%  deterministic {}",
                cell.dataset,
                setting,
                cell.seq_ms,
                cell.par_ms,
                cell.speedup,
                100.0 * cell.cache_hit_rate,
                cell.deterministic,
            );
            cells.push(cell);
        }
    }

    let mean = |f: fn(&Cell) -> f64| cells.iter().map(f).sum::<f64>() / cells.len() as f64;
    let mean_speedup = mean(|c| c.speedup);
    let min_speedup = cells.iter().map(|c| c.speedup).fold(f64::INFINITY, f64::min);
    let mean_hit_rate = mean(|c| c.cache_hit_rate);
    let all_deterministic = cells.iter().all(|c| c.deterministic);

    let rows = cells.iter().map(json_cell).collect::<Vec<_>>().join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"parallel_estimation_engine\",\n  \"workload\": \"{RERUNS} re-runs \
         of a seeded {algorithm} cleaning session per cell (sequential = 1 thread + cold cache \
         per run, parallel = {par_threads} threads + shared warm cache)\",\n  \
         \"host_parallelism\": {host},\n  \"threads_sequential\": 1,\n  \
         \"threads_parallel\": {par_threads},\n  \"reruns_per_mode\": {RERUNS},\n  \
         \"rows\": {rows_opt},\n  \"budget\": {budget},\n  \"results\": [\n{rows}\n  ],\n  \
         \"summary\": {{\"mean_speedup\": {mean_speedup:.2}, \"min_speedup\": {min_speedup:.2}, \
         \"mean_cache_hit_rate\": {mean_hit_rate:.3}, \"all_deterministic\": \
         {all_deterministic}}}\n}}\n",
        rows_opt = opts.rows.map_or("null".into(), |r| r.to_string()),
        budget = opts.budget,
    );
    std::fs::create_dir_all(&opts.out_dir).expect("create output directory");
    let path = format!("{}/BENCH_parallel.json", opts.out_dir);
    std::fs::write(&path, &json).expect("write BENCH_parallel.json");
    println!(
        "\nmean speedup {mean_speedup:.2}x (min {min_speedup:.2}x), mean cache hit rate \
         {:.1}%, all deterministic: {all_deterministic}\nwrote {path}",
        100.0 * mean_hit_rate,
    );
    if !all_deterministic {
        eprintln!("ERROR: parallel traces diverged from sequential ones");
        std::process::exit(1);
    }
}
