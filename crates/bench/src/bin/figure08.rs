//! Figure 8 (and appendix Figures 24/26 via `--algo lir|lor`):
//! COMET vs ActiveClean per **single error type** on the pre-polluted
//! datasets, AC-SVM by default, constant costs.
//!
//! Paper expectation: large positive advantages (up to ~40 %pt), with AC
//! erratic; occasional AC wins on EEG/CMC.

use comet_bench::{applicable, dataset_advantage_table, ExperimentOpts, Source, Strategy};
use comet_core::CostPolicy;
use comet_datasets::Dataset;
use comet_jenga::{ErrorType, Scenario};
use comet_ml::Algorithm;

fn main() {
    let opts = ExperimentOpts::from_env();
    let algorithm = opts.algorithm_or(Algorithm::Svm);
    assert!(algorithm.is_convex_linear(), "ActiveClean supports SVM/LOR/LIR only (paper §4.5)");
    println!("Figure 8: COMET vs AC per error type, {algorithm}\n");
    for err in ErrorType::ALL {
        for dataset in Dataset::PREPOLLUTED {
            if !applicable(dataset, err) {
                println!("-- {dataset} has no features for {err}; skipped --\n");
                continue;
            }
            let name = format!(
                "figure08_{}_{}_{}",
                algorithm.name().to_lowercase(),
                err.abbrev().to_lowercase(),
                dataset.spec().name.to_lowercase().replace('-', "")
            );
            let table = dataset_advantage_table(
                name,
                Source::Prepolluted(Scenario::SingleError(err)),
                dataset,
                algorithm,
                &[Strategy::Ac],
                CostPolicy::constant(),
                &opts,
            )
            .unwrap_or_else(|e| panic!("{dataset}/{err}: {e}"));
            table.emit(&opts.out_dir).expect("emit table");
            println!();
        }
    }
}
