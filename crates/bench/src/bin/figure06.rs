//! Figure 6 (and appendix Figures 19/21/23 via `--algo gb|knn|svm`):
//! COMET vs FIR/RR/CL on the **CleanML datasets** with their documented
//! error types (Airbnb: scaling, Credit: scaling [+MV], Titanic: missing
//! values), MLP by default.

use comet_bench::{dataset_advantage_table, ExperimentOpts, Source, Strategy};
use comet_core::CostPolicy;
use comet_datasets::Dataset;
use comet_ml::Algorithm;

fn main() {
    let opts = ExperimentOpts::from_env();
    let algorithm = opts.algorithm_or(Algorithm::Mlp);
    let baselines = [Strategy::Fir, Strategy::Rr, Strategy::Cl];
    println!("Figure 6: COMET vs FIR/RR/CL on CleanML datasets, {algorithm}\n");
    for dataset in Dataset::CLEANML {
        let errors: Vec<String> =
            dataset.spec().cleanml_errors.iter().map(|e| e.abbrev().to_lowercase()).collect();
        let name = format!(
            "figure06_{}_{}_{}",
            algorithm.name().to_lowercase(),
            dataset.spec().name.to_lowercase(),
            errors.join("_")
        );
        let table = dataset_advantage_table(
            name,
            Source::CleanMl,
            dataset,
            algorithm,
            &baselines,
            CostPolicy::constant(),
            &opts,
        )
        .unwrap_or_else(|e| panic!("{dataset}: {e}"));
        table.emit(&opts.out_dir).expect("emit table");
        println!();
    }
}
