//! Figure 11 — MAE of COMET's Estimator predictions, grouped by error type
//! and ML algorithm (single-error scenario, all datasets pooled).
//!
//! Paper expectation: small MAEs overall (0.0007–0.05); KNN among the most
//! predictable, the linear-regression classifier (LIR) the least.

use comet_bench::{
    applicable,
    figures::{comet_traces_for_cell, grid_datasets},
    ExperimentOpts, MatrixTable, Source,
};
use comet_core::CostPolicy;
use comet_jenga::{ErrorType, Scenario};
use comet_ml::Algorithm;

fn main() {
    let mut opts = ExperimentOpts::from_env();
    if opts.quick {
        opts.settings = 1;
    }
    let datasets = grid_datasets(&opts);
    let algorithms = [
        Algorithm::Gb,
        Algorithm::Knn,
        Algorithm::Mlp,
        Algorithm::Svm,
        Algorithm::LinReg,
        Algorithm::LogReg,
    ];
    let costs = CostPolicy::constant();

    println!("Figure 11: MAE of COMET's predictions (per error type × algorithm)\n");
    let mut table = MatrixTable::new(
        "figure11_prediction_mae",
        algorithms.iter().map(|a| a.name().to_string()).collect(),
        ErrorType::ALL.iter().map(|e| e.abbrev().to_string()).collect(),
    );

    for &algorithm in &algorithms {
        for &err in &ErrorType::ALL {
            let mut maes: Vec<f64> = Vec::new();
            for &dataset in &datasets {
                if !applicable(dataset, err) {
                    continue;
                }
                let traces = comet_traces_for_cell(
                    &format!("fig11-{algorithm}-{dataset}-{err:?}"),
                    Source::Prepolluted(Scenario::SingleError(err)),
                    dataset,
                    algorithm,
                    costs,
                    &opts,
                )
                .unwrap_or_else(|e| panic!("{dataset}/{algorithm}/{err}: {e}"));
                maes.extend(traces.iter().filter_map(|t| t.prediction_mae()));
            }
            if !maes.is_empty() {
                table.set(
                    algorithm.name(),
                    err.abbrev(),
                    maes.iter().sum::<f64>() / maes.len() as f64,
                );
            }
        }
        eprintln!("  [11] {algorithm} done");
    }
    table.emit(&opts.out_dir).expect("emit figure 11");
}
