//! Minimal CLI parsing shared by all experiment binaries (no external deps).

use comet_ml::Algorithm;

/// Options controlling an experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentOpts {
    /// Row cap applied to every dataset (quick mode subsamples).
    pub rows: Option<usize>,
    /// Cleaning budget in cost units.
    pub budget: f64,
    /// Pre-pollution settings per dataset (paper: 3).
    pub settings: usize,
    /// Master seed.
    pub seed: u64,
    /// Algorithm override (figures have a default).
    pub algo: Option<Algorithm>,
    /// Random-search draws for hyperparameter tuning.
    pub search_samples: usize,
    /// Polluter combinations per level.
    pub combos: usize,
    /// RR repetitions.
    pub rr_repetitions: usize,
    /// CSV output directory.
    pub out_dir: String,
    /// Quick mode (reduced scale)?
    pub quick: bool,
    /// Worker-thread override for the parallel engine (`None` = the
    /// `COMET_THREADS` env var, falling back to the machine's parallelism).
    pub threads: Option<usize>,
}

impl Default for ExperimentOpts {
    fn default() -> Self {
        ExperimentOpts::quick()
    }
}

impl ExperimentOpts {
    /// Quick mode: small subsamples so a full figure regenerates in minutes
    /// on a laptop. The *shape* of the paper's results is preserved.
    pub fn quick() -> Self {
        ExperimentOpts {
            rows: Some(400),
            budget: 12.0,
            settings: 2,
            seed: 42,
            algo: None,
            search_samples: 3,
            combos: 2,
            rr_repetitions: 3,
            out_dir: "bench_results".into(),
            quick: true,
            threads: None,
        }
    }

    /// Full mode: the paper's setup (§4) — Table 1 row counts, budget 50,
    /// 3 pre-pollution settings, 10 search samples, 5 RR repetitions.
    pub fn full() -> Self {
        ExperimentOpts {
            rows: None,
            budget: 50.0,
            settings: 3,
            seed: 42,
            algo: None,
            search_samples: 10,
            combos: 2,
            rr_repetitions: 5,
            out_dir: "bench_results".into(),
            quick: false,
            threads: None,
        }
    }

    /// Parse `std::env::args`-style arguments on top of quick defaults.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut opts = ExperimentOpts::quick();
        let mut iter = args.into_iter();
        let mut explicit_rows = None;
        let mut explicit_budget = None;
        let mut explicit_settings = None;
        while let Some(arg) = iter.next() {
            let mut value_of =
                |name: &str| iter.next().ok_or_else(|| format!("{name} needs a value"));
            match arg.as_str() {
                "--quick" => {}
                "--full" => {
                    let out = opts.out_dir.clone();
                    let seed = opts.seed;
                    let threads = opts.threads;
                    opts = ExperimentOpts::full();
                    opts.out_dir = out;
                    opts.seed = seed;
                    opts.threads = threads;
                }
                "--seed" => {
                    opts.seed = value_of("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
                }
                "--rows" => {
                    explicit_rows =
                        Some(value_of("--rows")?.parse().map_err(|e| format!("--rows: {e}"))?);
                }
                "--budget" => {
                    explicit_budget =
                        Some(value_of("--budget")?.parse().map_err(|e| format!("--budget: {e}"))?);
                }
                "--settings" => {
                    explicit_settings = Some(
                        value_of("--settings")?.parse().map_err(|e| format!("--settings: {e}"))?,
                    );
                }
                "--algo" => {
                    let name = value_of("--algo")?;
                    opts.algo =
                        Some(Algorithm::parse(&name).ok_or(format!("unknown algorithm {name:?}"))?);
                }
                "--out" => {
                    opts.out_dir = value_of("--out")?;
                }
                "--threads" => {
                    let n: usize =
                        value_of("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?;
                    if n == 0 {
                        return Err("--threads must be at least 1".into());
                    }
                    opts.threads = Some(n);
                }
                "--help" | "-h" => {
                    return Err("usage: [--quick|--full] [--seed N] [--rows N] [--budget N] \
                                [--settings N] [--algo NAME] [--out DIR] [--threads N]"
                        .into());
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        if let Some(r) = explicit_rows {
            opts.rows = Some(r);
        }
        if let Some(b) = explicit_budget {
            opts.budget = b;
        }
        if let Some(s) = explicit_settings {
            opts.settings = s;
        }
        Ok(opts)
    }

    /// Parse the process arguments, exiting with the usage string on error.
    /// A `--threads` override is applied to the parallel engine immediately,
    /// so every experiment binary honours it without extra wiring.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(opts) => {
                opts.apply_threads();
                opts
            }
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Install the `--threads` override (if any) as the process-global
    /// worker count. A `None` leaves the `COMET_THREADS` env var (or the
    /// machine default) in charge.
    pub fn apply_threads(&self) {
        if self.threads.is_some() {
            comet_par::set_global_threads(self.threads);
        }
    }

    /// The algorithm to use, given the figure's default.
    pub fn algorithm_or(&self, default: Algorithm) -> Algorithm {
        self.algo.unwrap_or(default)
    }

    /// Derive a deterministic child seed for a sub-experiment.
    pub fn child_seed(&self, tag: &str, index: u64) -> u64 {
        // FNV-1a over the tag, mixed with the index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed;
        for b in tag.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ExperimentOpts, String> {
        ExperimentOpts::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_quick() {
        let opts = parse(&[]).unwrap();
        assert!(opts.quick);
        assert_eq!(opts.rows, Some(400));
        assert_eq!(opts.budget, 12.0);
    }

    #[test]
    fn full_mode_matches_paper() {
        let opts = parse(&["--full"]).unwrap();
        assert!(!opts.quick);
        assert_eq!(opts.rows, None);
        assert_eq!(opts.budget, 50.0);
        assert_eq!(opts.settings, 3);
        assert_eq!(opts.search_samples, 10);
        assert_eq!(opts.rr_repetitions, 5);
    }

    #[test]
    fn explicit_overrides_win_over_mode() {
        let opts = parse(&["--rows", "100", "--full", "--budget", "7.5"]).unwrap();
        assert_eq!(opts.rows, Some(100));
        assert_eq!(opts.budget, 7.5);
        assert_eq!(opts.settings, 3);
    }

    #[test]
    fn algo_and_seed() {
        let opts = parse(&["--algo", "mlp", "--seed", "7"]).unwrap();
        assert_eq!(opts.algo, Some(Algorithm::Mlp));
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.algorithm_or(Algorithm::Svm), Algorithm::Mlp);
        let none = parse(&[]).unwrap();
        assert_eq!(none.algorithm_or(Algorithm::Svm), Algorithm::Svm);
    }

    #[test]
    fn bad_arguments_rejected() {
        assert!(parse(&["--nope"]).is_err());
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--algo", "alexnet"]).is_err());
        assert!(parse(&["--help"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--threads", "many"]).is_err());
    }

    #[test]
    fn threads_flag_parses_and_survives_full() {
        assert_eq!(parse(&[]).unwrap().threads, None);
        assert_eq!(parse(&["--threads", "4"]).unwrap().threads, Some(4));
        // Like --seed and --out, the override survives a later --full.
        assert_eq!(parse(&["--threads", "2", "--full"]).unwrap().threads, Some(2));
    }

    #[test]
    fn child_seeds_differ_by_tag_and_index() {
        let opts = parse(&[]).unwrap();
        assert_ne!(opts.child_seed("a", 0), opts.child_seed("b", 0));
        assert_ne!(opts.child_seed("a", 0), opts.child_seed("a", 1));
        assert_eq!(opts.child_seed("a", 1), opts.child_seed("a", 1));
    }
}
