//! Experiment environment construction: pre-polluted datasets (§4.1) and
//! CleanML-style paired datasets (§4.3), wired into a
//! [`CleaningEnvironment`].

use crate::opts::ExperimentOpts;
use comet_core::{CleaningEnvironment, EnvError};
use comet_datasets::Dataset;
use comet_frame::{train_test_split, ColumnKind, SplitOptions};
use comet_jenga::{ErrorType, GroundTruth, PrePollutionPlan, Provenance, Scenario};
use comet_ml::{Algorithm, Metric, RandomSearch};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A fully prepared experiment environment plus its identity.
pub struct EnvSetup {
    /// The environment (dirty data + ground truth + tuned model).
    pub env: CleaningEnvironment,
    /// Dataset used.
    pub dataset: Dataset,
    /// Algorithm used.
    pub algorithm: Algorithm,
    /// Error types the scenario cleans.
    pub errors: Vec<ErrorType>,
}

/// Error types a scenario exposes for a dataset: the single error type, or
/// every type applicable to at least one feature (multi-error).
pub fn scenario_errors(dataset: Dataset, scenario: Scenario) -> Vec<ErrorType> {
    match scenario {
        Scenario::SingleError(err) => vec![err],
        Scenario::MultiError => {
            let spec = dataset.spec();
            let mut out = Vec::new();
            for err in ErrorType::ALL {
                let applicable = (spec.n_numeric > 0 && err.applicable(ColumnKind::Numeric))
                    || (spec.n_categorical > 0 && err.applicable(ColumnKind::Categorical));
                if applicable {
                    out.push(err);
                }
            }
            out
        }
    }
}

/// True when the dataset has at least one feature the error type applies to
/// (e.g. EEG has no categorical features, so categorical shift is skipped —
/// paper §4.3).
pub fn applicable(dataset: Dataset, err: ErrorType) -> bool {
    let spec = dataset.spec();
    (spec.n_numeric > 0 && err.applicable(ColumnKind::Numeric))
        || (spec.n_categorical > 0 && err.applicable(ColumnKind::Categorical))
}

fn search(opts: &ExperimentOpts) -> RandomSearch {
    RandomSearch { n_samples: opts.search_samples, ..RandomSearch::default() }
}

/// Build a pre-polluted environment (CMC/Churn/EEG/S-Credit experiments):
/// generate the clean analog, split, sample a pre-pollution setting
/// (exponential per-feature levels, §4.1), pollute train and test, tune.
pub fn build_prepolluted_env(
    dataset: Dataset,
    algorithm: Algorithm,
    scenario: Scenario,
    setting: usize,
    opts: &ExperimentOpts,
) -> Result<EnvSetup, EnvError> {
    let tag = format!("{dataset}-{algorithm}-{scenario:?}");
    let seed = opts.child_seed(&tag, setting as u64);
    let mut rng = StdRng::seed_from_u64(seed);

    let df = dataset.generate(opts.rows.map(|r| r.min(dataset.spec().rows)), &mut rng);
    let tt = train_test_split(&df, SplitOptions::default(), &mut rng)?;
    let gt_train = GroundTruth::new(tt.train.clone());
    let gt_test = GroundTruth::new(tt.test.clone());

    let mut train = tt.train;
    let mut test = tt.test;
    let mut prov_train = Provenance::for_frame(&train);
    let mut prov_test = Provenance::for_frame(&test);
    let plan = PrePollutionPlan::sample(&train, scenario, 0.15, 0.4, &mut rng)?;
    // Both splits are polluted equally in expectation (§4.1), with
    // independent randomness to avoid leakage.
    plan.apply(&mut train, 0.01, &mut prov_train, &mut rng)?;
    plan.apply(&mut test, 0.01, &mut prov_test, &mut rng)?;

    let env = CleaningEnvironment::new(
        train,
        test,
        gt_train,
        gt_test,
        prov_train,
        prov_test,
        algorithm,
        Metric::F1,
        0.01,
        search(opts),
        seed ^ 0x5EED,
        &mut rng,
    )?;
    Ok(EnvSetup { env, dataset, algorithm, errors: scenario_errors(dataset, scenario) })
}

/// Build an environment from a CleanML-style paired dataset: the dirty
/// version is the starting state, the clean version the ground truth, and
/// provenance carries the documented error types.
pub fn build_cleanml_env(
    dataset: Dataset,
    algorithm: Algorithm,
    setting: usize,
    opts: &ExperimentOpts,
) -> Result<EnvSetup, EnvError> {
    let tag = format!("cleanml-{dataset}-{algorithm}");
    let seed = opts.child_seed(&tag, setting as u64);
    let mut rng = StdRng::seed_from_u64(seed);

    let pair =
        dataset.generate_cleanml_pair(opts.rows.map(|r| r.min(dataset.spec().rows)), &mut rng);
    // Split once (on the clean labels, which equal the dirty labels — labels
    // are never polluted) and apply the same row partition to both versions.
    let tt = train_test_split(&pair.clean, SplitOptions::default(), &mut rng)?;
    let clean_train = pair.clean.take(&tt.train_rows)?;
    let clean_test = pair.clean.take(&tt.test_rows)?;
    let dirty_train = pair.dirty.take(&tt.train_rows)?;
    let dirty_test = pair.dirty.take(&tt.test_rows)?;
    let prov_train = split_provenance(&pair.provenance, pair.dirty.ncols(), &tt.train_rows);
    let prov_test = split_provenance(&pair.provenance, pair.dirty.ncols(), &tt.test_rows);

    let errors: Vec<ErrorType> = dataset.spec().cleanml_errors.to_vec();
    let env = CleaningEnvironment::new(
        dirty_train,
        dirty_test,
        GroundTruth::new(clean_train),
        GroundTruth::new(clean_test),
        prov_train,
        prov_test,
        algorithm,
        Metric::F1,
        0.01,
        search(opts),
        seed ^ 0x5EED,
        &mut rng,
    )?;
    Ok(EnvSetup { env, dataset, algorithm, errors })
}

/// Build a detection-seeded environment carrying planted REIN error
/// families (outliers, swapped fields, near-duplicate rows, label noise).
/// Unlike every oracle-mode setup, the returned environment has detection
/// enabled: candidate pairs come from the `comet-detect` ensemble run on
/// the dirty frames, and the JENGA provenance stays hidden from the
/// strategies (it is only used by the harness to score detectors and to
/// simulate the cleaner).
pub fn build_rein_env(
    dataset: Dataset,
    algorithm: Algorithm,
    families: &[ErrorType],
    detect: comet_detect::DetectorConfig,
    setting: usize,
    opts: &ExperimentOpts,
) -> Result<EnvSetup, EnvError> {
    let tag = format!("rein-{dataset}-{algorithm}-{families:?}");
    let seed = opts.child_seed(&tag, setting as u64);
    let mut rng = StdRng::seed_from_u64(seed);

    let pair = dataset.generate_rein_pair(
        opts.rows.map(|r| r.min(dataset.spec().rows)),
        families,
        &mut rng,
    );
    // Same split discipline as the CleanML setup: partition rows once on
    // the clean version, apply the identical partition to the dirty one.
    let tt = train_test_split(&pair.clean, SplitOptions::default(), &mut rng)?;
    let clean_train = pair.clean.take(&tt.train_rows)?;
    let clean_test = pair.clean.take(&tt.test_rows)?;
    let dirty_train = pair.dirty.take(&tt.train_rows)?;
    let dirty_test = pair.dirty.take(&tt.test_rows)?;
    let prov_train = split_provenance(&pair.provenance, pair.dirty.ncols(), &tt.train_rows);
    let prov_test = split_provenance(&pair.provenance, pair.dirty.ncols(), &tt.test_rows);

    let mut env = CleaningEnvironment::new(
        dirty_train,
        dirty_test,
        GroundTruth::new(clean_train),
        GroundTruth::new(clean_test),
        prov_train,
        prov_test,
        algorithm,
        Metric::F1,
        // A coarser cleaning step than the oracle setups (5% of a column
        // per unit): a detection-seeded cleaner works through a flagged
        // column in batches, and per-step F1 movement must clear the
        // evaluation noise floor for budget ranking to be measurable.
        0.05,
        search(opts),
        seed ^ 0x5EED,
        &mut rng,
    )?;
    env.enable_detection(detect);
    Ok(EnvSetup { env, dataset, algorithm, errors: families.to_vec() })
}

/// Project a full-frame provenance onto a row subset.
fn split_provenance(full: &Provenance, ncols: usize, rows: &[usize]) -> Provenance {
    let mut out = Provenance::new(ncols, rows.len());
    for col in 0..ncols {
        for (i, &row) in rows.iter().enumerate() {
            if let Some(err) = full.get(col, row) {
                out.record(col, i, err);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> ExperimentOpts {
        ExperimentOpts { rows: Some(150), search_samples: 1, ..ExperimentOpts::quick() }
    }

    #[test]
    fn prepolluted_env_is_dirty_and_deterministic() {
        let opts = tiny_opts();
        let a = build_prepolluted_env(
            Dataset::Eeg,
            Algorithm::Knn,
            Scenario::SingleError(ErrorType::MissingValues),
            0,
            &opts,
        )
        .unwrap();
        assert!(a.env.total_dirty().unwrap() > 0);
        assert_eq!(a.errors, vec![ErrorType::MissingValues]);
        let b = build_prepolluted_env(
            Dataset::Eeg,
            Algorithm::Knn,
            Scenario::SingleError(ErrorType::MissingValues),
            0,
            &opts,
        )
        .unwrap();
        assert_eq!(a.env.train(), b.env.train(), "same setting, same data");
        // A different setting yields different pollution.
        let c = build_prepolluted_env(
            Dataset::Eeg,
            Algorithm::Knn,
            Scenario::SingleError(ErrorType::MissingValues),
            1,
            &opts,
        )
        .unwrap();
        assert_ne!(a.env.train(), c.env.train());
    }

    #[test]
    fn scenario_errors_respect_schema() {
        assert_eq!(
            scenario_errors(Dataset::Eeg, Scenario::MultiError),
            vec![ErrorType::MissingValues, ErrorType::GaussianNoise, ErrorType::Scaling]
        );
        assert!(scenario_errors(Dataset::Cmc, Scenario::MultiError)
            .contains(&ErrorType::CategoricalShift));
        assert!(!applicable(Dataset::Eeg, ErrorType::CategoricalShift));
        assert!(applicable(Dataset::Cmc, ErrorType::CategoricalShift));
    }

    #[test]
    fn cleanml_env_consistent_with_ground_truth() {
        let opts = tiny_opts();
        let setup = build_cleanml_env(Dataset::Titanic, Algorithm::Knn, 0, &opts).unwrap();
        let env = &setup.env;
        assert!(env.total_dirty().unwrap() > 0);
        assert_eq!(setup.errors, vec![ErrorType::MissingValues]);
        // Provenance rows must match ground-truth dirt per feature.
        for col in env.feature_cols() {
            let (gt_train, _) = env.gt_dirty_rows(col).unwrap();
            let prov_rows = env.dirty_train_rows(col, ErrorType::MissingValues);
            assert_eq!(gt_train, prov_rows, "column {col}");
        }
    }

    #[test]
    fn rein_env_is_detection_seeded() {
        let opts = tiny_opts();
        let setup = build_rein_env(
            Dataset::Eeg,
            Algorithm::Knn,
            &[ErrorType::Outliers],
            comet_detect::DetectorConfig::default(),
            0,
            &opts,
        )
        .unwrap();
        assert!(setup.env.total_dirty().unwrap() > 0, "REIN pair must plant dirt");
        assert!(setup.env.detection().is_some(), "detection mode must be on");
        assert_eq!(setup.errors, vec![ErrorType::Outliers]);
        // Candidates come from the detector ensemble, so they exist even
        // though nobody handed the environment an error-type filter that
        // matches the planted family exactly.
        let candidates = setup.env.candidate_pairs(&ErrorType::EXTENDED);
        assert!(!candidates.is_empty(), "detectors must surface candidates");
    }

    #[test]
    fn row_cap_never_exceeds_table1() {
        let opts = ExperimentOpts { rows: Some(10_000), ..tiny_opts() };
        let setup = build_prepolluted_env(
            Dataset::SCredit, // Table 1: 1 000 rows
            Algorithm::Knn,
            Scenario::SingleError(ErrorType::MissingValues),
            0,
            &opts,
        )
        .unwrap();
        assert!(setup.env.train().nrows() + setup.env.test().nrows() <= 1_000);
    }
}
