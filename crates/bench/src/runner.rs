//! Strategy execution: run COMET or a baseline on a clone of a prepared
//! environment and collect traces.

use crate::opts::ExperimentOpts;
use comet_baselines::{
    average_traces, ActiveClean, CometLight, FeatureImportanceCleaner, Oracle, RandomCleaner,
    StrategyConfig,
};
use comet_core::{
    CleaningEnvironment, CleaningSession, CleaningTrace, CometConfig, CometError, CostPolicy,
};
use comet_jenga::ErrorType;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The cleaning strategies of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Full COMET.
    Comet,
    /// Random recommendations (averaged over repetitions).
    Rr,
    /// Feature-importance (Shapley) recommendations.
    Fir,
    /// COMET-Light.
    Cl,
    /// ActiveClean (convex models only).
    Ac,
    /// The greedy local optimum.
    Oracle,
}

impl Strategy {
    /// Display label used in tables (paper abbreviations).
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Comet => "COMET",
            Strategy::Rr => "RR",
            Strategy::Fir => "FIR",
            Strategy::Cl => "CL",
            Strategy::Ac => "AC",
            Strategy::Oracle => "Oracle",
        }
    }
}

/// Build the COMET config an experiment uses.
pub fn comet_config(opts: &ExperimentOpts, costs: CostPolicy) -> CometConfig {
    CometConfig {
        budget: opts.budget,
        costs,
        n_combinations: opts.combos,
        ..CometConfig::default()
    }
}

/// Run one strategy on a clone of `base`. Returns one trace per repetition
/// (only RR produces more than one).
pub fn run_strategy(
    strategy: Strategy,
    base: &CleaningEnvironment,
    errors: &[ErrorType],
    costs: CostPolicy,
    opts: &ExperimentOpts,
    seed: u64,
) -> Result<Vec<CleaningTrace>, CometError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = StrategyConfig { budget: opts.budget, costs };
    match strategy {
        Strategy::Comet => {
            let mut env = base.clone();
            let session = CleaningSession::new(comet_config(opts, costs), errors.to_vec());
            Ok(vec![session.run(&mut env, &mut rng)?.trace])
        }
        Strategy::Rr => {
            Ok(RandomCleaner.run_repeated(base, errors, &config, opts.rr_repetitions, &mut rng)?)
        }
        Strategy::Fir => {
            let mut env = base.clone();
            let fir = FeatureImportanceCleaner::default();
            Ok(vec![fir.run(&mut env, errors, &config, &mut rng)?])
        }
        Strategy::Cl => {
            let mut env = base.clone();
            let cl = CometLight::new(comet_config(opts, costs));
            Ok(vec![cl.run(&mut env, errors, &config, &mut rng)?])
        }
        Strategy::Ac => {
            let mut env = base.clone();
            Ok(vec![ActiveClean::default().run(&mut env, errors, &config, &mut rng)?])
        }
        Strategy::Oracle => {
            let mut env = base.clone();
            Ok(vec![Oracle.run(&mut env, errors, &config, &mut rng)?])
        }
    }
}

/// F1-per-budget-unit series of a strategy run (mean over repetitions).
pub fn f1_series(traces: &[CleaningTrace], max_budget: usize) -> Vec<f64> {
    average_traces(traces, max_budget)
}

/// The paper's headline quantity: COMET's F1 advantage over a baseline per
/// budget unit (positive = COMET ahead).
pub fn advantage(comet: &[f64], baseline: &[f64]) -> Vec<f64> {
    assert_eq!(comet.len(), baseline.len(), "series lengths must match");
    comet.iter().zip(baseline).map(|(c, b)| c - b).collect()
}

/// Element-wise mean of several equally long series.
pub fn mean_series(series: &[Vec<f64>]) -> Vec<f64> {
    assert!(!series.is_empty(), "need at least one series");
    let len = series[0].len();
    let mut out = vec![0.0; len];
    for s in series {
        assert_eq!(s.len(), len, "ragged series");
        for (o, v) in out.iter_mut().zip(s) {
            *o += v;
        }
    }
    out.iter_mut().for_each(|v| *v /= series.len() as f64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::build_prepolluted_env;
    use comet_datasets::Dataset;
    use comet_jenga::Scenario;
    use comet_ml::Algorithm;

    fn opts() -> ExperimentOpts {
        ExperimentOpts {
            rows: Some(150),
            budget: 4.0,
            search_samples: 1,
            combos: 1,
            rr_repetitions: 2,
            ..ExperimentOpts::quick()
        }
    }

    #[test]
    fn all_strategies_run_on_knn_env() {
        let opts = opts();
        let setup = build_prepolluted_env(
            Dataset::Eeg,
            Algorithm::Knn,
            Scenario::SingleError(ErrorType::MissingValues),
            0,
            &opts,
        )
        .unwrap();
        for strategy in
            [Strategy::Comet, Strategy::Rr, Strategy::Fir, Strategy::Cl, Strategy::Oracle]
        {
            let traces =
                run_strategy(strategy, &setup.env, &setup.errors, CostPolicy::constant(), &opts, 1)
                    .unwrap();
            let expected = if strategy == Strategy::Rr { 2 } else { 1 };
            assert_eq!(traces.len(), expected, "{strategy:?}");
            for t in &traces {
                assert!(t.total_spent() <= opts.budget + 1e-9);
            }
        }
    }

    #[test]
    fn ac_runs_on_convex_env_only() {
        let opts = opts();
        let svm = build_prepolluted_env(
            Dataset::Eeg,
            Algorithm::Svm,
            Scenario::SingleError(ErrorType::MissingValues),
            0,
            &opts,
        )
        .unwrap();
        assert!(run_strategy(
            Strategy::Ac,
            &svm.env,
            &svm.errors,
            CostPolicy::constant(),
            &opts,
            2
        )
        .is_ok());
        let knn = build_prepolluted_env(
            Dataset::Eeg,
            Algorithm::Knn,
            Scenario::SingleError(ErrorType::MissingValues),
            0,
            &opts,
        )
        .unwrap();
        assert!(run_strategy(
            Strategy::Ac,
            &knn.env,
            &knn.errors,
            CostPolicy::constant(),
            &opts,
            2
        )
        .is_err());
    }

    #[test]
    fn advantage_and_mean_series() {
        let adv = advantage(&[0.8, 0.9], &[0.7, 0.95]);
        assert!((adv[0] - 0.1).abs() < 1e-12);
        assert!((adv[1] + 0.05).abs() < 1e-12);
        let mean = mean_series(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(mean, vec![2.0, 3.0]);
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(Strategy::Comet.label(), "COMET");
        assert_eq!(Strategy::Ac.label(), "AC");
    }
}
