//! # comet-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§5).
//! Each `src/bin/figureNN.rs` binary reproduces one figure (appendix
//! variants via `--algo`); `table1` prints the dataset overview. All
//! binaries accept:
//!
//! ```text
//! --quick          subsampled rows / fewer settings (default)
//! --full           paper-scale rows, budget 50, 3 pre-pollution settings
//! --seed N         master seed (default 42)
//! --algo NAME      override the figure's ML algorithm
//! --rows N         hard row cap
//! --budget N       cleaning budget in units
//! --settings N     pre-pollution settings per dataset
//! --out DIR        CSV output directory (default bench_results/)
//! ```
//!
//! Output: aligned text tables on stdout (the same series the paper plots)
//! plus a CSV per figure under `--out`.

pub mod figures;
pub mod opts;
pub mod report;
pub mod runner;
pub mod setup;

pub use figures::{dataset_advantage_table, Source};
pub use opts::ExperimentOpts;
pub use report::{MatrixTable, SeriesTable};
pub use runner::{advantage, comet_config, f1_series, mean_series, run_strategy, Strategy};
pub use setup::{
    applicable, build_cleanml_env, build_prepolluted_env, build_rein_env, scenario_errors, EnvSetup,
};
