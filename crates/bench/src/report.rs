//! Table rendering and CSV export.

use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A named collection of equally long numeric series indexed by budget —
/// the structure behind every figure's plot.
#[derive(Debug, Clone)]
pub struct SeriesTable {
    /// Experiment id, e.g. `figure05_mlp_missing_values_eeg`.
    pub name: String,
    /// Label of the x column (usually `budget`).
    pub index_label: String,
    /// X values.
    pub index: Vec<f64>,
    /// `(label, series)` columns.
    pub columns: Vec<(String, Vec<f64>)>,
}

impl SeriesTable {
    /// New table over integer budgets `0..=max_budget`.
    pub fn over_budget(name: impl Into<String>, max_budget: usize) -> Self {
        SeriesTable {
            name: name.into(),
            index_label: "budget".into(),
            index: (0..=max_budget).map(|b| b as f64).collect(),
            columns: Vec::new(),
        }
    }

    /// New table with an arbitrary index.
    pub fn with_index(
        name: impl Into<String>,
        index_label: impl Into<String>,
        index: Vec<f64>,
    ) -> Self {
        SeriesTable {
            name: name.into(),
            index_label: index_label.into(),
            index,
            columns: Vec::new(),
        }
    }

    /// Add a column. Panics on length mismatch.
    pub fn push(&mut self, label: impl Into<String>, series: Vec<f64>) {
        assert_eq!(series.len(), self.index.len(), "series length must match index");
        self.columns.push((label.into(), series));
    }

    /// Column by label.
    pub fn get(&self, label: &str) -> Option<&[f64]> {
        self.columns.iter().find(|(l, _)| l == label).map(|(_, s)| s.as_slice())
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.name));
        let width = 12usize;
        out.push_str(&format!("{:>width$}", self.index_label));
        for (label, _) in &self.columns {
            out.push_str(&format!("{label:>width$}"));
        }
        out.push('\n');
        for (i, x) in self.index.iter().enumerate() {
            out.push_str(&format!("{x:>width$.2}"));
            for (_, series) in &self.columns {
                out.push_str(&format!("{:>width$.4}", series[i]));
            }
            out.push('\n');
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.index_label);
        for (label, _) in &self.columns {
            out.push(',');
            out.push_str(label);
        }
        out.push('\n');
        for (i, x) in self.index.iter().enumerate() {
            out.push_str(&format!("{x}"));
            for (_, series) in &self.columns {
                out.push_str(&format!(",{}", series[i]));
            }
            out.push('\n');
        }
        out
    }

    /// Print to stdout and write `<out_dir>/<name>.csv`.
    pub fn emit(&self, out_dir: &str) -> std::io::Result<()> {
        print!("{}", self.render());
        fs::create_dir_all(out_dir)?;
        let path = Path::new(out_dir).join(format!("{}.csv", self.name));
        let mut file = fs::File::create(path)?;
        file.write_all(self.to_csv().as_bytes())?;
        Ok(())
    }
}

/// A labelled matrix (rows × columns of scalars) for the grouped-bar
/// figures (10, 11) and the runtime table (12).
#[derive(Debug, Clone)]
pub struct MatrixTable {
    /// Experiment id.
    pub name: String,
    /// Row labels.
    pub rows: Vec<String>,
    /// Column labels.
    pub cols: Vec<String>,
    /// Row-major values; `None` renders as `-` (not applicable).
    pub values: Vec<Option<f64>>,
}

impl MatrixTable {
    /// New empty matrix.
    pub fn new(name: impl Into<String>, rows: Vec<String>, cols: Vec<String>) -> Self {
        let values = vec![None; rows.len() * cols.len()];
        MatrixTable { name: name.into(), rows, cols, values }
    }

    /// Set a cell by labels. Panics on unknown labels.
    pub fn set(&mut self, row: &str, col: &str, value: f64) {
        let r = self.rows.iter().position(|x| x == row).expect("known row");
        let c = self.cols.iter().position(|x| x == col).expect("known col");
        self.values[r * self.cols.len() + c] = Some(value);
    }

    /// Get a cell by labels.
    pub fn get(&self, row: &str, col: &str) -> Option<f64> {
        let r = self.rows.iter().position(|x| x == row)?;
        let c = self.cols.iter().position(|x| x == col)?;
        self.values[r * self.cols.len() + c]
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.name));
        let width = 12usize;
        out.push_str(&format!("{:>width$}", ""));
        for c in &self.cols {
            out.push_str(&format!("{c:>width$}"));
        }
        out.push('\n');
        for (r, row) in self.rows.iter().enumerate() {
            out.push_str(&format!("{row:>width$}"));
            for c in 0..self.cols.len() {
                match self.values[r * self.cols.len() + c] {
                    Some(v) => out.push_str(&format!("{v:>width$.4}")),
                    None => out.push_str(&format!("{:>width$}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render as CSV (empty cells for `None`).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("row");
        for c in &self.cols {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (r, row) in self.rows.iter().enumerate() {
            out.push_str(row);
            for c in 0..self.cols.len() {
                match self.values[r * self.cols.len() + c] {
                    Some(v) => out.push_str(&format!(",{v}")),
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Print to stdout and write `<out_dir>/<name>.csv`.
    pub fn emit(&self, out_dir: &str) -> std::io::Result<()> {
        print!("{}", self.render());
        fs::create_dir_all(out_dir)?;
        let path = Path::new(out_dir).join(format!("{}.csv", self.name));
        let mut file = fs::File::create(path)?;
        file.write_all(self.to_csv().as_bytes())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_table_roundtrip() {
        let mut t = SeriesTable::over_budget("test_fig", 2);
        t.push("COMET", vec![0.5, 0.6, 0.7]);
        t.push("RR", vec![0.5, 0.55, 0.6]);
        assert_eq!(t.get("RR"), Some(&[0.5, 0.55, 0.6][..]));
        assert_eq!(t.get("nope"), None);
        let text = t.render();
        assert!(text.contains("test_fig"));
        assert!(text.contains("COMET"));
        let csv = t.to_csv();
        assert!(csv.starts_with("budget,COMET,RR\n"));
        assert!(csv.contains("1,0.6,0.55"));
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn mismatched_series_rejected() {
        let mut t = SeriesTable::over_budget("x", 2);
        t.push("bad", vec![1.0]);
    }

    #[test]
    fn matrix_table_roundtrip() {
        let mut m = MatrixTable::new(
            "fig10",
            vec!["SVM".into(), "KNN".into()],
            vec!["MV".into(), "GN".into()],
        );
        m.set("SVM", "MV", 0.05);
        assert_eq!(m.get("SVM", "MV"), Some(0.05));
        assert_eq!(m.get("KNN", "GN"), None);
        let text = m.render();
        assert!(text.contains("fig10"));
        assert!(text.contains('-'), "missing cells render as dash");
        let csv = m.to_csv();
        assert!(csv.starts_with("row,MV,GN\n"));
        assert!(csv.contains("SVM,0.05,"));
    }

    #[test]
    fn emit_writes_csv() {
        let dir = std::env::temp_dir().join("comet_bench_report_test");
        let dir_str = dir.to_str().unwrap().to_string();
        let mut t = SeriesTable::over_budget("emit_test", 1);
        t.push("a", vec![1.0, 2.0]);
        t.emit(&dir_str).unwrap();
        let written = std::fs::read_to_string(dir.join("emit_test.csv")).unwrap();
        assert!(written.contains("budget,a"));
        std::fs::remove_dir_all(dir).ok();
    }
}
