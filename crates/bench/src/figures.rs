//! High-level figure builders shared by the experiment binaries.

use crate::opts::ExperimentOpts;
use crate::report::SeriesTable;
use crate::runner::{advantage, f1_series, mean_series, run_strategy, Strategy};
use crate::setup::{build_cleanml_env, build_prepolluted_env, EnvSetup};
use comet_core::{CleaningTrace, CometError, CostPolicy, EnvError};
use comet_datasets::Dataset;
use comet_jenga::Scenario;
use comet_ml::Algorithm;

/// Where the dirty data comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Clean synthetic analog + sampled pre-pollution setting (§4.1).
    Prepolluted(Scenario),
    /// CleanML-style paired dirty/clean dataset (§4.3).
    CleanMl,
}

/// Build the environment for one `(dataset, algorithm, setting)` cell.
pub fn build_setup(
    source: Source,
    dataset: Dataset,
    algorithm: Algorithm,
    setting: usize,
    opts: &ExperimentOpts,
) -> Result<EnvSetup, EnvError> {
    match source {
        Source::Prepolluted(scenario) => {
            build_prepolluted_env(dataset, algorithm, scenario, setting, opts)
        }
        Source::CleanMl => build_cleanml_env(dataset, algorithm, setting, opts),
    }
}

/// The workhorse behind Figures 3–6, 8, 9 and the appendix variants: for one
/// dataset, run COMET and the given baselines on every pre-pollution
/// setting and average. The table carries COMET's F1 series plus one
/// `adv_vs_<baseline>` column per baseline (the paper's "F1 advantage").
pub fn dataset_advantage_table(
    name: impl Into<String>,
    source: Source,
    dataset: Dataset,
    algorithm: Algorithm,
    baselines: &[Strategy],
    costs: CostPolicy,
    opts: &ExperimentOpts,
) -> Result<SeriesTable, CometError> {
    let name = name.into();
    let max_budget = opts.budget.round() as usize;
    let mut comet_all: Vec<Vec<f64>> = Vec::with_capacity(opts.settings);
    let mut adv_all: Vec<Vec<Vec<f64>>> = vec![Vec::new(); baselines.len()];

    // Settings are independent repetitions with their own derived seeds, so
    // they fan out across workers; results come back in setting order, so
    // the averaged series match the sequential run exactly.
    type SettingSeries = (Vec<f64>, Vec<Vec<f64>>);
    let per_setting: Vec<Result<SettingSeries, CometError>> =
        comet_par::par_map((0..opts.settings).collect(), |setting| {
            let setup = build_setup(source, dataset, algorithm, setting, opts)?;
            let comet_traces = run_strategy(
                Strategy::Comet,
                &setup.env,
                &setup.errors,
                costs,
                opts,
                opts.child_seed(&format!("{name}-comet"), setting as u64),
            )?;
            let comet = f1_series(&comet_traces, max_budget);
            let mut advs = Vec::with_capacity(baselines.len());
            for &baseline in baselines {
                let traces = run_strategy(
                    baseline,
                    &setup.env,
                    &setup.errors,
                    costs,
                    opts,
                    opts.child_seed(&format!("{name}-{}", baseline.label()), setting as u64),
                )?;
                advs.push(advantage(&comet, &f1_series(&traces, max_budget)));
            }
            Ok((comet, advs))
        });
    for result in per_setting {
        let (comet, advs) = result?;
        comet_all.push(comet);
        for (i, adv) in advs.into_iter().enumerate() {
            adv_all[i].push(adv);
        }
    }

    let mut table = SeriesTable::over_budget(name, max_budget);
    table.push("COMET_F1", mean_series(&comet_all));
    for (i, &baseline) in baselines.iter().enumerate() {
        table.push(format!("adv_vs_{}", baseline.label()), mean_series(&adv_all[i]));
    }
    Ok(table)
}

/// Run COMET alone across every setting of one cell and return the traces —
/// the inputs for the MAE (Figure 11) and runtime (Figure 12) analyses.
pub fn comet_traces_for_cell(
    tag: &str,
    source: Source,
    dataset: Dataset,
    algorithm: Algorithm,
    costs: CostPolicy,
    opts: &ExperimentOpts,
) -> Result<Vec<CleaningTrace>, CometError> {
    let per_setting: Vec<Result<Vec<CleaningTrace>, CometError>> =
        comet_par::par_map((0..opts.settings).collect(), |setting| {
            let setup = build_setup(source, dataset, algorithm, setting, opts)?;
            run_strategy(
                Strategy::Comet,
                &setup.env,
                &setup.errors,
                costs,
                opts,
                opts.child_seed(tag, setting as u64),
            )
        });
    let mut traces = Vec::with_capacity(opts.settings);
    for runs in per_setting {
        traces.append(&mut runs?);
    }
    Ok(traces)
}

/// The quick-mode dataset subset for the heavy grid figures (10–12): full
/// mode covers all pre-polluted datasets, quick mode a representative pair
/// (one numeric-only, one categorical-heavy).
pub fn grid_datasets(opts: &ExperimentOpts) -> Vec<Dataset> {
    if opts.quick {
        vec![Dataset::Eeg, Dataset::Cmc]
    } else {
        Dataset::PREPOLLUTED.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_jenga::ErrorType;

    fn tiny() -> ExperimentOpts {
        ExperimentOpts {
            rows: Some(150),
            budget: 3.0,
            settings: 1,
            search_samples: 1,
            combos: 1,
            rr_repetitions: 1,
            ..ExperimentOpts::quick()
        }
    }

    #[test]
    fn advantage_table_has_expected_columns() {
        let opts = tiny();
        let table = dataset_advantage_table(
            "test_adv",
            Source::Prepolluted(Scenario::SingleError(ErrorType::MissingValues)),
            Dataset::Eeg,
            Algorithm::Knn,
            &[Strategy::Rr, Strategy::Fir],
            CostPolicy::constant(),
            &opts,
        )
        .unwrap();
        assert_eq!(table.index.len(), 4); // budgets 0..=3
        assert!(table.get("COMET_F1").is_some());
        assert!(table.get("adv_vs_RR").is_some());
        assert!(table.get("adv_vs_FIR").is_some());
        // Advantage at budget 0 is 0 by construction (same starting state).
        let adv0 = table.get("adv_vs_RR").unwrap()[0];
        assert!(adv0.abs() < 1e-9, "budget-0 advantage {adv0}");
    }

    #[test]
    fn comet_traces_for_cell_runs() {
        let opts = tiny();
        let traces = comet_traces_for_cell(
            "test_cell",
            Source::Prepolluted(Scenario::SingleError(ErrorType::MissingValues)),
            Dataset::Eeg,
            Algorithm::Knn,
            CostPolicy::constant(),
            &opts,
        )
        .unwrap();
        assert_eq!(traces.len(), 1);
        assert!(!traces[0].iteration_runtimes.is_empty());
    }

    #[test]
    fn grid_datasets_by_mode() {
        assert_eq!(grid_datasets(&ExperimentOpts::quick()).len(), 2);
        assert_eq!(grid_datasets(&ExperimentOpts::full()).len(), 4);
    }
}
