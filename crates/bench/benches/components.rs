//! Criterion microbenchmarks for the building blocks every experiment
//! exercises: error injection, featurization, learner training, Bayesian
//! regression, Shapley values, and one full COMET estimate.

use comet_bayes::{BayesianLinearRegression, BlrConfig, StudentT};
use comet_core::{CleaningEnvironment, Estimator, Polluter};
use comet_datasets::Dataset;
use comet_frame::{train_test_split, SplitOptions};
use comet_jenga::{inject, sample_rows, ErrorType, GroundTruth, Provenance};
use comet_ml::shapley::{column_means, shapley_importance, ShapleyConfig};
use comet_ml::{Algorithm, Featurizer, Metric, RandomSearch};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_injection(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let df = Dataset::Eeg.generate(Some(1_000), &mut rng);
    let mut group = c.benchmark_group("injection");
    group.sample_size(30);
    for err in [ErrorType::MissingValues, ErrorType::GaussianNoise, ErrorType::Scaling] {
        group.bench_function(err.abbrev(), |b| {
            b.iter_batched(
                || (df.clone(), StdRng::seed_from_u64(2)),
                |(mut frame, mut rng)| {
                    let rows = sample_rows(frame.nrows(), 100, &mut rng);
                    black_box(inject(&mut frame, 0, &rows, err, &mut rng).unwrap());
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_featurizer(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let df = Dataset::Churn.generate(Some(1_000), &mut rng);
    c.bench_function("featurizer/fit_transform_churn_1k", |b| {
        b.iter(|| {
            let f = Featurizer::fit(black_box(&df)).unwrap();
            black_box(f.transform(&df).unwrap());
        })
    });
}

fn bench_learners(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let df = Dataset::Eeg.generate(Some(500), &mut rng);
    let tt = train_test_split(&df, SplitOptions::default(), &mut rng).unwrap();
    let (_, xtr, xte) = Featurizer::fit_transform(&tt.train, &tt.test).unwrap();
    let ytr = tt.train.label_codes().unwrap();

    let mut group = c.benchmark_group("learner_fit_predict");
    group.sample_size(10);
    for algorithm in Algorithm::ALL {
        group.bench_function(algorithm.name(), |b| {
            b.iter(|| {
                let mut model = algorithm.default_params().build();
                let mut rng = StdRng::seed_from_u64(5);
                model.fit(black_box(&xtr), &ytr, 2, &mut rng);
                black_box(model.predict(&xte));
            })
        });
    }
    group.finish();
}

fn bench_bayes(c: &mut Criterion) {
    let xs: Vec<f64> = (0..5).map(|i| i as f64).collect();
    let ys = vec![0.9, 0.87, 0.85, 0.84, 0.80];
    c.bench_function("bayes/blr_fit_predict", |b| {
        b.iter(|| {
            let mut blr = BayesianLinearRegression::new(BlrConfig::default());
            blr.fit(black_box(&xs), black_box(&ys)).unwrap();
            black_box(blr.predict(-1.0).unwrap());
        })
    });
    c.bench_function("bayes/student_t_quantile", |b| {
        b.iter(|| black_box(StudentT::new(7.0).quantile(black_box(0.975))))
    });
}

fn bench_shapley(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let df = Dataset::Eeg.generate(Some(300), &mut rng);
    let tt = train_test_split(&df, SplitOptions::default(), &mut rng).unwrap();
    let (featurizer, xtr, xte) = Featurizer::fit_transform(&tt.train, &tt.test).unwrap();
    let ytr = tt.train.label_codes().unwrap();
    let yte = tt.test.label_codes().unwrap();
    let mut model = Algorithm::Knn.default_params().build();
    model.fit(&xtr, &ytr, 2, &mut rng);
    let bg = column_means(&xtr);
    c.bench_function("shapley/knn_eeg_300_2perm", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            black_box(shapley_importance(
                model.as_ref(),
                &xte,
                &yte,
                2,
                featurizer.groups(),
                &bg,
                ShapleyConfig { n_permutations: 2, metric: Metric::F1 },
                &mut rng,
            ));
        })
    });
}

fn bench_comet_estimate(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(8);
    let df = Dataset::Eeg.generate(Some(300), &mut rng);
    let tt = train_test_split(&df, SplitOptions::default(), &mut rng).unwrap();
    let gt_train = GroundTruth::new(tt.train.clone());
    let gt_test = GroundTruth::new(tt.test.clone());
    let env = CleaningEnvironment::new(
        tt.train.clone(),
        tt.test.clone(),
        gt_train,
        gt_test,
        Provenance::for_frame(&tt.train),
        Provenance::for_frame(&tt.test),
        Algorithm::Knn,
        Metric::F1,
        0.01,
        RandomSearch { n_samples: 1, ..RandomSearch::default() },
        9,
        &mut rng,
    )
    .unwrap();
    let current = env.evaluate().unwrap();
    let polluter = Polluter::new(2, 2);
    let estimator = Estimator::new(1, 0.95, true);
    c.bench_function("comet/estimate_one_candidate", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(10);
            let variants = polluter.variants(&env, 0, ErrorType::GaussianNoise, &mut rng).unwrap();
            black_box(
                estimator.estimate(&env, 0, ErrorType::GaussianNoise, current, &variants).unwrap(),
            );
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).without_plots();
    targets = bench_injection, bench_featurizer, bench_learners, bench_bayes,
              bench_shapley, bench_comet_estimate
}
criterion_main!(benches);
