//! Criterion bench for the blocked/unrolled linear-algebra kernels versus
//! straightforward loops, at the shapes the learners actually use (a few
//! hundred rows, tens of columns).

use comet_ml::kernels;
use comet_ml::Matrix;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const N: usize = 400;
const D: usize = 48;

fn filled(rows: usize, cols: usize, salt: u64) -> Vec<Vec<f64>> {
    (0..rows)
        .map(|i| (0..cols).map(|j| ((i * cols + j) as u64 ^ salt) as f64 * 1e-3).collect())
        .collect()
}

fn bench_kernels(c: &mut Criterion) {
    // `try_from_vecs` is the checked constructor; a bench that fed it
    // ragged rows would fail loudly instead of benchmarking garbage.
    let a = Matrix::try_from_vecs(&filled(N, D, 7)).unwrap();
    let x: Vec<f64> = (0..D).map(|j| (j as f64).sin()).collect();
    let y: Vec<f64> = (0..D).map(|j| (j as f64).cos()).collect();
    let mut out = vec![0.0; N];

    let mut group = c.benchmark_group("matvec_kernels");

    group.bench_function("dot/naive", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (xi, yi) in x.iter().zip(&y) {
                acc += xi * yi;
            }
            black_box(acc)
        })
    });
    group.bench_function("dot/kernel", |b| {
        b.iter(|| black_box(kernels::dot(black_box(&x), black_box(&y))))
    });

    group.bench_function("matvec/naive", |b| {
        b.iter(|| {
            for (i, o) in out.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (j, xj) in x.iter().enumerate() {
                    acc += a.get(i, j) * xj;
                }
                *o = acc;
            }
            black_box(&out);
        })
    });
    group.bench_function("matvec/kernel", |b| {
        b.iter(|| {
            kernels::matvec(a.as_slice(), N, D, &x, &mut out);
            black_box(&out);
        })
    });

    let bt = Matrix::try_from_vecs(&filled(D, D, 13)).unwrap();
    let mut mm = vec![0.0; N * D];
    group.bench_function("matmul/kernel", |b| {
        b.iter(|| {
            kernels::matmul(a.as_slice(), N, D, bt.as_slice(), D, &mut mm);
            black_box(&mm);
        })
    });

    let mut acc = vec![0.0; D];
    group.bench_function("axpy/kernel", |b| {
        b.iter(|| {
            kernels::axpy(black_box(1.0009), &x, &mut acc);
            black_box(&acc);
        })
    });

    let q: Vec<f64> = (0..D).map(|j| (j as f64).tan().clamp(-2.0, 2.0)).collect();
    group.bench_function("sq_dist/kernel", |b| {
        b.iter(|| black_box(kernels::sq_dist(black_box(&x), black_box(&q))))
    });

    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
