//! Criterion bench for the featurization hot path: full fit + transform
//! versus the column-block cache, both from scratch and in the warm
//! steady state the session loop lives in (one column mutated per
//! candidate, every other block answered from cache).

use comet_datasets::Dataset;
use comet_frame::Cell;
use comet_ml::{FeatureCache, Featurizer};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_transform(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let df = Dataset::Churn.generate(Some(1_000), &mut rng);
    let mut group = c.benchmark_group("featurize_transform");
    group.sample_size(30);

    group.bench_function("uncached/fit_transform", |b| {
        b.iter(|| {
            let f = Featurizer::fit(black_box(&df)).unwrap();
            black_box(f.transform(&df).unwrap());
        })
    });

    // Warm cache, identical frame: every block splices from cache.
    let cache = FeatureCache::new();
    let fitted = Featurizer::fit_cached(&df, &cache).unwrap();
    let warm = fitted.transform_with(&df, Some(&cache), Vec::new()).unwrap();
    let mut buf = warm.into_buffer();
    group.bench_function("cached/warm_identical", |b| {
        b.iter(|| {
            let f = Featurizer::fit_cached(black_box(&df), &cache).unwrap();
            let m = f.transform_with(&df, Some(&cache), std::mem::take(&mut buf)).unwrap();
            black_box(&m);
            buf = m.into_buffer();
        })
    });

    // The session-loop shape: one column dirty per candidate. The mutated
    // column's block misses; the rest hit.
    let mut dirty = df.clone();
    let v = dirty.column(0).unwrap().num(0).unwrap_or(0.0);
    dirty.set(0, 0, Cell::Num(v + 1.0)).unwrap();
    group.bench_function("cached/one_column_dirty", |b| {
        b.iter(|| {
            let f = Featurizer::fit_cached(black_box(&dirty), &cache).unwrap();
            let m = f.transform_with(&dirty, Some(&cache), std::mem::take(&mut buf)).unwrap();
            black_box(&m);
            buf = m.into_buffer();
        })
    });

    group.finish();
}

criterion_group!(benches, bench_transform);
criterion_main!(benches);
