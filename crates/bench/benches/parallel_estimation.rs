//! Criterion benchmarks for the parallel estimation engine: candidate
//! fan-out at different worker counts and the evaluation cache's hit path.
//!
//! On a single-core host the thread sweep mostly measures fan-out overhead
//! (it should stay small); the cold-vs-warm pair measures what the cache
//! saves — a warm evaluation skips featurization, training, and prediction
//! entirely.

use comet_core::{CleaningEnvironment, Estimator, Polluter};
use comet_datasets::Dataset;
use comet_frame::{train_test_split, SplitOptions};
use comet_jenga::{ErrorType, GroundTruth, Provenance};
use comet_ml::{Algorithm, Metric, RandomSearch};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn build_env() -> CleaningEnvironment {
    let mut rng = StdRng::seed_from_u64(8);
    let df = Dataset::Eeg.generate(Some(300), &mut rng);
    let tt = train_test_split(&df, SplitOptions::default(), &mut rng).unwrap();
    let gt_train = GroundTruth::new(tt.train.clone());
    let gt_test = GroundTruth::new(tt.test.clone());
    CleaningEnvironment::new(
        tt.train.clone(),
        tt.test.clone(),
        gt_train,
        gt_test,
        Provenance::for_frame(&tt.train),
        Provenance::for_frame(&tt.test),
        Algorithm::Knn,
        Metric::F1,
        0.01,
        RandomSearch { n_samples: 1, ..RandomSearch::default() },
        9,
        &mut rng,
    )
    .unwrap()
}

/// One estimate (4 variant evaluations) at 1, 2, and 4 worker threads,
/// cache cleared every iteration so each run retrains from scratch.
fn bench_estimate_threads(c: &mut Criterion) {
    let env = build_env();
    let current = env.evaluate().unwrap();
    let polluter = Polluter::new(2, 2);
    let estimator = Estimator::new(1, 0.95, true);
    let mut group = c.benchmark_group("parallel/estimate_cold");
    for threads in [1usize, 2, 4] {
        group.bench_function(&format!("{threads}_threads"), |b| {
            b.iter(|| {
                comet_par::with_threads(threads, || {
                    env.clear_eval_cache();
                    let mut rng = StdRng::seed_from_u64(10);
                    let variants =
                        polluter.variants(&env, 0, ErrorType::GaussianNoise, &mut rng).unwrap();
                    black_box(
                        estimator
                            .estimate(&env, 0, ErrorType::GaussianNoise, current, &variants)
                            .unwrap(),
                    );
                })
            })
        });
    }
    group.finish();
}

/// The cache's two paths: a cold evaluation (fingerprint + full retrain)
/// against a warm one (fingerprint + lookup only).
fn bench_eval_cache(c: &mut Criterion) {
    let env = build_env();
    let mut group = c.benchmark_group("parallel/evaluate");
    group.bench_function("cold", |b| {
        b.iter(|| {
            env.clear_eval_cache();
            black_box(env.evaluate().unwrap());
        })
    });
    env.clear_eval_cache();
    env.evaluate().unwrap();
    group.bench_function("warm", |b| {
        b.iter(|| black_box(env.evaluate().unwrap()));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).without_plots();
    targets = bench_estimate_threads, bench_eval_cache
}
criterion_main!(benches);
