//! Criterion benchmark of COMET configuration ablations: wall-clock cost of
//! one full (small) cleaning session under each design-choice toggle. The
//! quality side of the ablation lives in the `ablation` binary; this
//! measures the *runtime* impact (e.g. extra pollution steps and
//! combinations multiply evaluation count).

use comet_core::{CleaningEnvironment, CleaningSession, CometConfig};
use comet_datasets::Dataset;
use comet_frame::{train_test_split, SplitOptions};
use comet_jenga::{ErrorType, GroundTruth, PrePollutionPlan, Provenance, Scenario};
use comet_ml::{Algorithm, Metric, RandomSearch};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn build_env() -> CleaningEnvironment {
    let mut rng = StdRng::seed_from_u64(1);
    let df = Dataset::Eeg.generate(Some(200), &mut rng);
    let tt = train_test_split(&df, SplitOptions::default(), &mut rng).unwrap();
    let gt_train = GroundTruth::new(tt.train.clone());
    let gt_test = GroundTruth::new(tt.test.clone());
    let mut train = tt.train;
    let mut test = tt.test;
    let mut prov_train = Provenance::for_frame(&train);
    let mut prov_test = Provenance::for_frame(&test);
    let plan = PrePollutionPlan::explicit(
        Scenario::SingleError(ErrorType::MissingValues),
        vec![(0, 0.3), (1, 0.2)],
    );
    plan.apply(&mut train, 0.01, &mut prov_train, &mut rng).unwrap();
    plan.apply(&mut test, 0.01, &mut prov_test, &mut rng).unwrap();
    CleaningEnvironment::new(
        train,
        test,
        gt_train,
        gt_test,
        prov_train,
        prov_test,
        Algorithm::Knn,
        Metric::F1,
        0.02,
        RandomSearch { n_samples: 1, ..RandomSearch::default() },
        2,
        &mut rng,
    )
    .unwrap()
}

fn bench_session_variants(c: &mut Criterion) {
    let env = build_env();
    let base = CometConfig { budget: 3.0, ..CometConfig::default() };
    let variants: Vec<(&str, CometConfig)> = vec![
        ("full", base),
        ("no_uncertainty", CometConfig { use_uncertainty: false, ..base }),
        ("one_combination", CometConfig { n_combinations: 1, ..base }),
        ("four_steps", CometConfig { pollution_steps: 4, ..base }),
        ("no_revert", CometConfig { revert_on_decrease: false, ..base }),
    ];
    let mut group = c.benchmark_group("comet_session_ablation");
    group.sample_size(10);
    for (name, config) in variants {
        group.bench_function(name, |b| {
            b.iter_batched(
                || (env.clone(), StdRng::seed_from_u64(3)),
                |(mut env, mut rng)| {
                    let session = CleaningSession::new(config, vec![ErrorType::MissingValues]);
                    black_box(session.run(&mut env, &mut rng).unwrap());
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).without_plots();
    targets = bench_session_variants
}
criterion_main!(benches);
