//! Integration tests for the LRU spill-to-disk tier.
//!
//! The spill pool is process-global, so every test here serializes on one
//! mutex and tears the pool down before releasing it. These live in an
//! integration-test binary (own process) so the crate's unit tests — which
//! never configure the pool — cannot observe a half-configured registry.

use comet_frame::{
    spill_configure, spill_deconfigure, spill_stats, spill_take_error, Cell, Column, DataFrame,
};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};

static POOL_LOCK: Mutex<()> = Mutex::new(());

fn lock_pool() -> MutexGuard<'static, ()> {
    POOL_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("comet-spill-test-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn teardown(dir: &PathBuf) {
    spill_deconfigure();
    std::fs::remove_dir_all(dir).ok();
}

/// A segmented numeric column big enough to overflow a small budget:
/// 64 segments × 1024 rows × 8 bytes ≈ 512 KiB of payload.
fn big_column(name: &str) -> Column {
    let values: Vec<f64> = (0..65_536).map(|i| (i as f64).sin() * 1e3).collect();
    Column::numeric(name, values).resegment(1024).unwrap()
}

#[test]
fn cold_segments_spill_and_reload_bit_identically() {
    let _guard = lock_pool();
    let dir = temp_dir("roundtrip");
    spill_configure(&dir, 64 << 10).unwrap();

    let col = big_column("x");
    let stats = spill_stats().unwrap();
    assert!(stats.spills > 0, "512 KiB under a 64 KiB budget must spill: {stats:?}");
    assert!(stats.resident_bytes <= 64 << 10, "budget holds: {stats:?}");
    assert!(stats.spill_bytes > 0);
    assert!(
        std::fs::read_dir(&dir).unwrap().count() > 0,
        "spill files are on disk under the configured dir"
    );

    // Reading every row reloads each segment; values are bit-identical.
    for i in (0..65_536).step_by(777) {
        assert_eq!(col.num(i).unwrap().to_bits(), ((i as f64).sin() * 1e3).to_bits());
    }
    let stats = spill_stats().unwrap();
    assert!(stats.reloads > 0, "cold reads must reload: {stats:?}");
    assert!(stats.resident_bytes <= 64 << 10, "reloads re-evict: {stats:?}");
    assert_eq!(spill_take_error(), None, "round-trip is error-free");

    // The fingerprint (computed through spill reloads) equals a freshly
    // built column's — spilling never alters content.
    let reference = big_column("x");
    assert_eq!(col.fingerprint(), reference.fingerprint());
    teardown(&dir);
}

#[test]
fn mutation_under_spill_pressure_stays_correct() {
    let _guard = lock_pool();
    let dir = temp_dir("mutate");
    spill_configure(&dir, 32 << 10).unwrap();

    let base = big_column("x");
    let mut col = base.clone();
    col.set(40_000, Cell::Num(-1.5)).unwrap();
    col.set(123, Cell::Missing).unwrap();
    assert_eq!(col.num(40_000), Some(-1.5));
    assert_eq!(col.num(123), None);
    // Untouched rows read through spilled segments unchanged.
    assert_eq!(col.num(50_001), base.num(50_001));
    assert_ne!(col.fingerprint(), base.fingerprint());
    assert_eq!(spill_take_error(), None);
    teardown(&dir);
}

#[test]
fn restart_reuses_content_addressed_files() {
    let _guard = lock_pool();
    let dir = temp_dir("restart");
    spill_configure(&dir, 48 << 10).unwrap();
    let col = big_column("x");
    let fp_before = col.fingerprint();
    let files_before = std::fs::read_dir(&dir).unwrap().count();
    assert!(files_before > 0);
    drop(col);

    // "Restart": a new process would deconfigure implicitly; re-arm the
    // pool over the same directory and rebuild the same content. Writes
    // are idempotent — existing files are trusted, not rewritten.
    spill_deconfigure();
    spill_configure(&dir, 48 << 10).unwrap();
    let col = big_column("x");
    assert_eq!(col.fingerprint(), fp_before);
    for i in (0..65_536).step_by(4_096) {
        assert_eq!(col.num(i), Some((i as f64).sin() * 1e3));
    }
    assert_eq!(spill_take_error(), None);
    teardown(&dir);
}

#[test]
fn killed_mid_spill_tmp_files_are_ignored() {
    let _guard = lock_pool();
    let dir = temp_dir("killtmp");
    spill_configure(&dir, 48 << 10).unwrap();

    // A writer killed between `create` and `rename` leaves a partial .tmp
    // behind. It must never be read back as segment data.
    std::fs::write(dir.join("00000000deadbeef.seg.tmp"), b"partial garbage").unwrap();
    let col = big_column("x");
    for i in (0..65_536).step_by(9_999) {
        assert_eq!(col.num(i), Some((i as f64).sin() * 1e3));
    }
    assert_eq!(spill_take_error(), None, "stray .tmp files are inert");
    teardown(&dir);
}

#[test]
fn corrupted_spill_file_degrades_reads_and_surfaces_error() {
    let _guard = lock_pool();
    let dir = temp_dir("corrupt");
    spill_configure(&dir, 16 << 10).unwrap();

    let col = big_column("x");
    // Corrupt every spill file on disk (bad magic).
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "seg") {
            std::fs::write(&path, b"XXXXXXXXnot a segment").unwrap();
            corrupted += 1;
        }
    }
    assert!(corrupted > 0);

    // Reads of evicted segments degrade to missing (no panic)…
    let mut missing = 0;
    for i in (0..65_536).step_by(1024) {
        if col.num(i).is_none() {
            missing += 1;
        }
    }
    assert!(missing > 0, "corrupted segments must not resurrect data");
    // …and the cause is waiting at the next step boundary.
    assert!(spill_take_error().is_some(), "corruption surfaces via the sticky error");
    teardown(&dir);
}

#[test]
fn frame_level_cow_spills_only_what_it_touches() {
    let _guard = lock_pool();
    let dir = temp_dir("frame");
    spill_configure(&dir, 128 << 10).unwrap();

    let cols: Vec<Column> = (0..4).map(|i| big_column(&format!("c{i}"))).collect();
    let df = DataFrame::new(cols, None).unwrap();
    let mut dirty = df.clone();
    dirty.set(10, 0, Cell::Num(9.0)).unwrap();
    // The clone shares every untouched segment with the original: the pool
    // tracks 4×64 shared segments plus ONE CoW'd segment — cloning the
    // frame must not double the live segment count. (A little slack for
    // transient whole-column segments still registered mid-build.)
    let stats = spill_stats().unwrap();
    let live = stats.resident_segments + stats.spilled_segments;
    assert!(
        (4 * 64 + 1..4 * 64 + 8).contains(&live),
        "CoW must not duplicate untouched segments: {stats:?}"
    );
    assert!(stats.resident_bytes <= 128 << 10, "budget holds: {stats:?}");
    assert_eq!(dirty.get(10, 0).unwrap(), Cell::Num(9.0));
    assert_eq!(df.get(10, 0).unwrap(), Cell::Num((10f64).sin() * 1e3));
    assert_eq!(spill_take_error(), None);
    teardown(&dir);
}

/// Dropping resident columns refunds their bytes to the pool: repeatedly
/// building and dropping data under a tight budget must not accumulate
/// phantom resident bytes (which would eventually pin the pool over budget
/// forever and degrade it into evict-everything thrash).
#[test]
fn dropped_columns_refund_resident_bytes() {
    let _guard = lock_pool();
    let dir = temp_dir("refund");
    spill_configure(&dir, 128 << 10).unwrap();

    for round in 0..5 {
        let col = big_column("tmp");
        assert_eq!(col.num(0).unwrap().to_bits(), 0f64.to_bits(), "round {round}");
        drop(col);
        // A long-lived survivor forces the pool through register +
        // settle after each drop.
        let survivor = Column::numeric("s", vec![1.0; 64]);
        let stats = spill_stats().unwrap();
        assert!(
            stats.resident_bytes <= 16 << 10,
            "round {round}: dropped ~512 KiB must be refunded, not counted \
             resident forever: {stats:?}"
        );
        drop(survivor);
    }
    assert_eq!(spill_take_error(), None);
    teardown(&dir);
}
