//! # comet-frame — columnar dataset substrate
//!
//! A small, dependency-free, typed columnar data frame built for the COMET
//! reproduction. The paper's reference implementation sits on top of pandas;
//! this crate provides the subset of functionality COMET actually needs, with
//! explicit missing-value tracking (a first-class error type in the paper):
//!
//! * typed columns — numeric (`f64`) and categorical (dictionary-encoded
//!   `u32` codes), stored as chunked row segments
//!   ([`DEFAULT_SEGMENT_ROWS`] rows each) behind per-segment `Arc` CoW,
//! * a per-cell validity mask (missing values are *not* encoded as NaN),
//! * a schema with feature/label roles,
//! * cell-level reads/writes (the Polluter and Cleaner mutate single cells),
//! * CSV round-trips (streamed row-by-row into segments) and (stratified)
//!   train/test splitting,
//! * per-column summary statistics,
//! * cheap 64-bit content fingerprints ([`Column::fingerprint`],
//!   [`DataFrame::fingerprint`]) keying `comet-core`'s evaluation cache,
//!   plus memoized per-segment fingerprints keying feature-block caches
//!   and addressing the spill tier,
//! * an optional LRU spill-to-disk pool ([`spill_configure`]) that bounds
//!   resident segment bytes under a memory budget.
//!
//! The frame is column-major: every mutation COMET performs is column-local
//! (pollute feature `f`, clean feature `f`), so columns are independently
//! cloneable snapshots — cheap state save/restore is what the Recommender's
//! revert logic relies on. Segmenting makes that save/restore cheap *within*
//! a column too: a few-cell pollution on a million-row column un-shares and
//! re-fingerprints only the touched segments.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

mod builder;
mod column;
mod csv;
mod error;
mod fingerprint;
mod frame;
mod ops;
mod schema;
mod segment;
mod spill;
mod split;
mod stats;

pub use builder::{numeric_schema, ColumnBuilder, DataFrameBuilder};
pub use column::{Cell, Column};
pub use csv::{is_missing_sentinel, read_csv, read_csv_str, write_csv, write_csv_string};
pub use error::FrameError;
pub use fingerprint::fingerprint_bytes;
pub use frame::DataFrame;
pub use schema::{ColumnKind, FieldMeta, Role, Schema};
pub use segment::{SegmentView, DEFAULT_SEGMENT_ROWS};
pub use spill::{
    configure as spill_configure, deconfigure as spill_deconfigure,
    is_configured as spill_is_configured, publish_resident_gauge as spill_publish_resident_gauge,
    stats as spill_stats, take_error as spill_take_error, SpillStats,
};
pub use split::{train_test_split, SplitOptions, TrainTest};
pub use stats::{ColumnSummary, NumericSummary};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FrameError>;
