//! # comet-frame — columnar dataset substrate
//!
//! A small, dependency-free, typed columnar data frame built for the COMET
//! reproduction. The paper's reference implementation sits on top of pandas;
//! this crate provides the subset of functionality COMET actually needs, with
//! explicit missing-value tracking (a first-class error type in the paper):
//!
//! * typed columns — [`ColumnData::Numeric`] (`f64`) and
//!   [`ColumnData::Categorical`] (dictionary-encoded `u32` codes),
//! * a per-cell validity mask (missing values are *not* encoded as NaN),
//! * a schema with feature/label roles,
//! * cell-level reads/writes (the Polluter and Cleaner mutate single cells),
//! * CSV round-trips and (stratified) train/test splitting,
//! * per-column summary statistics,
//! * cheap 64-bit content fingerprints ([`Column::fingerprint`],
//!   [`DataFrame::fingerprint`]) keying `comet-core`'s evaluation cache.
//!
//! The frame is column-major: every mutation COMET performs is column-local
//! (pollute feature `f`, clean feature `f`), so columns are independently
//! cloneable snapshots — cheap state save/restore is what the Recommender's
//! revert logic relies on.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

mod builder;
mod column;
mod csv;
mod error;
mod fingerprint;
mod frame;
mod ops;
mod schema;
mod split;
mod stats;

pub use builder::{numeric_schema, DataFrameBuilder};
pub use column::{Cell, Column, ColumnData};
pub use csv::{is_missing_sentinel, read_csv, read_csv_str, write_csv, write_csv_string};
pub use error::FrameError;
pub use frame::DataFrame;
pub use schema::{ColumnKind, FieldMeta, Role, Schema};
pub use split::{train_test_split, SplitOptions, TrainTest};
pub use stats::{ColumnSummary, NumericSummary};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FrameError>;
